//! Cross-crate integration: the paper's running example and full
//! pipelines exercised through the public `transmark` facade.

use transmark::engine::brute;
use transmark::prelude::*;
use transmark::workloads::hospital::{
    hospital_sequence, places, room_tracker, table1_rows, CONF_12,
};

#[test]
fn hospital_example_full_evaluation() {
    let mu = hospital_sequence();
    let t = room_tracker();

    // Every algorithm agrees with brute force on every answer.
    let truth = brute::evaluate(&t, &mu).expect("brute force");
    assert!(truth.len() >= 5, "the running example has several answers");
    for (o, want) in &truth {
        let got = confidence(&t, &mu, o).expect("confidence");
        assert!((got - want).abs() < 1e-12, "answer {o:?}");
    }

    // conf(12) is the paper's number.
    assert!((truth[&places(&["1", "2"])] - CONF_12).abs() < 1e-12);

    // Unranked enumeration finds exactly the answers.
    let unranked: Vec<_> = enumerate_unranked(&t, &mu).expect("unranked").collect();
    assert_eq!(unranked.len(), truth.len());
    for o in &unranked {
        assert!(truth.contains_key(o));
    }

    // Ranked enumeration: complete, ordered, correct scores.
    let ranked: Vec<_> = enumerate_by_emax(&t, &mu).expect("ranked").collect();
    assert_eq!(ranked.len(), truth.len());
    for w in ranked.windows(2) {
        assert!(w[0].log_score >= w[1].log_score - 1e-12);
    }
    // The top E_max answer is "12" via evidence s (Example 4.2).
    assert_eq!(ranked[0].output, places(&["1", "2"]));
    assert!((ranked[0].score() - 0.3969).abs() < 1e-12);
}

#[test]
fn table1_strings_reproduce_through_the_facade() {
    let mu = hospital_sequence();
    let t = room_tracker();
    let alphabet = mu.alphabet().clone();
    for row in table1_rows() {
        let s: Vec<SymbolId> = row.string.iter().map(|n| alphabet.sym(n)).collect();
        assert!((mu.string_probability(&s).unwrap() - row.probability).abs() < 1e-9);
        assert_eq!(t.transduce_deterministic(&s), row.output.map(places));
    }
}

#[test]
fn hmm_pipeline_to_ranked_answers() {
    use rand::{rngs::StdRng, SeedableRng};
    use transmark::workloads::rfid::{deployment, RfidSpec};

    let dep = deployment(&RfidSpec {
        rooms: 2,
        locations_per_room: 2,
        stay_prob: 0.5,
        noise: 0.2,
    });
    let mut rng = StdRng::seed_from_u64(123);
    let (posterior, _) = dep.sample_posterior(6, &mut rng);
    let t = dep.room_tracker(None);

    // Ranked answers are valid, scored correctly, and complete.
    let truth = brute::evaluate(&t, &posterior).expect("brute");
    let ranked: Vec<_> = enumerate_by_emax(&t, &posterior).expect("ranked").collect();
    assert_eq!(ranked.len(), truth.len());
    for a in &ranked {
        let conf = confidence(&t, &posterior, &a.output).expect("confidence");
        assert!((conf - truth[&a.output]).abs() < 1e-9);
        // E_max never exceeds confidence.
        assert!(a.score() <= conf + 1e-12);
    }
}

#[test]
fn sprojector_pipeline_over_posterior() {
    use rand::{rngs::StdRng, SeedableRng};
    use transmark::workloads::rfid::{deployment, RfidSpec};

    let dep = deployment(&RfidSpec {
        rooms: 2,
        locations_per_room: 1,
        stay_prob: 0.6,
        noise: 0.2,
    });
    let mut rng = StdRng::seed_from_u64(77);
    let (posterior, _) = dep.sample_posterior(6, &mut rng);

    // Extract maximal stretches inside room 2 preceded by room-1 time.
    let p = SProjector::from_patterns(
        posterior.alphabet_arc(),
        ".*a", // prefix ends in room 1's location r1a
        "b+",  // a block of room 2's location r2a
        ".*",
    );
    // Location names are r1a/r2a — two chars don't fit the char-regex; use
    // explicit DFAs instead when names are long. Rebuild with chars:
    drop(p);
    let alphabet = posterior.alphabet_arc();
    let r1 = alphabet.sym("r1a");
    let r2 = alphabet.sym("r2a");
    let prefix = {
        // Any string ending with r1a.
        let mut d = Dfa::new(2);
        let q0 = d.add_state(false);
        let q1 = d.add_state(true);
        for (from, sym, to) in [(q0, r1, q1), (q0, r2, q0), (q1, r1, q1), (q1, r2, q0)] {
            d.set_transition(from, sym, to);
        }
        d
    };
    let pattern = {
        // r2a+
        let mut d = Dfa::new(2);
        let q0 = d.add_state(false);
        let q1 = d.add_state(true);
        let dead = d.add_sink_state(false);
        d.set_transition(q0, r2, q1);
        d.set_transition(q0, r1, dead);
        d.set_transition(q1, r2, q1);
        d.set_transition(q1, r1, dead);
        d
    };
    let suffix = Dfa::universal(2);
    let p = SProjector::new(alphabet, prefix, pattern, suffix).expect("valid projector");

    // The indexed enumeration is in exact decreasing confidence, and each
    // confidence matches the Theorem 5.8 evaluator.
    let ev = IndexedEvaluator::new(&p, &posterior).expect("evaluator");
    let answers: Vec<IndexedAnswer> = enumerate_indexed(&p, &posterior)
        .expect("enumerate")
        .collect();
    for w in answers.windows(2) {
        assert!(w[0].log_confidence >= w[1].log_confidence - 1e-12);
    }
    for a in &answers {
        assert!((a.confidence() - ev.confidence(&a.output, a.index)).abs() < 1e-12);
    }
    // Dedup: I_max scores sandwich the Thm 5.5 confidence (Prop. 5.9).
    for r in enumerate_by_imax(&p, &posterior).expect("imax") {
        let conf = sproj_confidence(&p, &posterior, &r.output).expect("confidence");
        let n = posterior.len() as f64;
        assert!(r.score() <= conf + 1e-12);
        assert!(conf <= (n + 1.0) * r.score() + 1e-12);
    }
}

#[test]
fn korder_reduction_composes_with_the_engine() {
    // Footnote 3: a 2nd-order Markov sequence is queried by reducing it to
    // first order over the window alphabet and lifting the query.
    use transmark::markov::KOrderMarkovSequence;

    let alphabet = Alphabet::of_chars("ab");
    let initial = vec![0.3, 0.2, 0.25, 0.25]; // joint over {aa,ab,ba,bb}
    let table = vec![
        0.5, 0.5, // ctx aa
        0.9, 0.1, // ctx ab
        0.2, 0.8, // ctx ba
        0.6, 0.4, // ctx bb
    ];
    let k2 = KOrderMarkovSequence::new(alphabet.clone(), 2, 4, initial, vec![table.clone(), table])
        .expect("valid 2nd-order chain");
    let (chain, enc) = k2.to_first_order();

    // Query on the window alphabet: emit "x" when the window repeats a
    // symbol (aa or bb), "y" otherwise — a Mealy machine on windows.
    let out = Alphabet::of_chars("xy");
    let mut b = Transducer::builder(chain.alphabet_arc(), out.clone());
    let q = b.add_state(true);
    for (wid, name) in chain.alphabet().iter() {
        let emit = if name == "a·a" || name == "b·b" {
            out.sym("x")
        } else {
            out.sym("y")
        };
        b.add_transition(q, wid, q, &[emit]).expect("valid edge");
    }
    let t = b.build().expect("window Mealy machine");

    // Confidence over the reduced chain equals the direct sum over the
    // 2nd-order model.
    let truth = brute::evaluate(&t, &chain).expect("brute");
    for (o, want) in truth {
        // Direct: sum p_korder(s) over Σ⁴ strings whose window string maps
        // to output o.
        let mut direct = 0.0;
        for code in 0..16u32 {
            let s: Vec<SymbolId> = (0..4).rev().map(|b| SymbolId((code >> b) & 1)).collect();
            let w = enc.encode(&s).expect("encode");
            if t.transduce_deterministic(&w).as_deref() == Some(&o[..]) {
                direct += k2.string_probability(&s).expect("probability");
            }
        }
        assert!((want - direct).abs() < 1e-12, "output {o:?}");
    }
}
