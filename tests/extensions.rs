//! Integration tests for the engine extensions (composition, evaluation
//! facade, streaming Boolean queries, sequence operations, Lawler I_max),
//! exercised together through the public facade.

use transmark::engine::brute;
use transmark::prelude::*;
use transmark::workloads::rfid::{deployment, RfidSpec};

/// Full pipeline with composition: raw locations → (Mealy classifier) →
/// (room dedup) as ONE composed query, validated against staging through
/// two brute-force transductions.
#[test]
fn composed_pipeline_equals_staged_pipeline() {
    use rand::{rngs::StdRng, SeedableRng};
    let dep = deployment(&RfidSpec {
        rooms: 2,
        locations_per_room: 2,
        stay_prob: 0.5,
        noise: 0.2,
    });
    let mut rng = StdRng::seed_from_u64(31);
    let (posterior, _) = dep.sample_posterior(5, &mut rng);

    // Stage 1: the non-selective room tracker is NOT 1-uniform (it emits ε
    // inside a room), so build a plain per-step room classifier instead.
    let rooms_out = dep.room_tracker(None).output_alphabet_arc();
    let mut b = Transducer::builder(posterior.alphabet_arc(), rooms_out.clone());
    let q = b.add_state(true);
    for (id, name) in posterior.alphabet().iter() {
        let room = &name[1..2]; // names are r{room}{letter}
        b.add_transition(q, id, q, &[rooms_out.sym(room)]).unwrap();
    }
    let classifier = b.build().unwrap();
    assert_eq!(classifier.uniform_emission(), Some(1));

    // Stage 2 (over room symbols): mark room switches.
    let marks = Alphabet::of_chars("=!");
    let mut b = Transducer::builder(rooms_out.clone(), marks.clone());
    let q0 = b.add_state(true);
    let q1 = b.add_state(true);
    let q2 = b.add_state(true);
    b.set_initial(q0);
    let same = [marks.sym("=")];
    let flip = [marks.sym("!")];
    let (r1, r2) = (rooms_out.sym("1"), rooms_out.sym("2"));
    b.add_transition(q0, r1, q1, &same).unwrap();
    b.add_transition(q0, r2, q2, &same).unwrap();
    b.add_transition(q1, r1, q1, &same).unwrap();
    b.add_transition(q1, r2, q2, &flip).unwrap();
    b.add_transition(q2, r2, q2, &same).unwrap();
    b.add_transition(q2, r1, q1, &flip).unwrap();
    let switcher = b.build().unwrap();

    let composite = compose(&classifier, &switcher).unwrap();

    // Reference: stage through both transducers world by world.
    let mut staged: std::collections::BTreeMap<Vec<SymbolId>, f64> = Default::default();
    for (s, p) in transmark::markov::support::support(&posterior) {
        let mid = classifier.transduce_deterministic(&s).unwrap();
        let out = switcher.transduce_deterministic(&mid).unwrap();
        *staged.entry(out).or_insert(0.0) += p;
    }
    let direct = brute::evaluate(&composite, &posterior).unwrap();
    assert_eq!(staged.len(), direct.len());
    for (o, want) in staged {
        assert!((direct[&o] - want).abs() < 1e-12, "output {o:?}");
        // And the engine's polynomial algorithm agrees.
        let got = confidence(&composite, &posterior, &o).unwrap();
        assert!((got - want).abs() < 1e-12);
    }
}

/// The evaluation facade is consistent with the underlying functions.
#[test]
fn evaluation_facade_consistency() {
    use rand::{rngs::StdRng, SeedableRng};
    let dep = deployment(&RfidSpec::default());
    let mut rng = StdRng::seed_from_u64(17);
    let (posterior, _) = dep.sample_posterior(5, &mut rng);
    let t = dep.room_tracker(Some(2));
    let ev = Evaluation::new(&t, &posterior).unwrap();
    assert_eq!(ev.confidence_cost(), ConfidenceCost::Polynomial);
    let scored = ev.top_k_scored(4).unwrap();
    for s in &scored {
        assert!(s.emax <= s.confidence + 1e-12);
        assert!((ev.confidence(&s.output).unwrap() - s.confidence).abs() < 1e-15);
    }
    // Scored list is E_max-ordered.
    for w in scored.windows(2) {
        assert!(w[0].emax >= w[1].emax - 1e-12);
    }
}

/// Conditioning, windowing and streaming Boolean queries compose: condition
/// the posterior on ground truth, slice a window, and query it.
#[test]
fn condition_window_and_stream() {
    use rand::{rngs::StdRng, SeedableRng};
    let dep = deployment(&RfidSpec {
        rooms: 2,
        locations_per_room: 1,
        stay_prob: 0.5,
        noise: 0.3,
    });
    let mut rng = StdRng::seed_from_u64(5);
    let (posterior, truth) = dep.sample_posterior(6, &mut rng);

    // Condition on the (known) position at time 3.
    let conditioned = condition(&posterior, &[(2, Evidence::Exactly(truth[2]))]).unwrap();
    assert!((conditioned.marginals()[2][truth[2].index()] - 1.0).abs() < 1e-9);

    // Evidence probability equals the marginal.
    let pe = evidence_probability(&posterior, &[(2, Evidence::Exactly(truth[2]))]).unwrap();
    assert!((pe - posterior.marginals()[2][truth[2].index()]).abs() < 1e-12);

    // Window the last 3 steps of the conditioned chain and query it.
    let w = window(&conditioned, 3, 3).unwrap();
    assert_eq!(w.len(), 3);
    let t = dep.room_tracker(None);
    let truth_map = brute::evaluate(&t, &w).unwrap();
    for (o, want) in truth_map {
        assert!((confidence(&t, &w, &o).unwrap() - want).abs() < 1e-10);
    }

    // Streaming Boolean query on the full chain: P(visited room 2 by time i)
    // is monotone and ends at the acceptance probability.
    let visit2 = {
        let mut nfa = Nfa::new(2);
        let q0 = nfa.add_state(false);
        let acc = nfa.add_state(true);
        let r2 = posterior.alphabet().sym("r2a");
        let r1 = posterior.alphabet().sym("r1a");
        nfa.add_transition(q0, r1, q0);
        nfa.add_transition(q0, r2, acc);
        nfa.add_transition(acc, r1, acc);
        nfa.add_transition(acc, r2, acc);
        nfa
    };
    let series = prefix_acceptance_probabilities(&visit2, &posterior).unwrap();
    for w in series.windows(2) {
        assert!(w[0] <= w[1] + 1e-12);
    }
    let total = acceptance_probability(&visit2, &posterior).unwrap();
    assert!((series.last().unwrap() - total).abs() < 1e-12);
}

/// Lawler and dedup I_max enumerations agree through the facade on a
/// realistic extraction.
#[test]
fn imax_variants_agree_on_text_workload() {
    use transmark::workloads::text::{noisy_document, TextSpec};
    let doc = noisy_document(
        "ab:na me",
        &TextSpec {
            noise: 0.25,
            stickiness: 1.5,
        },
    );
    let p = doc.extractor(".*", "[a-z]+", ".*").unwrap();
    let a: Vec<_> = enumerate_by_imax(&p, &doc.sequence).unwrap().collect();
    let b: Vec<_> = enumerate_by_imax_lawler(&p, &doc.sequence)
        .unwrap()
        .collect();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert!((x.score() - y.score()).abs() < 1e-12);
    }
    let sa: std::collections::BTreeSet<_> = a.into_iter().map(|r| r.output).collect();
    let sb: std::collections::BTreeSet<_> = b.into_iter().map(|r| r.output).collect();
    assert_eq!(sa, sb);
}
