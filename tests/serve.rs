//! Loopback integration tests for `tmk serve`: results served over the
//! `tmkp` protocol must be **bit-identical** to the in-process
//! [`Engine`](transmark::Engine) path for every `PlanKind` — including
//! streamed `.tmsb` sessions fed chunk by chunk — and the wire must
//! answer version mismatches, quota exhaustion, and malformed traffic
//! with typed errors instead of hangs or garbage.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use transmark::engine::evaluate::Evaluation;
use transmark::engine::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark::engine::transducer::Transducer;
use transmark::markov::binio::{to_tmsb_bytes, TmsbReader};
use transmark::markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark::markov::MarkovSequence;
use transmark::serve::client::{Client, Sequence, StreamCheckpoint, StreamOptions};
use transmark::serve::protocol::{
    parse_error, read_frame, write_frame, PayloadBuilder, WireError, ERR_BAD_CHECKPOINT,
    ERR_BAD_FRAME, ERR_QUOTA, ERR_VERSION, FLAG_TRACE, KIND_SERIES, OP_CHECKPOINT, OP_ERROR,
    OP_HELLO, OP_HELLO_OK, OP_QUERY, OP_RESULT, OP_STREAM_ACK, OP_STREAM_BEGIN,
    OP_STREAM_CHECKPOINT, OP_STREAM_DATA, OP_STREAM_END, WIRE_MAGIC, WIRE_VERSION,
};
use transmark::serve::{ServeConfig, Server};
use transmark::Engine;

/// One server shared by every test in this binary (tests that need
/// special quotas or a private lifetime start their own). Never shut
/// down: it lives until process exit, like a real service.
fn shared_server() -> &'static Server {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER.get_or_init(|| {
        Server::start(ServeConfig {
            threads: 4,
            ..ServeConfig::default()
        })
        .expect("bind an ephemeral loopback port")
    })
}

fn addr() -> String {
    shared_server().local_addr().to_string()
}

fn instance(class: TransducerClass, seed: u64, n: usize) -> (Transducer, MarkovSequence) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: n,
            n_symbols: 2,
            zero_prob: 0.3,
        },
        &mut rng,
    );
    let t = random_transducer(
        &RandomTransducerSpec {
            n_states: 3,
            n_input_symbols: 2,
            n_output_symbols: 2,
            class,
            branching: 1.5,
        },
        &mut rng,
    );
    (t, m)
}

fn arb_class() -> impl Strategy<Value = TransducerClass> {
    prop_oneof![
        Just(TransducerClass::General),
        Just(TransducerClass::Deterministic),
        Just(TransducerClass::Mealy),
        Just(TransducerClass::Uniform(1)),
        Just(TransducerClass::Uniform(2)),
        Just(TransducerClass::Projector),
    ]
}

/// Renders an output (symbol ids) as the space-separated names the wire
/// protocol uses.
fn output_names(t: &Transducer, o: &[transmark::automata::SymbolId]) -> String {
    o.iter()
        .map(|&s| t.output_alphabet().name(s).to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every transducer class — so every `PlanKind` route — served over
    /// loopback in both sequence formats, compared bitwise against a
    /// local in-process engine, including a chunked stream session.
    #[test]
    fn served_results_are_bit_identical(class in arb_class(), seed in any::<u64>(), n in 1usize..5) {
        let (t, m) = instance(class, seed, n);
        let query_text = transmark::engine::textio::to_text(&t);
        let seq_text = transmark::markov::textio::to_text(&m);
        let tmsb = to_tmsb_bytes(&m);

        let local = Engine::new();
        let plan = local.prepare(&t);
        let answers = Evaluation::with_plan(&plan, &m)
            .and_then(|ev| ev.top_k_scored(5))
            .expect("local top-k");

        let mut client = Client::connect(&addr(), "prop").expect("connect");

        // Top-k: same answers in the same order, scores bit-for-bit,
        // from both the text and the binary sequence encoding.
        for seq in [Sequence::Text(&seq_text), Sequence::Binary(&tmsb)] {
            let served = client.top_k(&query_text, &seq, 5, false).expect("served top-k");
            prop_assert_eq!(served.value.len(), answers.len());
            for (w, a) in served.value.iter().zip(answers.iter()) {
                let ids: Vec<u32> = a.output.iter().map(|s| s.0).collect();
                prop_assert_eq!(&w.output, &ids);
                prop_assert_eq!(w.emax.to_bits(), a.emax.to_bits());
                prop_assert_eq!(w.confidence.to_bits(), a.confidence.to_bits());
            }
        }

        // Confidence of each answer, by name, bit-for-bit.
        let bound = plan.bind(&m).expect("local bind");
        for a in &answers {
            let names = output_names(&t, &a.output);
            let c_local = bound.confidence(&a.output).expect("local confidence");
            let served = client
                .confidence(&query_text, &Sequence::Binary(&tmsb), &names, false)
                .expect("served confidence");
            prop_assert_eq!(served.value.to_bits(), c_local.to_bits());
        }

        // The prefix acceptance series.
        let event = local.prepare_event(&t.underlying_nfa());
        let series_local = event.series(&m).expect("local series");
        let served = client
            .series(&query_text, &Sequence::Text(&seq_text), false)
            .expect("served series");
        prop_assert_eq!(served.value.len(), series_local.len());
        for (a, b) in served.value.iter().zip(series_local.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        // Streamed sessions: tiny chunks force many DATA/ACK rounds; the
        // reference is the local source-bound path over the same bytes.
        for chunk in [1usize, 13, tmsb.len().max(1)] {
            let mut local_src = TmsbReader::new(&tmsb[..]).expect("local reader");
            let series_src = event.series_source(&mut local_src).expect("local source series");
            let served = client
                .stream_series(&query_text, &tmsb, chunk)
                .expect("served stream series");
            prop_assert_eq!(served.value.len(), series_src.len());
            for (a, b) in served.value.iter().zip(series_src.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        if let Some(a) = answers.first() {
            let names = output_names(&t, &a.output);
            let c_local = plan
                .bind_source(TmsbReader::new(&tmsb[..]).expect("local reader"))
                .and_then(|mut b| b.confidence(&a.output))
                .expect("local source confidence");
            let served = client
                .stream_confidence(&query_text, &names, &tmsb, 7)
                .expect("served stream confidence");
            prop_assert_eq!(served.value.to_bits(), c_local.to_bits());
        }
    }
}

/// Checkpoints taken at every chunk boundary of a streamed session can
/// each seed a fresh session (new connection, resliced data) whose final
/// result is bit-identical to the uninterrupted run — for series,
/// confidence, and sliding-window kinds.
#[test]
fn stream_checkpoints_resume_bit_identically() {
    let (t, m) = instance(TransducerClass::Deterministic, 0xC0FFEE, 5);
    let query_text = transmark::engine::textio::to_text(&t);
    let tmsb = to_tmsb_bytes(&m);

    let local = Engine::new();
    let event = local.prepare_event(&t.underlying_nfa());
    let mut local_src = TmsbReader::new(&tmsb[..]).expect("local reader");
    let series_ref = event
        .series_source(&mut local_src)
        .expect("local source series");

    // Tiny chunks + checkpoint-every-2 scatter checkpoints across the
    // prelude (empty blob), layer boundaries, and mid-layer offsets.
    let mut cks: Vec<StreamCheckpoint> = Vec::new();
    let mut client = Client::connect(&addr(), "ckpt").expect("connect");
    let mut grab = |ck: &StreamCheckpoint| cks.push(ck.clone());
    let served = client
        .stream_series_with(
            &query_text,
            &tmsb,
            3,
            StreamOptions {
                checkpoint_every: Some(2),
                on_checkpoint: Some(&mut grab),
                resume: None,
            },
        )
        .expect("checkpointed stream series");
    assert_eq!(served.value.len(), series_ref.len());
    for (a, b) in served.value.iter().zip(series_ref.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert!(
        cks.iter().any(|ck| ck.position > 0),
        "at least one checkpoint should capture real progress"
    );
    assert!(
        cks.iter().any(|ck| ck.is_empty()),
        "chunk=3 should catch the session still inside the prelude"
    );

    for ck in &cks {
        let roundtrip = StreamCheckpoint::from_bytes(&ck.to_bytes()).expect("roundtrip");
        assert_eq!(&roundtrip, ck);
        let mut fresh = Client::connect(&addr(), "ckpt").expect("reconnect");
        let resumed = fresh
            .stream_series_with(
                &query_text,
                &tmsb,
                7,
                StreamOptions {
                    resume: Some(ck),
                    ..StreamOptions::default()
                },
            )
            .expect("resumed stream series");
        assert_eq!(resumed.value.len(), series_ref.len(), "at {}", ck.position);
        for (a, b) in resumed.value.iter().zip(series_ref.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "resumed at {}", ck.position);
        }
    }

    // Confidence: same drill against the local source-bound value.
    let plan = local.prepare(&t);
    let answers = Evaluation::with_plan(&plan, &m)
        .and_then(|ev| ev.top_k_scored(1))
        .expect("local top-k");
    if let Some(a) = answers.first() {
        let names = output_names(&t, &a.output);
        let c_ref = plan
            .bind_source(TmsbReader::new(&tmsb[..]).expect("local reader"))
            .and_then(|mut b| b.confidence(&a.output))
            .expect("local source confidence");
        let mut cks: Vec<StreamCheckpoint> = Vec::new();
        let mut grab = |ck: &StreamCheckpoint| cks.push(ck.clone());
        let served = client
            .stream_confidence_with(
                &query_text,
                &names,
                &tmsb,
                5,
                StreamOptions {
                    checkpoint_every: Some(1),
                    on_checkpoint: Some(&mut grab),
                    resume: None,
                },
            )
            .expect("checkpointed stream confidence");
        assert_eq!(served.value.to_bits(), c_ref.to_bits());
        for ck in &cks {
            let resumed = client
                .stream_confidence_with(
                    &query_text,
                    &names,
                    &tmsb,
                    9,
                    StreamOptions {
                        resume: Some(ck),
                        ..StreamOptions::default()
                    },
                )
                .expect("resumed stream confidence");
            assert_eq!(
                resumed.value.to_bits(),
                c_ref.to_bits(),
                "resumed at {}",
                ck.position
            );
        }
    }
}

/// A streamed sliding-window session matches the local
/// `SlidingWindowQuery` series bitwise, and its checkpoints resume
/// bit-identically too.
#[test]
fn stream_window_matches_local_and_resumes() {
    use transmark::engine::incremental::SlidingWindowQuery;

    let (t, m) = instance(TransducerClass::Mealy, 0xBEEF, 6);
    let query_text = transmark::engine::textio::to_text(&t);
    let tmsb = to_tmsb_bytes(&m);

    for window in [1u32, 2, 4] {
        let wq = SlidingWindowQuery::new(t.underlying_nfa(), window as usize)
            .expect("window query for a small machine");
        let series_ref = wq.series(&m).expect("local window series");

        let mut cks: Vec<StreamCheckpoint> = Vec::new();
        let mut grab = |ck: &StreamCheckpoint| cks.push(ck.clone());
        let mut client = Client::connect(&addr(), "window").expect("connect");
        let served = client
            .stream_window(
                &query_text,
                &tmsb,
                window,
                4,
                StreamOptions {
                    checkpoint_every: Some(3),
                    on_checkpoint: Some(&mut grab),
                    resume: None,
                },
            )
            .expect("streamed window series");
        assert_eq!(served.value.len(), series_ref.len());
        for (a, b) in served.value.iter().zip(series_ref.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "window {window}");
        }

        for ck in &cks {
            let resumed = client
                .stream_window(
                    &query_text,
                    &tmsb,
                    window,
                    11,
                    StreamOptions {
                        resume: Some(ck),
                        ..StreamOptions::default()
                    },
                )
                .expect("resumed window series");
            assert_eq!(resumed.value.len(), series_ref.len());
            for (a, b) in resumed.value.iter().zip(series_ref.iter()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "window {window} resumed at {}",
                    ck.position
                );
            }
        }
    }
}

/// A session that dies mid-stream (after pocketing a checkpoint) can be
/// continued on a brand-new connection — the disconnect costs nothing
/// but the un-checkpointed suffix, which the resume re-sends.
#[test]
fn disconnected_stream_resumes_on_a_new_connection() {
    let (t, m) = instance(TransducerClass::General, 0xDEAD, 5);
    let query_text = transmark::engine::textio::to_text(&t);
    let tmsb = to_tmsb_bytes(&m);

    let local = Engine::new();
    let event = local.prepare_event(&t.underlying_nfa());
    let mut local_src = TmsbReader::new(&tmsb[..]).expect("local reader");
    let series_ref = event
        .series_source(&mut local_src)
        .expect("local source series");

    // Where does the second layer start? Everything before it plus a few
    // bytes goes over the wire before the "crash".
    let prelude = transmark::markov::binio::read_prelude(&mut &tmsb[..]).expect("local prelude");
    let cut = (prelude.layer_offset(1) as usize + 5).min(tmsb.len());

    // Raw session: HELLO, BEGIN, one DATA burst, checkpoint, vanish.
    let mut s = TcpStream::connect(addr()).expect("connect");
    let hello = PayloadBuilder::new()
        .raw(&WIRE_MAGIC)
        .u32(WIRE_VERSION)
        .string("flaky")
        .build();
    write_frame(&mut s, OP_HELLO, &hello).expect("hello");
    let frame = read_frame(&mut s).expect("hello reply").expect("frame");
    assert_eq!(frame.op, OP_HELLO_OK);
    let begin = PayloadBuilder::new()
        .u8(3) // KIND_SERIES
        .u8(0)
        .string(&query_text)
        .string("")
        .build();
    write_frame(&mut s, OP_STREAM_BEGIN, &begin).expect("begin");
    let frame = read_frame(&mut s).expect("first ack").expect("frame");
    assert_eq!(frame.op, OP_STREAM_ACK);
    write_frame(&mut s, OP_STREAM_DATA, &tmsb[..cut]).expect("data");
    let frame = read_frame(&mut s).expect("second ack").expect("frame");
    assert_eq!(frame.op, OP_STREAM_ACK);
    write_frame(&mut s, OP_STREAM_CHECKPOINT, &[]).expect("checkpoint request");
    let frame = read_frame(&mut s).expect("checkpoint").expect("frame");
    assert_eq!(frame.op, OP_CHECKPOINT);
    let mut c = transmark::serve::protocol::Cursor::new(&frame.payload);
    let position = c.u64("position").expect("position");
    let blob = c.bytes("blob").expect("blob").to_vec();
    assert_eq!(position, 1, "one full layer made it over before the cut");
    assert!(!blob.is_empty());
    drop(s); // the "disconnect": no END, no result

    let ck = StreamCheckpoint { position, blob };
    let mut fresh = Client::connect(&addr(), "flaky").expect("reconnect");
    let resumed = fresh
        .stream_series_with(
            &query_text,
            &tmsb,
            6,
            StreamOptions {
                resume: Some(&ck),
                ..StreamOptions::default()
            },
        )
        .expect("resumed after disconnect");
    assert_eq!(resumed.value.len(), series_ref.len());
    for (a, b) in resumed.value.iter().zip(series_ref.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Corrupted or mismatched resume blobs are refused with a typed
/// ERR_BAD_CHECKPOINT — never a panic, never a wrong answer — and the
/// connection stays usable.
#[test]
fn bad_resume_blobs_are_typed_errors() {
    let (t, m) = instance(TransducerClass::Deterministic, 0xFACE, 4);
    let query_text = transmark::engine::textio::to_text(&t);
    let tmsb = to_tmsb_bytes(&m);

    // Harvest one real mid-stream checkpoint to corrupt.
    let mut cks: Vec<StreamCheckpoint> = Vec::new();
    let mut grab = |ck: &StreamCheckpoint| {
        if !ck.is_empty() {
            cks.push(ck.clone());
        }
    };
    let mut client = Client::connect(&addr(), "fuzz").expect("connect");
    client
        .stream_series_with(
            &query_text,
            &tmsb,
            4,
            StreamOptions {
                checkpoint_every: Some(1),
                on_checkpoint: Some(&mut grab),
                resume: None,
            },
        )
        .expect("seed stream");
    let ck = cks.pop().expect("a non-empty checkpoint");

    let expect_bad = |client: &mut Client, ck: &StreamCheckpoint| match client.stream_series_with(
        &query_text,
        &tmsb,
        8,
        StreamOptions {
            resume: Some(ck),
            ..StreamOptions::default()
        },
    ) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ERR_BAD_CHECKPOINT),
        other => panic!("expected a checkpoint error, got {other:?}"),
    };

    // Truncations at every envelope region: always the typed
    // checkpoint error.
    for cut in [1usize, 5, 13, ck.blob.len().saturating_sub(3)] {
        let mut bad = ck.clone();
        bad.blob.truncate(cut.min(bad.blob.len()));
        if bad.blob.is_empty() {
            continue; // empty = legitimate "start over"
        }
        expect_bad(&mut client, &bad);
    }
    // Bit flips: corrupted dims may only surface once the resliced data
    // collides with them (a stride/truncation error), so any typed
    // remote error is acceptable — but never a hang, panic, or success.
    for i in [0usize, 1, 9, 17] {
        let mut bad = ck.clone();
        if i < bad.blob.len() {
            bad.blob[i] ^= 0xA5;
            match client.stream_series_with(
                &query_text,
                &tmsb,
                8,
                StreamOptions {
                    resume: Some(&bad),
                    ..StreamOptions::default()
                },
            ) {
                Err(WireError::Remote { .. }) => {}
                other => panic!("expected a typed remote error for flip at {i}, got {other:?}"),
            }
        }
    }

    // A series checkpoint presented to a confidence session: the kind
    // tag in the envelope catches it.
    let local = Engine::new();
    let plan = local.prepare(&t);
    let answers = Evaluation::with_plan(&plan, &m)
        .and_then(|ev| ev.top_k_scored(1))
        .expect("local top-k");
    if let Some(a) = answers.first() {
        let names = output_names(&t, &a.output);
        match client.stream_confidence_with(
            &query_text,
            &names,
            &tmsb,
            8,
            StreamOptions {
                resume: Some(&ck),
                ..StreamOptions::default()
            },
        ) {
            Err(WireError::Remote { code, .. }) => assert_eq!(code, ERR_BAD_CHECKPOINT),
            other => panic!("expected a kind-mismatch checkpoint error, got {other:?}"),
        }
    }

    // The typed errors left the connection frame-aligned.
    client
        .stream_series(&query_text, &tmsb, 16)
        .expect("connection survives checkpoint fuzzing");
}

/// The same query text from two fresh connections hits the server's
/// process-lifetime plan cache the second time.
#[test]
fn plan_cache_is_shared_across_connections() {
    let server = shared_server();
    let (t, m) = instance(TransducerClass::Deterministic, 0xCAFE, 3);
    let query_text = transmark::engine::textio::to_text(&t);
    let seq_text = transmark::markov::textio::to_text(&m);

    let before = server.engine().plan_stats();
    for _ in 0..2 {
        let mut client = Client::connect(&addr(), "cache").expect("connect");
        client
            .top_k(&query_text, &Sequence::Text(&seq_text), 3, false)
            .expect("served top-k");
    }
    let after = server.engine().plan_stats();
    assert!(
        after.hits > before.hits,
        "second connection should hit the shared plan cache: {before:?} -> {after:?}"
    );
}

/// A HELLO with an unknown protocol version gets a typed ERR_VERSION
/// naming the spoken version — not a hang, not a close.
#[test]
fn tmkp_version_mismatch_is_typed() {
    let mut s = TcpStream::connect(addr()).expect("connect");
    let hello = PayloadBuilder::new()
        .raw(&WIRE_MAGIC)
        .u32(WIRE_VERSION + 41)
        .string("time-traveller")
        .build();
    write_frame(&mut s, OP_HELLO, &hello).expect("send hello");
    let frame = read_frame(&mut s)
        .expect("read reply")
        .expect("a reply frame");
    assert_eq!(frame.op, OP_ERROR);
    let (code, message) = transmark::serve::protocol::parse_error(&frame.payload);
    assert_eq!(code, ERR_VERSION);
    assert!(
        message.contains(&WIRE_VERSION.to_string()),
        "the error should name the supported version: {message}"
    );
}

/// Garbage magic is a typed bad-frame error.
#[test]
fn bad_magic_is_rejected() {
    let mut s = TcpStream::connect(addr()).expect("connect");
    let hello = PayloadBuilder::new()
        .raw(b"NOPE")
        .u32(WIRE_VERSION)
        .string("")
        .build();
    write_frame(&mut s, OP_HELLO, &hello).expect("send hello");
    let frame = read_frame(&mut s)
        .expect("read reply")
        .expect("a reply frame");
    assert_eq!(frame.op, OP_ERROR);
    let (code, _) = transmark::serve::protocol::parse_error(&frame.payload);
    assert_eq!(code, ERR_BAD_FRAME);
}

/// A `.tmsb` payload stamped with a future format version is refused
/// with ERR_VERSION — through the self-contained query path and through
/// a stream session — and the connection stays usable afterwards.
#[test]
fn tmsb_version_mismatch_over_the_wire() {
    let (t, m) = instance(TransducerClass::Mealy, 7, 3);
    let query_text = transmark::engine::textio::to_text(&t);
    let mut tmsb = to_tmsb_bytes(&m);
    tmsb[4..8].copy_from_slice(&99u32.to_le_bytes());

    let mut client = Client::connect(&addr(), "future").expect("connect");
    match client.series(&query_text, &Sequence::Binary(&tmsb), false) {
        Err(WireError::Remote { code, message }) => {
            assert_eq!(code, ERR_VERSION);
            assert!(message.contains("99"), "{message}");
        }
        other => panic!("expected a remote version error, got {other:?}"),
    }
    match client.stream_series(&query_text, &tmsb, 5) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ERR_VERSION),
        other => panic!("expected a remote version error, got {other:?}"),
    }

    // The error left the connection frame-aligned: a good query works.
    let good = to_tmsb_bytes(&m);
    client
        .series(&query_text, &Sequence::Binary(&good), false)
        .expect("connection still usable after typed errors");
}

/// A peer that dies mid-frame neither wedges the server nor poisons
/// later connections.
#[test]
fn partial_frames_do_not_wedge_the_server() {
    // Half a length prefix, then gone.
    let mut s = TcpStream::connect(addr()).expect("connect");
    s.write_all(&[0x10, 0x00]).expect("write partial prefix");
    drop(s);

    // A length prefix promising more than the peer ever sends.
    let mut s = TcpStream::connect(addr()).expect("connect");
    s.write_all(&20u32.to_le_bytes()).expect("write prefix");
    s.write_all(&[OP_HELLO, 1, 2, 3])
        .expect("write partial body");
    drop(s);

    // The server is still answering.
    let (t, m) = instance(TransducerClass::General, 21, 2);
    let mut client = Client::connect(&addr(), "after").expect("connect");
    client
        .series(
            &transmark::engine::textio::to_text(&t),
            &Sequence::Text(&transmark::markov::textio::to_text(&m)),
            false,
        )
        .expect("query after partial-frame peers");
}

/// With a quota of one in-flight query per tenant, a second query from
/// the same tenant is refused with ERR_QUOTA while a different tenant
/// still gets through.
#[test]
fn tenant_quota_is_enforced() {
    let server = Server::start(ServeConfig {
        threads: 3,
        tenant_quota: 1,
        ..ServeConfig::default()
    })
    .expect("start quota server");
    let addr = server.local_addr().to_string();

    let (t, m) = instance(TransducerClass::Deterministic, 11, 3);
    let query_text = transmark::engine::textio::to_text(&t);
    let seq_text = transmark::markov::textio::to_text(&m);
    let tmsb = to_tmsb_bytes(&m);

    // Session A (tenant "shared") opens a stream and stalls after the
    // first ack: its quota slot stays held while it dawdles.
    let mut a = TcpStream::connect(&addr).expect("connect A");
    let hello = PayloadBuilder::new()
        .raw(&WIRE_MAGIC)
        .u32(WIRE_VERSION)
        .string("shared")
        .build();
    write_frame(&mut a, OP_HELLO, &hello).expect("hello A");
    let frame = read_frame(&mut a).expect("hello reply").expect("frame");
    assert_eq!(frame.op, OP_HELLO_OK);
    let begin = PayloadBuilder::new()
        .u8(3) // KIND_SERIES
        .u8(0)
        .string(&query_text)
        .string("")
        .build();
    write_frame(&mut a, OP_STREAM_BEGIN, &begin).expect("begin A");
    let frame = read_frame(&mut a).expect("first ack").expect("frame");
    assert_eq!(frame.op, OP_STREAM_ACK);

    // Tenant "shared" is now at its quota; tenant "other" is not.
    let mut b = Client::connect(&addr, "shared").expect("connect B");
    match b.series(&query_text, &Sequence::Text(&seq_text), false) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ERR_QUOTA),
        other => panic!("expected a quota error, got {other:?}"),
    }
    let mut c = Client::connect(&addr, "other").expect("connect C");
    c.series(&query_text, &Sequence::Text(&seq_text), false)
        .expect("other tenant is under quota");

    // Session A completes: data, end, result — and releases the slot.
    write_frame(&mut a, OP_STREAM_DATA, &tmsb).expect("data A");
    loop {
        let frame = read_frame(&mut a).expect("session A reply").expect("frame");
        match frame.op {
            OP_STREAM_ACK => write_frame(&mut a, OP_STREAM_END, &[]).expect("end A"),
            OP_RESULT => break,
            other => panic!("unexpected opcode {other:#04x} in session A"),
        }
    }
    drop(a);
    let mut b2 = Client::connect(&addr, "shared").expect("reconnect B");
    b2.series(&query_text, &Sequence::Text(&seq_text), false)
        .expect("slot released after session A finished");

    server.shutdown();
}

/// Metrics are served over both transports: tmkp OP_METRICS (text and
/// JSON) and a plain HTTP/1.0 GET on the same port.
#[test]
fn metrics_over_tmkp_and_http() {
    let (t, m) = instance(TransducerClass::General, 5, 2);
    let mut client = Client::connect(&addr(), "metrics").expect("connect");
    client
        .series(
            &transmark::engine::textio::to_text(&t),
            &Sequence::Text(&transmark::markov::textio::to_text(&m)),
            false,
        )
        .expect("seed one query");

    // The transport works regardless of instrumentation; the counter
    // names only appear when the obs layer is compiled in (not obs-off).
    let instrumented = transmark::obs::enabled();
    let text = client.metrics(false).expect("metrics text");
    let json = client.metrics(true).expect("metrics json");
    if instrumented {
        assert!(text.contains("serve.queries"), "{text}");
        assert!(json.trim_start().starts_with('{'), "{json}");
        assert!(json.contains("serve.queries"), "{json}");
    }

    let http = |path: &str| -> String {
        let mut s = TcpStream::connect(addr()).expect("connect http");
        write!(s, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
        s.flush().expect("flush");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read response");
        out
    };
    let scrape = http("/metrics");
    assert!(scrape.starts_with("HTTP/1.1 200 OK"), "{scrape}");
    assert!(scrape.contains("Content-Type: text/plain"), "{scrape}");
    assert!(scrape.contains("Content-Length: "), "{scrape}");
    if instrumented {
        assert!(scrape.contains("serve.connections"), "{scrape}");
    }
    let scrape = http("/metrics.json");
    assert!(scrape.contains("application/json"), "{scrape}");
    // The declared Content-Length matches the body exactly.
    let (head, body) = scrape.split_once("\r\n\r\n").expect("header split");
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("content-length header")
        .trim()
        .parse()
        .expect("numeric content-length");
    assert_eq!(declared, body.len(), "{scrape}");
    let scrape = http("/metrics.prom");
    assert!(scrape.starts_with("HTTP/1.1 200 OK"), "{scrape}");
    assert!(scrape.contains("version=0.0.4"), "{scrape}");
    if instrumented {
        assert!(
            scrape.contains("# TYPE serve_connections counter"),
            "{scrape}"
        );
    }
    let scrape = http("/nope");
    assert!(scrape.starts_with("HTTP/1.1 404"), "{scrape}");
}

/// OP_SHUTDOWN acks, then the whole server — accept loop and workers —
/// drains and joins.
#[test]
fn graceful_shutdown_via_client() {
    let server = Server::start(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    })
    .expect("start private server");
    let addr = server.local_addr().to_string();

    let (t, m) = instance(TransducerClass::Uniform(1), 3, 2);
    let mut client = Client::connect(&addr, "bye").expect("connect");
    client
        .series(
            &transmark::engine::textio::to_text(&t),
            &Sequence::Text(&transmark::markov::textio::to_text(&m)),
            false,
        )
        .expect("one query before shutdown");
    client.shutdown().expect("shutdown acked");

    // Joins the accept loop and drains the pool; must not hang.
    server.wait();
}

/// A v1 peer still negotiates: HELLO with version 1 is accepted,
/// HELLO_OK echoes the negotiated (minimum) version, and the v2-only
/// trace flag is rejected with a typed error before the rest of the
/// payload is touched.
#[test]
fn v1_peer_negotiates_and_trace_flag_is_rejected() {
    let mut s = TcpStream::connect(addr()).expect("connect raw");
    let mut hello = WIRE_MAGIC.to_vec();
    hello.extend_from_slice(&PayloadBuilder::new().u32(1).string("legacy").build());
    write_frame(&mut s, OP_HELLO, &hello).expect("send v1 hello");
    let ok = read_frame(&mut s).expect("hello reply").expect("frame");
    assert_eq!(ok.op, OP_HELLO_OK);
    assert_eq!(ok.payload.as_slice(), &1u32.to_le_bytes());

    let query = PayloadBuilder::new()
        .u8(KIND_SERIES)
        .u8(FLAG_TRACE)
        .u64(0xdead_beef)
        .build();
    write_frame(&mut s, OP_QUERY, &query).expect("send traced query");
    let reply = read_frame(&mut s).expect("reply").expect("frame");
    assert_eq!(reply.op, OP_ERROR);
    let (code, message) = parse_error(&reply.payload);
    assert_eq!(code, ERR_BAD_FRAME);
    assert!(message.contains("version"), "{message}");
}

/// A traced, profiled query returns the server timeline as JSON
/// carrying the client's trace id; merged into a local profile it
/// yields one Chrome trace with the shared id and prefixed server
/// lanes.
#[test]
fn trace_id_round_trips_into_server_profile() {
    let (t, m) = instance(TransducerClass::General, 11, 3);
    let query_text = transmark::engine::textio::to_text(&t);
    let seq_text = transmark::markov::textio::to_text(&m);

    let mut client = Client::connect(&addr(), "traced").expect("connect");
    assert_eq!(client.negotiated_version(), WIRE_VERSION);
    client.set_trace(0x00c0_ffee);
    let resp = client
        .confidence(&query_text, &Sequence::Text(&seq_text), "", true)
        .expect("traced confidence");
    let profile = resp.profile.expect("server profile present");
    if transmark::obs::enabled() {
        let remote =
            transmark::obs::ExecutionProfile::from_json(&profile).expect("traced profile is JSON");
        assert_eq!(remote.trace_id, 0x00c0_ffee);
        assert!(!remote.lanes.is_empty(), "server recorded no lanes");
        let mut local = transmark::obs::ExecutionProfile::default();
        local.merge_remote(&remote, 1_000, "server/");
        assert_eq!(local.trace_id, 0x00c0_ffee);
        let trace = transmark::obs::trace::chrome_trace(&local);
        assert!(trace.contains("tmk trace 0000000000c0ffee"), "{trace}");
        assert!(trace.contains("server/"), "{trace}");
    }
}

/// An untraced client is unchanged: the profile comes back as the
/// classic text rendering, not JSON.
#[test]
fn untraced_profile_stays_text() {
    let (t, m) = instance(TransducerClass::General, 12, 3);
    let mut client = Client::connect(&addr(), "plain").expect("connect");
    let resp = client
        .confidence(
            &transmark::engine::textio::to_text(&t),
            &Sequence::Text(&transmark::markov::textio::to_text(&m)),
            "",
            true,
        )
        .expect("profiled confidence");
    let profile = resp.profile.expect("profile present");
    assert!(!profile.trim_start().starts_with('{'), "{profile}");
}

/// `slow_ms: 0` plus a file event-log sink: queries land in the log as
/// typed JSON-lines records, including a slow_query entry with phase
/// timings.
#[test]
fn slow_query_log_records_to_file() {
    let path = std::env::temp_dir().join(format!("tmk-events-{}.jsonl", std::process::id()));
    let server = Server::start(ServeConfig {
        threads: 1,
        slow_ms: Some(0),
        log: Some(path.display().to_string()),
        ..ServeConfig::default()
    })
    .expect("start logging server");
    let addr = server.local_addr().to_string();

    let (t, m) = instance(TransducerClass::General, 21, 3);
    let mut client = Client::connect(&addr, "sloth").expect("connect");
    client
        .confidence(
            &transmark::engine::textio::to_text(&t),
            &Sequence::Text(&transmark::markov::textio::to_text(&m)),
            "",
            false,
        )
        .expect("query");
    client.shutdown().expect("shutdown");
    server.wait();

    let log = std::fs::read_to_string(&path).expect("log file written");
    let _ = std::fs::remove_file(&path);
    if transmark::obs::enabled() {
        assert!(log.contains("\"kind\":\"request_start\""), "{log}");
        assert!(log.contains("\"kind\":\"slow_query\""), "{log}");
        assert!(log.contains("\"tenant\":\"sloth\""), "{log}");
        // The slow record carries the flattened plan explain and the
        // per-phase timings.
        assert!(log.contains("kind=confidence | plan:"), "{log}");
        assert!(log.contains("phases:"), "{log}");
        assert!(
            log.lines().all(|l| l.trim_start().starts_with('{')),
            "{log}"
        );
    }
}

/// The `tmk top` dashboard drives a live server end to end: scrape
/// `/metrics.json`, diff, render.
#[test]
fn top_dashboard_renders_from_live_server() {
    let (t, m) = instance(TransducerClass::General, 31, 3);
    let mut client = Client::connect(&addr(), "dash").expect("connect");
    client
        .series(
            &transmark::engine::textio::to_text(&t),
            &Sequence::Text(&transmark::markov::textio::to_text(&m)),
            false,
        )
        .expect("seed traffic");
    let args: Vec<String> = ["top", &addr(), "--interval", "40", "--count", "1"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let out = transmark::cli::run(&args).expect("tmk top");
    assert!(out.contains("tmk top —"), "{out}");
    assert!(out.contains("plan cache hit"), "{out}");
    assert!(out.contains("pool queue depth"), "{out}");
}

/// The acceptance path: `tmk client --profile=FILE` against a live
/// server writes ONE Chrome trace — the client lane and the server's
/// lanes (prefixed `server/`) under a single wire-propagated trace id.
#[test]
fn client_profile_writes_one_stitched_chrome_trace() {
    if !transmark::obs::enabled() {
        return;
    }
    let (t, m) = instance(TransducerClass::General, 41, 3);
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let query_path = dir.join(format!("tmk-trace-q-{pid}.tmt"));
    let seq_path = dir.join(format!("tmk-trace-s-{pid}.tms"));
    let trace_path = dir.join(format!("tmk-trace-{pid}.json"));
    std::fs::write(&query_path, transmark::engine::textio::to_text(&t)).expect("write query");
    std::fs::write(&seq_path, transmark::markov::textio::to_text(&m)).expect("write seq");

    let args: Vec<String> = [
        "client",
        &addr(),
        "top",
        query_path.to_str().unwrap(),
        seq_path.to_str().unwrap(),
        &format!("--profile={}", trace_path.display()),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = transmark::cli::run(&args).expect("tmk client --profile");
    assert!(out.contains("wrote "), "{out}");

    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    for p in [&query_path, &seq_path, &trace_path] {
        let _ = std::fs::remove_file(p);
    }
    // One process, named by the shared trace id.
    assert_eq!(trace.matches("tmk trace ").count(), 1, "{trace}");
    // The client lane and the server's merged lanes render as threads
    // of that one process.
    assert!(trace.contains(r#""name":"main""#), "{trace}");
    assert!(trace.contains(r#""name":"server/"#), "{trace}");
}
