//! Property suite for the streaming data plane: every forward-only pass,
//! executed over any [`StepSource`] (in-memory cursor, chunked `.tms`
//! text reader, binary `.tmsb` reader), must return *exactly* the bits
//! the materialized pass returns — same float accumulation order, not
//! merely close values — across every `PlanKind` and on the paper's
//! hospital and RFID workloads. Plus `.tms ↔ .tmsb` round-trip fuzz.

use std::io::Cursor;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

use transmark_core::confidence::{
    acceptance_probability, acceptance_probability_source, confidence, confidence_source,
    prefix_acceptance_probabilities, prefix_acceptance_probabilities_source,
};
use transmark_core::emax::{emax_of_output, emax_of_output_source};
use transmark_core::enumerate::enumerate_unranked;
use transmark_core::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark_core::montecarlo::{estimate_confidence_source, McEstimate};
use transmark_core::plan::prepare;
use transmark_core::transducer::Transducer;
use transmark_core::EventMonitor;
use transmark_markov::binio::{from_tmsb_bytes, to_tmsb_bytes, TmsbReader, TmsbSlice};
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::textio::{to_text, TmsTextSource};
use transmark_markov::{MarkovSequence, SourceError, StepSource, SymbolId};

/// The three source kinds over one sequence. Each call returns fresh
/// cursors (sources are single-pass).
fn sources(m: &MarkovSequence) -> Vec<(&'static str, Box<dyn StepSource + '_>)> {
    vec![
        ("memory", Box::new(m.step_source())),
        (
            "text",
            Box::new(TmsTextSource::new(Cursor::new(to_text(m))).expect("rendered header parses")),
        ),
        (
            "binary",
            Box::new(
                TmsbReader::new(Cursor::new(to_tmsb_bytes(m))).expect("rendered header parses"),
            ),
        ),
    ]
}

fn arb_class() -> impl Strategy<Value = TransducerClass> {
    prop_oneof![
        Just(TransducerClass::General),
        Just(TransducerClass::Deterministic),
        Just(TransducerClass::Mealy),
        Just(TransducerClass::Uniform(1)),
        Just(TransducerClass::Uniform(2)),
        Just(TransducerClass::Projector),
    ]
}

fn instance(class: TransducerClass, seed: u64, n: usize) -> (Transducer, MarkovSequence) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: n,
            n_symbols: 2,
            zero_prob: 0.3,
        },
        &mut rng,
    );
    let t = random_transducer(
        &RandomTransducerSpec {
            n_states: 3,
            n_input_symbols: 2,
            n_output_symbols: 2,
            class,
            branching: 1.5,
        },
        &mut rng,
    );
    (t, m)
}

/// Confidence and E_max of `o`, streamed over every source kind and
/// through the prepared-plan `bind_source` path, all bitwise equal to the
/// in-memory result.
fn assert_output_passes_stream_identically(t: &Transducer, m: &MarkovSequence, o: &[SymbolId]) {
    let want_c = confidence(t, m, o).unwrap();
    let want_e = emax_of_output(t, m, o).unwrap();
    let plan = prepare(t);
    for (kind, mut src) in sources(m) {
        let got = confidence_source(t, &mut src, o).unwrap();
        assert_eq!(
            got.to_bits(),
            want_c.to_bits(),
            "confidence over {kind} source under {:?}: {got} vs {want_c}",
            plan.kind()
        );
    }
    for (kind, src) in sources(m) {
        let got = plan.bind_source(src).unwrap().confidence(o).unwrap();
        assert_eq!(
            got.to_bits(),
            want_c.to_bits(),
            "bind_source confidence over {kind} source under {:?}",
            plan.kind()
        );
    }
    for (kind, mut src) in sources(m) {
        let got = emax_of_output_source(t, &mut src, o).unwrap();
        assert_eq!(
            got.to_bits(),
            want_e.to_bits(),
            "E_max over {kind} source: {got} vs {want_e}"
        );
    }
}

/// Acceptance, the per-prefix series, and the event monitor, streamed
/// over every source kind, bitwise equal to the in-memory passes.
fn assert_boolean_passes_stream_identically(nfa: &transmark_core::Nfa, m: &MarkovSequence) {
    let want_p = acceptance_probability(nfa, m).unwrap();
    let want_series = prefix_acceptance_probabilities(nfa, m).unwrap();
    for (kind, mut src) in sources(m) {
        let got = acceptance_probability_source(nfa, &mut src).unwrap();
        assert_eq!(got.to_bits(), want_p.to_bits(), "acceptance over {kind}");
    }
    for (kind, mut src) in sources(m) {
        let got = prefix_acceptance_probabilities_source(nfa, &mut src).unwrap();
        assert_eq!(got.len(), want_series.len());
        for (i, (g, w)) in got.iter().zip(want_series.iter()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "series[{i}] over {kind}");
        }
    }
    // The monitor is the same fold again, fed matrix by matrix.
    for (kind, mut src) in sources(m) {
        let got = EventMonitor::series_source(nfa.clone(), &mut src).unwrap();
        for (i, (g, w)) in got.iter().zip(want_series.iter()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "monitor[{i}] over {kind}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random machines of every class — so every `PlanKind` route — on
    /// random chains: the streamed Table 2 dispatch is bit-identical.
    #[test]
    fn confidence_streams_bit_identical(class in arb_class(), seed in any::<u64>(), n in 1usize..5) {
        let (t, m) = instance(class, seed, n);
        let outputs: Vec<Vec<SymbolId>> =
            enumerate_unranked(&t, &m).unwrap().take(3).collect();
        for o in &outputs {
            assert_output_passes_stream_identically(&t, &m, o);
        }
        // A non-answer output exercises the zero paths too.
        let absent = vec![SymbolId(0); m.len() + 2];
        assert_output_passes_stream_identically(&t, &m, &absent);
    }

    /// Boolean event queries (the machine's underlying input NFA) over
    /// random chains: acceptance, prefix series, and monitor all match.
    #[test]
    fn acceptance_streams_bit_identical(class in arb_class(), seed in any::<u64>(), n in 1usize..8) {
        let (t, m) = instance(class, seed, n);
        let nfa = t.underlying_nfa();
        assert_boolean_passes_stream_identically(&nfa, &m);
    }

    /// The streamed Monte-Carlo estimator is deterministic given the seed
    /// and bit-identical across source kinds.
    #[test]
    fn monte_carlo_streams_deterministically(class in arb_class(), seed in any::<u64>(), n in 1usize..5) {
        let (t, m) = instance(class, seed, n);
        let o: Vec<Vec<SymbolId>> = enumerate_unranked(&t, &m).unwrap().take(1).collect();
        let o = o.first().cloned().unwrap_or_default();
        let mut estimates: Vec<(&str, McEstimate)> = Vec::new();
        for (kind, mut src) in sources(&m) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
            let est = estimate_confidence_source(&t, &mut src, &o, 64, &mut rng).unwrap();
            estimates.push((kind, est));
        }
        let (_, first) = estimates[0];
        for (kind, est) in &estimates[1..] {
            prop_assert_eq!(
                est.estimate.to_bits(), first.estimate.to_bits(),
                "MC estimate differs on {} source", kind
            );
        }
    }

    /// `.tms ↔ .tmsb` round-trip fuzz: bytes materialize back to the same
    /// model bitwise, the slice view streams the exact layers, and
    /// truncation is always rejected.
    #[test]
    fn tmsb_round_trip_fuzz(seed in any::<u64>(), n in 1usize..9, k in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_markov_sequence(
            &RandomChainSpec { len: n, n_symbols: k, zero_prob: 0.3 },
            &mut rng,
        );
        let bytes = to_tmsb_bytes(&m);
        let back = from_tmsb_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), m.len());
        prop_assert_eq!(back.initial_dist(), m.initial_dist());
        prop_assert_eq!(back.transitions_flat(), m.transitions_flat());
        for s in 0..k as u32 {
            prop_assert_eq!(
                back.alphabet().name(SymbolId(s)),
                m.alphabet().name(SymbolId(s))
            );
        }
        // And through the text format: tms → tmsb → tms is the identity.
        let text_back = transmark_markov::textio::from_text(&to_text(&back)).unwrap();
        prop_assert_eq!(text_back.initial_dist(), m.initial_dist());
        prop_assert_eq!(text_back.transitions_flat(), m.transitions_flat());

        // The slice view streams the exact layers.
        let mut slice = TmsbSlice::new(&bytes).unwrap();
        for i in 0..m.len() - 1 {
            prop_assert_eq!(slice.next_step().unwrap().unwrap(), m.transition_matrix(i));
        }
        prop_assert!(slice.next_step().unwrap().is_none());

        // Any strict prefix is rejected, either at parse or during pulls.
        let cut = bytes.len() - 1 - (seed as usize % bytes.len().min(64));
        match TmsbSlice::new(&bytes[..cut]) {
            Err(_) => {}
            Ok(mut s) => loop {
                match s.next_step() {
                    Ok(Some(_)) => continue,
                    Ok(None) => panic!("truncated payload streamed to completion"),
                    Err(SourceError::Format(_) | SourceError::Model(_)) => break,
                    Err(other) => panic!("unexpected error {other}"),
                }
            },
        }
    }
}

/// The paper's running example: every streamed pass over the hospital
/// sequence reproduces the in-memory bits.
#[test]
fn hospital_workload_streams_bit_identical() {
    let m = transmark_workloads::hospital::hospital_sequence();
    let t = transmark_workloads::hospital::room_tracker();
    let outputs: Vec<Vec<SymbolId>> = enumerate_unranked(&t, &m).unwrap().collect();
    assert!(!outputs.is_empty());
    for o in &outputs {
        assert_output_passes_stream_identically(&t, &m, o);
    }
    assert_boolean_passes_stream_identically(&t.underlying_nfa(), &m);
}

/// RFID posteriors (the paper's Lahar setting): streamed passes over
/// sampled posterior sequences reproduce the in-memory bits for both
/// tracker variants.
#[test]
fn rfid_workload_streams_bit_identical() {
    let spec = transmark_workloads::rfid::RfidSpec::default();
    let dep = transmark_workloads::rfid::deployment(&spec);
    let mut rng = StdRng::seed_from_u64(2010);
    for lab in [None, Some(2)] {
        let t = dep.room_tracker(lab);
        let (m, _) = dep.sample_posterior(6, &mut rng);
        let outputs: Vec<Vec<SymbolId>> = enumerate_unranked(&t, &m).unwrap().take(2).collect();
        for o in &outputs {
            assert_output_passes_stream_identically(&t, &m, o);
        }
        assert_boolean_passes_stream_identically(&t.underlying_nfa(), &m);
    }
}
