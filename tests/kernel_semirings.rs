//! Cross-semiring consistency of the kernel drivers.
//!
//! The three `transmark-kernel` semirings are meant to be views of the
//! same layered product DP: `Bool` computes reachability, `Prob` the
//! sum-product mass, and `MaxLog` the Viterbi best path. Over identical
//! sparse step graphs they must therefore agree on support — a cell is
//! `Bool`-reachable iff its `Prob` mass is positive iff its `MaxLog`
//! score is finite — and the best single path can never exceed the total:
//! `exp(MaxLog best) ≤ Prob total`. These invariants are checked per
//! layer and at the final accepting reduction, on the paper's hospital
//! workload, the synthetic RFID deployment, and proptest-seeded random
//! instances.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use transmark_core::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark_core::kernelize::{output_step_graph, state_step_graph};
use transmark_core::transducer::Transducer;
use transmark_core::SymbolId;
use transmark_kernel::{advance, Bool, MaxLog, Neumaier, Prob, SparseSteps, StepGraph};
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::MarkovSequence;
use transmark_workloads::rfid::{deployment, RfidSpec};
use transmark_workloads::{hospital_sequence, room_tracker};

/// Runs the same DP under all three semirings and checks the support and
/// best-vs-total invariants at every layer. Returns the accepting-cell
/// reductions `(prob_total, maxlog_best, bool_any)` for `rows_accepting`.
fn run_and_check(
    steps: &SparseSteps,
    graph: &StepGraph,
    init_row: u32,
    rows_accepting: &dyn Fn(usize) -> bool,
) -> (f64, f64, bool) {
    let nr = graph.n_rows();
    let n_cells = steps.n_nodes() * nr;
    let mut prob = vec![0.0f64; n_cells];
    let mut logp = vec![f64::NEG_INFINITY; n_cells];
    let mut reach = vec![false; n_cells];

    for &(node, p) in steps.initial() {
        for e in graph.edges(node, init_row) {
            let cell = node as usize * nr + e.to as usize;
            prob[cell] += p;
            logp[cell] = logp[cell].max(p.ln());
            reach[cell] = true;
        }
    }

    let n_steps = steps.n_steps();
    for step in 0..n_steps {
        check_support(&prob, &logp, &reach, step);
        let mut prob2 = vec![0.0f64; n_cells];
        let mut logp2 = vec![f64::NEG_INFINITY; n_cells];
        let mut reach2 = vec![false; n_cells];
        advance::<Prob, _>(&steps.at(step), graph, &prob, &mut prob2);
        advance::<MaxLog, _>(&steps.at(step), graph, &logp, &mut logp2);
        advance::<Bool, _>(&steps.at(step), graph, &reach, &mut reach2);
        prob = prob2;
        logp = logp2;
        reach = reach2;
    }
    check_support(&prob, &logp, &reach, n_steps);

    let mut total = Neumaier::new();
    let mut best = f64::NEG_INFINITY;
    let mut any = false;
    for node in 0..steps.n_nodes() {
        for row in 0..nr {
            if !rows_accepting(row) {
                continue;
            }
            let cell = node * nr + row;
            total.add(prob[cell]);
            best = best.max(logp[cell]);
            any |= reach[cell];
        }
    }
    (total.total(), best, any)
}

/// Per-cell: `Bool` reachable ⟺ `Prob` mass > 0 ⟺ `MaxLog` finite, and
/// the best path through a cell is bounded by its total mass.
fn check_support(prob: &[f64], logp: &[f64], reach: &[bool], layer: usize) {
    for (cell, &r) in reach.iter().enumerate() {
        let p = prob[cell];
        let l = logp[cell];
        assert_eq!(r, p > 0.0, "layer {layer} cell {cell}: Bool vs Prob ({p})");
        assert_eq!(
            r,
            l > f64::NEG_INFINITY,
            "layer {layer} cell {cell}: Bool vs MaxLog ({l})"
        );
        if r {
            assert!(
                l <= p.ln() + 1e-9,
                "layer {layer} cell {cell}: best {l} > ln(total {p})"
            );
        }
    }
}

/// Checks the invariants for one `(transducer, sequence, output)` query
/// over the fixed-output product graph, and the final reductions against
/// the engine's own `confidence` answer.
fn check_output_query(t: &Transducer, m: &MarkovSequence, o: &[SymbolId]) {
    let steps = m.sparse_steps();
    let graph = output_step_graph(t, o);
    let width = o.len() + 1;
    let accepting: Vec<bool> = (0..graph.n_rows())
        .map(|row| {
            row % width == o.len() && t.is_accepting(transmark_core::StateId((row / width) as u32))
        })
        .collect();
    let init_row = (t.initial().index() * width) as u32;
    let (total, best, any) = run_and_check(&steps, &graph, init_row, &|row| accepting[row]);

    assert_eq!(
        any,
        total > 0.0,
        "Bool reachable ⟺ Prob mass > 0 at the reduction"
    );
    assert_eq!(
        any,
        best > f64::NEG_INFINITY,
        "Bool reachable ⟺ MaxLog path exists"
    );
    if any {
        assert!(
            best <= total.ln() + 1e-9,
            "MaxLog best {best} > ln(Prob total) {}",
            total.ln()
        );
    }

    // For a deterministic machine runs are unique, so the raw path mass
    // is exactly the engine's confidence. A nondeterministic machine may
    // accept one world through several runs, so the path mass only
    // upper-bounds the (run-deduplicated) confidence. The Bool reduction
    // is exactly `is_answer` either way.
    let conf = transmark_core::confidence::confidence(t, m, o).unwrap();
    if t.is_deterministic() {
        assert!(
            (total - conf).abs() <= 1e-9 * conf.max(1.0),
            "kernel {total} vs engine {conf}"
        );
    } else {
        assert!(
            total >= conf - 1e-9,
            "path mass {total} below confidence {conf}"
        );
        assert_eq!(total > 0.0, conf > 0.0);
    }
    assert_eq!(any, transmark_core::confidence::is_answer(t, m, o).unwrap());
    if any {
        let emax = transmark_core::emax_of_output(t, m, o).unwrap();
        assert!(
            (best - emax).abs() <= 1e-9,
            "kernel best {best} vs engine E_max {emax}"
        );
    }
}

/// Same invariants over the output-oblivious state graph ("does any
/// answer exist", total acceptance mass, best accepting run).
fn check_state_query(t: &Transducer, m: &MarkovSequence) {
    let steps = m.sparse_steps();
    let graph = state_step_graph(t);
    let (total, best, any) = run_and_check(&steps, &graph, t.initial().0, &|row| {
        t.is_accepting(transmark_core::StateId(row as u32))
    });
    assert_eq!(any, total > 0.0);
    if any {
        assert!(best <= total.ln() + 1e-9);
    }
    // For selective machines mass can legitimately be < 1; it can never
    // exceed 1 (each world contributes its probability at most once per
    // run, and runs of a deterministic machine are unique).
    if t.is_deterministic() {
        assert!(
            total <= 1.0 + 1e-9,
            "deterministic acceptance mass {total} > 1"
        );
    }
}

#[test]
fn hospital_workload_semirings_agree() {
    let m = hospital_sequence();
    let t = room_tracker();
    check_state_query(&t, &m);
    // Table 1's answers plus a non-answer.
    for row in transmark_workloads::table1_rows() {
        if let Some(names) = row.output {
            check_output_query(&t, &m, &transmark_workloads::hospital::places(names));
        }
    }
    let bogus = transmark_workloads::hospital::places(&["2", "2", "2", "2"]);
    check_output_query(&t, &m, &bogus);
}

#[test]
fn rfid_workload_semirings_agree() {
    let dep = deployment(&RfidSpec::default());
    let t = dep.room_tracker(Some(2));
    let mut rng = StdRng::seed_from_u64(2026);
    for n in [3usize, 5] {
        let (m, _) = dep.sample_posterior(n, &mut rng);
        check_state_query(&t, &m);
        // Probe a handful of short candidate outputs.
        let k_out = t.n_output_symbols();
        for a in 0..k_out {
            check_output_query(&t, &m, &[SymbolId(a as u32)]);
            for b in 0..k_out {
                check_output_query(&t, &m, &[SymbolId(a as u32), SymbolId(b as u32)]);
            }
        }
    }
}

fn arb_class() -> impl Strategy<Value = TransducerClass> {
    prop_oneof![
        Just(TransducerClass::General),
        Just(TransducerClass::Uniform(1)),
        Just(TransducerClass::Uniform(2)),
        Just(TransducerClass::Deterministic),
        Just(TransducerClass::Mealy),
        Just(TransducerClass::Projector),
    ]
}

fn instance(class: TransducerClass, seed: u64, n: usize) -> (Transducer, MarkovSequence) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: n,
            n_symbols: 2,
            zero_prob: 0.3,
        },
        &mut rng,
    );
    let t = random_transducer(
        &RandomTransducerSpec {
            n_states: 2,
            n_input_symbols: 2,
            n_output_symbols: 2,
            class,
            branching: 1.5,
        },
        &mut rng,
    );
    (t, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_instances_semirings_agree(
        class in arb_class(),
        seed in any::<u64>(),
        n in 1usize..4,
    ) {
        let (t, m) = instance(class, seed, n);
        check_state_query(&t, &m);
        // Short outputs, including the empty one for selective machines.
        check_output_query(&t, &m, &[]);
        for a in 0..t.n_output_symbols() {
            check_output_query(&t, &m, &[SymbolId(a as u32)]);
            for b in 0..t.n_output_symbols() {
                check_output_query(&t, &m, &[SymbolId(a as u32), SymbolId(b as u32)]);
            }
        }
    }
}
