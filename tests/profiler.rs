//! Integration tests for the query-scoped profiler surfaced through the
//! `tmk` CLI (driven through `transmark::cli::run`, no subprocesses):
//! Chrome trace_event export, folded-stack export, fleet worker lanes,
//! and the `tmk bench` perf harness.

#![cfg(not(feature = "obs-off"))]

use transmark::cli::run;
use transmark::obs::json::{parse, Value};
use transmark::obs::trace::parse_folded;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// A scratch directory under the temp dir, unique per test, populated
/// with the paper's running example.
fn scratch_with_example(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "transmark-profiler-test-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    run(&args(&["export-example", dir.to_str().unwrap()])).expect("export example");
    dir
}

fn obj(v: &Value) -> &std::collections::BTreeMap<String, Value> {
    match v {
        Value::Object(o) => o,
        other => panic!("expected a JSON object, got {other:?}"),
    }
}

/// Every event in a trace must carry the fields Chrome's trace viewer
/// requires; returns the set of `ph` values seen and the set of tids.
fn check_trace(events: &[Value]) -> (Vec<String>, Vec<u64>) {
    let mut phases = std::collections::BTreeSet::new();
    let mut tids = std::collections::BTreeSet::new();
    for e in events {
        let o = obj(e);
        let ph = match o.get("ph") {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("event missing string ph: {other:?}"),
        };
        match o.get("pid") {
            Some(Value::Int(1)) => {}
            other => panic!("every event carries pid 1, got {other:?}"),
        }
        let tid = match o.get("tid") {
            Some(Value::Int(t)) => *t,
            other => panic!("every event carries an integer tid, got {other:?}"),
        };
        if ph != "M" {
            // Timestamps are fractional microseconds; integral ones
            // parse as Int, the rest as Float.
            let ts = o.get("ts").expect("non-metadata events carry ts");
            assert!(ts.as_f64().is_some(), "ts must be numeric: {ts:?}");
        }
        phases.insert(ph);
        tids.insert(tid);
    }
    (phases.into_iter().collect(), tids.into_iter().collect())
}

#[test]
fn top_profile_writes_a_valid_chrome_trace() {
    let dir = scratch_with_example("chrome-trace");
    let seq = dir.join("hospital.tms");
    let query = dir.join("room_tracker.tmt");
    let trace_path = dir.join("trace.json");

    let out = run(&args(&[
        "top",
        seq.to_str().unwrap(),
        query.to_str().unwrap(),
        &format!("--profile={}", trace_path.display()),
    ]))
    .expect("top with --profile=FILE");
    assert!(out.contains("wrote"), "{out}");

    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let events = match parse(&text).expect("trace is valid JSON") {
        Value::Array(events) => events,
        other => panic!("trace_event export must be a JSON array, got {other:?}"),
    };
    assert!(!events.is_empty());
    let (phases, _tids) = check_trace(&events);
    for required in ["M", "B", "E", "i"] {
        assert!(
            phases.iter().any(|p| p == required),
            "trace must contain ph={required:?} events, saw {phases:?}"
        );
    }
}

#[test]
fn batch_profile_shows_fleet_worker_lanes() {
    let dir = scratch_with_example("fleet-lanes");
    let seq = dir.join("hospital.tms");
    let seq2 = dir.join("hospital2.tms");
    std::fs::copy(&seq, &seq2).expect("copy sequence");
    let query = dir.join("room_tracker.tmt");
    let trace_path = dir.join("batch-trace.json");

    run(&args(&[
        "batch",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        seq2.to_str().unwrap(),
        "--threads",
        "2",
        &format!("--profile={}", trace_path.display()),
    ]))
    .expect("batch with --profile=FILE");

    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let events = match parse(&text).expect("trace is valid JSON") {
        Value::Array(events) => events,
        other => panic!("expected a JSON array, got {other:?}"),
    };
    let (_phases, tids) = check_trace(&events);
    assert!(
        tids.len() >= 3,
        "expected main + 2 worker lanes as distinct tids, saw {tids:?}"
    );
    // Worker lanes are named via thread_name metadata events.
    let names: Vec<&str> = events
        .iter()
        .map(obj)
        .filter(|o| matches!(o.get("ph"), Some(Value::Str(s)) if s == "M"))
        .filter_map(|o| match o.get("args").map(obj)?.get("name") {
            Some(Value::Str(s)) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert!(names.contains(&"main"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("worker-")), "{names:?}");
}

#[test]
fn flame_export_round_trips_through_the_folded_parser() {
    let dir = scratch_with_example("flame");
    let seq = dir.join("hospital.tms");
    let query = dir.join("room_tracker.tmt");
    let flame_path = dir.join("profile.folded");

    run(&args(&[
        "top",
        seq.to_str().unwrap(),
        query.to_str().unwrap(),
        &format!("--flame={}", flame_path.display()),
    ]))
    .expect("top with --flame=FILE");

    let text = std::fs::read_to_string(&flame_path).expect("folded file written");
    let stacks = parse_folded(&text).expect("folded output parses");
    assert!(!stacks.is_empty());
    // Every stack is rooted in a lane label and phase frames appear.
    for (frames, _self_ns) in &stacks {
        assert_eq!(frames[0], "main", "stacks are rooted in the lane label");
    }
    assert!(
        stacks.iter().any(|(f, _)| f.iter().any(|s| s == "execute")),
        "an execute frame must appear: {stacks:?}"
    );
}

#[test]
fn inline_profile_summary_appends_to_output() {
    let dir = scratch_with_example("inline");
    let seq = dir.join("hospital.tms");
    let query = dir.join("room_tracker.tmt");

    let out = run(&args(&[
        "top",
        seq.to_str().unwrap(),
        query.to_str().unwrap(),
        "--profile",
        "--flame",
    ]))
    .expect("top with bare --profile --flame");
    assert!(out.contains("== profile =="), "{out}");
    assert!(out.contains("lane main"), "{out}");
    assert!(out.contains("== flame =="), "{out}");
    // The answers themselves still lead the output.
    assert!(out.starts_with("1 2"), "{out}");
}

#[test]
fn bench_json_snapshot_is_schema_stable() {
    let dir = scratch_with_example("bench-json");
    let json_path = dir.join("bench.json");

    let out = run(&args(&[
        "bench",
        "--runs",
        "1",
        "--iters",
        "1",
        "--json",
        json_path.to_str().unwrap(),
    ]))
    .expect("bench --json");
    assert!(out.contains("confidence/hospital"), "{out}");

    let text = std::fs::read_to_string(&json_path).expect("bench json written");
    let doc = parse(&text).expect("bench snapshot is valid JSON");
    let top = obj(&doc);
    assert!(
        matches!(top.get("suite"), Some(Value::Str(s)) if s == "tmk-bench"),
        "{text}"
    );
    assert!(matches!(top.get("schema"), Some(Value::Int(1))), "{text}");
    let cases = obj(top.get("cases").expect("cases object"));
    for name in [
        "confidence/hospital",
        "enumerate/hospital",
        "streaming/hospital",
        "confidence/rfid",
        "fleet/rfid",
    ] {
        let case = obj(cases
            .get(name)
            .unwrap_or_else(|| panic!("case {name} missing from {text}")));
        for field in ["seed", "runs", "iters", "min_ns", "median_ns"] {
            assert!(
                case.contains_key(field),
                "case {name} missing field {field}: {text}"
            );
        }
    }
}

#[test]
fn bench_diff_fails_on_synthetic_regression() {
    let dir = scratch_with_example("bench-diff");
    let base = dir.join("base.json");
    let slow = dir.join("slow.json");

    run(&args(&[
        "bench",
        "--runs",
        "1",
        "--iters",
        "1",
        "--json",
        base.to_str().unwrap(),
    ]))
    .expect("baseline bench");

    // Synthesize a >15% regression on one case by inflating its min_ns.
    let text = std::fs::read_to_string(&base).expect("baseline written");
    let mut cases = transmark::bench::from_json(&text).expect("parse own snapshot");
    cases[0].min_ns = cases[0].min_ns * 2 + 1_000_000;
    std::fs::write(&slow, transmark::bench::to_json(&cases)).expect("write regressed snapshot");

    let err = run(&args(&[
        "bench",
        "--diff",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
    ]))
    .expect_err("a >15% regression must fail the diff");
    assert!(format!("{err}").contains("regress"), "{err}");

    // The reflexive diff passes.
    let out = run(&args(&[
        "bench",
        "--diff",
        base.to_str().unwrap(),
        base.to_str().unwrap(),
    ]))
    .expect("identical snapshots must pass");
    assert!(!out.contains("REGRESSED"), "{out}");
}
