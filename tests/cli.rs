//! Integration tests for the `tmk` command-line interface (driven through
//! `transmark::cli::run`, no subprocesses).

use transmark::cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// A scratch directory under the target dir, unique per test.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("transmark-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn export_then_query_round_trip() {
    let dir = scratch("roundtrip");
    let out = run(&args(&["export-example", dir.to_str().unwrap()])).expect("export");
    assert!(out.contains("hospital.tms"));
    let seq = dir.join("hospital.tms");
    let query = dir.join("room_tracker.tmt");

    // show
    let out = run(&args(&["show", seq.to_str().unwrap()])).expect("show");
    assert!(out.contains("length 5"), "{out}");
    assert!(out.contains("r1a"), "{out}");

    // map: the most likely world is Table 1's string s.
    let out = run(&args(&["map", seq.to_str().unwrap()])).expect("map");
    assert!(out.starts_with("r1a la la r1a r2a"), "{out}");

    // top: the first answer is "1 2" with the paper's confidence.
    let out = run(&args(&[
        "top",
        seq.to_str().unwrap(),
        query.to_str().unwrap(),
        "--k",
        "2",
    ]))
    .expect("top");
    let first = out.lines().next().unwrap();
    assert!(first.starts_with("1 2"), "{out}");
    assert!(first.contains("0.403800"), "{out}");

    // confidence of "1 2" = 0.4038.
    let out = run(&args(&[
        "confidence",
        seq.to_str().unwrap(),
        query.to_str().unwrap(),
        "1",
        "2",
    ]))
    .expect("confidence");
    let value: f64 = out.trim().parse().expect("a number");
    assert!((value - 0.4038).abs() < 1e-9);

    // evidences of "1 2" are s, t, u in decreasing probability.
    let out = run(&args(&[
        "evidences",
        seq.to_str().unwrap(),
        query.to_str().unwrap(),
        "--k",
        "5",
        "1",
        "2",
    ]))
    .expect("evidences");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "{out}");
    assert!(lines[0].starts_with("r1a la la r1a r2a"));
    assert!(lines[1].starts_with("r1a r1a la r1a r2a"));
    assert!(lines[2].starts_with("la r1b r1b r1a r2a"));

    // enumerate lists every answer once.
    let out = run(&args(&[
        "enumerate",
        seq.to_str().unwrap(),
        query.to_str().unwrap(),
    ]))
    .expect("enumerate");
    let mut answers: Vec<&str> = out.lines().collect();
    let count = answers.len();
    answers.sort_unstable();
    answers.dedup();
    assert_eq!(answers.len(), count, "duplicate answers in {out}");
    assert!(answers.contains(&"1 2"));
    assert!(answers.contains(&"ε"));

    // sample is deterministic per seed and emits valid worlds.
    let a = run(&args(&[
        "sample",
        seq.to_str().unwrap(),
        "--count",
        "4",
        "--seed",
        "7",
    ]))
    .expect("sample");
    let b = run(&args(&[
        "sample",
        seq.to_str().unwrap(),
        "--count",
        "4",
        "--seed",
        "7",
    ]))
    .expect("sample again");
    assert_eq!(a, b);
    assert_eq!(a.lines().count(), 4);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_and_batch_commands() {
    let dir = scratch("explain");
    run(&args(&["export-example", dir.to_str().unwrap()])).expect("export");
    let seq = dir.join("hospital.tms");
    let query = dir.join("room_tracker.tmt");
    let (seq, query) = (seq.to_str().unwrap(), query.to_str().unwrap());

    // --explain prepends the plan; results are unchanged.
    let plain = run(&args(&["top", seq, query, "--k", "2"])).expect("top");
    let explained = run(&args(&["top", seq, query, "--k", "2", "--explain"])).expect("explain");
    assert!(explained.contains("plan:"), "{explained}");
    assert!(explained.contains("Thm"), "{explained}");
    assert!(explained.ends_with(&plain), "{explained}");

    let out = run(&args(&["confidence", seq, query, "--explain", "1", "2"])).expect("confidence");
    assert!(out.contains("plan:"), "{out}");
    let value: f64 = out
        .lines()
        .last()
        .unwrap()
        .trim()
        .parse()
        .expect("a number");
    assert!((value - 0.4038).abs() < 1e-9);

    // batch: one plan, several sequence files, sections per file.
    let seq2 = dir.join("hospital2.tms");
    std::fs::copy(seq, &seq2).expect("copy sequence");
    let seq2 = seq2.to_str().unwrap();
    let out = run(&args(&["batch", query, seq, seq2, "--k", "1", "--explain"])).expect("batch");
    assert!(out.contains("plan:"), "{out}");
    assert!(out.contains(&format!("== {seq}")), "{out}");
    assert!(out.contains(&format!("== {seq2}")), "{out}");
    // Identical sequences get identical sections.
    let lines: Vec<&str> = out.lines().collect();
    let first = lines.iter().position(|l| l.starts_with("== ")).unwrap();
    assert_eq!(lines[first + 1], lines[first + 3], "{out}");
    assert!(lines[first + 1].contains("0.403800"), "{out}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_are_reported() {
    let e = run(&[]).unwrap_err();
    assert_eq!(e.exit_code, 2);
    let e = run(&args(&["frobnicate"])).unwrap_err();
    assert_eq!(e.exit_code, 2);
    assert!(e.message.contains("unknown command"));
    let e = run(&args(&["show"])).unwrap_err();
    assert_eq!(e.exit_code, 2);
    let e = run(&args(&["sample", "x.tms", "--count"])).unwrap_err();
    assert!(e.message.contains("--count requires a value"));
}

#[test]
fn runtime_errors_are_reported() {
    let e = run(&args(&["show", "/nonexistent/file.tms"])).unwrap_err();
    assert_eq!(e.exit_code, 1);
    assert!(e.message.contains("cannot read"));

    // A malformed sequence file.
    let dir = scratch("badfile");
    let bad = dir.join("bad.tms");
    std::fs::write(&bad, "not a sequence").unwrap();
    let e = run(&args(&["show", bad.to_str().unwrap()])).unwrap_err();
    assert_eq!(e.exit_code, 1);
    assert!(e.message.contains("line 1"), "{}", e.message);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_output_symbol_is_rejected() {
    let dir = scratch("symbols");
    run(&args(&["export-example", dir.to_str().unwrap()])).expect("export");
    let seq = dir.join("hospital.tms");
    let query = dir.join("room_tracker.tmt");
    let e = run(&args(&[
        "confidence",
        seq.to_str().unwrap(),
        query.to_str().unwrap(),
        "bogus",
    ]))
    .unwrap_err();
    assert!(e.message.contains("unknown output symbol"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_prints_usage() {
    let out = run(&args(&["help"])).expect("help");
    assert!(out.contains("USAGE"));
}

#[test]
fn sprojector_extraction_commands() {
    let dir = scratch("sproj");
    // A 4-step chain over {a, b}: mostly a's.
    let seq_text = "markov-sequence v1\nalphabet a b\nlength 4\ninitial 0.8 0.2\nstep 0\n0.8 0.2\n0.8 0.2\nstep 1\n0.8 0.2\n0.8 0.2\nstep 2\n0.8 0.2\n0.8 0.2\n";
    let proj_text = "sprojector v1\nalphabet ab\nprefix .*\npattern a+\nsuffix .*\n";
    let seq = dir.join("chain.tms");
    let proj = dir.join("runs.tmp");
    std::fs::write(&seq, seq_text).unwrap();
    std::fs::write(&proj, proj_text).unwrap();

    let out = run(&args(&[
        "extract",
        seq.to_str().unwrap(),
        proj.to_str().unwrap(),
        "--k",
        "3",
    ]))
    .expect("extract");
    assert_eq!(out.lines().count(), 3, "{out}");
    assert!(out.contains("I_max"), "{out}");
    assert!(out.lines().next().unwrap().starts_with('a'), "{out}");

    let out = run(&args(&[
        "occurrences",
        seq.to_str().unwrap(),
        proj.to_str().unwrap(),
        "--k",
        "4",
    ]))
    .expect("occurrences");
    assert_eq!(out.lines().count(), 4, "{out}");
    assert!(out.contains(" at "), "{out}");

    // Confidences in the occurrences listing are non-increasing.
    let confs: Vec<f64> = out
        .lines()
        .map(|l| l.rsplit('=').next().unwrap().trim().parse().unwrap())
        .collect();
    for w in confs.windows(2) {
        assert!(w[0] >= w[1] - 1e-9);
    }

    // A malformed projector file reports its line.
    let bad = dir.join("bad.tmp");
    std::fs::write(
        &bad,
        "sprojector v1\nalphabet ab\nprefix .*\npattern [a\nsuffix .*\n",
    )
    .unwrap();
    let e = run(&args(&[
        "extract",
        seq.to_str().unwrap(),
        bad.to_str().unwrap(),
    ]))
    .unwrap_err();
    assert!(e.message.contains("line 4"), "{}", e.message);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn posterior_command_conditions_an_hmm() {
    let dir = scratch("posterior");
    let model = dir.join("weather.tmh");
    std::fs::write(
        &model,
        "hmm v1\nhidden rain sun\nobservations umbrella none\ninitial 0.5 0.5\ntransition\n0.7 0.3\n0.3 0.7\nemission\n0.9 0.1\n0.2 0.8\n",
    )
    .unwrap();
    let out_file = dir.join("posterior.tms");
    let out = run(&args(&[
        "posterior",
        model.to_str().unwrap(),
        "--out",
        out_file.to_str().unwrap(),
        "umbrella",
        "umbrella",
        "none",
    ]))
    .expect("posterior");
    assert!(out.contains("wrote"), "{out}");
    // The written file is a valid sequence; its MAP string starts rainy.
    let shown = run(&args(&["map", out_file.to_str().unwrap()])).expect("map");
    assert!(shown.starts_with("rain rain"), "{shown}");
    // Without --out, the sequence is printed to stdout.
    let printed =
        run(&args(&["posterior", model.to_str().unwrap(), "umbrella"])).expect("posterior stdout");
    assert!(printed.starts_with("markov-sequence v1"), "{printed}");
    // Unknown observations are rejected.
    let e = run(&args(&["posterior", model.to_str().unwrap(), "snow"])).unwrap_err();
    assert!(e.message.contains("unknown observation"), "{}", e.message);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn convert_and_binary_inputs_round_trip() {
    let dir = scratch("convert");
    run(&args(&["export-example", dir.to_str().unwrap()])).expect("export");
    let seq = dir.join("hospital.tms");
    let query = dir.join("room_tracker.tmt");
    let bin = dir.join("hospital.tmsb");

    // tms → tmsb streams and self-verifies.
    let out = run(&args(&[
        "convert",
        seq.to_str().unwrap(),
        bin.to_str().unwrap(),
    ]))
    .expect("convert to binary");
    assert!(out.contains("round trip verified"), "{out}");
    assert!(out.contains("5 positions"), "{out}");

    // tmsb → tms converts back.
    let back = dir.join("back.tms");
    run(&args(&[
        "convert",
        bin.to_str().unwrap(),
        back.to_str().unwrap(),
    ]))
    .expect("convert to text");

    // Same-format conversion is a usage error.
    let e = run(&args(&[
        "convert",
        seq.to_str().unwrap(),
        back.to_str().unwrap(),
    ]))
    .unwrap_err();
    assert_eq!(e.exit_code, 2);

    // Every sequence-taking command accepts the .tmsb directly, with
    // results identical to the text file.
    let shown = run(&args(&["show", bin.to_str().unwrap()])).expect("show tmsb");
    assert!(shown.contains("length 5"), "{shown}");
    let c_text = run(&args(&[
        "confidence",
        seq.to_str().unwrap(),
        query.to_str().unwrap(),
        "1",
        "2",
    ]))
    .expect("confidence tms");
    let c_bin = run(&args(&[
        "confidence",
        bin.to_str().unwrap(),
        query.to_str().unwrap(),
        "1",
        "2",
    ]))
    .expect("confidence tmsb");
    assert_eq!(c_text, c_bin);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_and_streaming_batch_commands() {
    let dir = scratch("streamcli");
    run(&args(&["export-example", dir.to_str().unwrap()])).expect("export");
    let seq = dir.join("hospital.tms");
    let query = dir.join("room_tracker.tmt");
    let bin = dir.join("hospital.tmsb");
    run(&args(&[
        "convert",
        seq.to_str().unwrap(),
        bin.to_str().unwrap(),
    ]))
    .expect("convert");

    // stream: one running-probability line per position, identical for
    // both on-disk formats.
    let text_series = run(&args(&[
        "stream",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
    ]))
    .expect("stream tms");
    let bin_series = run(&args(&[
        "stream",
        query.to_str().unwrap(),
        bin.to_str().unwrap(),
    ]))
    .expect("stream tmsb");
    assert_eq!(text_series, bin_series);
    let lines: Vec<&str> = text_series.lines().collect();
    assert_eq!(lines.len(), 5, "{text_series}");
    assert!(lines[0].starts_with("t=1"), "{text_series}");
    assert!(lines[4].starts_with("t=5"), "{text_series}");

    // batch --confidence folds each file without materializing it; the
    // hospital example's confidence of "1 2" is 0.4038.
    let out = run(&args(&[
        "batch",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        bin.to_str().unwrap(),
        "--confidence",
        "1,2",
        "--threads",
        "0",
    ]))
    .expect("batch confidence");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "{out}");
    for line in &lines {
        let value: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert!((value - 0.4038).abs() < 1e-9, "{line}");
    }

    // Ranked batch over mixed formats with a thread fleet matches the
    // sequential run.
    let par = run(&args(&[
        "batch",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        bin.to_str().unwrap(),
        "--k",
        "1",
        "--threads",
        "2",
    ]))
    .expect("batch parallel");
    let sequential = run(&args(&[
        "batch",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        bin.to_str().unwrap(),
        "--k",
        "1",
    ]))
    .expect("batch sequential");
    assert_eq!(par, sequential);
    assert!(par.contains("0.403800"), "{par}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_checkpoint_resume_and_window() {
    let dir = scratch("streamckpt");
    run(&args(&["export-example", dir.to_str().unwrap()])).expect("export");
    let seq = dir.join("hospital.tms");
    let query = dir.join("room_tracker.tmt");
    let ck = dir.join("state.ckpt");

    // The uninterrupted run is the oracle.
    let full = run(&args(&[
        "stream",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
    ]))
    .expect("stream full");
    let full_lines: Vec<&str> = full.lines().collect();
    assert_eq!(full_lines.len(), 5, "{full}");

    // Suspend after 2 folded steps, then resume: the tail of the resumed
    // run must be byte-identical to the tail of the uninterrupted one.
    let first = run(&args(&[
        "stream",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        "--checkpoint-at",
        "2",
        "--checkpoint-out",
        ck.to_str().unwrap(),
    ]))
    .expect("stream suspend");
    assert!(first.contains("checkpoint written"), "{first}");
    assert!(first.lines().take(3).eq(full_lines.iter().take(3).copied()));
    assert!(ck.exists());

    let resumed = run(&args(&[
        "stream",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        "--resume",
        ck.to_str().unwrap(),
    ]))
    .expect("stream resume");
    let resumed_lines: Vec<&str> = resumed.lines().collect();
    assert!(resumed_lines[0].starts_with("resumed at t=3"), "{resumed}");
    assert_eq!(&resumed_lines[1..], &full_lines[3..], "{resumed}");

    // --window 1 at t is the marginal acceptance of position t alone;
    // just pin shape and that it differs from the full fold.
    let windowed = run(&args(&[
        "stream",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        "--window",
        "2",
    ]))
    .expect("stream window");
    assert_eq!(windowed.lines().count(), 5, "{windowed}");
    assert_ne!(windowed, full);

    // Windowed sessions checkpoint and resume bit-identically too.
    let wck = dir.join("window.ckpt");
    run(&args(&[
        "stream",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        "--window",
        "2",
        "--checkpoint-at",
        "3",
        "--checkpoint-out",
        wck.to_str().unwrap(),
    ]))
    .expect("window suspend");
    let wresumed = run(&args(&[
        "stream",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        "--window",
        "2",
        "--resume",
        wck.to_str().unwrap(),
    ]))
    .expect("window resume");
    let wlines: Vec<&str> = windowed.lines().collect();
    assert_eq!(
        wresumed.lines().skip(1).collect::<Vec<_>>(),
        &wlines[4..],
        "{wresumed}"
    );

    // Flag validation: --checkpoint-at without --checkpoint-out is a
    // usage error, mismatched strategy is a runtime error.
    assert!(run(&args(&[
        "stream",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        "--checkpoint-at",
        "1",
    ]))
    .is_err());
    assert!(run(&args(&[
        "stream",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        "--window",
        "2",
        "--strategy",
        "scan",
    ]))
    .is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn monitor_multiplexes_streams() {
    let dir = scratch("monitorcli");
    run(&args(&["export-example", dir.to_str().unwrap()])).expect("export");
    let seq = dir.join("hospital.tms");
    let query = dir.join("room_tracker.tmt");
    let bin = dir.join("hospital.tmsb");
    run(&args(&[
        "convert",
        seq.to_str().unwrap(),
        bin.to_str().unwrap(),
    ]))
    .expect("convert");

    // The monitor's per-stream series (mixed on-disk formats, 2 workers)
    // is byte-identical to `tmk stream` on each file alone.
    let solo = run(&args(&[
        "stream",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
    ]))
    .expect("stream");
    let out = run(&args(&[
        "monitor",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        bin.to_str().unwrap(),
        "--series",
        "--threads",
        "2",
    ]))
    .expect("monitor series");
    let expected = format!("== {}\n{solo}== {}\n{solo}", seq.display(), bin.display());
    assert_eq!(out, expected);

    // Default (final-probability) report: one `==` header and one
    // summary line per stream, in input order.
    let out = run(&args(&[
        "monitor",
        query.to_str().unwrap(),
        bin.to_str().unwrap(),
        seq.to_str().unwrap(),
    ]))
    .expect("monitor final");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "{out}");
    assert!(
        lines[0].starts_with(&format!("== {}", bin.display())),
        "{out}"
    );
    assert!(lines[1].contains("(5 positions)"), "{out}");
    let last_solo = solo.lines().last().unwrap();
    let p = last_solo.split_whitespace().last().unwrap();
    assert!(lines[1].contains(p), "{out}");

    // Windowed monitoring matches `tmk stream --window` per stream.
    let solo_w = run(&args(&[
        "stream",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        "--window",
        "3",
    ]))
    .expect("stream window");
    let out = run(&args(&[
        "monitor",
        query.to_str().unwrap(),
        seq.to_str().unwrap(),
        "--window",
        "3",
        "--series",
        "--batch",
        "2",
    ]))
    .expect("monitor window");
    assert_eq!(out, format!("== {}\n{solo_w}", seq.display()));

    let _ = std::fs::remove_dir_all(&dir);
}
