//! Scaling smoke tests: the polynomial algorithms must stay fast on
//! inputs far beyond what brute force could touch. These guard against
//! accidentally introducing exponential behaviour into a polynomial path
//! (e.g. a determinization creeping into the deterministic DP).
//!
//! Budgets are deliberately loose (debug builds, shared CI machines) —
//! they catch asymptotic regressions, not constant-factor ones.

use std::time::{Duration, Instant};

use rand::{rngs::StdRng, SeedableRng};
use transmark::engine::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark::markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark::prelude::*;

const BUDGET: Duration = Duration::from_secs(20);

fn chain(n: usize, k: usize, seed: u64) -> MarkovSequence {
    let mut rng = StdRng::seed_from_u64(seed);
    random_markov_sequence(
        &RandomChainSpec {
            len: n,
            n_symbols: k,
            zero_prob: 0.2,
        },
        &mut rng,
    )
}

#[test]
fn deterministic_confidence_scales_to_thousands() {
    let m = chain(2000, 3, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let t = random_transducer(
        &RandomTransducerSpec {
            n_states: 8,
            n_input_symbols: 3,
            n_output_symbols: 2,
            class: TransducerClass::Mealy,
            branching: 1.0,
        },
        &mut rng,
    );
    let start = Instant::now();
    let top = top_by_emax(&t, &m)
        .unwrap()
        .expect("non-selective machine has answers");
    let conf = confidence(&t, &m, &top.output).unwrap();
    assert!(conf > 0.0 || top.output.len() == 2000);
    assert!(start.elapsed() < BUDGET, "took {:?}", start.elapsed());
}

#[test]
fn indexed_evaluator_scales_to_thousands() {
    let m = chain(3000, 3, 3);
    // Generated symbol names (s0, s1, …) are multi-character, so build the
    // pattern DFA directly rather than through the char-oriented regex.
    let w = vec![m.alphabet().sym("s0"), m.alphabet().sym("s1")];
    let p = SProjector::simple(m.alphabet_arc(), Dfa::word(3, &w)).unwrap();
    let start = Instant::now();
    let ev = IndexedEvaluator::new(&p, &m).unwrap();
    let o = vec![m.alphabet().sym("s0"), m.alphabet().sym("s1")];
    let mut best = 0.0f64;
    for i in 1..=m.len() - 1 {
        best = best.max(ev.confidence(&o, i));
    }
    assert!(best > 0.0);
    assert!(start.elapsed() < BUDGET, "took {:?}", start.elapsed());
}

#[test]
fn indexed_enumeration_first_answers_scale() {
    let m = chain(1000, 3, 5);
    let w = vec![m.alphabet().sym("s1")];
    let p = SProjector::simple(m.alphabet_arc(), Dfa::word(3, &w)).unwrap();
    let start = Instant::now();
    let first_100: Vec<_> = enumerate_indexed(&p, &m).unwrap().take(100).collect();
    assert_eq!(
        first_100.len(),
        100,
        "a length-1000 chain has ≥100 occurrences"
    );
    for w in first_100.windows(2) {
        assert!(w[0].log_confidence >= w[1].log_confidence - 1e-9);
    }
    assert!(start.elapsed() < BUDGET, "took {:?}", start.elapsed());
}

#[test]
fn acceptance_probability_scales_with_subsets() {
    let m = chain(2000, 3, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let t = random_transducer(
        &RandomTransducerSpec {
            n_states: 6,
            n_input_symbols: 3,
            n_output_symbols: 2,
            class: TransducerClass::General,
            branching: 1.6,
        },
        &mut rng,
    );
    let start = Instant::now();
    let p = acceptance_probability(&t.underlying_nfa(), &m).unwrap();
    assert!((0.0..=1.0 + 1e-9).contains(&p));
    let series = prefix_acceptance_probabilities(&t.underlying_nfa(), &m).unwrap();
    assert_eq!(series.len(), 2000);
    assert!(start.elapsed() < BUDGET, "took {:?}", start.elapsed());
}

#[test]
fn hmm_posterior_scales() {
    use transmark::workloads::rfid::{deployment, RfidSpec};
    let dep = deployment(&RfidSpec {
        rooms: 5,
        locations_per_room: 3,
        stay_prob: 0.6,
        noise: 0.2,
    });
    let mut rng = StdRng::seed_from_u64(11);
    let start = Instant::now();
    let (posterior, truth) = dep.sample_posterior(1500, &mut rng);
    assert_eq!(posterior.len(), 1500);
    assert!(posterior.string_probability(&truth).unwrap() >= 0.0);
    assert!(start.elapsed() < BUDGET, "took {:?}", start.elapsed());
}
