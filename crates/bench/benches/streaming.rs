//! Length sweep for the streaming data plane: materialized vs streamed
//! acceptance and confidence over sequences of n = 2^10 … 2^17 positions.
//!
//! The streamed side pulls layers from a synthetic [`StepSource`] that
//! cycles a small pool of transition matrices, so its peak sequence
//! memory is one `|Σ|²` layer regardless of n; the materialized side
//! first drains the same source into a [`MarkovSequence`] (the flat
//! `8·|Σ|²·(n−1)`-byte buffer) and runs the classic in-memory pass.
//! Both sides are asserted bit-identical before timing. Results are
//! printed as a markdown table (see EXPERIMENTS.md); this bench uses a
//! custom main rather than criterion so the long sweep is timed with a
//! bounded number of repetitions per point.

use std::sync::Arc;

use transmark_automata::{Alphabet, Nfa, SymbolId};
use transmark_bench::{fmt_time, time_median};
use transmark_core::confidence::{
    acceptance_probability, acceptance_probability_source, confidence, confidence_source,
};
use transmark_core::transducer::Transducer;
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::source::materialize;
use transmark_markov::{RewindableStepSource, SourceError, StepSource};

const SYMBOLS: usize = 8;
const POOL: usize = 16;

/// A synthetic unbounded stream: cycles a pool of pre-validated matrices,
/// so sequences of any length stream in O(|Σ|²) memory. Stands in for a
/// network- or sensor-fed source in the sweep.
struct CyclicSource {
    alphabet: Arc<Alphabet>,
    initial: Vec<f64>,
    pool: Vec<Vec<f64>>,
    n: usize,
    pos: usize,
}

impl CyclicSource {
    fn new(n: usize) -> Self {
        // Borrow the pool (and the initial distribution) from a small
        // random chain so every layer is a validated distribution.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
        let m = random_markov_sequence(
            &RandomChainSpec {
                len: POOL + 1,
                n_symbols: SYMBOLS,
                zero_prob: 0.4,
            },
            &mut rng,
        );
        CyclicSource {
            alphabet: Arc::clone(m.alphabet_ref()),
            initial: m.initial_dist().to_vec(),
            pool: (0..POOL).map(|i| m.transition_matrix(i).to_vec()).collect(),
            n,
            pos: 0,
        }
    }
}

impl StepSource for CyclicSource {
    fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }
    fn len(&self) -> usize {
        self.n
    }
    fn initial(&self) -> &[f64] {
        &self.initial
    }
    fn position(&self) -> usize {
        self.pos
    }
    fn next_step(&mut self) -> Result<Option<&[f64]>, SourceError> {
        if self.pos + 1 >= self.n {
            return Ok(None);
        }
        let i = self.pos % self.pool.len();
        self.pos += 1;
        Ok(Some(&self.pool[i]))
    }
}

impl RewindableStepSource for CyclicSource {
    fn rewind(&mut self) -> Result<(), SourceError> {
        self.pos = 0;
        Ok(())
    }
}

/// Boolean event query: has seen the last symbol.
fn query_nfa() -> Nfa {
    let mut nfa = Nfa::new(SYMBOLS);
    let q0 = nfa.add_state(false);
    let acc = nfa.add_state(true);
    for s in 0..SYMBOLS as u32 {
        let target = if s as usize == SYMBOLS - 1 { acc } else { q0 };
        nfa.add_transition(q0, SymbolId(s), target);
        nfa.add_transition(acc, SymbolId(s), acc);
    }
    nfa
}

/// Deterministic, non-uniform transducer: emits `0` whenever symbol 0
/// occurs — its confidence DP is the Thm 4.6 forward pass whose output
/// length stays fixed as n grows.
fn query_transducer(alphabet: &Arc<Alphabet>) -> Transducer {
    let mut b = Transducer::builder(Arc::clone(alphabet), Arc::clone(alphabet));
    let q = b.add_state(true);
    for s in 0..SYMBOLS as u32 {
        let emit: &[SymbolId] = if s == 0 { &[SymbolId(0)] } else { &[] };
        b.add_transition(q, SymbolId(s), q, emit).unwrap();
    }
    b.build().unwrap()
}

fn main() {
    let nfa = query_nfa();
    let probe = CyclicSource::new(2);
    let t = query_transducer(probe.alphabet());
    let o = vec![SymbolId(0)];
    let layer_bytes = 8 * SYMBOLS * SYMBOLS;

    println!("# streaming length sweep (|Σ| = {SYMBOLS}, pool = {POOL} layers)");
    println!();
    println!(
        "| n | acceptance (materialized) | acceptance (streamed) | confidence (materialized) | confidence (streamed) | seq memory (materialized) | seq memory (streamed) |"
    );
    println!("|---|---|---|---|---|---|---|");

    for exp in 10..=17u32 {
        let n = 1usize << exp;
        let reps = if exp <= 13 { 5 } else { 3 };

        // Bit-identity first: the sweep only times passes that agree.
        let m = materialize(&mut CyclicSource::new(n)).expect("cyclic source is valid");
        let acc_mat = acceptance_probability(&nfa, &m).unwrap();
        let acc_str = acceptance_probability_source(&nfa, &mut CyclicSource::new(n)).unwrap();
        assert_eq!(
            acc_mat.to_bits(),
            acc_str.to_bits(),
            "acceptance at n = {n}"
        );
        let conf_mat = confidence(&t, &m, &o).unwrap();
        let conf_str = confidence_source(&t, &mut CyclicSource::new(n), &o).unwrap();
        assert_eq!(
            conf_mat.to_bits(),
            conf_str.to_bits(),
            "confidence at n = {n}"
        );

        let t_acc_mat = time_median(reps, || {
            let m = materialize(&mut CyclicSource::new(n)).unwrap();
            std::hint::black_box(acceptance_probability(&nfa, &m).unwrap());
        });
        let t_acc_str = time_median(reps, || {
            std::hint::black_box(
                acceptance_probability_source(&nfa, &mut CyclicSource::new(n)).unwrap(),
            );
        });
        let t_conf_mat = time_median(reps, || {
            let m = materialize(&mut CyclicSource::new(n)).unwrap();
            std::hint::black_box(confidence(&t, &m, &o).unwrap());
        });
        let t_conf_str = time_median(reps, || {
            std::hint::black_box(confidence_source(&t, &mut CyclicSource::new(n), &o).unwrap());
        });

        let mat_bytes = layer_bytes * (n - 1);
        println!(
            "| 2^{exp} = {n} | {} | {} | {} | {} | {:.1} MiB | {} B |",
            fmt_time(t_acc_mat),
            fmt_time(t_acc_str),
            fmt_time(t_conf_mat),
            fmt_time(t_conf_str),
            mat_bytes as f64 / (1024.0 * 1024.0),
            layer_bytes,
        );
    }
    println!();
    println!(
        "(materialized timings include draining the source into the flat \
         buffer, which is what a consumer without the streaming path must do; \
         sequence memory excludes the O(|Σ|² + reachable subsets) DP state \
         both sides share)"
    );
}
