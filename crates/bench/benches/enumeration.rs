//! Criterion benches for Table 2 row 2: per-answer delay of every ranked
//! evaluation mode (experiment id TAB2-r2 in DESIGN.md).
//!
//! Each bench takes the first `K` answers of the corresponding
//! enumeration, so the reported time divided by `K` is the average delay
//! the theorems bound:
//! * Thm 4.1 — unranked, polynomial delay and space;
//! * Thm 4.3 — decreasing `E_max`;
//! * Thm 5.2/Lemma 5.10 — decreasing `I_max`;
//! * Thm 5.7 — decreasing exact confidence (indexed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transmark_bench::{instance_with_answer, sproj_instance};
use transmark_core::enumerate::{enumerate_by_emax, enumerate_unranked};
use transmark_core::generate::TransducerClass;
use transmark_sproj::{enumerate_by_imax, enumerate_indexed};

const K: usize = 10;

fn bench_unranked(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumerate/unranked_thm41");
    g.sample_size(10);
    for n in [8usize, 16, 24] {
        let (t, m, _) = instance_with_answer(TransducerClass::Deterministic, n, 3, 3, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                enumerate_unranked(black_box(&t), black_box(&m))
                    .expect("enumerate")
                    .take(K)
                    .count()
            })
        });
    }
    g.finish();
}

fn bench_emax_ranked(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumerate/emax_thm43");
    g.sample_size(10);
    for n in [8usize, 16, 24] {
        let (t, m, _) = instance_with_answer(TransducerClass::Deterministic, n, 3, 3, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                enumerate_by_emax(black_box(&t), black_box(&m))
                    .expect("enumerate")
                    .take(K)
                    .count()
            })
        });
    }
    g.finish();
}

fn bench_imax_ranked(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumerate/imax_thm52");
    for n in [16usize, 48, 96] {
        let (p, m, _) = sproj_instance(n, 3, 3, 3, 29);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                enumerate_by_imax(black_box(&p), black_box(&m))
                    .expect("enumerate")
                    .take(K)
                    .count()
            })
        });
    }
    g.finish();
}

fn bench_indexed_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumerate/indexed_thm57");
    for n in [16usize, 48, 96] {
        let (p, m, _) = sproj_instance(n, 3, 3, 3, 29);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                enumerate_indexed(black_box(&p), black_box(&m))
                    .expect("enumerate")
                    .take(K)
                    .count()
            })
        });
    }
    g.finish();
}

/// Short sampling windows: these benches confirm complexity *shapes*
/// (what grows in which parameter), for which Criterion's default 5-second
/// windows are overkill; `cargo bench --workspace` stays minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_unranked, bench_emax_ranked, bench_imax_ranked, bench_indexed_exact
}
criterion_main!(benches);
