//! Criterion benches for the `transmark-kernel` primitives themselves:
//! the cost of precompiling the sparse structures (amortized once per
//! query) and the per-layer cost of the three semiring drivers over the
//! same step graph. These isolate the kernel from the query-level
//! algorithms benched in `confidence.rs` / `enumeration.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transmark_bench::{chain, instance_with_answer};
use transmark_core::generate::TransducerClass;
use transmark_core::kernelize::output_step_graph;
use transmark_core::plan::prepare;
use transmark_kernel::{advance, Bool, MaxLog, Prob, Semiring, SparseSteps, StepGraph, Workspace};

const N: usize = 256;
const SYMBOLS: usize = 8;

fn bench_precompile(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/precompile");
    let m = chain(N, SYMBOLS, 11);
    g.bench_function("sparse_steps", |b| b.iter(|| black_box(&m).sparse_steps()));
    let (t, _, o) = instance_with_answer(TransducerClass::Deterministic, N, SYMBOLS, 3, 1);
    g.bench_function("output_step_graph", |b| {
        b.iter(|| output_step_graph(black_box(&t), black_box(&o)))
    });
    g.finish();
}

/// One full forward pass (seed + all layers + swap) under semiring `S`,
/// reusing the workspace across iterations as the migrated passes do.
fn forward_pass<S: Semiring>(
    steps: &SparseSteps,
    graph: &StepGraph,
    init_row: u32,
    ws: &mut Workspace<S::Elem>,
) {
    let nr = graph.n_rows();
    ws.reset(steps.n_nodes() * nr, S::zero());
    for &(node, p) in steps.initial() {
        for e in graph.edges(node, init_row) {
            let cell = &mut ws.cur_mut()[node as usize * nr + e.to as usize];
            S::accum(cell, S::from_prob(p));
        }
    }
    for step in 0..steps.n_steps() {
        ws.clear_next(S::zero());
        let (cur, next) = ws.buffers();
        advance::<S, _>(&steps.at(step), graph, cur, next);
        ws.swap();
    }
    black_box(ws.cur());
}

/// The planner's compile/bind/execute split over the same instance as
/// `kernel/precompile`: `prepare` is the one-time machine-side compile,
/// `bind` the per-sequence data-side setup (dominated by the CSR
/// build), and `execute` a confidence call on an existing bind — the
/// cost repeated queries actually pay.
fn bench_prepared_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/prepared");
    let (t, m, o) = instance_with_answer(TransducerClass::Deterministic, N, SYMBOLS, 3, 1);
    g.bench_function("prepare", |b| b.iter(|| prepare(black_box(&t))));
    let plan = prepare(&t);
    g.bench_function("bind", |b| b.iter(|| plan.bind(black_box(&m))));
    let bound = plan.bind(&m).expect("bind");
    g.bench_function("execute", |b| b.iter(|| bound.confidence(black_box(&o))));
    g.finish();
}

fn bench_semirings(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/forward_pass");
    let (t, m, o) = instance_with_answer(TransducerClass::Deterministic, N, SYMBOLS, 3, 1);
    let steps = m.sparse_steps();
    let graph = output_step_graph(&t, &o);
    let init_row = (t.initial().index() * (o.len() + 1)) as u32;

    let mut ws_p: Workspace<f64> = Workspace::new();
    g.bench_function("prob", |b| {
        b.iter(|| forward_pass::<Prob>(&steps, &graph, init_row, &mut ws_p))
    });
    let mut ws_m: Workspace<f64> = Workspace::new();
    g.bench_function("maxlog", |b| {
        b.iter(|| forward_pass::<MaxLog>(&steps, &graph, init_row, &mut ws_m))
    });
    let mut ws_b: Workspace<bool> = Workspace::new();
    g.bench_function("bool", |b| {
        b.iter(|| forward_pass::<Bool>(&steps, &graph, init_row, &mut ws_b))
    });
    g.finish();
}

fn bench_sparsity(c: &mut Criterion) {
    // The same pass over chains of increasing sparsity: the CSR rows
    // shrink with the number of surviving transitions, so the layer cost
    // should track the nonzero count, not |Σ|².
    let mut g = c.benchmark_group("kernel/sparsity");
    let (t, _, o) = instance_with_answer(TransducerClass::Deterministic, N, SYMBOLS, 3, 1);
    let graph = output_step_graph(&t, &o);
    let init_row = (t.initial().index() * (o.len() + 1)) as u32;
    for zero_pct in [0usize, 50, 80] {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let m = transmark_markov::generate::random_markov_sequence(
            &transmark_markov::generate::RandomChainSpec {
                len: N,
                n_symbols: t.n_input_symbols(),
                zero_prob: zero_pct as f64 / 100.0,
            },
            &mut rng,
        );
        let steps = m.sparse_steps();
        let mut ws: Workspace<f64> = Workspace::new();
        g.bench_with_input(BenchmarkId::from_parameter(zero_pct), &zero_pct, |b, _| {
            b.iter(|| forward_pass::<Prob>(&steps, &graph, init_row, &mut ws))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_precompile,
    bench_prepared_split,
    bench_semirings,
    bench_sparsity
);
criterion_main!(benches);
