//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! * `ablation/uniform_fast_path` — Theorem 4.6's k-uniform fast path vs.
//!   the general output-position DP on behaviourally identical machines
//!   (the general machine carries one unreachable non-uniform emission so
//!   the dispatcher cannot take the fast path).
//! * `ablation/sproj_confidence_route` — Theorem 5.5's concatenation-
//!   language route vs. running the general exact algorithm on the
//!   compiled transducer (both exact; the paper's route is the one that
//!   confines the blow-up to `|Q_E|`).
//! * `ablation/top_answer_route` — first answer of an s-projector query
//!   three ways: exact indexed DAG (Thm 5.7), Lawler `I_max`
//!   (Lemma 5.10), and `E_max` on the compiled transducer (Thm 4.3's
//!   generic machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transmark_bench::{instance_with_answer, sproj_instance};
use transmark_core::confidence::{confidence_deterministic, confidence_general};
use transmark_core::generate::TransducerClass;
use transmark_core::transducer::Transducer;
use transmark_sproj::compile::to_transducer;
use transmark_sproj::{enumerate_by_imax_lawler, enumerate_indexed, sproj_confidence};

/// Clones a transducer, appending one unreachable state with an emission
/// of a different length, so `uniform_emission()` returns `None` and the
/// general DP is exercised on identical reachable behaviour.
fn defeat_uniformity(t: &Transducer) -> Transducer {
    let mut b = Transducer::builder(t.input_alphabet_arc(), t.output_alphabet_arc());
    for q in 0..t.n_states() {
        b.add_state(t.is_accepting(transmark_automata::StateId(q as u32)));
    }
    let ghost = b.add_state(false);
    b.set_initial(t.initial());
    for (from, sym, e) in t.transitions() {
        let em = t.emission(e.emission).to_vec();
        b.add_transition(from, sym, e.target, &em)
            .expect("copy is valid");
    }
    // Unreachable ghost edges (no incoming transitions): one long emission
    // defeats uniformity; the rest keep the machine a complete DFA, since
    // `confidence_deterministic` (rightly) rejects partial machines.
    let long = vec![transmark_automata::SymbolId(0); t.max_emission_len() + 1];
    b.add_transition(ghost, transmark_automata::SymbolId(0), ghost, &long)
        .expect("ghost edge is valid");
    for s in 1..t.n_input_symbols() {
        b.add_transition(ghost, transmark_automata::SymbolId(s as u32), ghost, &[])
            .expect("ghost edge is valid");
    }
    let out = b.build().expect("ghost copy builds");
    assert_eq!(out.uniform_emission(), None);
    assert!(
        out.is_deterministic(),
        "ablation needs the deterministic path"
    );
    out
}

fn bench_uniform_fast_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/uniform_fast_path");
    for n in [64usize, 256] {
        let (t, m, o) = instance_with_answer(TransducerClass::Mealy, n, 6, 3, 3);
        let slow = defeat_uniformity(&t);
        g.bench_with_input(BenchmarkId::new("fast_k_uniform", n), &n, |b, _| {
            b.iter(|| confidence_deterministic(black_box(&t), black_box(&m), black_box(&o)))
        });
        g.bench_with_input(BenchmarkId::new("general_position_dp", n), &n, |b, _| {
            b.iter(|| confidence_deterministic(black_box(&slow), black_box(&m), black_box(&o)))
        });
    }
    g.finish();
}

fn bench_sproj_confidence_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/sproj_confidence_route");
    g.sample_size(20);
    for n in [16usize, 32] {
        let (p, m, o) = sproj_instance(n, 3, 3, 3, 41);
        let compiled = to_transducer(&p).expect("compiles");
        g.bench_with_input(BenchmarkId::new("thm55_concat_language", n), &n, |b, _| {
            b.iter(|| sproj_confidence(black_box(&p), black_box(&m), black_box(&o)))
        });
        g.bench_with_input(BenchmarkId::new("general_on_compiled", n), &n, |b, _| {
            b.iter(|| confidence_general(black_box(&compiled), black_box(&m), black_box(&o)))
        });
    }
    g.finish();
}

fn bench_top_answer_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/top_answer_route");
    g.sample_size(20);
    for n in [16usize, 32] {
        let (p, m, _) = sproj_instance(n, 3, 3, 3, 53);
        let compiled = to_transducer(&p).expect("compiles");
        g.bench_with_input(BenchmarkId::new("indexed_dag_thm57", n), &n, |b, _| {
            b.iter(|| {
                enumerate_indexed(black_box(&p), black_box(&m))
                    .unwrap()
                    .next()
            })
        });
        g.bench_with_input(BenchmarkId::new("lawler_imax_lemma510", n), &n, |b, _| {
            b.iter(|| {
                enumerate_by_imax_lawler(black_box(&p), black_box(&m))
                    .unwrap()
                    .next()
            })
        });
        g.bench_with_input(BenchmarkId::new("emax_on_compiled_thm43", n), &n, |b, _| {
            b.iter(|| transmark_core::emax::top_by_emax(black_box(&compiled), black_box(&m)))
        });
    }
    g.finish();
}

/// Short sampling windows: these benches confirm complexity *shapes*
/// (what grows in which parameter), for which Criterion's default 5-second
/// windows are overkill; `cargo bench --workspace` stays minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_uniform_fast_path, bench_sproj_confidence_route, bench_top_answer_route
}
criterion_main!(benches);
