//! Criterion benches for Table 2 row 1: confidence computation across
//! the paper's transducer classes (experiment id TAB2-r1 in DESIGN.md).
//!
//! One group per column:
//! * `confidence/deterministic` — Thm 4.6, sweeping n (polynomial; the
//!   k-uniform fast path is benched separately via a Mealy machine);
//! * `confidence/uniform_nfa` — Thm 4.8, sweeping |Q| (the `4^{|Q|}`
//!   subset DP);
//! * `confidence/general` — the exact exponential algorithm, sweeping |Q|;
//! * `confidence/sproj` — Thm 5.5, sweeping |Q_E|;
//! * `confidence/indexed` — Thm 5.8 table build + query, sweeping n;
//! * `confidence/acceptance` — `Pr(S ∈ L(A))`, sweeping n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transmark_bench::{chain, instance_with_answer, sproj_instance};
use transmark_core::confidence::{
    acceptance_probability, confidence, confidence_deterministic, confidence_general,
    confidence_uniform_nfa,
};
use transmark_core::generate::TransducerClass;
use transmark_core::plan::prepare;
use transmark_sproj::indexed::IndexedEvaluator;
use transmark_sproj::sproj_confidence;

fn bench_deterministic(c: &mut Criterion) {
    let mut g = c.benchmark_group("confidence/deterministic");
    for n in [32usize, 128, 512] {
        let (t, m, o) = instance_with_answer(TransducerClass::Deterministic, n, 8, 3, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| confidence_deterministic(black_box(&t), black_box(&m), black_box(&o)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("confidence/mealy_uniform_fast_path");
    for n in [32usize, 128, 512] {
        let (t, m, o) = instance_with_answer(TransducerClass::Mealy, n, 8, 3, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| confidence_deterministic(black_box(&t), black_box(&m), black_box(&o)))
        });
    }
    g.finish();
}

/// The prepared-query counterparts of `confidence/deterministic` and
/// `confidence/mealy_uniform_fast_path`: the same call, but executed
/// over a pre-bound plan, so the per-call CSR + step-graph build is
/// amortized away (compare the `/512` points against the unprepared
/// groups above).
fn bench_prepared(c: &mut Criterion) {
    let mut g = c.benchmark_group("confidence/deterministic_prepared");
    for n in [32usize, 128, 512] {
        let (t, m, o) = instance_with_answer(TransducerClass::Deterministic, n, 8, 3, 1);
        let plan = prepare(&t);
        let bound = plan.bind(&m).expect("bind");
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| bound.confidence(black_box(&o)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("confidence/mealy_uniform_fast_path_prepared");
    for n in [32usize, 128, 512] {
        let (t, m, o) = instance_with_answer(TransducerClass::Mealy, n, 8, 3, 2);
        let plan = prepare(&t);
        let bound = plan.bind(&m).expect("bind");
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| bound.confidence(black_box(&o)))
        });
    }
    g.finish();

    // One query over a fleet of 128 sequences: the per-call path
    // recompiles the machine-side artifacts (accepting sets, emission
    // interning, the (state × output-position) step graph) for every
    // sequence; the prepared path compiles once and only binds.
    let mut g = c.benchmark_group("confidence/fleet_128_sequences");
    g.sample_size(20);
    let (t, _, o) = instance_with_answer(TransducerClass::Deterministic, 32, 8, 3, 1);
    let chains: Vec<_> = (0..128).map(|i| chain(32, 3, 100 + i)).collect();
    g.bench_function("per_call", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in &chains {
                acc += confidence(black_box(&t), black_box(m), black_box(&o)).expect("confidence");
            }
            acc
        })
    });
    g.bench_function("prepared", |b| {
        b.iter(|| {
            let plan = prepare(black_box(&t));
            let mut acc = 0.0;
            for m in &chains {
                acc += plan
                    .bind(black_box(m))
                    .expect("bind")
                    .confidence(black_box(&o))
                    .expect("confidence");
            }
            acc
        })
    });
    g.finish();
}

fn bench_uniform_nfa(c: &mut Criterion) {
    let mut g = c.benchmark_group("confidence/uniform_nfa");
    for nq in [2usize, 4, 6, 8] {
        let (t, m, o) = instance_with_answer(TransducerClass::Uniform(1), 32, nq, 3, 7);
        g.bench_with_input(BenchmarkId::from_parameter(nq), &nq, |b, _| {
            b.iter(|| confidence_uniform_nfa(black_box(&t), black_box(&m), black_box(&o)))
        });
    }
    g.finish();
}

fn bench_general(c: &mut Criterion) {
    let mut g = c.benchmark_group("confidence/general");
    g.sample_size(20);
    for nq in [2usize, 3, 4, 5] {
        let (t, m, o) = instance_with_answer(TransducerClass::General, 12, nq, 3, 42);
        g.bench_with_input(BenchmarkId::from_parameter(nq), &nq, |b, _| {
            b.iter(|| confidence_general(black_box(&t), black_box(&m), black_box(&o)))
        });
    }
    g.finish();
}

fn bench_sproj(c: &mut Criterion) {
    let mut g = c.benchmark_group("confidence/sproj");
    for qe in [2usize, 4, 6, 8] {
        let (p, m, o) = sproj_instance(48, 3, 3, qe, 19);
        g.bench_with_input(BenchmarkId::from_parameter(qe), &qe, |b, _| {
            b.iter(|| sproj_confidence(black_box(&p), black_box(&m), black_box(&o)))
        });
    }
    g.finish();
}

fn bench_indexed(c: &mut Criterion) {
    let mut g = c.benchmark_group("confidence/indexed_tables");
    for n in [64usize, 256, 1024] {
        let (p, m, _) = sproj_instance(n, 3, 4, 4, 23);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| IndexedEvaluator::new(black_box(&p), black_box(&m)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("confidence/indexed_query");
    for n in [64usize, 256, 1024] {
        let (p, m, o) = sproj_instance(n, 3, 4, 4, 23);
        let ev = IndexedEvaluator::new(&p, &m).expect("evaluator");
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ev.confidence(black_box(&o), black_box(n / 2)))
        });
    }
    g.finish();
}

fn bench_acceptance(c: &mut Criterion) {
    let mut g = c.benchmark_group("confidence/acceptance_probability");
    for n in [32usize, 128, 512] {
        let (t, m, _) = instance_with_answer(TransducerClass::General, n, 4, 3, 13);
        let nfa = t.underlying_nfa();
        let _ = chain(2, 2, 0);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| acceptance_probability(black_box(&nfa), black_box(&m)))
        });
    }
    g.finish();
}

/// Short sampling windows: these benches confirm complexity *shapes*
/// (what grows in which parameter), for which Criterion's default 5-second
/// windows are overkill; `cargo bench --workspace` stays minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_deterministic, bench_prepared, bench_uniform_nfa, bench_general, bench_sproj, bench_indexed, bench_acceptance
}
criterion_main!(benches);
