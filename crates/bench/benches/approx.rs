//! Criterion benches for Table 2 row 3 (experiment id TAB2-r3): the cost
//! of computing the heuristic top answers on the hardness-gadget
//! families, plus the Figure-1/2 running example as a fixed anchor.
//!
//! These complement `--bin approx_ratios` (which reports the *ratios*):
//! here we confirm the heuristics themselves stay polynomial on the very
//! instances where beating them is NP-hard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transmark_core::emax::top_by_emax;
use transmark_sproj::indexed::enumerate_indexed;
use transmark_workloads::gadgets::{emax_gap, imax_gap};
use transmark_workloads::hospital::{hospital_sequence, places, room_tracker};

fn bench_emax_on_gadget(c: &mut Criterion) {
    let mut g = c.benchmark_group("approx/emax_top_on_mealy_gadget");
    for n in [8usize, 32, 128] {
        let (t, m) = emax_gap(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| top_by_emax(black_box(&t), black_box(&m)))
        });
    }
    g.finish();
}

fn bench_imax_on_gadget(c: &mut Criterion) {
    let mut g = c.benchmark_group("approx/imax_top_on_sproj_gadget");
    for n in [8usize, 32, 128] {
        let (p, m) = imax_gap(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                enumerate_indexed(black_box(&p), black_box(&m))
                    .expect("enumerate")
                    .next()
            })
        });
    }
    g.finish();
}

fn bench_running_example(c: &mut Criterion) {
    let m = hospital_sequence();
    let t = room_tracker();
    let twelve = places(&["1", "2"]);
    c.bench_function("approx/hospital_conf_12", |b| {
        b.iter(|| {
            transmark_core::confidence::confidence(black_box(&t), black_box(&m), black_box(&twelve))
        })
    });
    c.bench_function("approx/hospital_top_emax", |b| {
        b.iter(|| top_by_emax(black_box(&t), black_box(&m)))
    });
}

/// Short sampling windows: these benches confirm complexity *shapes*
/// (what grows in which parameter), for which Criterion's default 5-second
/// windows are overkill; `cargo bench --workspace` stays minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_emax_on_gadget, bench_imax_on_gadget, bench_running_example
}
criterion_main!(benches);
