//! Baseline comparison motivating ranked evaluation (§1, §3.2).
//!
//! The paper argues the naive two-step plan — "enumerate all possible
//! answers, then compute the confidence of each" — is impractical because
//! the answer set can be enormous and mostly uninteresting; ranked
//! enumeration produces the valuable answers first. This bench pits the
//! two plans against each other on the same instances:
//!
//! * `baseline/two_step_full` — Theorem 4.1 enumeration of *all* answers,
//!   each scored with the Theorem 4.6 confidence DP (the naive plan);
//! * `baseline/ranked_top5` — Theorem 4.3 enumeration stopped after 5
//!   answers, each scored the same way (the paper's plan).
//!
//! As `n` grows the answer count explodes and the gap widens — the
//! measured form of "the cost of producing even one valuable answer may
//! be prohibitively high".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transmark_bench::instance_with_answer;
use transmark_core::confidence::confidence;
use transmark_core::enumerate::{enumerate_by_emax, enumerate_unranked};
use transmark_core::generate::TransducerClass;

fn bench_plans(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline");
    g.sample_size(10);
    for n in [6usize, 10, 14] {
        let (t, m, _) = instance_with_answer(TransducerClass::Deterministic, n, 3, 3, 77);
        g.bench_with_input(BenchmarkId::new("two_step_full", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0.0;
                for o in enumerate_unranked(black_box(&t), black_box(&m)).expect("enumerate") {
                    total += confidence(&t, &m, &o).expect("confidence");
                }
                total
            })
        });
        g.bench_with_input(BenchmarkId::new("ranked_top5", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0.0;
                for r in enumerate_by_emax(black_box(&t), black_box(&m))
                    .expect("enumerate")
                    .take(5)
                {
                    total += confidence(&t, &m, &r.output).expect("confidence");
                }
                total
            })
        });
    }
    g.finish();
}

/// Short sampling windows: these benches confirm complexity *shapes*
/// (what grows in which parameter), for which Criterion's default 5-second
/// windows are overkill; `cargo bench --workspace` stays minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_plans
}
criterion_main!(benches);
