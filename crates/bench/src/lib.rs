//! Shared instance builders for the benchmark harness.
//!
//! Every table and figure of the paper is regenerated from here (see
//! `DESIGN.md`'s experiment index):
//!
//! * `cargo run -p transmark-bench --bin table1` — Figures 1–2 and
//!   Table 1, asserted against the paper's printed numbers.
//! * `cargo run -p transmark-bench --bin table2` — the empirical version
//!   of Table 2: measured runtimes for every confidence algorithm /
//!   transducer-class cell, measured per-answer delays for every ranked
//!   evaluation mode, and measured inapproximability ratios.
//! * `cargo run -p transmark-bench --bin approx_ratios` — the row-3
//!   ratio curves on the gadget families.
//! * `cargo bench -p transmark-bench` — Criterion microbenchmarks behind
//!   the same cells.

use rand::{rngs::StdRng, SeedableRng};
use transmark_automata::{Dfa, StateId, SymbolId};
use transmark_core::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark_core::transducer::Transducer;
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::MarkovSequence;
use transmark_sproj::SProjector;

/// A reproducible Markov sequence for scaling experiments.
pub fn chain(n: usize, n_symbols: usize, seed: u64) -> MarkovSequence {
    let mut rng = StdRng::seed_from_u64(seed);
    random_markov_sequence(
        &RandomChainSpec {
            len: n,
            n_symbols,
            zero_prob: 0.2,
        },
        &mut rng,
    )
}

/// A reproducible transducer of the given class over `n_symbols` input
/// symbols and 2 output symbols.
pub fn transducer(
    class: TransducerClass,
    n_states: usize,
    n_symbols: usize,
    seed: u64,
) -> Transducer {
    let mut rng = StdRng::seed_from_u64(seed);
    random_transducer(
        &RandomTransducerSpec {
            n_states,
            n_input_symbols: n_symbols,
            n_output_symbols: 2,
            class,
            branching: 1.5,
        },
        &mut rng,
    )
}

/// A `(transducer, chain, answer)` triple where `answer` is a genuine
/// answer of the query (the `E_max`-top one), retrying seeds until the
/// query is nonempty.
pub fn instance_with_answer(
    class: TransducerClass,
    n: usize,
    n_states: usize,
    n_symbols: usize,
    seed: u64,
) -> (Transducer, MarkovSequence, Vec<SymbolId>) {
    for attempt in 0..100 {
        let t = transducer(class, n_states, n_symbols, seed + attempt * 1000);
        let m = chain(n, n_symbols, seed + attempt * 1000 + 7);
        if let Ok(Some(top)) = transmark_core::emax::top_by_emax(&t, &m) {
            return (t, m, top.output);
        }
    }
    panic!("no nonempty instance found for {class:?} after 100 attempts");
}

/// A random complete DFA (for s-projector components).
pub fn random_dfa(n_symbols: usize, n_states: usize, seed: u64) -> Dfa {
    use rand::RngExt;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dfa::new(n_symbols);
    let states: Vec<StateId> = (0..n_states)
        .map(|_| d.add_state(rng.random_bool(0.5)))
        .collect();
    d.set_accepting(states[rng.random_range(0..n_states)], true);
    for &q in &states {
        for s in 0..n_symbols {
            d.set_transition(q, SymbolId(s as u32), states[rng.random_range(0..n_states)]);
        }
    }
    d
}

/// An s-projector with the requested suffix-constraint size `|Q_E|`
/// (the parameter Theorem 5.5 is exponential in), together with a chain
/// and an answer of the projector.
pub fn sproj_instance(
    n: usize,
    n_symbols: usize,
    qb: usize,
    qe: usize,
    seed: u64,
) -> (SProjector, MarkovSequence, Vec<SymbolId>) {
    for attempt in 0..100 {
        let s = seed + attempt * 1000;
        let m = chain(n, n_symbols, s);
        let b = random_dfa(n_symbols, qb, s + 1);
        // Pattern: short words only, so answers exist and stay small.
        let a = {
            let mut d = Dfa::new(n_symbols);
            let q0 = d.add_state(false);
            let q1 = d.add_state(true);
            let q2 = d.add_state(true);
            let dead = d.add_sink_state(false);
            for c in 0..n_symbols {
                let sym = SymbolId(c as u32);
                d.set_transition(q0, sym, q1);
                d.set_transition(q1, sym, if c == 0 { q2 } else { dead });
                d.set_transition(q2, sym, dead);
            }
            d
        };
        let e = random_dfa(n_symbols, qe, s + 2);
        let p = SProjector::new(m.alphabet_arc(), b, a, e).expect("valid projector");
        if let Ok(Some(first)) = transmark_sproj::enumerate_indexed(&p, &m).map(|mut it| it.next())
        {
            return (p, m, first.output);
        }
    }
    panic!("no nonempty s-projector instance found");
}

/// Wall-clock helper: median of `reps` timed runs, in seconds.
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

/// Formats seconds compactly.
pub fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.0} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}
