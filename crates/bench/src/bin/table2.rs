//! Empirical Table 2: measured runtimes / delays / ratios for every cell
//! of the paper's complexity summary.
//!
//! The paper's Table 2 is a complexity matrix; this binary measures each
//! cell on scaled synthetic instances so the *shape* of the theory is
//! visible: polynomial cells stay flat as the hard parameter grows,
//! exponential cells blow up in the predicted parameter (|Q| for
//! Theorem 4.8, |Q_E| for Theorem 5.5, configuration count for the
//! general case), and the approximation columns show the measured
//! `E_max` / `I_max` ratios.
//!
//! Run with: `cargo run --release -p transmark-bench --bin table2`

use transmark_bench::{chain, fmt_time, instance_with_answer, sproj_instance, time_median};
use transmark_core::confidence::{
    confidence_deterministic, confidence_general, confidence_uniform_nfa,
};
use transmark_core::enumerate::{enumerate_by_emax, enumerate_unranked};
use transmark_core::generate::TransducerClass;
use transmark_sproj::indexed::IndexedEvaluator;
use transmark_sproj::{enumerate_by_imax, enumerate_indexed, sproj_confidence};
use transmark_workloads::gadgets;

fn main() {
    println!("=== Empirical Table 2: Complexity of transducing Markov sequences ===\n");
    row1_confidence();
    row2_ranked_delays();
    row3_inapproximability();
}

/// Row 1: confidence computation, one column per transducer class.
fn row1_confidence() {
    println!("--- Row 1: confidence computation (median wall time) ---\n");

    println!("general (exact; worst-case exponential in reachable configurations — Prop 4.7):");
    for nq in [2usize, 3, 4, 5] {
        let (t, m, o) = instance_with_answer(TransducerClass::General, 12, nq, 3, 42);
        let dt = time_median(5, || {
            let _ = confidence_general(&t, &m, &o).expect("confidence");
        });
        println!(
            "  |Q| = {nq}: n = 12, |o| = {:<3} {:>12}",
            o.len(),
            fmt_time(dt)
        );
    }

    println!("\ngeneral, FIXED machine (Thm 4.9 regime — data complexity of the exact algorithm):");
    for n in [8usize, 12, 16, 20, 24] {
        let (t, m, o) = transmark_workloads::gadgets::confidence_blowup(n);
        let dt = time_median(3, || {
            let _ = confidence_general(&t, &m, &o).expect("confidence");
        });
        println!(
            "  n = {n:>2}: |o| = {:<3}            {:>12}",
            o.len(),
            fmt_time(dt)
        );
    }

    println!("\nuniform emission, nondeterministic (Thm 4.8; exponential in |Q| only):");
    for nq in [2usize, 4, 6, 8, 10] {
        let (t, m, o) = instance_with_answer(TransducerClass::Uniform(1), 32, nq, 3, 7);
        let dt = time_median(5, || {
            let _ = confidence_uniform_nfa(&t, &m, &o).expect("confidence");
        });
        println!("  |Q| = {nq:>2}: n = 32              {:>12}", fmt_time(dt));
    }

    println!("\ndeterministic (Thm 4.6; polynomial — flat in |Q| and n):");
    for (nq, n) in [(4usize, 64usize), (16, 64), (16, 256), (64, 256)] {
        let (t, m, o) = instance_with_answer(TransducerClass::Deterministic, n, nq, 3, 11);
        let dt = time_median(5, || {
            let _ = confidence_deterministic(&t, &m, &o).expect("confidence");
        });
        println!(
            "  |Q| = {nq:>2}, n = {n:>3}: |o| = {:<4} {:>12}",
            o.len(),
            fmt_time(dt)
        );
    }

    println!("\ns-projector (Thm 5.5; exponential only in |Q_E| — Thm 5.4 forces this):");
    for qe in [2usize, 4, 6, 8] {
        let (p, m, o) = sproj_instance(48, 3, 3, qe, 19);
        let dt = time_median(5, || {
            let _ = sproj_confidence(&p, &m, &o).expect("confidence");
        });
        println!("  |Q_E| = {qe}: n = 48, |Q_B| = 3    {:>12}", fmt_time(dt));
    }

    println!("\nindexed s-projector (Thm 5.8; polynomial in everything):");
    for n in [64usize, 256, 1024] {
        let (p, m, o) = sproj_instance(n, 3, 4, 4, 23);
        let ev = IndexedEvaluator::new(&p, &m).expect("evaluator");
        let dt_build = time_median(5, || {
            let _ = IndexedEvaluator::new(&p, &m).expect("evaluator");
        });
        let dt_query = time_median(20, || {
            let _ = ev.confidence(&o, 1.max(n / 2));
        });
        println!(
            "  n = {n:>4}: tables {:>10}, per-query {:>10}",
            fmt_time(dt_build),
            fmt_time(dt_query)
        );
    }
    println!();
}

/// Row 2: ranked evaluation — measured delay per answer for each order.
fn row2_ranked_delays() {
    println!("--- Row 2: ranked evaluation (mean delay over the first k answers) ---\n");
    let k = 20;

    let (t, m, _) = instance_with_answer(TransducerClass::Deterministic, 24, 3, 3, 5);
    let dt = time_median(3, || {
        let _ = enumerate_unranked(&t, &m)
            .expect("enumerate")
            .take(k)
            .count();
    });
    println!(
        "  unranked, poly delay + poly space (Thm 4.1):   {:>10}/answer",
        fmt_time(dt / k as f64)
    );

    let dt = time_median(3, || {
        let _ = enumerate_by_emax(&t, &m)
            .expect("enumerate")
            .take(k)
            .count();
    });
    println!(
        "  decreasing E_max (Thm 4.3, ratio |Σ|^n):       {:>10}/answer",
        fmt_time(dt / k as f64)
    );

    let (p, m, _) = sproj_instance(48, 3, 3, 3, 29);
    let dt = time_median(3, || {
        let _ = enumerate_by_imax(&p, &m)
            .expect("enumerate")
            .take(k)
            .count();
    });
    println!(
        "  decreasing I_max (Thm 5.2, ratio n):           {:>10}/answer",
        fmt_time(dt / k as f64)
    );

    let dt = time_median(3, || {
        let _ = enumerate_indexed(&p, &m)
            .expect("enumerate")
            .take(k)
            .count();
    });
    println!(
        "  decreasing confidence, indexed (Thm 5.7):      {:>10}/answer",
        fmt_time(dt / k as f64)
    );
    println!();
}

/// Row 3: measured inapproximability ratios on the gadget families.
fn row3_inapproximability() {
    println!("--- Row 3: approximation of the top answer (measured ratios) ---\n");
    println!("  one-state Mealy machine (Thm 4.4 regime, analytic ratio 1.5^n):");
    for n in [4usize, 8, 12] {
        let (t, m) = gadgets::emax_gap(n);
        let top_e = transmark_core::emax::top_by_emax(&t, &m)
            .expect("emax")
            .expect("answers exist");
        let conf_of_emax_top =
            transmark_core::confidence::confidence(&t, &m, &top_e.output).expect("confidence");
        // True top is all-y with confidence 0.6^n (analytic; brute force
        // would be exponential here).
        let conf_best = 0.6f64.powi(n as i32);
        println!(
            "    n = {n:>2}: conf(true top)/conf(E_max top) = {:>10.2} (analytic {:.2})",
            conf_best / conf_of_emax_top,
            gadgets::emax_gap_expected_ratio(n)
        );
    }
    println!("\n  simple s-projector (Thm 5.2/5.3 regime, ratio ≤ n):");
    for n in [8usize, 32, 128] {
        let (p, m) = gadgets::imax_gap(n);
        let a = [m.alphabet().sym("a")];
        let conf = sproj_confidence(&p, &m, &a).expect("confidence");
        let imax = transmark_sproj::enumerate::imax_of_output(&p, &m, &a).expect("imax");
        println!(
            "    n = {n:>3}: conf/I_max = {:>7.2} (bound: n = {n})",
            conf / imax
        );
    }
    println!("\n  indexed s-projector: exact order — ratio 1 by construction (Thm 5.7).");

    // Sanity anchor for the row: the engine's own measured times above plus
    // these ratios are what EXPERIMENTS.md records.
    let _ = chain(4, 2, 0);
}
