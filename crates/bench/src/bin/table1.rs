//! Regenerates Figures 1–2 and Table 1 of the paper, asserting every
//! printed number.
//!
//! Run with: `cargo run -p transmark-bench --bin table1`

use transmark_core::confidence::confidence;
use transmark_core::emax::emax_of_output;
use transmark_workloads::hospital::{
    hospital_sequence, places, room_tracker, table1_rows, CONF_12,
};

fn main() {
    let mu = hospital_sequence();
    let t = room_tracker();
    let alphabet = mu.alphabet().clone();

    println!("=== Figure 1 (reconstruction) ===");
    println!("Markov sequence μ[{}] over Σ = {{{}}}", mu.len(), {
        let names: Vec<&str> = alphabet.iter().map(|(_, n)| n).collect();
        names.join(", ")
    });
    println!(
        "μ0→(r1a) = {} (paper: 0.7)",
        mu.initial_prob(alphabet.sym("r1a"))
    );
    println!(
        "μ3→(la, lb) = {} (paper: 0.1)",
        mu.transition_prob(2, alphabet.sym("la"), alphabet.sym("lb"))
    );

    println!("\n=== Figure 2 ===");
    println!(
        "transducer A^ω: |Q| = {}, deterministic = {}, selective = {}, uniform = {:?}",
        t.n_states(),
        t.is_deterministic(),
        t.is_selective(),
        t.uniform_emission()
    );

    println!("\n=== Table 1: Random strings and their output ===");
    println!(
        "{:<8}{:<30}{:>12}   {:<8}output",
        "string", "value", "probability", "paper"
    );
    let mut all_ok = true;
    for row in table1_rows() {
        let s: Vec<_> = row.string.iter().map(|n| alphabet.sym(n)).collect();
        let p = mu.string_probability(&s).expect("length 5");
        let out = match t.transduce_deterministic(&s) {
            Some(o) if o.is_empty() => "ε".to_string(),
            Some(o) => t.render_output(&o, ""),
            None => "N/A".to_string(),
        };
        let ok = (p - row.probability).abs() < 1e-9;
        all_ok &= ok;
        println!(
            "{:<8}{:<30}{:>12.4}   {:<8}{}   {}",
            row.label,
            row.string.join(" "),
            p,
            row.probability,
            out,
            if ok { "✓" } else { "✗" }
        );
    }

    let twelve = places(&["1", "2"]);
    let conf = confidence(&t, &mu, &twelve).expect("confidence");
    let emax = emax_of_output(&t, &mu, &twelve).expect("emax").exp();
    println!(
        "\nExample 3.4: conf(12) = {conf:.4} (paper: {CONF_12})  {}",
        if (conf - CONF_12).abs() < 1e-9 {
            "✓"
        } else {
            "✗"
        }
    );
    println!(
        "Example 4.2: E_max(12) = {emax:.4} (paper: 0.3969)  {}",
        if (emax - 0.3969).abs() < 1e-9 {
            "✓"
        } else {
            "✗"
        }
    );
    assert!(
        all_ok && (conf - CONF_12).abs() < 1e-9,
        "Table 1 reproduction failed"
    );
    println!("\nAll Table 1 values reproduced exactly.");
}
