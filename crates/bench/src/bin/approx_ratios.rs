//! Approximation-ratio curves (the Table 2 row-3 / §4.2–§5.2 story as
//! data series): how far the polynomial-time rankings drift from the true
//! confidence ranking as the sequence grows.
//!
//! Prints four series suitable for plotting:
//!  1. the `E_max` heuristic on the one-state Mealy gadget (exponential),
//!  2. the `I_max` heuristic on the simple-s-projector gadget (linear),
//!  3. space usage of the Thm 4.1 vs Thm 4.3 enumerations (the Table 2
//!     "PSPACE" annotations, measured),
//!  4. Proposition 5.9 bound tightness on random s-projector instances.
//!
//! Run with: `cargo run --release -p transmark-bench --bin approx_ratios`

use transmark_bench::sproj_instance;
use transmark_core::confidence::confidence;
use transmark_core::emax::top_by_emax;
use transmark_sproj::enumerate::imax_of_output;
use transmark_sproj::sproj_confidence;
use transmark_workloads::gadgets;

fn main() {
    println!("# series 1: E_max heuristic, one-state Mealy gadget (Thm 4.4 regime)");
    println!("# n  measured_ratio  analytic_ratio(1.5^n)");
    for n in [2usize, 4, 6, 8, 10, 12, 16, 20] {
        let (t, m) = gadgets::emax_gap(n);
        let top_e = top_by_emax(&t, &m).expect("emax").expect("answers");
        let conf_e = confidence(&t, &m, &top_e.output).expect("confidence");
        let conf_best = 0.6f64.powi(n as i32); // all-y answer, analytic
        println!(
            "{n:>3}  {:>14.4}  {:>14.4}",
            conf_best / conf_e,
            gadgets::emax_gap_expected_ratio(n)
        );
    }

    println!("\n# series 2: I_max heuristic, simple s-projector gadget (Thm 5.2/5.3 regime)");
    println!("# n  measured_ratio  upper_bound(n)  analytic(n(1-(1-1/n)^n))");
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let (p, m) = gadgets::imax_gap(n);
        let a = [m.alphabet().sym("a")];
        let conf = sproj_confidence(&p, &m, &a).expect("confidence");
        let imax = imax_of_output(&p, &m, &a).expect("imax");
        let (conf_want, imax_want) = gadgets::imax_gap_expected(n);
        println!(
            "{n:>4}  {:>14.4}  {:>14}  {:>14.4}",
            conf / imax,
            n,
            conf_want / imax_want
        );
    }

    println!("\n# series 3: space usage of the two §4 enumerations (Table 2 'PSPACE' notes)");
    println!("# answers_emitted  emax_frontier_subspaces  unranked_stack_depth");
    {
        use transmark_bench::instance_with_answer;
        use transmark_core::enumerate::{enumerate_by_emax, enumerate_unranked};
        use transmark_core::generate::TransducerClass;
        let (t, m, _) = instance_with_answer(TransducerClass::Deterministic, 16, 3, 3, 2024);
        let mut ranked = enumerate_by_emax(&t, &m).expect("enumerate");
        let mut unranked = enumerate_unranked(&t, &m).expect("enumerate");
        let mut max_stack = 0usize;
        for emitted in 1..=50usize {
            if ranked.next().is_none() {
                break;
            }
            let _ = unranked.next();
            max_stack = max_stack.max(unranked.stack_depth());
            if emitted % 10 == 0 || emitted == 1 {
                println!(
                    "{emitted:>16}  {:>23}  {:>20}",
                    ranked.frontier_len(),
                    max_stack
                );
            }
        }
        println!("# → the E_max frontier grows with the output (paper: no PSPACE bound for");
        println!("#   Thm 4.3); the unranked DFS stack stays bounded by the answer length");
        println!("#   (Thm 4.1's PSPACE guarantee).");
    }

    println!("\n# series 4: Prop. 5.9 tightness on random s-projectors");
    println!("# n  max_over_answers(conf/I_max)  bound(n)");
    for n in [8usize, 16, 32] {
        let mut worst: f64 = 1.0;
        for seed in 0..5u64 {
            let (p, m, _) = sproj_instance(n, 2, 2, 2, 100 + seed);
            // Inspect the top-32 distinct outputs.
            let outputs: Vec<_> = transmark_sproj::enumerate_by_imax(&p, &m)
                .expect("enumerate")
                .take(32)
                .collect();
            for r in outputs {
                let conf = sproj_confidence(&p, &m, &r.output).expect("confidence");
                let imax = r.score();
                if imax > 0.0 {
                    worst = worst.max(conf / imax);
                }
            }
        }
        println!("{n:>4}  {worst:>14.4}  {n:>8}");
    }
}
