//! Incremental operator composition for sliding-window evaluation.
//!
//! Every layered DP in this workspace advances a state vector through one
//! linear operator per sequence position. The parallel-prefix scan
//! (`transmark-core`'s scan module) already exploits associativity to
//! *compose* those operators chunk-wise; this module exposes the same
//! primitive for *windowed* evaluation: a [`SlidingProduct`] maintains the
//! product of the last `w` step operators under push (new step) and evict
//! (window slide) in amortized O(1) compositions per tick — the two-stack
//! sliding-window aggregation scheme — so sliding a window never replays
//! or rewinds the source.
//!
//! Operators are dense row-major `m × m` matrices over any [`Semiring`]
//! ([`Prob`](crate::Prob) for probability mass, [`Bool`](crate::Bool) for
//! reachability, [`MaxLog`](crate::MaxLog) for Viterbi-style windows).
//! Composition is associative but float addition is not: the product of a
//! window is the same *mathematical* value as folding its steps one by
//! one, with a different accumulation order. Callers that advertise
//! bit-reproducibility must document the scan-style tolerance (see the
//! numerics contract in [`crate::dp`]).

use crate::semiring::Semiring;

/// One step's lifted `m × m` operator: `cells[r * dim + c]` is the weight
/// carried from state `r` to state `c`. Vectors act on the left
/// (`v' = v · A`), so [`StepOperator::compose`] chains in application
/// order: `a.compose(&b)` applies `a` first, then `b`.
pub struct StepOperator<S: Semiring> {
    dim: usize,
    cells: Vec<S::Elem>,
}

// Manual impls: deriving would bound the uninhabited semiring tag `S`
// itself, not just `S::Elem`.
impl<S: Semiring> Clone for StepOperator<S> {
    fn clone(&self) -> Self {
        StepOperator {
            dim: self.dim,
            cells: self.cells.clone(),
        }
    }
}

impl<S: Semiring> std::fmt::Debug for StepOperator<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepOperator")
            .field("dim", &self.dim)
            .field("cells", &self.cells)
            .finish()
    }
}

impl<S: Semiring> PartialEq for StepOperator<S> {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.cells == other.cells
    }
}

impl<S: Semiring> StepOperator<S> {
    /// The identity operator (one on the diagonal).
    pub fn identity(dim: usize) -> Self {
        let mut cells = vec![S::zero(); dim * dim];
        for r in 0..dim {
            cells[r * dim + r] = S::one();
        }
        StepOperator { dim, cells }
    }

    /// Wraps a dense row-major `dim × dim` cell buffer.
    ///
    /// # Panics
    /// If `cells.len() != dim * dim`.
    pub fn from_cells(dim: usize, cells: Vec<S::Elem>) -> Self {
        assert_eq!(cells.len(), dim * dim, "operator cells must be dim²");
        StepOperator { dim, cells }
    }

    /// The operator's dimension `m`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The dense row-major cell buffer.
    pub fn cells(&self) -> &[S::Elem] {
        &self.cells
    }

    /// `self` then `other`: the operator mapping `v ↦ (v · self) · other`.
    /// O(m³) semiring work with zero rows/cells skipped.
    pub fn compose(&self, other: &StepOperator<S>) -> StepOperator<S> {
        assert_eq!(self.dim, other.dim, "operator dimension mismatch");
        let m = self.dim;
        let mut out = vec![S::zero(); m * m];
        for r in 0..m {
            let a_row = &self.cells[r * m..(r + 1) * m];
            let o_row = &mut out[r * m..(r + 1) * m];
            for (mid, &a) in a_row.iter().enumerate() {
                if S::is_zero(a) {
                    continue;
                }
                let b_row = &other.cells[mid * m..(mid + 1) * m];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    if !S::is_zero(b) {
                        S::accum(o, S::mul(a, b));
                    }
                }
            }
        }
        StepOperator { dim: m, cells: out }
    }

    /// `v · self` — pushes a state vector through the operator in O(m²).
    ///
    /// # Panics
    /// If `v.len() != dim`.
    pub fn apply(&self, v: &[S::Elem]) -> Vec<S::Elem> {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let m = self.dim;
        let mut out = vec![S::zero(); m];
        for (r, &p) in v.iter().enumerate() {
            if S::is_zero(p) {
                continue;
            }
            let row = &self.cells[r * m..(r + 1) * m];
            for (o, &w) in out.iter_mut().zip(row) {
                if !S::is_zero(w) {
                    S::accum(o, S::mul(p, w));
                }
            }
        }
        out
    }
}

/// The product of a sliding window of step operators, maintained under
/// `push` (append the newest step) and `evict` (drop the oldest) without
/// replaying the window — the classic two-stack sliding-window
/// aggregation:
///
/// * the **back** holds the raw operators pushed since the last flip plus
///   their running product (`back_agg`), so a push costs one composition;
/// * the **front** holds *suffix products* of the older operators, so an
///   evict is a stack pop; when the front runs dry the back flips into it,
///   computing one suffix product per moved operator — amortized one
///   composition per tick.
///
/// Querying never composes: [`SlidingProduct::apply_to`] pushes a vector
/// through the front's top suffix product and then `back_agg`, two O(m²)
/// applies.
pub struct SlidingProduct<S: Semiring> {
    dim: usize,
    /// Suffix products of the older operators; `last()` covers every
    /// front operator, and popping it evicts exactly the oldest.
    front: Vec<StepOperator<S>>,
    /// Raw operators in arrival order since the last flip.
    back: Vec<StepOperator<S>>,
    /// Product of everything in `back` (identity when empty).
    back_agg: StepOperator<S>,
}

impl<S: Semiring> Clone for SlidingProduct<S> {
    fn clone(&self) -> Self {
        SlidingProduct {
            dim: self.dim,
            front: self.front.clone(),
            back: self.back.clone(),
            back_agg: self.back_agg.clone(),
        }
    }
}

impl<S: Semiring> std::fmt::Debug for SlidingProduct<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlidingProduct")
            .field("dim", &self.dim)
            .field("front", &self.front.len())
            .field("back", &self.back.len())
            .finish()
    }
}

impl<S: Semiring> SlidingProduct<S> {
    /// An empty window over `dim`-dimensional operators.
    pub fn new(dim: usize) -> Self {
        SlidingProduct {
            dim,
            front: Vec::new(),
            back: Vec::new(),
            back_agg: StepOperator::identity(dim),
        }
    }

    /// The operator dimension `m`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of operators currently in the window.
    pub fn len(&self) -> usize {
        self.front.len() + self.back.len()
    }

    /// Whether the window holds no operators.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty() && self.back.is_empty()
    }

    /// Appends the newest step operator (one composition).
    pub fn push(&mut self, op: StepOperator<S>) {
        assert_eq!(op.dim, self.dim, "operator dimension mismatch");
        self.back_agg = self.back_agg.compose(&op);
        self.back.push(op);
    }

    /// Drops the oldest operator. Returns `false` (and does nothing) when
    /// the window is empty. Amortized one composition.
    pub fn evict(&mut self) -> bool {
        if self.front.is_empty() {
            if self.back.is_empty() {
                return false;
            }
            // Flip: move the back into the front as suffix products, newest
            // first, so the top of the stack covers the whole run and each
            // pop peels exactly the then-oldest operator.
            let mut agg = StepOperator::identity(self.dim);
            for op in self.back.drain(..).rev() {
                agg = op.compose(&agg);
                self.front.push(agg.clone());
            }
            self.back_agg = StepOperator::identity(self.dim);
        }
        self.front.pop();
        true
    }

    /// Pushes `v` through the window's product (front suffix product, then
    /// back product): two O(m²) applies, no composition.
    pub fn apply_to(&self, v: &[S::Elem]) -> Vec<S::Elem> {
        match self.front.last() {
            Some(f) => self.back_agg.apply(&f.apply(v)),
            None => self.back_agg.apply(v),
        }
    }

    /// The window's full product as one operator (one composition; prefer
    /// [`SlidingProduct::apply_to`] on the hot path).
    pub fn product(&self) -> StepOperator<S> {
        match self.front.last() {
            Some(f) => f.compose(&self.back_agg),
            None => self.back_agg.clone(),
        }
    }

    /// Checkpoint view: `(front suffix products, back raw operators, back
    /// product)` — enough to rebuild the exact stack state, preserving the
    /// amortization schedule and float accumulation order bit for bit.
    pub fn parts(&self) -> (&[StepOperator<S>], &[StepOperator<S>], &StepOperator<S>) {
        (&self.front, &self.back, &self.back_agg)
    }

    /// Rebuilds a window from a [`SlidingProduct::parts`] snapshot.
    pub fn from_parts(
        dim: usize,
        front: Vec<StepOperator<S>>,
        back: Vec<StepOperator<S>>,
        back_agg: StepOperator<S>,
    ) -> Self {
        assert!(
            front
                .iter()
                .chain(back.iter())
                .chain(std::iter::once(&back_agg))
                .all(|op| op.dim == dim),
            "operator dimension mismatch"
        );
        SlidingProduct {
            dim,
            front,
            back,
            back_agg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{Bool, MaxLog, Prob};

    /// Deterministic pseudo-random f64 in (0, 1) — no RNG dependency.
    fn noise(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn random_op(dim: usize, seed: &mut u64) -> StepOperator<Prob> {
        let cells = (0..dim * dim)
            .map(|_| {
                let p = noise(seed);
                if p < 0.3 {
                    0.0
                } else {
                    p
                }
            })
            .collect();
        StepOperator::from_cells(dim, cells)
    }

    /// Folds `v` through each operator in order — the recompute baseline.
    fn fold_naive(ops: &[StepOperator<Prob>], v: &[f64]) -> Vec<f64> {
        let mut cur = v.to_vec();
        for op in ops {
            cur = op.apply(&cur);
        }
        cur
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            let tol = 1e-12 * y.abs().max(1.0);
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn compose_then_apply_matches_sequential_apply() {
        let mut seed = 7;
        let a = random_op(5, &mut seed);
        let b = random_op(5, &mut seed);
        let v: Vec<f64> = (0..5).map(|_| noise(&mut seed)).collect();
        let direct = b.apply(&a.apply(&v));
        let composed = a.compose(&b).apply(&v);
        assert_close(&composed, &direct);
    }

    #[test]
    fn identity_is_neutral() {
        let mut seed = 9;
        let a = random_op(4, &mut seed);
        let id = StepOperator::<Prob>::identity(4);
        assert_eq!(id.compose(&a).cells(), a.cells());
        assert_eq!(a.compose(&id).cells(), a.cells());
        let v: Vec<f64> = (0..4).map(|_| noise(&mut seed)).collect();
        assert_eq!(id.apply(&v), v);
    }

    #[test]
    fn sliding_product_matches_naive_window_recompute() {
        let dim = 4;
        let window = 6;
        let mut seed = 42;
        let ops: Vec<StepOperator<Prob>> = (0..40).map(|_| random_op(dim, &mut seed)).collect();
        let v: Vec<f64> = (0..dim).map(|_| noise(&mut seed)).collect();
        let mut sw = SlidingProduct::new(dim);
        for (i, op) in ops.iter().enumerate() {
            if sw.len() == window {
                assert!(sw.evict());
            }
            sw.push(op.clone());
            let lo = (i + 1).saturating_sub(window);
            let naive = fold_naive(&ops[lo..=i], &v);
            assert_close(&sw.apply_to(&v), &naive);
            assert_close(&sw.product().apply(&v), &naive);
            assert_eq!(sw.len(), i + 1 - lo);
        }
    }

    #[test]
    fn evict_on_empty_window_is_a_no_op() {
        let mut sw: SlidingProduct<Prob> = SlidingProduct::new(3);
        assert!(!sw.evict());
        assert!(sw.is_empty());
        sw.push(StepOperator::identity(3));
        assert!(sw.evict());
        assert!(!sw.evict());
    }

    #[test]
    fn parts_round_trip_preserves_stack_state() {
        let dim = 3;
        let mut seed = 5;
        let mut sw = SlidingProduct::new(dim);
        for _ in 0..7 {
            sw.push(random_op(dim, &mut seed));
        }
        for _ in 0..3 {
            sw.evict();
        }
        let (front, back, agg) = sw.parts();
        let rebuilt = SlidingProduct::from_parts(dim, front.to_vec(), back.to_vec(), agg.clone());
        let v: Vec<f64> = (0..dim).map(|_| noise(&mut seed)).collect();
        let a = sw.apply_to(&v);
        let b = rebuilt.apply_to(&v);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn bool_semiring_window_tracks_reachability() {
        // Reachability through a 3-cycle: 0→1→2→0.
        let mut shift = vec![false; 9];
        shift[1] = true; // 0→1
        shift[5] = true; // 1→2
        shift[6] = true; // 2→0
        let op = StepOperator::<Bool>::from_cells(3, shift);
        let mut sw = SlidingProduct::new(3);
        for _ in 0..3 {
            sw.push(op.clone());
        }
        let start = vec![true, false, false];
        assert_eq!(sw.apply_to(&start), vec![true, false, false]);
        sw.evict();
        assert_eq!(sw.apply_to(&start), vec![false, false, true]);
    }

    #[test]
    fn maxlog_window_takes_best_path() {
        // Two parallel edges per step; max-log keeps the better product.
        let cells = vec![(0.9f64).ln(), (0.5f64).ln(), (0.2f64).ln(), (0.8f64).ln()];
        let op = StepOperator::<MaxLog>::from_cells(2, cells);
        let mut sw = SlidingProduct::new(2);
        sw.push(op.clone());
        sw.push(op.clone());
        let v = sw.apply_to(&[0.0, f64::NEG_INFINITY]);
        // Best 2-step paths from state 0: to 0 via 0→0→0 (0.81);
        // to 1 via max(0→0→1 = 0.45, 0→1→1 = 0.4) = 0.45.
        assert!((v[0] - (0.81f64).ln()).abs() < 1e-12);
        assert!((v[1] - (0.45f64).ln()).abs() < 1e-12);
    }
}
