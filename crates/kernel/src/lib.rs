//! `transmark-kernel` — the shared substrate of every layered DP in the
//! engine.
//!
//! Each theorem-bearing pass in `transmark-core`, `transmark-sproj`, and
//! `transmark-markov` is the same computation: seed a layer of cells
//! indexed by `(Markov node, machine row)`, advance it once per sequence
//! position through the product of the Markov transitions and a
//! finite-state machine's edges, then reduce the accepting cells. The
//! passes differ only in the *semiring* (sum-product, max-product,
//! reachability) and in what a "machine row" is. This crate factors that
//! shape out:
//!
//! * [`Semiring`] with the three monomorphic instantiations [`Prob`],
//!   [`MaxLog`], and [`Bool`] — uninhabited type-parameter enums, so every
//!   driver compiles to straight-line `f64`/`bool` code with no dynamic
//!   dispatch;
//! * [`SparseSteps`] — the Markov side, flattened once into CSR with zero
//!   transitions dropped at build time; the [`StepRows`] trait abstracts
//!   one step's rows so the same drivers also run against a [`LayerCsr`]
//!   rebuilt per layer from a pulled dense matrix (the streaming data
//!   plane: O(|Σ|²) data-side memory regardless of sequence length);
//! * [`StepGraph`] — the machine side, the product transitions
//!   precompiled once per query into CSR buckets keyed by
//!   `(input symbol, machine row)`;
//! * [`Workspace`] — double-buffered layer vectors, reused across
//!   invocations instead of reallocated;
//! * the [`dp`] drivers — `advance`, `advance_filtered`,
//!   `advance_tracked` (Viterbi back-pointers), `advance_string`;
//! * the [`exec`] strategy layer — [`Strategy`] names how a bound
//!   query's layers advance (sparse CSR, blocked dense, parallel-prefix
//!   scan) and [`ExecSteps`] dispatches the drivers over either bound
//!   storage; [`DenseSteps`] in [`dense`] is the no-CSR storage with the
//!   SIMD multiply stage (AVX2 with a runtime-chosen scalar fallback —
//!   see [`exec::simd_enabled`] / `TRANSMARK_FORCE_SCALAR`);
//! * [`incremental`] — dense semiring [`StepOperator`]s with
//!   compose/apply plus the two-stack [`SlidingProduct`], the
//!   window-eviction primitive behind sliding-window queries (amortized
//!   one composition per tick, no source rewind);
//! * [`SubsetLayer`] — sorted-iteration `HashMap` layers for the
//!   dynamic-state (subset construction) passes;
//! * [`Neumaier`] — compensated summation for final reductions.
//!
//! # Machine side vs. data side
//!
//! The artifacts split cleanly by what they depend on, and the prepared
//! query layer in `transmark-core` is built on that split:
//!
//! * **Machine-side** (sequence-independent): [`StepGraph`]s, emission
//!   tables, subset seeds. Compiled once per *query*, immutable
//!   afterwards, `Send + Sync`, and shared across binds and threads as
//!   [`SharedStepGraph`] (`Arc<StepGraph>`).
//! * **Data-side** (per-sequence): [`SparseSteps`] and [`Workspace`]s.
//!   Built once per *bind* of a sequence; `SparseSteps` is immutable and
//!   shareable as [`SharedSparseSteps`], while workspaces are mutable
//!   scratch and stay thread-local.
//!
//! Migrated passes promise **bit-identical** results to their hand-rolled
//! predecessors: same cell linearization, same visit order (node, then
//! row, then Markov target, then edge insertion order), same zero skips,
//! same plain `+=` inside layers with compensation only at the final
//! reduction, and first-wins tie-breaking in the tracked max driver.
//! The brute-force oracles and golden Table 1 assertions in the dependent
//! crates pin this.

pub mod dense;
pub mod dp;
pub mod exec;
pub mod incremental;
pub mod numeric;
pub mod semiring;
pub mod step_graph;
pub mod steps;
pub mod subset;
pub mod workspace;

pub use dense::{
    advance_dense, advance_dense_filtered, advance_dense_tracked, DenseLayer, DenseSteps,
};
pub use dp::{advance, advance_filtered, advance_string, advance_tracked, count_layers, BackEdge};
pub use exec::{force_scalar, simd_enabled, ExecSteps, Strategy};
pub use incremental::{SlidingProduct, StepOperator};
pub use numeric::Neumaier;
pub use semiring::{Bool, MaxLog, Prob, Semiring};
pub use step_graph::{MachineEdge, SharedStepGraph, StepGraph, StepGraphBuilder};
pub use steps::{LayerCsr, SharedSparseSteps, SparseSteps, SparseStepsBuilder, StepRows, StepView};
pub use subset::SubsetLayer;
pub use workspace::Workspace;
