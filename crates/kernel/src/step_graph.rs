//! Precompiled machine side of the product transitions.
//!
//! A layered DP's cell is `(markov node, machine row)`, where a "machine
//! row" flattens whatever the pass tracks per node — a transducer state
//! `q`, or a `(q, output position)` pair. Stepping the DP pairs a Markov
//! transition `node → to` with the machine edges enabled by reading `to`.
//! The hand-rolled passes re-derived those edges in the inner loop
//! (emission lookup, output-prefix comparison, target index arithmetic)
//! on every layer of every call; a [`StepGraph`] does that work once per
//! query and stores the surviving edges in a flat CSR indexed by
//! `(symbol, row)`.
//!
//! Buckets preserve insertion order, so a builder that adds edges in the
//! same order the hand-rolled loop visited them reproduces that loop's
//! accumulation sequence exactly — the bit-for-bit guarantee the migrated
//! passes rely on.

/// One precompiled machine edge: target row plus a caller-defined payload
/// (typically the interned emission id, used for Viterbi traceback or
/// per-step filtering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineEdge {
    pub to: u32,
    pub payload: u32,
}

/// CSR over `(input symbol, machine row)` buckets of [`MachineEdge`]s.
#[derive(Debug, Clone)]
pub struct StepGraph {
    n_symbols: usize,
    n_rows: usize,
    offsets: Vec<u32>,
    edges: Vec<MachineEdge>,
}

impl StepGraph {
    pub fn builder(n_symbols: usize, n_rows: usize) -> StepGraphBuilder {
        StepGraphBuilder {
            n_symbols,
            n_rows,
            buckets: vec![Vec::new(); n_symbols * n_rows],
        }
    }

    /// Number of machine rows per Markov node.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    #[inline]
    pub fn n_symbols(&self) -> usize {
        self.n_symbols
    }

    /// Edges enabled from `row` when the machine reads `symbol`, in the
    /// order they were added.
    #[inline]
    pub fn edges(&self, symbol: u32, row: u32) -> &[MachineEdge] {
        let b = symbol as usize * self.n_rows + row as usize;
        let lo = self.offsets[b] as usize;
        let hi = self.offsets[b + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Total number of precompiled edges (diagnostics / bench reporting).
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Approximate heap footprint in bytes (plan-introspection cost
    /// reporting; excludes the struct header).
    pub fn approx_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.edges.len() * std::mem::size_of::<MachineEdge>()
    }

    /// Wraps the graph for cross-thread sharing. A [`StepGraph`] is a
    /// machine-side artifact — it depends only on the query, never on a
    /// Markov sequence — so a prepared query builds it once and every bind
    /// (on any thread) reads the same copy.
    pub fn into_shared(self) -> SharedStepGraph {
        std::sync::Arc::new(self)
    }
}

/// A machine-side step graph shared across binds and threads.
pub type SharedStepGraph = std::sync::Arc<StepGraph>;

// Machine-side artifacts must be shareable across threads; this fails to
// compile if `StepGraph` ever grows a non-`Send`/`Sync` field.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StepGraph>();
};

/// Accumulates edges into per-`(symbol, row)` buckets, then flattens.
pub struct StepGraphBuilder {
    n_symbols: usize,
    n_rows: usize,
    buckets: Vec<Vec<MachineEdge>>,
}

impl StepGraphBuilder {
    #[inline]
    pub fn add_edge(&mut self, symbol: u32, from_row: u32, to_row: u32, payload: u32) {
        self.buckets[symbol as usize * self.n_rows + from_row as usize].push(MachineEdge {
            to: to_row,
            payload,
        });
    }

    pub fn build(self) -> StepGraph {
        let mut offsets = Vec::with_capacity(self.buckets.len() + 1);
        let mut edges = Vec::with_capacity(self.buckets.iter().map(Vec::len).sum());
        offsets.push(0);
        for bucket in &self.buckets {
            edges.extend_from_slice(bucket);
            offsets.push(edges.len() as u32);
        }
        StepGraph {
            n_symbols: self.n_symbols,
            n_rows: self.n_rows,
            offsets,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_preserve_insertion_order() {
        let mut b = StepGraph::builder(2, 3);
        b.add_edge(1, 0, 2, 7);
        b.add_edge(1, 0, 1, 8);
        b.add_edge(0, 2, 0, 9);
        let g = b.build();
        assert_eq!(g.n_symbols(), 2);
        assert_eq!(g.n_rows(), 3);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(
            g.edges(1, 0),
            &[
                MachineEdge { to: 2, payload: 7 },
                MachineEdge { to: 1, payload: 8 }
            ]
        );
        assert_eq!(g.edges(0, 2), &[MachineEdge { to: 0, payload: 9 }]);
        assert!(g.edges(0, 0).is_empty());
        assert!(g.edges(1, 2).is_empty());
    }
}
