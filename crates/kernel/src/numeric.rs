//! Compensated summation for final reductions.
//!
//! This is the engine's single Neumaier/Kahan implementation:
//! `transmark_markov::numeric::KahanSum` re-exports it, so every crate in
//! the workspace folds floats through the exact same operation sequence.
//! That sequence must not change: the migrated passes promise bit-for-bit
//! results, and the golden Table 1 assertions pin them.

/// Neumaier (improved Kahan) compensated accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Neumaier {
    sum: f64,
    compensation: f64,
}

impl Neumaier {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value`, tracking the rounding error of the addition.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl FromIterator<f64> for Neumaier {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut k = Neumaier::new();
        for v in iter {
            k.add(v);
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::Neumaier;

    #[test]
    fn recovers_mass_lost_by_naive_summation() {
        // Classic Neumaier showcase: 1 + 1e100 + 1 - 1e100 == 2 exactly,
        // while naive summation returns 0.
        let mut k = Neumaier::new();
        for v in [1.0, 1e100, 1.0, -1e100] {
            k.add(v);
        }
        assert_eq!(k.total(), 2.0);
    }

    #[test]
    fn matches_exact_sum_on_uniform_probabilities() {
        let n = 1_000_000;
        let mut k = Neumaier::new();
        for _ in 0..n {
            k.add(1.0 / n as f64);
        }
        assert!((k.total() - 1.0).abs() < 1e-15);
    }
}
