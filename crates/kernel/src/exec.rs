//! The execution-strategy layer: which inner loop advances a layer.
//!
//! Every DP pass used to run one hard-coded CSR loop regardless of layer
//! shape. This module names the alternatives and dispatches between them:
//!
//! * [`Strategy::Sparse`] — the original CSR walk ([`crate::dp`] over
//!   [`crate::SparseSteps`]): zero transitions dropped at build time,
//!   per-row `(target, prob)` pairs decoded per visit.
//! * [`Strategy::Dense`] — the blocked dense path ([`crate::dense`]):
//!   raw row-major `|Σ|²` matrices read in place, the per-row multiply
//!   staged through a SIMD lane loop. No CSR is built at all, which is
//!   also what makes tiny binds cheap.
//! * [`Strategy::Scan`] — the associative parallel-prefix schedule for
//!   whole prefix-series evaluations; the operator algebra lives in the
//!   engine crate (it needs the determinized query automaton), but the
//!   strategy is named here so planners, CLIs, and reports share one
//!   vocabulary.
//!
//! Sparse and dense advances are **bit-identical** for every semiring:
//! a dense row visits targets in the same ascending order the CSR stores
//! them, skips exactly the entries the CSR builder dropped (`p > 0`), and
//! a lane-wise `v·p` is the same IEEE-754 operation as the scalar one.
//! The scan strategy instead carries a documented summation-order
//! tolerance (see [`crate::dp`] module docs).
//!
//! [`ExecSteps`] is the dispatch handle the passes actually loop over: a
//! thin enum over the two bound storages, monomorphized per semiring at
//! each call site, so the branch is one predictable jump per layer — not
//! per cell.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use crate::dense::{advance_dense, advance_dense_filtered, advance_dense_tracked, DenseSteps};
use crate::dp::{advance, advance_filtered, advance_tracked, BackEdge};
use crate::semiring::Semiring;
use crate::step_graph::StepGraph;
use crate::steps::SparseSteps;

/// How a bound query's layer advances execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// CSR walk with zero transitions dropped at build time.
    Sparse,
    /// Blocked dense matrix–vector advance straight off the sequence's
    /// row-major transition buffer (no CSR build).
    Dense,
    /// Parallel-prefix composition of per-step transfer operators
    /// (prefix-series evaluations only).
    Scan,
}

impl Strategy {
    /// Stable lowercase label (CLI values, metric names, explain rows).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Sparse => "sparse",
            Strategy::Dense => "dense",
            Strategy::Scan => "scan",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sparse" => Ok(Strategy::Sparse),
            "dense" => Ok(Strategy::Dense),
            "scan" => Ok(Strategy::Scan),
            other => Err(format!(
                "unknown strategy {other:?} (expected sparse, dense, or scan)"
            )),
        }
    }
}

/// Whether the SIMD inner loop is disabled for this process via the
/// `TRANSMARK_FORCE_SCALAR` environment variable (any value except `0`
/// or the empty string). Checked once; the CI scalar leg sets it so the
/// fallback loop stays covered by the full test suite.
pub fn force_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("TRANSMARK_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Whether the dense multiply stage runs its `core::arch` lane loop:
/// requires x86-64 AVX2 at runtime and no scalar override. The answer is
/// cached after the first call.
pub fn simd_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        if force_scalar() {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// One bound step storage, ready to drive a pass: either the CSR or the
/// dense matrices. The variant is chosen once at bind time; the drivers
/// branch on it once per layer.
#[derive(Clone, Copy)]
pub enum ExecSteps<'a> {
    /// CSR rows (the [`Strategy::Sparse`] storage).
    Sparse(&'a SparseSteps),
    /// Row-major dense layers (the [`Strategy::Dense`] storage).
    Dense(&'a DenseSteps<'a>),
}

impl<'a> ExecSteps<'a> {
    /// The strategy this storage executes.
    pub fn strategy(self) -> Strategy {
        match self {
            ExecSteps::Sparse(_) => Strategy::Sparse,
            ExecSteps::Dense(_) => Strategy::Dense,
        }
    }

    /// `|Σ|` of the bound sequence.
    pub fn n_nodes(self) -> usize {
        match self {
            ExecSteps::Sparse(s) => s.n_nodes(),
            ExecSteps::Dense(d) => d.n_nodes(),
        }
    }

    /// Number of transition steps (`n - 1`).
    pub fn n_steps(self) -> usize {
        match self {
            ExecSteps::Sparse(s) => s.n_steps(),
            ExecSteps::Dense(d) => d.n_steps(),
        }
    }

    /// The nonzero initial entries `(node, μ₀→(node))`, ascending.
    pub fn initial(self) -> &'a [(u32, f64)] {
        match self {
            ExecSteps::Sparse(s) => s.initial(),
            ExecSteps::Dense(d) => d.initial(),
        }
    }

    /// One layer advance at step `i` — [`advance`] or [`advance_dense`],
    /// bit-identical either way.
    #[inline]
    pub fn advance<S: Semiring>(
        self,
        i: usize,
        graph: &StepGraph,
        cur: &[S::Elem],
        next: &mut [S::Elem],
    ) {
        match self {
            ExecSteps::Sparse(s) => advance::<S, _>(&s.at(i), graph, cur, next),
            ExecSteps::Dense(d) => advance_dense::<S>(&d.layer(i), graph, cur, next),
        }
    }

    /// Payload-gated advance at step `i` ([`advance_filtered`] /
    /// [`advance_dense_filtered`]).
    #[inline]
    pub fn advance_filtered<S: Semiring>(
        self,
        i: usize,
        graph: &StepGraph,
        expected: u32,
        cur: &[S::Elem],
        next: &mut [S::Elem],
    ) {
        match self {
            ExecSteps::Sparse(s) => advance_filtered::<S, _>(&s.at(i), graph, expected, cur, next),
            ExecSteps::Dense(d) => {
                advance_dense_filtered::<S>(&d.layer(i), graph, expected, cur, next)
            }
        }
    }

    /// Tracked (Viterbi) advance at step `i` ([`advance_tracked`] /
    /// [`advance_dense_tracked`]).
    #[inline]
    pub fn advance_tracked(
        self,
        i: usize,
        graph: &StepGraph,
        cur: &[f64],
        next: &mut [f64],
        back: &mut [BackEdge],
    ) {
        match self {
            ExecSteps::Sparse(s) => advance_tracked(&s.at(i), graph, cur, next, back),
            ExecSteps::Dense(d) => advance_dense_tracked(&d.layer(i), graph, cur, next, back),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_labels_round_trip() {
        for s in [Strategy::Sparse, Strategy::Dense, Strategy::Scan] {
            assert_eq!(s.label().parse::<Strategy>().unwrap(), s);
            assert_eq!(format!("{s}"), s.label());
        }
        assert!("best".parse::<Strategy>().is_err());
    }
}
