//! Precompiled sparse view of a Markov sequence's transition structure.
//!
//! Every layered DP walks the same probability data: the initial
//! distribution and one `|Σ|×|Σ|` transition matrix per position. The
//! hand-rolled passes probed those matrices densely (`for to in 0..k`,
//! skipping zeros one probe at a time); [`SparseSteps`] flattens the
//! nonzero entries into one CSR array so the drivers touch only live
//! transitions. Rows keep ascending-`to` order and drop exact zeros —
//! the same visit order and the same skips as the dense probes, so
//! float accumulation sequences (and results, bit for bit) are
//! unchanged.
//!
//! Built once per query (or once per session for the enumeration DFS,
//! which runs hundreds of DPs over one chain) via [`SparseStepsBuilder`];
//! the kernel has no dependency on `transmark-markov`, so the markov crate
//! provides the conversion.

/// CSR layout of an inhomogeneous Markov sequence's nonzero transitions.
#[derive(Debug, Clone)]
pub struct SparseSteps {
    n_nodes: usize,
    n_steps: usize,
    initial: Vec<(u32, f64)>,
    /// `offsets[step * n_nodes + from] .. offsets[step * n_nodes + from + 1]`
    /// indexes the row's entries.
    offsets: Vec<u32>,
    /// `(to, probability)` pairs, ascending `to`, exact zeros omitted.
    entries: Vec<(u32, f64)>,
}

impl SparseSteps {
    pub fn builder(n_nodes: usize, n_steps: usize) -> SparseStepsBuilder {
        SparseStepsBuilder {
            steps: SparseSteps {
                n_nodes,
                n_steps,
                initial: Vec::new(),
                offsets: vec![0],
                entries: Vec::new(),
            },
        }
    }

    /// Number of distinct node symbols `|Σ|`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of transition steps (sequence length − 1).
    #[inline]
    pub fn n_steps(&self) -> usize {
        self.n_steps
    }

    /// The nonzero entries of the initial distribution, ascending node.
    #[inline]
    pub fn initial(&self) -> &[(u32, f64)] {
        &self.initial
    }

    /// The nonzero transitions out of `from` at `step`, ascending `to`.
    #[inline]
    pub fn row(&self, step: usize, from: usize) -> &[(u32, f64)] {
        let r = step * self.n_nodes + from;
        let lo = self.offsets[r] as usize;
        let hi = self.offsets[r + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Total number of stored nonzero transitions (diagnostics).
    #[inline]
    pub fn n_entries(&self) -> usize {
        self.entries.len()
    }

    /// Wraps the steps for sharing. `SparseSteps` is a *data-side*
    /// artifact — it depends only on the Markov sequence — so a bound
    /// query builds it once per sequence and every pass over that bind
    /// reads the same copy.
    pub fn into_shared(self) -> SharedSparseSteps {
        std::sync::Arc::new(self)
    }
}

/// A data-side CSR shared across the passes of one bind.
pub type SharedSparseSteps = std::sync::Arc<SparseSteps>;

const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SparseSteps>();
};

/// Row-by-row constructor for [`SparseSteps`]. Push rows in
/// `(step, from)`-major order; each row's entries in ascending `to`.
pub struct SparseStepsBuilder {
    steps: SparseSteps,
}

impl SparseStepsBuilder {
    /// Pre-sizes the entry array. `entries` may be an upper bound (e.g.
    /// the dense transition count); the CSR build is append-only, so
    /// reserving once avoids repeated reallocation on large chains.
    #[inline]
    pub fn reserve(&mut self, entries: usize) {
        self.steps.entries.reserve(entries);
        self.steps
            .offsets
            .reserve(self.steps.n_steps * self.steps.n_nodes);
    }

    /// Records a nonzero initial probability. Call in ascending node order.
    #[inline]
    pub fn push_initial(&mut self, node: u32, p: f64) {
        debug_assert!(p != 0.0, "zero entries are skipped at build time");
        self.steps.initial.push((node, p));
    }

    /// Records a nonzero transition in the current row.
    #[inline]
    pub fn push_transition(&mut self, to: u32, p: f64) {
        debug_assert!(p != 0.0, "zero entries are skipped at build time");
        self.steps.entries.push((to, p));
    }

    /// Closes the current `(step, from)` row.
    #[inline]
    pub fn finish_row(&mut self) {
        self.steps.offsets.push(self.steps.entries.len() as u32);
    }

    pub fn build(self) -> SparseSteps {
        assert_eq!(
            self.steps.offsets.len(),
            self.steps.n_steps * self.steps.n_nodes + 1,
            "every (step, from) row must be finished exactly once"
        );
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_sparse_and_ordered() {
        // 2 nodes, 2 steps; step 0 matrix [[0.5, 0.5], [0, 1]],
        // step 1 matrix [[1, 0], [0.25, 0.75]].
        let mut b = SparseSteps::builder(2, 2);
        b.push_initial(0, 0.9);
        b.push_initial(1, 0.1);
        for (row, entries) in [
            vec![(0, 0.5), (1, 0.5)],
            vec![(1, 1.0)],
            vec![(0, 1.0)],
            vec![(0, 0.25), (1, 0.75)],
        ]
        .iter()
        .enumerate()
        {
            let _ = row;
            for &(to, p) in entries {
                b.push_transition(to, p);
            }
            b.finish_row();
        }
        let s = b.build();
        assert_eq!(s.n_nodes(), 2);
        assert_eq!(s.n_steps(), 2);
        assert_eq!(s.initial(), &[(0, 0.9), (1, 0.1)]);
        assert_eq!(s.row(0, 0), &[(0, 0.5), (1, 0.5)]);
        assert_eq!(s.row(0, 1), &[(1, 1.0)]);
        assert_eq!(s.row(1, 0), &[(0, 1.0)]);
        assert_eq!(s.row(1, 1), &[(0, 0.25), (1, 0.75)]);
    }

    #[test]
    #[should_panic(expected = "finished exactly once")]
    fn unfinished_rows_are_rejected() {
        let b = SparseSteps::builder(2, 1);
        let _ = b.build();
    }
}
