//! Precompiled sparse view of a Markov sequence's transition structure.
//!
//! Every layered DP walks the same probability data: the initial
//! distribution and one `|Σ|×|Σ|` transition matrix per position. The
//! hand-rolled passes probed those matrices densely (`for to in 0..k`,
//! skipping zeros one probe at a time); [`SparseSteps`] flattens the
//! nonzero entries into one CSR array so the drivers touch only live
//! transitions. Rows keep ascending-`to` order and drop exact zeros —
//! the same visit order and the same skips as the dense probes, so
//! float accumulation sequences (and results, bit for bit) are
//! unchanged.
//!
//! Built once per query (or once per session for the enumeration DFS,
//! which runs hundreds of DPs over one chain) via [`SparseStepsBuilder`];
//! the kernel has no dependency on `transmark-markov`, so the markov crate
//! provides the conversion.

/// One step's worth of transition rows — the minimal data-side view a
/// layer advance consumes.
///
/// The drivers in [`crate::dp`] are generic over this trait so the same
/// monomorphized loop runs against a fully materialized CSR
/// ([`SparseSteps::at`]) or a single-layer CSR rebuilt per step from a
/// pulled dense matrix ([`LayerCsr`]). Implementations must present each
/// row's nonzero `(to, p)` entries in ascending `to` with exact zeros
/// omitted — the invariant the bit-reproducibility contract rests on.
pub trait StepRows {
    /// Number of distinct node symbols `|Σ|`.
    fn n_nodes(&self) -> usize;
    /// The nonzero transitions out of `from`, ascending `to`.
    fn row(&self, from: usize) -> &[(u32, f64)];
}

/// Borrowed view of one step of a [`SparseSteps`] CSR.
#[derive(Debug, Clone, Copy)]
pub struct StepView<'a> {
    steps: &'a SparseSteps,
    step: usize,
}

impl StepRows for StepView<'_> {
    #[inline]
    fn n_nodes(&self) -> usize {
        self.steps.n_nodes
    }

    #[inline]
    fn row(&self, from: usize) -> &[(u32, f64)] {
        self.steps.row(self.step, from)
    }
}

/// A reusable single-step CSR, rebuilt in place from one dense row-major
/// `|Σ|×|Σ|` matrix at a time.
///
/// This is the streaming counterpart of [`SparseSteps`]: a pulled step
/// layer is compacted into exactly the row content (ascending `to`, zeros
/// dropped) that [`SparseSteps::at`] would present for the same matrix,
/// so a DP driven layer-by-layer through a `LayerCsr` accumulates floats
/// in the same sequence — bit for bit — as the materialized path. Both
/// buffers are reused across [`LayerCsr::load_dense`] calls, so a
/// forward pass holds O(|Σ|²) data-side state regardless of sequence
/// length.
#[derive(Debug, Clone, Default)]
pub struct LayerCsr {
    n_nodes: usize,
    offsets: Vec<u32>,
    entries: Vec<(u32, f64)>,
}

impl LayerCsr {
    pub fn new() -> Self {
        LayerCsr::default()
    }

    /// Rebuilds the CSR from a dense row-major `k×k` matrix
    /// (`matrix[from * k + to]`). Panics if `matrix.len() != k * k`.
    pub fn load_dense(&mut self, k: usize, matrix: &[f64]) {
        assert_eq!(matrix.len(), k * k, "dense layer must be k×k");
        self.n_nodes = k;
        self.offsets.clear();
        self.entries.clear();
        self.offsets.push(0);
        for from in 0..k {
            let row = &matrix[from * k..(from + 1) * k];
            for (to, &p) in row.iter().enumerate() {
                if p != 0.0 {
                    self.entries.push((to as u32, p));
                }
            }
            self.offsets.push(self.entries.len() as u32);
        }
    }
}

impl StepRows for LayerCsr {
    #[inline]
    fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    #[inline]
    fn row(&self, from: usize) -> &[(u32, f64)] {
        let lo = self.offsets[from] as usize;
        let hi = self.offsets[from + 1] as usize;
        &self.entries[lo..hi]
    }
}

/// CSR layout of an inhomogeneous Markov sequence's nonzero transitions.
#[derive(Debug, Clone)]
pub struct SparseSteps {
    n_nodes: usize,
    n_steps: usize,
    initial: Vec<(u32, f64)>,
    /// `offsets[step * n_nodes + from] .. offsets[step * n_nodes + from + 1]`
    /// indexes the row's entries.
    offsets: Vec<u32>,
    /// `(to, probability)` pairs, ascending `to`, exact zeros omitted.
    entries: Vec<(u32, f64)>,
}

impl SparseSteps {
    pub fn builder(n_nodes: usize, n_steps: usize) -> SparseStepsBuilder {
        SparseStepsBuilder {
            steps: SparseSteps {
                n_nodes,
                n_steps,
                initial: Vec::new(),
                offsets: vec![0],
                entries: Vec::new(),
            },
        }
    }

    /// Number of distinct node symbols `|Σ|`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of transition steps (sequence length − 1).
    #[inline]
    pub fn n_steps(&self) -> usize {
        self.n_steps
    }

    /// The nonzero entries of the initial distribution, ascending node.
    #[inline]
    pub fn initial(&self) -> &[(u32, f64)] {
        &self.initial
    }

    /// The nonzero transitions out of `from` at `step`, ascending `to`.
    #[inline]
    pub fn row(&self, step: usize, from: usize) -> &[(u32, f64)] {
        let r = step * self.n_nodes + from;
        let lo = self.offsets[r] as usize;
        let hi = self.offsets[r + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Borrowed [`StepRows`] view of one step, for the generic drivers.
    #[inline]
    pub fn at(&self, step: usize) -> StepView<'_> {
        debug_assert!(step < self.n_steps, "step out of range");
        StepView { steps: self, step }
    }

    /// Total number of stored nonzero transitions (diagnostics).
    #[inline]
    pub fn n_entries(&self) -> usize {
        self.entries.len()
    }

    /// Wraps the steps for sharing. `SparseSteps` is a *data-side*
    /// artifact — it depends only on the Markov sequence — so a bound
    /// query builds it once per sequence and every pass over that bind
    /// reads the same copy.
    pub fn into_shared(self) -> SharedSparseSteps {
        std::sync::Arc::new(self)
    }
}

/// A data-side CSR shared across the passes of one bind.
pub type SharedSparseSteps = std::sync::Arc<SparseSteps>;

const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SparseSteps>();
};

/// Row-by-row constructor for [`SparseSteps`]. Push rows in
/// `(step, from)`-major order; each row's entries in ascending `to`.
pub struct SparseStepsBuilder {
    steps: SparseSteps,
}

impl SparseStepsBuilder {
    /// Pre-sizes the entry array. `entries` may be an upper bound (e.g.
    /// the dense transition count); the CSR build is append-only, so
    /// reserving once avoids repeated reallocation on large chains.
    #[inline]
    pub fn reserve(&mut self, entries: usize) {
        self.steps.entries.reserve(entries);
        self.steps
            .offsets
            .reserve(self.steps.n_steps * self.steps.n_nodes);
    }

    /// Records a nonzero initial probability. Call in ascending node order.
    #[inline]
    pub fn push_initial(&mut self, node: u32, p: f64) {
        debug_assert!(p != 0.0, "zero entries are skipped at build time");
        self.steps.initial.push((node, p));
    }

    /// Records a nonzero transition in the current row.
    #[inline]
    pub fn push_transition(&mut self, to: u32, p: f64) {
        debug_assert!(p != 0.0, "zero entries are skipped at build time");
        self.steps.entries.push((to, p));
    }

    /// Closes the current `(step, from)` row.
    #[inline]
    pub fn finish_row(&mut self) {
        self.steps.offsets.push(self.steps.entries.len() as u32);
    }

    pub fn build(self) -> SparseSteps {
        assert_eq!(
            self.steps.offsets.len(),
            self.steps.n_steps * self.steps.n_nodes + 1,
            "every (step, from) row must be finished exactly once"
        );
        transmark_obs::counter!("kernel.csr.builds").inc();
        transmark_obs::histogram!("kernel.csr.entries").record(self.steps.entries.len() as u64);
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_sparse_and_ordered() {
        // 2 nodes, 2 steps; step 0 matrix [[0.5, 0.5], [0, 1]],
        // step 1 matrix [[1, 0], [0.25, 0.75]].
        let mut b = SparseSteps::builder(2, 2);
        b.push_initial(0, 0.9);
        b.push_initial(1, 0.1);
        for (row, entries) in [
            vec![(0, 0.5), (1, 0.5)],
            vec![(1, 1.0)],
            vec![(0, 1.0)],
            vec![(0, 0.25), (1, 0.75)],
        ]
        .iter()
        .enumerate()
        {
            let _ = row;
            for &(to, p) in entries {
                b.push_transition(to, p);
            }
            b.finish_row();
        }
        let s = b.build();
        assert_eq!(s.n_nodes(), 2);
        assert_eq!(s.n_steps(), 2);
        assert_eq!(s.initial(), &[(0, 0.9), (1, 0.1)]);
        assert_eq!(s.row(0, 0), &[(0, 0.5), (1, 0.5)]);
        assert_eq!(s.row(0, 1), &[(1, 1.0)]);
        assert_eq!(s.row(1, 0), &[(0, 1.0)]);
        assert_eq!(s.row(1, 1), &[(0, 0.25), (1, 0.75)]);
    }

    #[test]
    #[should_panic(expected = "finished exactly once")]
    fn unfinished_rows_are_rejected() {
        let b = SparseSteps::builder(2, 1);
        let _ = b.build();
    }

    #[test]
    fn layer_csr_matches_step_view() {
        // The same matrices as `rows_are_sparse_and_ordered`, loaded one
        // dense layer at a time, must present identical rows.
        let mut b = SparseSteps::builder(2, 2);
        b.push_initial(0, 0.9);
        b.push_initial(1, 0.1);
        let layers = [vec![0.5, 0.5, 0.0, 1.0], vec![1.0, 0.0, 0.25, 0.75]];
        for m in &layers {
            for from in 0..2 {
                for to in 0..2 {
                    let p = m[from * 2 + to];
                    if p != 0.0 {
                        b.push_transition(to as u32, p);
                    }
                }
                b.finish_row();
            }
        }
        let s = b.build();
        let mut csr = LayerCsr::new();
        for (step, m) in layers.iter().enumerate() {
            csr.load_dense(2, m);
            let view = s.at(step);
            assert_eq!(csr.n_nodes(), view.n_nodes());
            for from in 0..2 {
                assert_eq!(csr.row(from), view.row(from));
            }
        }
    }
}
