//! Reusable double-buffered layer storage.
//!
//! The hand-rolled passes allocated two fresh `Vec`s per call (and the
//! enumeration DFS did so per *trie node*). A [`Workspace`] owns the pair
//! and is reset — not reallocated — between invocations, so repeated DPs
//! over the same machine reuse hot memory.

/// Double-buffered `cur`/`next` layer vectors.
#[derive(Debug, Clone, Default)]
pub struct Workspace<E> {
    cur: Vec<E>,
    next: Vec<E>,
}

impl<E: Copy> Workspace<E> {
    pub fn new() -> Self {
        Workspace {
            cur: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Sizes both buffers to `cells` and fills them with `zero`. Keeps
    /// capacity across calls.
    pub fn reset(&mut self, cells: usize, zero: E) {
        if cells > self.cur.capacity() || cells > self.next.capacity() {
            transmark_obs::counter!("kernel.workspace.realloc").inc();
        } else {
            transmark_obs::counter!("kernel.workspace.reuse").inc();
        }
        self.cur.clear();
        self.cur.resize(cells, zero);
        self.next.clear();
        self.next.resize(cells, zero);
    }

    #[inline]
    pub fn cur(&self) -> &[E] {
        &self.cur
    }

    #[inline]
    pub fn cur_mut(&mut self) -> &mut [E] {
        &mut self.cur
    }

    /// Read buffer and write buffer together, for the step drivers.
    #[inline]
    pub fn buffers(&mut self) -> (&[E], &mut [E]) {
        (&self.cur, &mut self.next)
    }

    /// Makes `next` the new `cur` (the old `cur` becomes scratch).
    #[inline]
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Zeroes the write buffer before the next step.
    #[inline]
    pub fn clear_next(&mut self, zero: E) {
        self.next.iter_mut().for_each(|v| *v = zero);
    }
}

#[cfg(test)]
mod tests {
    use super::Workspace;

    #[test]
    fn reset_and_swap_cycle() {
        let mut ws: Workspace<f64> = Workspace::new();
        ws.reset(3, 0.0);
        ws.cur_mut()[1] = 2.0;
        {
            let (cur, next) = ws.buffers();
            next[0] = cur[1] * 3.0;
        }
        ws.swap();
        assert_eq!(ws.cur(), &[6.0, 0.0, 0.0]);
        ws.clear_next(0.0);
        ws.reset(2, 1.0);
        assert_eq!(ws.cur(), &[1.0, 1.0]);
    }
}
