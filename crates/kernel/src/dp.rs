//! The layer-advance drivers: one product-graph step per call.
//!
//! Cell layout is `node * graph.n_rows() + row` — the same linearization
//! as the hand-rolled passes (`(node * nq + q) * width + j` with
//! `row = q * width + j`). Iteration order is node-ascending, then
//! row-ascending, then Markov target ascending, then machine-edge
//! insertion order, with zero cells and zero transitions skipped — again
//! exactly the hand-rolled order, so per-cell float accumulation happens
//! in the same sequence and results are bit-identical.
//!
//! Every driver is generic over [`Semiring`] and monomorphizes fully at
//! each call site: no dynamic dispatch, no branching on semiring identity
//! inside the loops.
//!
//! # Execution strategies and numerics
//!
//! The sequential drivers here and the dense drivers in [`crate::dense`]
//! are **bit-identical** for all three semirings: a dense row visits
//! targets in the same ascending order the CSR stores them, skips exactly
//! the `p > 0` entries the CSR builder kept, and each lane product is the
//! same single IEEE-754 multiply as the scalar path.
//!
//! The parallel-prefix **scan** strategy (the engine crate's prefix-series
//! evaluator) is the one sanctioned exception to bit-identity. It
//! composes per-step transfer operators associatively, which reorders the
//! sum-product accumulation relative to the sequential fold — both
//! because chunk boundaries split the fold and because the scan assigns
//! determinized-subset ids by breadth-first discovery instead of the
//! fold's data-dependent interning order. Reordering a correctly-rounded
//! `f64` sum perturbs results by at most a few ULPs per term; the scan
//! evaluator therefore asserts agreement with the sequential fold to a
//! **relative tolerance of 1e-12** (orders of magnitude above observed
//! drift, orders below any decision threshold). For a fixed input and
//! worker count the scan result is itself deterministic — chunk shapes
//! are a pure function of `(n, threads)`, never of scheduling.

use crate::semiring::Semiring;
use crate::step_graph::StepGraph;
use crate::steps::StepRows;

/// Folds `n` layer advances into the `kernel.advance.layers` counter
/// and, when a profiler [`Recorder`](transmark_obs::Recorder) scope is
/// active on this thread, emits a layer-progress timeline sample.
///
/// The advance drivers themselves do not count: a per-layer atomic is
/// measurable against a degenerate layer (small machine, small
/// alphabet), so each DP pass reports its whole sweep with one call —
/// the overhead guard in `scripts/check.sh` holds the line. The
/// progress hook shares that batching, and its inactive fast path is a
/// single relaxed load.
#[inline]
pub fn count_layers(n: u64) {
    transmark_obs::counter!("kernel.advance.layers").add(n);
    transmark_obs::profile::progress(n);
}

/// Advances one layer: `next[(to, e.to)] ⊕= cur[(node, row)] ⊗ p` for every
/// nonzero transition `node →p to` in `steps` (one step's rows — see
/// [`StepRows`]) and every machine edge `e` enabled by reading `to` from
/// `row`. `next` must be zero-filled.
pub fn advance<S: Semiring, R: StepRows>(
    steps: &R,
    graph: &StepGraph,
    cur: &[S::Elem],
    next: &mut [S::Elem],
) {
    let nr = graph.n_rows();
    for node in 0..steps.n_nodes() {
        let base = node * nr;
        for row in 0..nr {
            let v = cur[base + row];
            if S::is_zero(v) {
                continue;
            }
            for &(to, p) in steps.row(node) {
                let w = S::mul(v, S::from_prob(p));
                let to_base = to as usize * nr;
                for e in graph.edges(to, row as u32) {
                    S::accum(&mut next[to_base + e.to as usize], w);
                }
            }
        }
    }
}

/// [`advance`], but an edge contributes only if its payload equals
/// `expected` — the k-uniform fast path, where the payload is the interned
/// emission id and `expected` is the id of the output k-gram this step
/// must emit (`u32::MAX`, never a valid id, when the gram is not interned).
pub fn advance_filtered<S: Semiring, R: StepRows>(
    steps: &R,
    graph: &StepGraph,
    expected: u32,
    cur: &[S::Elem],
    next: &mut [S::Elem],
) {
    let nr = graph.n_rows();
    for node in 0..steps.n_nodes() {
        let base = node * nr;
        for row in 0..nr {
            let v = cur[base + row];
            if S::is_zero(v) {
                continue;
            }
            for &(to, p) in steps.row(node) {
                let w = S::mul(v, S::from_prob(p));
                let to_base = to as usize * nr;
                for e in graph.edges(to, row as u32) {
                    if e.payload == expected {
                        S::accum(&mut next[to_base + e.to as usize], w);
                    }
                }
            }
        }
    }
}

/// Back-pointer of a tracked (Viterbi) step: the flat source cell and the
/// taken edge's payload. `prev == u32::MAX` marks a first-layer cell.
#[derive(Debug, Clone, Copy)]
pub struct BackEdge {
    pub prev: u32,
    pub payload: u32,
}

impl BackEdge {
    pub const NONE: BackEdge = BackEdge {
        prev: u32::MAX,
        payload: 0,
    };
}

/// Max-product advance in log space with back-pointer recording: a cell
/// updates only on strict improvement, so ties keep the first-visited
/// predecessor — the tie-breaking the traceback-based passes relied on.
/// `next` must be filled with `-∞` and `back` may hold arbitrary entries
/// (a cell's entry is meaningful only if its score is finite).
pub fn advance_tracked<R: StepRows>(
    steps: &R,
    graph: &StepGraph,
    cur: &[f64],
    next: &mut [f64],
    back: &mut [BackEdge],
) {
    let nr = graph.n_rows();
    for node in 0..steps.n_nodes() {
        let base = node * nr;
        for row in 0..nr {
            let v = cur[base + row];
            if v == f64::NEG_INFINITY {
                continue;
            }
            for &(to, p) in steps.row(node) {
                let cand = v + p.ln();
                let to_base = to as usize * nr;
                for e in graph.edges(to, row as u32) {
                    let cell = to_base + e.to as usize;
                    if cand > next[cell] {
                        next[cell] = cand;
                        back[cell] = BackEdge {
                            prev: (base + row) as u32,
                            payload: e.payload,
                        };
                    }
                }
            }
        }
    }
}

/// Machine-only advance over a concrete (already sampled) string: no
/// Markov factor, the machine reads `symbol`. Used per input position by
/// the Monte-Carlo membership test, which reuses one graph across tens of
/// thousands of samples. `next` must be zero-filled.
pub fn advance_string<S: Semiring>(
    graph: &StepGraph,
    symbol: u32,
    cur: &[S::Elem],
    next: &mut [S::Elem],
) {
    for (row, &v) in cur.iter().enumerate() {
        if S::is_zero(v) {
            continue;
        }
        for e in graph.edges(symbol, row as u32) {
            S::accum(&mut next[e.to as usize], v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{Bool, MaxLog, Prob};
    use crate::steps::SparseSteps;

    /// 2 nodes, machine = 1 row (identity over states), chain:
    /// initial [0.6, 0.4], one step [[0.5, 0.5], [1.0, 0.0]].
    fn tiny() -> (SparseSteps, StepGraph) {
        let mut b = SparseSteps::builder(2, 1);
        b.push_initial(0, 0.6);
        b.push_initial(1, 0.4);
        b.push_transition(0, 0.5);
        b.push_transition(1, 0.5);
        b.finish_row();
        b.push_transition(0, 1.0);
        b.finish_row();
        let steps = b.build();
        let mut g = StepGraph::builder(2, 1);
        g.add_edge(0, 0, 0, 10);
        g.add_edge(1, 0, 0, 11);
        (steps, g.build())
    }

    #[test]
    fn sum_product_matches_hand_computation() {
        let (steps, graph) = tiny();
        let mut cur = vec![0.0; 2];
        for &(node, p) in steps.initial() {
            cur[node as usize] += p;
        }
        let mut next = vec![0.0; 2];
        advance::<Prob, _>(&steps.at(0), &graph, &cur, &mut next);
        // P(X2 = a) = 0.6·0.5 + 0.4·1.0, P(X2 = b) = 0.6·0.5.
        assert_eq!(next, vec![0.6 * 0.5 + 0.4, 0.6 * 0.5]);
    }

    #[test]
    fn bool_and_prob_agree_on_support() {
        let (steps, graph) = tiny();
        let mut curp = vec![0.0; 2];
        let mut curb = vec![false; 2];
        for &(node, p) in steps.initial() {
            curp[node as usize] += p;
            curb[node as usize] = true;
        }
        let mut np = vec![0.0; 2];
        let mut nb = vec![false; 2];
        advance::<Prob, _>(&steps.at(0), &graph, &curp, &mut np);
        advance::<Bool, _>(&steps.at(0), &graph, &curb, &mut nb);
        for (p, b) in np.iter().zip(nb.iter()) {
            assert_eq!(*p > 0.0, *b);
        }
    }

    #[test]
    fn tracked_max_prefers_best_and_records_source() {
        let (steps, graph) = tiny();
        let mut cur = vec![f64::NEG_INFINITY; 2];
        for &(node, p) in steps.initial() {
            cur[node as usize] = p.ln();
        }
        let mut next = vec![f64::NEG_INFINITY; 2];
        let mut back = vec![BackEdge::NONE; 2];
        advance_tracked(&steps.at(0), &graph, &cur, &mut next, &mut back);
        // Best path into node 0: max(0.6·0.5, 0.4·1.0) = 0.4 via node 1.
        assert!((next[0] - (0.4f64).ln()).abs() < 1e-12);
        assert_eq!(back[0].prev, 1);
        assert_eq!(back[0].payload, 10);
        // Node 1 reachable only from node 0.
        assert!((next[1] - (0.3f64).ln()).abs() < 1e-12);
        assert_eq!(back[1].prev, 0);
        assert_eq!(back[1].payload, 11);
    }

    #[test]
    fn maxlog_advance_matches_tracked_scores() {
        let (steps, graph) = tiny();
        let mut cur = vec![f64::NEG_INFINITY; 2];
        for &(node, p) in steps.initial() {
            cur[node as usize] = p.ln();
        }
        let mut a = vec![f64::NEG_INFINITY; 2];
        advance::<MaxLog, _>(&steps.at(0), &graph, &cur, &mut a);
        let mut b = vec![f64::NEG_INFINITY; 2];
        let mut back = vec![BackEdge::NONE; 2];
        advance_tracked(&steps.at(0), &graph, &cur, &mut b, &mut back);
        assert_eq!(a, b);
    }

    #[test]
    fn filtered_advance_gates_on_payload() {
        let (steps, graph) = tiny();
        let cur = vec![1.0, 1.0];
        let mut next = vec![0.0; 2];
        advance_filtered::<Prob, _>(&steps.at(0), &graph, 11, &cur, &mut next);
        // Only the payload-11 edge (symbol 1, i.e. into node 1) survives.
        assert_eq!(next[0], 0.0);
        assert!(next[1] > 0.0);
        let mut none = vec![0.0; 2];
        advance_filtered::<Prob, _>(&steps.at(0), &graph, u32::MAX, &cur, &mut none);
        assert_eq!(none, vec![0.0, 0.0]);
    }

    #[test]
    fn string_advance_ignores_markov_factor() {
        let (_, graph) = tiny();
        let cur = vec![true];
        let mut next = vec![false];
        advance_string::<Bool>(&graph, 0, &cur, &mut next);
        assert!(next[0]);
    }
}
