//! The dense execution path: layer advances straight off row-major
//! `|Σ|²` transition matrices, no CSR build.
//!
//! [`DenseSteps`] borrows the sequence's contiguous transition buffer
//! (`MarkovSequence::transitions_flat` upstream) plus its initial
//! distribution; the advance drivers here mirror [`crate::dp`] loop for
//! loop. Bit-identity with the sparse kernel holds because:
//!
//! * a dense row visits targets in ascending order — the order the CSR
//!   builder stored them;
//! * entries with `p > 0` are processed, the rest skipped — exactly the
//!   builder's drop predicate;
//! * the staged multiply computes `v·p` per lane, and one IEEE-754
//!   multiply is the same operation in a SIMD lane as in a scalar
//!   register — no reassociation, no FMA contraction.
//!
//! The multiply stage is the explicit SIMD inner loop: for the
//! sum-product semiring a whole row of `v·p[to]` products is computed at
//! once ([`mul_row_f64`], AVX2 on x86-64 with a scalar fallback chosen at
//! runtime — see [`crate::exec::simd_enabled`]). The scatter along
//! machine edges stays scalar in source order, which is what pins the
//! accumulation sequence. Max-log and Boolean advances use the scalar
//! stage unconditionally (`ln` and `bool` have no profitable lane form).

use crate::dp::BackEdge;
use crate::semiring::Semiring;
use crate::step_graph::StepGraph;

/// Rows staged through the lane multiply at most this wide; wider
/// alphabets (rare — `|Σ|` is a sensor/node vocabulary) fall back to the
/// inline scalar loop, which is still bit-identical.
pub const STAGE_CAP: usize = 64;

/// The dense counterpart of [`crate::SparseSteps`]: a borrowed view of
/// the sequence's back-to-back row-major `|Σ|²` matrices. Building one
/// is O(|Σ|) — the nonzero initial entries are the only materialized
/// part — which is the whole point: tiny binds pay nothing resembling a
/// CSR flatten.
#[derive(Debug, Clone)]
pub struct DenseSteps<'a> {
    n_nodes: usize,
    n_steps: usize,
    /// Nonzero `(node, μ₀→(node))` entries, ascending — same contents and
    /// order as [`crate::SparseSteps::initial`].
    initial: Vec<(u32, f64)>,
    /// `n_steps` matrices, stride `|Σ|²`.
    layers: &'a [f64],
}

impl<'a> DenseSteps<'a> {
    /// Wraps an initial distribution (dense, length `|Σ|`) and the flat
    /// layer buffer (`|Σ|²`-stride, possibly empty).
    pub fn new(n_nodes: usize, initial: &[f64], layers: &'a [f64]) -> Self {
        assert_eq!(initial.len(), n_nodes, "initial distribution is |Σ|");
        let kk = n_nodes * n_nodes;
        assert!(
            kk > 0 && layers.len().is_multiple_of(kk),
            "layer buffer must be a multiple of |Σ|²"
        );
        transmark_obs::counter!("kernel.dense.binds").inc();
        DenseSteps {
            n_nodes,
            n_steps: layers.len() / kk,
            initial: initial
                .iter()
                .enumerate()
                .filter(|&(_, &p)| p > 0.0)
                .map(|(s, &p)| (s as u32, p))
                .collect(),
            layers,
        }
    }

    /// `|Σ|`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of transition steps (`n - 1`).
    #[inline]
    pub fn n_steps(&self) -> usize {
        self.n_steps
    }

    /// The nonzero initial entries, ascending.
    #[inline]
    pub fn initial(&self) -> &[(u32, f64)] {
        &self.initial
    }

    /// Step `i`'s matrix as a driver-ready view.
    #[inline]
    pub fn layer(&self, i: usize) -> DenseLayer<'a> {
        let kk = self.n_nodes * self.n_nodes;
        DenseLayer {
            k: self.n_nodes,
            matrix: &self.layers[i * kk..(i + 1) * kk],
        }
    }
}

/// One step's row-major `|Σ|²` matrix, as consumed by the dense advance
/// drivers (and rebuildable per pulled layer by streaming callers).
#[derive(Debug, Clone, Copy)]
pub struct DenseLayer<'a> {
    k: usize,
    matrix: &'a [f64],
}

impl<'a> DenseLayer<'a> {
    /// Wraps a row-major `k × k` matrix slice.
    pub fn new(k: usize, matrix: &'a [f64]) -> Self {
        assert_eq!(matrix.len(), k * k, "dense layer must be |Σ|²");
        DenseLayer { k, matrix }
    }

    /// `|Σ|`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.k
    }

    /// Row `from` of the matrix.
    #[inline]
    pub fn row(&self, from: usize) -> &'a [f64] {
        &self.matrix[from * self.k..(from + 1) * self.k]
    }
}

/// `out[i] = v · probs[i]` for a whole row — the SIMD multiply stage.
/// Lane products are individually identical to scalar products, so both
/// implementations return the same bits; which one runs is decided once
/// per process ([`crate::exec::simd_enabled`]).
#[inline]
pub fn mul_row_f64(v: f64, probs: &[f64], out: &mut [f64]) {
    debug_assert_eq!(probs.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if crate::exec::simd_enabled() {
        // SAFETY: `simd_enabled` verified AVX2 support at runtime.
        unsafe { mul_row_avx2(v, probs, out) };
        return;
    }
    for (o, &p) in out.iter_mut().zip(probs.iter()) {
        *o = v * p;
    }
}

/// The AVX2 lane loop behind [`mul_row_f64`]: four `f64` products per
/// `vmulpd`, scalar tail. Unaligned loads — the layer buffer's alignment
/// is whatever the allocator gave the sequence.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mul_row_avx2(v: f64, probs: &[f64], out: &mut [f64]) {
    use core::arch::x86_64::{_mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd};
    let n = probs.len();
    let vv = _mm256_set1_pd(v);
    let mut i = 0;
    while i + 4 <= n {
        let p = _mm256_loadu_pd(probs.as_ptr().add(i));
        _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_mul_pd(vv, p));
        i += 4;
    }
    while i < n {
        *out.get_unchecked_mut(i) = v * *probs.get_unchecked(i);
        i += 1;
    }
}

/// [`crate::dp::advance`] over a dense layer: same cell linearization,
/// same visit order (node, row, ascending target, edge insertion order),
/// same `p > 0` skip — bit-identical to the CSR walk. `next` must be
/// zero-filled.
pub fn advance_dense<S: Semiring>(
    layer: &DenseLayer<'_>,
    graph: &StepGraph,
    cur: &[S::Elem],
    next: &mut [S::Elem],
) {
    let k = layer.k;
    let nr = graph.n_rows();
    let mut stage = [S::zero(); STAGE_CAP];
    for node in 0..k {
        let base = node * nr;
        let prow = layer.row(node);
        for row in 0..nr {
            let v = cur[base + row];
            if S::is_zero(v) {
                continue;
            }
            if S::STAGED_ROW && k <= STAGE_CAP {
                S::mul_row(v, prow, &mut stage[..k]);
                for (to, &p) in prow.iter().enumerate() {
                    if p > 0.0 {
                        let w = stage[to];
                        let to_base = to * nr;
                        for e in graph.edges(to as u32, row as u32) {
                            S::accum(&mut next[to_base + e.to as usize], w);
                        }
                    }
                }
            } else {
                for (to, &p) in prow.iter().enumerate() {
                    if p > 0.0 {
                        let w = S::mul(v, S::from_prob(p));
                        let to_base = to * nr;
                        for e in graph.edges(to as u32, row as u32) {
                            S::accum(&mut next[to_base + e.to as usize], w);
                        }
                    }
                }
            }
        }
    }
}

/// [`crate::dp::advance_filtered`] over a dense layer (payload-gated
/// edges), bit-identical to the CSR walk.
pub fn advance_dense_filtered<S: Semiring>(
    layer: &DenseLayer<'_>,
    graph: &StepGraph,
    expected: u32,
    cur: &[S::Elem],
    next: &mut [S::Elem],
) {
    let k = layer.k;
    let nr = graph.n_rows();
    let mut stage = [S::zero(); STAGE_CAP];
    for node in 0..k {
        let base = node * nr;
        let prow = layer.row(node);
        for row in 0..nr {
            let v = cur[base + row];
            if S::is_zero(v) {
                continue;
            }
            if S::STAGED_ROW && k <= STAGE_CAP {
                S::mul_row(v, prow, &mut stage[..k]);
                for (to, &p) in prow.iter().enumerate() {
                    if p > 0.0 {
                        let w = stage[to];
                        let to_base = to * nr;
                        for e in graph.edges(to as u32, row as u32) {
                            if e.payload == expected {
                                S::accum(&mut next[to_base + e.to as usize], w);
                            }
                        }
                    }
                }
            } else {
                for (to, &p) in prow.iter().enumerate() {
                    if p > 0.0 {
                        let w = S::mul(v, S::from_prob(p));
                        let to_base = to * nr;
                        for e in graph.edges(to as u32, row as u32) {
                            if e.payload == expected {
                                S::accum(&mut next[to_base + e.to as usize], w);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// [`crate::dp::advance_tracked`] over a dense layer: strict-`>`
/// first-wins updates, identical back-pointer choices. `ln` has no lane
/// form, so this driver is scalar throughout.
pub fn advance_dense_tracked(
    layer: &DenseLayer<'_>,
    graph: &StepGraph,
    cur: &[f64],
    next: &mut [f64],
    back: &mut [BackEdge],
) {
    let k = layer.k;
    let nr = graph.n_rows();
    for node in 0..k {
        let base = node * nr;
        let prow = layer.row(node);
        for row in 0..nr {
            let v = cur[base + row];
            if v == f64::NEG_INFINITY {
                continue;
            }
            for (to, &p) in prow.iter().enumerate() {
                if p > 0.0 {
                    let cand = v + p.ln();
                    let to_base = to * nr;
                    for e in graph.edges(to as u32, row as u32) {
                        let cell = to_base + e.to as usize;
                        if cand > next[cell] {
                            next[cell] = cand;
                            back[cell] = BackEdge {
                                prev: (base + row) as u32,
                                payload: e.payload,
                            };
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{advance, advance_filtered, advance_tracked};
    use crate::semiring::{Bool, MaxLog, Prob};
    use crate::steps::SparseSteps;

    /// A 4-node chain layer with zeros scattered in, plus a 2-row machine
    /// graph with multi-edge buckets and distinct payloads.
    fn fixture() -> (Vec<f64>, Vec<f64>, SparseSteps, StepGraph) {
        let k = 4;
        let initial = vec![0.5, 0.0, 0.25, 0.25];
        #[rustfmt::skip]
        let matrix = vec![
            0.5, 0.5, 0.0, 0.0,
            0.0, 0.0, 1.0, 0.0,
            0.125, 0.125, 0.25, 0.5,
            0.0, 1.0, 0.0, 0.0,
        ];
        let mut b = SparseSteps::builder(k, 1);
        for (s, &p) in initial.iter().enumerate() {
            if p > 0.0 {
                b.push_initial(s as u32, p);
            }
        }
        for from in 0..k {
            for (to, &p) in matrix[from * k..(from + 1) * k].iter().enumerate() {
                if p > 0.0 {
                    b.push_transition(to as u32, p);
                }
            }
            b.finish_row();
        }
        let steps = b.build();
        let mut g = StepGraph::builder(k, 2);
        for sym in 0..k as u32 {
            g.add_edge(sym, 0, sym % 2, sym);
            g.add_edge(sym, 0, 1, sym + 10);
            g.add_edge(sym, 1, 0, sym);
        }
        (initial, matrix, steps, g.build())
    }

    fn seed(initial: &[f64], nr: usize) -> Vec<f64> {
        let mut cur = vec![0.0; initial.len() * nr];
        for (s, &p) in initial.iter().enumerate() {
            cur[s * nr] = p;
        }
        cur
    }

    #[test]
    fn dense_steps_initial_matches_csr() {
        let (initial, matrix, steps, _) = fixture();
        let dense = DenseSteps::new(4, &initial, &matrix);
        assert_eq!(dense.initial(), steps.initial());
        assert_eq!(dense.n_steps(), 1);
        assert_eq!(dense.layer(0).row(2), &matrix[8..12]);
    }

    #[test]
    fn dense_advance_is_bit_identical_to_sparse() {
        let (initial, matrix, steps, graph) = fixture();
        let layer = DenseLayer::new(4, &matrix);
        let nr = graph.n_rows();
        let cur = seed(&initial, nr);

        let mut sparse_next = vec![0.0; cur.len()];
        advance::<Prob, _>(&steps.at(0), &graph, &cur, &mut sparse_next);
        let mut dense_next = vec![0.0; cur.len()];
        advance_dense::<Prob>(&layer, &graph, &cur, &mut dense_next);
        for (a, b) in sparse_next.iter().zip(dense_next.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let curb: Vec<bool> = cur.iter().map(|&p| p > 0.0).collect();
        let mut sb = vec![false; curb.len()];
        advance::<Bool, _>(&steps.at(0), &graph, &curb, &mut sb);
        let mut db = vec![false; curb.len()];
        advance_dense::<Bool>(&layer, &graph, &curb, &mut db);
        assert_eq!(sb, db);

        let curl: Vec<f64> = cur.iter().map(|&p| p.ln()).collect();
        let mut sl = vec![f64::NEG_INFINITY; curl.len()];
        advance::<MaxLog, _>(&steps.at(0), &graph, &curl, &mut sl);
        let mut dl = vec![f64::NEG_INFINITY; curl.len()];
        advance_dense::<MaxLog>(&layer, &graph, &curl, &mut dl);
        for (a, b) in sl.iter().zip(dl.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dense_filtered_and_tracked_match_sparse() {
        let (initial, matrix, steps, graph) = fixture();
        let layer = DenseLayer::new(4, &matrix);
        let nr = graph.n_rows();
        let cur = seed(&initial, nr);

        for expected in [0u32, 2, 11, u32::MAX] {
            let mut s = vec![0.0; cur.len()];
            advance_filtered::<Prob, _>(&steps.at(0), &graph, expected, &cur, &mut s);
            let mut d = vec![0.0; cur.len()];
            advance_dense_filtered::<Prob>(&layer, &graph, expected, &cur, &mut d);
            for (a, b) in s.iter().zip(d.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        let curl: Vec<f64> = cur.iter().map(|&p| p.ln()).collect();
        let mut sn = vec![f64::NEG_INFINITY; curl.len()];
        let mut sback = vec![BackEdge::NONE; curl.len()];
        advance_tracked(&steps.at(0), &graph, &curl, &mut sn, &mut sback);
        let mut dn = vec![f64::NEG_INFINITY; curl.len()];
        let mut dback = vec![BackEdge::NONE; curl.len()];
        advance_dense_tracked(&layer, &graph, &curl, &mut dn, &mut dback);
        for (a, b) in sn.iter().zip(dn.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in sback.iter().zip(dback.iter()) {
            assert_eq!((a.prev, a.payload), (b.prev, b.payload));
        }
    }

    #[test]
    fn mul_row_matches_scalar_products_bitwise() {
        // Whatever path `simd_enabled` picked, lane products must equal
        // scalar products bit for bit.
        let probs: Vec<f64> = (0..23).map(|i| (i as f64) * 0.043_210_987).collect();
        let mut out = vec![0.0; probs.len()];
        for v in [0.0, 1.0, 0.123_456_789, 1e-300, 0.999_999] {
            mul_row_f64(v, &probs, &mut out);
            for (o, &p) in out.iter().zip(probs.iter()) {
                assert_eq!(o.to_bits(), (v * p).to_bits());
            }
        }
    }
}
