//! The three semirings behind every layered DP in the paper.
//!
//! Theorems 4.1/4.3/4.6/4.8/5.5/5.8 all run the same product-graph DP and
//! differ only in how layer cells combine:
//!
//! * [`Prob`] — sum-product over `f64` probabilities (confidence, marginal
//!   and acceptance probabilities);
//! * [`MaxLog`] — max-product in log space (Viterbi / E-max scoring, with
//!   backpointers handled by the tracked drivers);
//! * [`Bool`] — reachability (answer nonemptiness, support tests).
//!
//! The instantiations are uninhabited enums used purely as type parameters,
//! so every kernel loop monomorphizes to straight-line `f64`/`bool` code —
//! the "no dynamic dispatch in kernels" stance of the original concrete
//! implementations is preserved by construction.

/// A semiring over copyable elements, as used by the layer drivers.
///
/// `accum` is the additive operation in *in-place* form because every DP
/// here folds many incoming edges into one target cell; for [`Prob`] it
/// must stay a plain `+=` (not compensated) to remain bit-identical with
/// the hand-rolled passes it replaced — compensation belongs only in final
/// reductions via [`crate::Neumaier`].
pub trait Semiring {
    type Elem: Copy + PartialEq + std::fmt::Debug;

    /// Additive identity: the value of an unreachable cell.
    fn zero() -> Self::Elem;

    /// Multiplicative identity: the seed value of an initial cell.
    fn one() -> Self::Elem;

    /// True for values that cannot contribute (used for sparse skips).
    fn is_zero(e: Self::Elem) -> bool;

    /// The multiplicative operation (extend along an edge).
    fn mul(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// The additive operation, in place (combine into a cell).
    fn accum(into: &mut Self::Elem, v: Self::Elem);

    /// Injects a transition probability into the semiring.
    fn from_prob(p: f64) -> Self::Elem;

    /// Whether the dense drivers should stage a whole row of
    /// `mul(v, from_prob(p))` products through [`Semiring::mul_row`]
    /// before scattering along machine edges. Only [`Prob`] opts in —
    /// its products form a contiguous `f64` lane multiply; `ln` and
    /// `bool` gain nothing from staging.
    const STAGED_ROW: bool = false;

    /// Computes `out[i] = mul(v, from_prob(probs[i]))` for a whole dense
    /// row. The default is the scalar loop; [`Prob`] overrides it with
    /// the SIMD lane multiply in [`crate::dense`]. Either way each lane
    /// is one IEEE-754 operation, so results are bit-identical to the
    /// per-entry path.
    #[inline]
    fn mul_row(v: Self::Elem, probs: &[f64], out: &mut [Self::Elem]) {
        for (o, &p) in out.iter_mut().zip(probs.iter()) {
            *o = Self::mul(v, Self::from_prob(p));
        }
    }
}

/// Sum-product over raw `f64` probabilities.
pub enum Prob {}

impl Semiring for Prob {
    type Elem = f64;

    #[inline(always)]
    fn zero() -> f64 {
        0.0
    }

    #[inline(always)]
    fn one() -> f64 {
        1.0
    }

    #[inline(always)]
    fn is_zero(e: f64) -> bool {
        e == 0.0
    }

    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }

    #[inline(always)]
    fn accum(into: &mut f64, v: f64) {
        *into += v;
    }

    #[inline(always)]
    fn from_prob(p: f64) -> f64 {
        p
    }

    const STAGED_ROW: bool = true;

    #[inline]
    fn mul_row(v: f64, probs: &[f64], out: &mut [f64]) {
        crate::dense::mul_row_f64(v, probs, out);
    }
}

/// Max-product in log space (Viterbi scores).
///
/// `accum` keeps the *first* maximal value it sees (strict `>`), so ties
/// resolve to the earliest edge in iteration order — matching the
/// hand-rolled Viterbi passes, whose traceback relied on that.
pub enum MaxLog {}

impl Semiring for MaxLog {
    type Elem = f64;

    #[inline(always)]
    fn zero() -> f64 {
        f64::NEG_INFINITY
    }

    #[inline(always)]
    fn one() -> f64 {
        0.0
    }

    #[inline(always)]
    fn is_zero(e: f64) -> bool {
        e == f64::NEG_INFINITY
    }

    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }

    #[inline(always)]
    fn accum(into: &mut f64, v: f64) {
        if v > *into {
            *into = v;
        }
    }

    #[inline(always)]
    fn from_prob(p: f64) -> f64 {
        p.ln()
    }
}

/// Reachability.
pub enum Bool {}

impl Semiring for Bool {
    type Elem = bool;

    #[inline(always)]
    fn zero() -> bool {
        false
    }

    #[inline(always)]
    fn one() -> bool {
        true
    }

    #[inline(always)]
    fn is_zero(e: bool) -> bool {
        !e
    }

    #[inline(always)]
    fn mul(a: bool, b: bool) -> bool {
        a && b
    }

    #[inline(always)]
    fn accum(into: &mut bool, v: bool) {
        *into |= v;
    }

    #[inline(always)]
    fn from_prob(p: f64) -> bool {
        p > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axioms<S: Semiring>(samples: &[S::Elem]) {
        for &a in samples {
            assert_eq!(S::mul(a, S::one()), a);
            let mut cell = S::zero();
            S::accum(&mut cell, a);
            assert_eq!(cell, a);
            assert!(S::is_zero(S::mul(a, S::zero())) || S::is_zero(S::zero()));
        }
        assert!(S::is_zero(S::zero()));
    }

    #[test]
    fn identities_hold() {
        axioms::<Prob>(&[0.0, 0.25, 1.0]);
        axioms::<MaxLog>(&[f64::NEG_INFINITY, -1.5, 0.0]);
        axioms::<Bool>(&[false, true]);
    }

    #[test]
    fn maxlog_ties_keep_first() {
        let mut cell = -1.0;
        MaxLog::accum(&mut cell, -1.0);
        assert_eq!(cell, -1.0);
        MaxLog::accum(&mut cell, -0.5);
        assert_eq!(cell, -0.5);
        MaxLog::accum(&mut cell, -2.0);
        assert_eq!(cell, -0.5);
    }

    #[test]
    fn from_prob_agrees_across_semirings() {
        for p in [0.0, 1e-300, 0.5, 1.0] {
            assert_eq!(Bool::from_prob(p), Prob::from_prob(p) > 0.0);
            if p > 0.0 {
                assert!((MaxLog::from_prob(p) - p.ln()).abs() < 1e-15);
            } else {
                assert!(MaxLog::is_zero(MaxLog::from_prob(p)));
            }
        }
    }
}
