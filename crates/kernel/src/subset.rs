//! Layer storage for the dynamic-state DPs (subset construction /
//! exact-reachable-configuration passes).
//!
//! These DPs key cells by `(node, reachable set)` or `(det-state, node)` —
//! unbounded, discovered on the fly — so they cannot use the flat
//! [`crate::Workspace`]. A [`SubsetLayer`] wraps the `HashMap`
//! accumulation and the sorted iteration the hand-rolled passes used:
//! entries are always folded in ascending key order, so float accumulation
//! sequences are independent of `HashMap` iteration order and results are
//! reproducible bit for bit across runs (identical queries must return
//! identical bytes).

use std::collections::HashMap;
use std::hash::Hash;

use crate::numeric::Neumaier;

/// One sum-product DP layer keyed by an `Ord + Hash` state.
#[derive(Debug, Clone)]
pub struct SubsetLayer<K> {
    map: HashMap<K, f64>,
}

impl<K: Ord + Hash + Eq + Clone> SubsetLayer<K> {
    pub fn new() -> Self {
        SubsetLayer {
            map: HashMap::new(),
        }
    }

    /// Pre-sizes for roughly the predecessor layer's population.
    pub fn with_capacity(n: usize) -> Self {
        SubsetLayer {
            map: HashMap::with_capacity(n),
        }
    }

    /// `cell[key] += p`.
    #[inline]
    pub fn add(&mut self, key: K, p: f64) {
        *self.map.entry(key).or_insert(0.0) += p;
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The layer's entries in ascending key order — the only way the
    /// drivers read a layer, so downstream accumulation order is
    /// deterministic.
    pub fn sorted(&self) -> Vec<(K, f64)> {
        let mut v: Vec<(K, f64)> = self.map.iter().map(|(k, p)| (k.clone(), *p)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Compensated sum of the entries whose key satisfies `pred`,
    /// folded in ascending key order.
    pub fn reduce(&self, mut pred: impl FnMut(&K) -> bool) -> f64 {
        let mut total = Neumaier::new();
        for (k, p) in self.sorted() {
            if pred(&k) {
                total.add(p);
            }
        }
        total.total()
    }
}

impl<K: Ord + Hash + Eq + Clone> Default for SubsetLayer<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::SubsetLayer;

    #[test]
    fn accumulates_and_sorts() {
        let mut layer: SubsetLayer<(u32, u32)> = SubsetLayer::new();
        layer.add((2, 0), 0.25);
        layer.add((1, 5), 0.5);
        layer.add((2, 0), 0.25);
        assert_eq!(layer.len(), 2);
        assert_eq!(layer.sorted(), vec![((1, 5), 0.5), ((2, 0), 0.5)]);
        assert_eq!(layer.reduce(|k| k.0 == 2), 0.5);
        assert_eq!(layer.reduce(|_| true), 1.0);
        assert_eq!(layer.reduce(|_| false), 0.0);
    }

    #[test]
    fn reduce_is_order_independent_by_construction() {
        // Same multiset inserted in different orders gives identical bits.
        let entries = [(3u32, 0.1), (1, 0.7), (2, 0.2), (1, 0.05)];
        let mut a = SubsetLayer::new();
        for &(k, p) in &entries {
            a.add(k, p);
        }
        let mut b = SubsetLayer::new();
        for &(k, p) in entries.iter().rev() {
            b.add(k, p);
        }
        // Per-key accumulation order differs (0.7+0.05 vs 0.05+0.7) but is
        // commutative for two addends; the cross-key fold order is pinned.
        assert_eq!(a.reduce(|_| true).to_bits(), b.reduce(|_| true).to_bits());
    }
}
