//! Property-based tests for the §5 s-projector engine.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, RngExt, SeedableRng};
use transmark_automata::{Dfa, StateId, SymbolId};
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::numeric::approx_eq;
use transmark_markov::MarkovSequence;
use transmark_sproj::compile::to_transducer;
use transmark_sproj::enumerate::{enumerate_by_imax, imax_of_output};
use transmark_sproj::indexed::{enumerate_indexed, IndexedEvaluator};
use transmark_sproj::projector::SProjector;
use transmark_sproj::sproj_confidence;

fn random_dfa<R: Rng + ?Sized>(k: usize, n_states: usize, rng: &mut R) -> Dfa {
    let mut d = Dfa::new(k);
    let states: Vec<StateId> = (0..n_states)
        .map(|_| d.add_state(rng.random_bool(0.5)))
        .collect();
    d.set_accepting(states[rng.random_range(0..n_states)], true);
    for &q in &states {
        for s in 0..k {
            d.set_transition(q, SymbolId(s as u32), states[rng.random_range(0..n_states)]);
        }
    }
    d
}

fn instance(seed: u64, n: usize) -> (SProjector, MarkovSequence) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: n,
            n_symbols: 2,
            zero_prob: 0.25,
        },
        &mut rng,
    );
    let b = random_dfa(2, rng.random_range(1..3), &mut rng);
    let a = random_dfa(2, rng.random_range(1..3), &mut rng);
    let e = random_dfa(2, rng.random_range(1..3), &mut rng);
    (SProjector::new(m.alphabet_arc(), b, a, e).unwrap(), m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The indexed confidences of all occurrences of `o` sum to at least
    /// the plain confidence (union bound from below: conf ≤ Σᵢ conf(o,i)),
    /// and each is at most it (monotonicity).
    #[test]
    fn occurrence_probabilities_bracket_the_union(seed in any::<u64>(), n in 1usize..5) {
        let (p, m) = instance(seed, n);
        let ev = IndexedEvaluator::new(&p, &m).unwrap();
        // Distinct outputs via the dedup enumeration.
        for r in enumerate_by_imax(&p, &m).unwrap() {
            let o = r.output;
            let conf = sproj_confidence(&p, &m, &o).unwrap();
            let hi = if o.is_empty() { n + 1 } else { n - o.len() + 1 };
            let per_index: Vec<f64> = (1..=hi).map(|i| ev.confidence(&o, i)).collect();
            let sum: f64 = per_index.iter().sum();
            let max = per_index.iter().copied().fold(0.0, f64::max);
            prop_assert!(conf <= sum + 1e-9, "union exceeds sum for {:?}", o);
            prop_assert!(max <= conf + 1e-9, "occurrence exceeds union for {:?}", o);
            // I_max is that max.
            prop_assert!(approx_eq(imax_of_output(&p, &m, &o).unwrap(), max, 1e-12, 1e-9));
        }
    }

    /// The indexed enumeration is ordered, duplicate-free, and complete
    /// with respect to the Theorem 5.8 evaluator.
    #[test]
    fn indexed_enumeration_invariants(seed in any::<u64>(), n in 1usize..5) {
        let (p, m) = instance(seed, n);
        let ev = IndexedEvaluator::new(&p, &m).unwrap();
        let answers: Vec<_> = enumerate_indexed(&p, &m).unwrap().collect();
        let mut prev = f64::INFINITY;
        let mut seen = std::collections::BTreeSet::new();
        for a in &answers {
            prop_assert!(a.log_confidence <= prev + 1e-9);
            prev = a.log_confidence;
            prop_assert!(seen.insert((a.output.clone(), a.index)));
            prop_assert!(approx_eq(
                a.confidence(), ev.confidence(&a.output, a.index), 1e-12, 1e-9
            ));
            prop_assert!(a.confidence() > 0.0);
        }
        // Nothing with positive confidence is missing: probe all candidate
        // (substring, index) pairs up to length n.
        let mut candidates = vec![vec![]];
        for _ in 0..n {
            candidates = candidates
                .into_iter()
                .flat_map(|s: Vec<SymbolId>| {
                    (0..3).map(move |c| {
                        let mut t = s.clone();
                        if c < 2 {
                            t.push(SymbolId(c as u32));
                        }
                        t
                    })
                })
                .collect();
            candidates.sort();
            candidates.dedup();
        }
        for o in candidates {
            for i in 1..=n + 1 {
                if ev.confidence(&o, i) > 0.0 {
                    prop_assert!(
                        seen.contains(&(o.clone(), i)),
                        "missing answer ({:?}, {})", o, i
                    );
                }
            }
        }
    }

    /// The dedup and Lawler implementations of Lemma 5.10 produce the same
    /// outputs with the same scores, in equivalent order (ties may swap).
    #[test]
    fn imax_lawler_matches_dedup(seed in any::<u64>(), n in 1usize..6) {
        let (p, m) = instance(seed, n);
        let dedup: Vec<_> = enumerate_by_imax(&p, &m).unwrap().collect();
        let lawler: Vec<_> =
            transmark_sproj::enumerate_by_imax_lawler(&p, &m).unwrap().collect();
        prop_assert_eq!(dedup.len(), lawler.len());
        // Scores are non-increasing in both and equal pointwise.
        for (a, b) in dedup.iter().zip(lawler.iter()) {
            prop_assert!(approx_eq(a.score(), b.score(), 1e-12, 1e-9));
        }
        // Same answer sets with the same per-answer score.
        let mut da: Vec<_> = dedup.iter().map(|r| (r.output.clone(),)).collect();
        let mut la: Vec<_> = lawler.iter().map(|r| (r.output.clone(),)).collect();
        da.sort();
        la.sort();
        prop_assert_eq!(da, la);
        for r in &lawler {
            let want = imax_of_output(&p, &m, &r.output).unwrap();
            prop_assert!(approx_eq(r.score(), want, 1e-12, 1e-9));
        }
    }

    /// The compiled transducer and the native Thm 5.5 algorithm agree on
    /// confidences (engine-vs-engine, no brute force).
    #[test]
    fn engines_agree_on_confidence(seed in any::<u64>(), n in 1usize..6) {
        let (p, m) = instance(seed, n);
        let t = to_transducer(&p).unwrap();
        for r in enumerate_by_imax(&p, &m).unwrap().take(8) {
            let native = sproj_confidence(&p, &m, &r.output).unwrap();
            let general =
                transmark_core::confidence::confidence_general(&t, &m, &r.output).unwrap();
            prop_assert!(
                approx_eq(native, general, 1e-10, 1e-8),
                "{:?}: {} vs {}", r.output, native, general
            );
        }
    }
}
