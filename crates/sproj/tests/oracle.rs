//! Oracle cross-validation for the §5 engines.
//!
//! Random s-projectors (random complete DFAs for B, A, E) over random
//! small Markov sequences, checked against brute force:
//!
//! * the compiled transducer (§5's observation) agrees with the direct
//!   match semantics on every support string;
//! * Thm 5.8 indexed confidence equals the per-occurrence sum over worlds;
//! * Thm 5.7 enumeration yields exactly the indexed answers, in
//!   non-increasing confidence, each with the right confidence;
//! * Thm 5.5 confidence equals both brute force and the general §4
//!   algorithm run on the compiled transducer;
//! * Prop. 5.9: `I_max(o) ≤ conf(o) ≤ (#occurrence positions)·I_max(o)`;
//! * Lemma 5.10 / Thm 5.2: the deduplicated enumeration emits each output
//!   once, scored by `I_max`, in non-increasing `I_max`.

use std::collections::BTreeMap;

use rand::{rngs::StdRng, Rng, RngExt, SeedableRng};
use transmark_automata::{Dfa, StateId, SymbolId};
use transmark_core::confidence::confidence_general;
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::numeric::approx_eq;
use transmark_markov::support::support;
use transmark_markov::MarkovSequence;
use transmark_sproj::compile::to_transducer;
use transmark_sproj::enumerate::{enumerate_by_imax, imax_of_output};
use transmark_sproj::indexed::{enumerate_indexed, IndexedEvaluator};
use transmark_sproj::projector::SProjector;
use transmark_sproj::sproj_confidence;

const TOL_ABS: f64 = 1e-10;
const TOL_REL: f64 = 1e-8;

/// A random complete DFA with at least one accepting state.
fn random_dfa<R: Rng + ?Sized>(k: usize, n_states: usize, rng: &mut R) -> Dfa {
    let mut d = Dfa::new(k);
    let states: Vec<StateId> = (0..n_states)
        .map(|_| d.add_state(rng.random_bool(0.5)))
        .collect();
    d.set_accepting(states[rng.random_range(0..n_states)], true);
    for &q in &states {
        for s in 0..k {
            d.set_transition(q, SymbolId(s as u32), states[rng.random_range(0..n_states)]);
        }
    }
    d.set_initial(states[rng.random_range(0..n_states)]);
    d
}

fn instance(seed: u64) -> (SProjector, MarkovSequence) {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = 2 + (seed % 2) as usize;
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: 2 + (seed % 3) as usize,
            n_symbols: k,
            zero_prob: 0.3,
        },
        &mut rng,
    );
    let alphabet = m.alphabet_arc();
    let b = random_dfa(k, rng.random_range(1..3), &mut rng);
    let a = random_dfa(k, rng.random_range(1..3), &mut rng);
    let e = random_dfa(k, rng.random_range(1..3), &mut rng);
    (SProjector::new(alphabet, b, a, e).unwrap(), m)
}

/// Brute-force indexed evaluation: `conf(o, i)` for every indexed answer.
fn brute_indexed(p: &SProjector, m: &MarkovSequence) -> BTreeMap<(Vec<SymbolId>, usize), f64> {
    let mut map: BTreeMap<(Vec<SymbolId>, usize), f64> = BTreeMap::new();
    for (s, prob) in support(m) {
        // Every substring occurrence (including ε at every boundary).
        for i in 1..=s.len() + 1 {
            for j in i..=s.len() + 1 {
                let o = s[i - 1..j - 1].to_vec();
                if p.pattern_dfa().accepts(&o)
                    && p.prefix_dfa().accepts(&s[..i - 1])
                    && p.suffix_dfa().accepts(&s[j - 1..])
                {
                    *map.entry((o, i)).or_insert(0.0) += prob;
                }
            }
        }
    }
    map
}

/// Brute-force plain confidence: `conf(o)` for every answer.
fn brute_plain(p: &SProjector, m: &MarkovSequence) -> BTreeMap<Vec<SymbolId>, f64> {
    let mut map: BTreeMap<Vec<SymbolId>, f64> = BTreeMap::new();
    for (s, prob) in support(m) {
        for o in p.project_all(&s) {
            *map.entry(o).or_insert(0.0) += prob;
        }
    }
    map
}

fn check_instance(p: &SProjector, m: &MarkovSequence, ctx: &str) {
    let n = m.len();

    // --- compiled transducer vs direct semantics ---------------------------
    let t = to_transducer(p).expect("compile");
    for (s, _) in support(m) {
        assert_eq!(
            t.transduce_all(&s),
            p.project_all(&s),
            "{ctx}: compiled transducer diverges on {s:?}"
        );
    }

    // --- Thm 5.8: indexed confidence ---------------------------------------
    let truth_indexed = brute_indexed(p, m);
    let ev = IndexedEvaluator::new(p, m).expect("evaluator");
    for ((o, i), &want) in &truth_indexed {
        let got = ev.confidence(o, *i);
        assert!(
            approx_eq(got, want, TOL_ABS, TOL_REL),
            "{ctx}: indexed confidence({o:?}, {i}) = {got}, want {want}"
        );
    }
    // Invalid / non-answer probes.
    assert_eq!(
        ev.confidence(&[SymbolId(0)], 0),
        0.0,
        "{ctx}: index 0 must be invalid"
    );
    assert_eq!(
        ev.confidence(&[SymbolId(0)], n + 5),
        0.0,
        "{ctx}: overflow index"
    );

    // --- Thm 5.7: ranked indexed enumeration -------------------------------
    let enumerated: Vec<_> = enumerate_indexed(p, m).expect("enumerate").collect();
    assert_eq!(
        enumerated.len(),
        truth_indexed.len(),
        "{ctx}: indexed enumeration count mismatch"
    );
    let mut prev = f64::INFINITY;
    let mut seen = std::collections::BTreeSet::new();
    for ia in &enumerated {
        assert!(
            ia.log_confidence <= prev + 1e-9,
            "{ctx}: confidence order violated"
        );
        prev = ia.log_confidence;
        let key = (ia.output.clone(), ia.index);
        assert!(
            seen.insert(key.clone()),
            "{ctx}: duplicate indexed answer {key:?}"
        );
        let want = truth_indexed
            .get(&key)
            .unwrap_or_else(|| panic!("{ctx}: enumerated non-answer {key:?}"));
        assert!(
            approx_eq(ia.confidence(), *want, TOL_ABS, TOL_REL),
            "{ctx}: enumerated confidence {} want {want} for {key:?}",
            ia.confidence()
        );
    }

    // --- Thm 5.5: plain confidence ------------------------------------------
    let truth_plain = brute_plain(p, m);
    for (o, &want) in &truth_plain {
        let got = sproj_confidence(p, m, o).expect("sproj confidence");
        assert!(
            approx_eq(got, want, TOL_ABS, TOL_REL),
            "{ctx}: sproj confidence({o:?}) = {got}, want {want}"
        );
        // Cross-check against the §4 general algorithm on the compiled
        // transducer.
        let via_general = confidence_general(&t, m, o).expect("general confidence");
        assert!(
            approx_eq(via_general, want, TOL_ABS, TOL_REL),
            "{ctx}: general-algorithm confidence {via_general}, want {want}"
        );

        // --- Prop. 5.9 sandwich ---------------------------------------------
        let imax = imax_of_output(p, m, o).expect("imax");
        let n_positions = if o.is_empty() { n + 1 } else { n - o.len() + 1 };
        assert!(
            imax <= want * (1.0 + 1e-9) + TOL_ABS,
            "{ctx}: I_max {imax} exceeds confidence {want} for {o:?}"
        );
        assert!(
            want <= (n_positions as f64) * imax * (1.0 + 1e-9) + TOL_ABS,
            "{ctx}: confidence {want} exceeds {n_positions}·I_max = {} for {o:?}",
            n_positions as f64 * imax
        );
    }
    // Non-answers get confidence zero.
    let probe = vec![SymbolId(0); n + 2]; // longer than any substring
    assert_eq!(sproj_confidence(p, m, &probe).expect("confidence"), 0.0);

    // --- Lemma 5.10 / Thm 5.2: I_max dedup enumeration -----------------------
    let deduped: Vec<_> = enumerate_by_imax(p, m).expect("imax enumeration").collect();
    assert_eq!(
        deduped.len(),
        truth_plain.len(),
        "{ctx}: distinct output count"
    );
    let mut prev = f64::INFINITY;
    for r in &deduped {
        assert!(r.log_score <= prev + 1e-9, "{ctx}: I_max order violated");
        prev = r.log_score;
        let want_imax = imax_of_output(p, m, &r.output).expect("imax");
        assert!(
            approx_eq(r.score(), want_imax, TOL_ABS, TOL_REL),
            "{ctx}: dedup score {} != I_max {want_imax} for {:?}",
            r.score(),
            r.output
        );
        assert!(
            truth_plain.contains_key(&r.output),
            "{ctx}: dedup emitted non-answer"
        );
    }
}

#[test]
fn random_sprojectors_match_oracle() {
    for seed in 0..60 {
        let (p, m) = instance(seed);
        check_instance(&p, &m, &format!("random/{seed}"));
    }
}

#[test]
fn regex_built_projectors_match_oracle() {
    let cases: [(&str, &str, &str); 6] = [
        (".*", "ab", ".*"),
        ("b*", "a+", "b*"),
        ("a*", "a*", "b*"),
        (".*", "a+b", "b*"),
        ("", ".*", ""),      // whole-string extraction (B, E accept only ε)
        (".*a", "b+", ".*"), // prefix must end in a
    ];
    for (idx, (bp, ap, ep)) in cases.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1000 + idx as u64);
        let m = random_markov_sequence(
            &RandomChainSpec {
                len: 4,
                n_symbols: 2,
                zero_prob: 0.25,
            },
            &mut rng,
        );
        // Name the alphabet {a, b} so the regexes apply.
        let alphabet = transmark_automata::Alphabet::of_chars("ab");
        let m = {
            // Rebuild the chain on the named alphabet (same parameters).
            let mut b = transmark_markov::MarkovSequenceBuilder::new(alphabet.clone(), m.len())
                .initial_dist(m.initial_dist());
            for i in 0..m.len() - 1 {
                for x in 0..2u32 {
                    for y in 0..2u32 {
                        b = b.transition(
                            i,
                            SymbolId(x),
                            SymbolId(y),
                            m.transition_prob(i, SymbolId(x), SymbolId(y)),
                        );
                    }
                }
            }
            b.build().unwrap()
        };
        let p = SProjector::from_patterns(alphabet, bp, ap, ep).unwrap();
        check_instance(&p, &m, &format!("regex/{idx}"));
    }
}

#[test]
fn length_one_sequences() {
    for seed in 300..315 {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_markov_sequence(
            &RandomChainSpec {
                len: 1,
                n_symbols: 2,
                zero_prob: 0.2,
            },
            &mut rng,
        );
        let alphabet = m.alphabet_arc();
        let b = random_dfa(2, 2, &mut rng);
        let a = random_dfa(2, 2, &mut rng);
        let e = random_dfa(2, 2, &mut rng);
        let p = SProjector::new(alphabet, b, a, e).unwrap();
        check_instance(&p, &m, &format!("len1/{seed}"));
    }
}

#[test]
fn alphabet_mismatch_is_rejected() {
    let mut rng = StdRng::seed_from_u64(1);
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: 3,
            n_symbols: 3,
            zero_prob: 0.2,
        },
        &mut rng,
    );
    let alphabet = transmark_automata::Alphabet::of_chars("ab");
    let p = SProjector::from_patterns(alphabet, ".*", "a", ".*").unwrap();
    assert!(IndexedEvaluator::new(&p, &m).is_err());
    assert!(enumerate_indexed(&p, &m).is_err());
    assert!(sproj_confidence(&p, &m, &[]).is_err());
}
