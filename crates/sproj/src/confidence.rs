//! s-projector confidence via the concatenation language (Theorem 5.5).
//!
//! The confidence of an answer `o` of `P = [B]A[E]` is the probability of
//! the *union* over occurrence positions — which is just language
//! membership:
//!
//! ```text
//! Pr(S →[P]→ o) = [o ∈ L(A)] · Pr(S ∈ L(B)·{o}·L(E))
//! ```
//!
//! We build the epsilon-free concatenation NFA `B·o·E` and compute its
//! acceptance probability by the on-the-fly-determinized DP of
//! `transmark-core`. The reachable determinized state space factors as
//! (deterministic `B` part) × (match positions in `o`, limited by its
//! border structure) × (subsets of `Q_E`) — matching the paper's
//! `O(n·|o|²·|Σ|²·|Q_B|²·4^{|Q_E|})` bound, with the exponential living
//! only in `|Q_E|` exactly as Theorem 5.5 states (and Theorem 5.4 proves
//! unavoidable: the problem is FP^#P-hard even with trivial `B` and `A`).

use transmark_automata::{ops, Dfa, Nfa, SymbolId};
use transmark_core::confidence::acceptance_probability;
use transmark_core::error::EngineError;
use transmark_markov::MarkovSequence;

use crate::projector::SProjector;

/// Validates the `(projector, sequence, output)` triple exactly as
/// [`sproj_confidence`] does.
pub(crate) fn validate(
    p: &SProjector,
    m: &MarkovSequence,
    o: &[SymbolId],
) -> Result<(), EngineError> {
    if p.alphabet().len() != m.n_symbols() {
        return Err(EngineError::AlphabetMismatch {
            transducer: p.alphabet().len(),
            sequence: m.n_symbols(),
        });
    }
    for &c in o {
        if c.index() >= p.alphabet().len() {
            return Err(EngineError::InvalidSymbol {
                symbol: c.index(),
                n_symbols: p.alphabet().len(),
                alphabet: "output",
            });
        }
    }
    Ok(())
}

/// The Theorem 5.5 concatenation NFA `B·o·E` — machine-side (depends only
/// on the projector and the answer), so a prepared projector memoizes it
/// per answer.
pub(crate) fn concat_nfa_for(p: &SProjector, o: &[SymbolId]) -> Nfa {
    let k = p.alphabet().len();
    let word = Dfa::word(k, o).to_nfa();
    let b_then_o = ops::concat_nfa(&p.prefix_dfa().to_nfa(), &word)
        .expect("projector components share the alphabet");
    ops::concat_nfa(&b_then_o, &p.suffix_dfa().to_nfa())
        .expect("projector components share the alphabet")
}

/// **Theorem 5.5**: `Pr(S →[P]→ o)` for an s-projector `P = [B]A[E]`.
///
/// Polynomial in everything except `|Q_E|` (see module docs).
pub fn sproj_confidence(
    p: &SProjector,
    m: &MarkovSequence,
    o: &[SymbolId],
) -> Result<f64, EngineError> {
    validate(p, m, o)?;
    if !p.pattern_dfa().accepts(o) {
        return Ok(0.0);
    }
    acceptance_probability(&concat_nfa_for(p, o), m)
}
