//! High-level s-projector evaluation: one entry point for the §5 engines.
//!
//! [`SprojEvaluation`] validates a `(projector, Markov sequence)` pair
//! once (building the Theorem 5.8 tables) and exposes §5's evaluation
//! modes as methods, mirroring [`transmark_core::evaluate::Evaluation`]
//! for plain transducers.

use transmark_automata::SymbolId;
use transmark_core::enumerate::RankedAnswer;
use transmark_core::error::EngineError;
use transmark_markov::MarkovSequence;

use crate::confidence::sproj_confidence;
use crate::enumerate::{enumerate_by_imax, enumerate_by_imax_lawler, imax_of_output};
use crate::indexed::{enumerate_indexed, IndexedAnswer, IndexedEnumeration, IndexedEvaluator};
use crate::projector::SProjector;

/// A validated projector/data pair with evaluation methods.
pub struct SprojEvaluation<'a> {
    p: &'a SProjector,
    m: &'a MarkovSequence,
    tables: IndexedEvaluator<'a>,
}

impl<'a> SprojEvaluation<'a> {
    /// Validates alphabets and precomputes the Theorem 5.8 tables.
    pub fn new(p: &'a SProjector, m: &'a MarkovSequence) -> Result<Self, EngineError> {
        Ok(Self {
            tables: IndexedEvaluator::new(p, m)?,
            p,
            m,
        })
    }

    /// Exact confidence of the indexed answer `(o, i)` — Theorem 5.8,
    /// `O(|o|)` per call after table construction.
    pub fn indexed_confidence(&self, o: &[SymbolId], i: usize) -> f64 {
        self.tables.confidence(o, i)
    }

    /// `I_max(o)`: the best occurrence confidence.
    pub fn imax(&self, o: &[SymbolId]) -> Result<f64, EngineError> {
        imax_of_output(self.p, self.m, o)
    }

    /// Exact (plain) confidence `Pr(S →[P]→ o)` — Theorem 5.5
    /// (exponential only in `|Q_E|`).
    pub fn confidence(&self, o: &[SymbolId]) -> Result<f64, EngineError> {
        sproj_confidence(self.p, self.m, o)
    }

    /// All indexed answers in exact decreasing confidence — Theorem 5.7.
    pub fn occurrences(&self) -> Result<IndexedEnumeration, EngineError> {
        enumerate_indexed(self.p, self.m)
    }

    /// The top-k occurrences.
    pub fn top_k_occurrences(&self, k: usize) -> Result<Vec<IndexedAnswer>, EngineError> {
        Ok(self.occurrences()?.take(k).collect())
    }

    /// Distinct output strings in decreasing `I_max` — Theorem 5.2
    /// (the dedup implementation; incremental polynomial time).
    pub fn strings(&self) -> Result<impl Iterator<Item = RankedAnswer> + 'a, EngineError> {
        enumerate_by_imax(self.p, self.m)
    }

    /// Distinct output strings in decreasing `I_max` with guaranteed
    /// polynomial delay — Lemma 5.10's Lawler variant.
    pub fn strings_poly_delay(
        &self,
    ) -> Result<impl Iterator<Item = RankedAnswer> + 'a, EngineError> {
        enumerate_by_imax_lawler(self.p, self.m)
    }

    /// The top-k distinct strings with their exact Theorem 5.5
    /// confidences attached (the recommended user-facing mode).
    pub fn top_k_scored(&self, k: usize) -> Result<Vec<(Vec<SymbolId>, f64, f64)>, EngineError> {
        let mut out = Vec::with_capacity(k);
        for r in enumerate_by_imax(self.p, self.m)?.take(k) {
            let conf = sproj_confidence(self.p, self.m, &r.output)?;
            let imax = r.score();
            out.push((r.output, imax, conf));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::{Alphabet, Dfa};
    use transmark_markov::MarkovSequenceBuilder;

    fn setup() -> (SProjector, MarkovSequence) {
        let alphabet = Alphabet::of_chars("ab");
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 4)
            .uniform_all()
            .build()
            .unwrap();
        let p = SProjector::simple(
            std::sync::Arc::new(alphabet.clone()),
            Dfa::word(2, &[alphabet.sym("a")]),
        )
        .unwrap();
        (p, m)
    }

    #[test]
    fn facade_modes_are_consistent() {
        let (p, m) = setup();
        let ev = SprojEvaluation::new(&p, &m).unwrap();
        let a = [m.alphabet().sym("a")];
        // 4 occurrence positions, each with confidence 1/2.
        let occ = ev.top_k_occurrences(10).unwrap();
        assert_eq!(occ.len(), 4);
        for o in &occ {
            assert!((o.confidence() - 0.5).abs() < 1e-12);
            assert!((ev.indexed_confidence(&o.output, o.index) - o.confidence()).abs() < 1e-12);
        }
        // One distinct string; I_max = 1/2; conf = 1 - (1/2)^4.
        let strings: Vec<_> = ev.strings().unwrap().collect();
        assert_eq!(strings.len(), 1);
        assert!((ev.imax(&a).unwrap() - 0.5).abs() < 1e-12);
        assert!((ev.confidence(&a).unwrap() - (1.0 - 0.0625)).abs() < 1e-12);
        // Scored mode bundles all three numbers.
        let scored = ev.top_k_scored(5).unwrap();
        assert_eq!(scored.len(), 1);
        let (out, imax, conf) = &scored[0];
        assert_eq!(out, &a.to_vec());
        assert!((imax - 0.5).abs() < 1e-12);
        assert!((conf - 0.9375).abs() < 1e-12);
        // Both I_max enumerations agree.
        let lawler: Vec<_> = ev.strings_poly_delay().unwrap().collect();
        assert_eq!(lawler.len(), 1);
        assert!((lawler[0].score() - strings[0].score()).abs() < 1e-12);
    }

    #[test]
    fn facade_rejects_mismatched_alphabets() {
        let (p, _) = setup();
        let m3 = MarkovSequenceBuilder::new(Alphabet::of_chars("abc"), 2)
            .uniform_all()
            .build()
            .unwrap();
        assert!(SprojEvaluation::new(&p, &m3).is_err());
    }
}
