//! High-level s-projector evaluation: one entry point for the §5 engines.
//!
//! [`SprojEvaluation`] validates a `(projector, Markov sequence)` pair
//! once (building the Theorem 5.8 tables) and exposes §5's evaluation
//! modes as methods, mirroring [`transmark_core::evaluate::Evaluation`]
//! for plain transducers.
//!
//! Since the prepared-query refactor this facade is a bind of a
//! [`PreparedProjector`]: construction compiles (or adopts) the plan,
//! builds the per-sequence Theorem 5.8 tables over the plan's precompiled
//! B-graph, and every method executes over those shared artifacts —
//! bit-identical to the legacy free functions, but without re-deriving
//! machine-side work per call.

use std::collections::HashSet;
use std::sync::Arc;

use transmark_automata::SymbolId;
use transmark_core::enumerate::RankedAnswer;
use transmark_core::error::EngineError;
use transmark_markov::MarkovSequence;

use crate::enumerate::{enumerate_by_imax_lawler_planned, imax_of_output_from};
use crate::indexed::{enumerate_indexed_from, IndexedAnswer, IndexedEnumeration, IndexedEvaluator};
use crate::plan::{PreparedProjector, SprojExplain};
use crate::projector::SProjector;

/// A validated projector/data pair with evaluation methods — a compiled
/// plan bound to one sequence.
pub struct SprojEvaluation<'a> {
    m: &'a MarkovSequence,
    plan: Arc<PreparedProjector>,
    tables: IndexedEvaluator<'a>,
}

impl<'a> SprojEvaluation<'a> {
    /// Validates alphabets, compiles a fresh plan, and precomputes the
    /// Theorem 5.8 tables.
    pub fn new(p: &'a SProjector, m: &'a MarkovSequence) -> Result<Self, EngineError> {
        let plan = Arc::new(PreparedProjector::new(p));
        let tables = IndexedEvaluator::with_graph(p, m, plan.bgraph())?;
        Ok(Self { m, plan, tables })
    }

    /// Binds an already-compiled plan to a sequence, skipping machine-side
    /// recompilation (only the per-sequence Theorem 5.8 tables are built).
    pub fn with_plan(
        plan: &'a Arc<PreparedProjector>,
        m: &'a MarkovSequence,
    ) -> Result<Self, EngineError> {
        let tables = IndexedEvaluator::with_graph(plan.projector(), m, plan.bgraph())?;
        Ok(Self {
            m,
            plan: Arc::clone(plan),
            tables,
        })
    }

    /// The compiled plan behind this evaluation.
    pub fn plan(&self) -> &Arc<PreparedProjector> {
        &self.plan
    }

    /// EXPLAIN-style introspection: routes, machine shape, precompile
    /// cost, and plan-cache traffic so far.
    pub fn explain(&self) -> SprojExplain {
        self.plan.explain()
    }

    /// Exact confidence of the indexed answer `(o, i)` — Theorem 5.8,
    /// `O(|o|)` per call after table construction.
    pub fn indexed_confidence(&self, o: &[SymbolId], i: usize) -> f64 {
        self.tables.confidence(o, i)
    }

    /// `I_max(o)`: the best occurrence confidence.
    pub fn imax(&self, o: &[SymbolId]) -> Result<f64, EngineError> {
        Ok(imax_of_output_from(&self.tables, o))
    }

    /// Exact (plain) confidence `Pr(S →[P]→ o)` — Theorem 5.5
    /// (exponential only in `|Q_E|`; the concatenation NFA comes from the
    /// plan's memo cache).
    pub fn confidence(&self, o: &[SymbolId]) -> Result<f64, EngineError> {
        self.plan.confidence(self.m, o)
    }

    /// All indexed answers in exact decreasing confidence — Theorem 5.7,
    /// derived from this bind's tables.
    pub fn occurrences(&self) -> Result<IndexedEnumeration, EngineError> {
        Ok(enumerate_indexed_from(&self.tables))
    }

    /// The top-k occurrences.
    pub fn top_k_occurrences(&self, k: usize) -> Result<Vec<IndexedAnswer>, EngineError> {
        Ok(self.occurrences()?.take(k).collect())
    }

    /// Distinct output strings in decreasing `I_max` — Theorem 5.2
    /// (the dedup implementation; incremental polynomial time).
    pub fn strings(&self) -> Result<impl Iterator<Item = RankedAnswer> + 'a, EngineError> {
        let inner = enumerate_indexed_from(&self.tables);
        let mut seen: HashSet<Vec<SymbolId>> = HashSet::new();
        Ok(inner.filter_map(move |ia| {
            seen.insert(ia.output.clone()).then_some(RankedAnswer {
                output: ia.output,
                log_score: ia.log_confidence,
            })
        }))
    }

    /// Distinct output strings in decreasing `I_max` with guaranteed
    /// polynomial delay — Lemma 5.10's Lawler variant, over the plan's
    /// constraint-product cache.
    pub fn strings_poly_delay(
        &self,
    ) -> Result<impl Iterator<Item = RankedAnswer> + 'a, EngineError> {
        Ok(enumerate_by_imax_lawler_planned(
            Arc::clone(&self.plan),
            self.m,
        ))
    }

    /// The top-k distinct strings with their exact Theorem 5.5
    /// confidences attached (the recommended user-facing mode).
    pub fn top_k_scored(&self, k: usize) -> Result<Vec<(Vec<SymbolId>, f64, f64)>, EngineError> {
        let mut out = Vec::with_capacity(k);
        for r in self.strings()?.take(k) {
            let conf = self.confidence(&r.output)?;
            let imax = r.score();
            out.push((r.output, imax, conf));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::{Alphabet, Dfa};
    use transmark_markov::MarkovSequenceBuilder;

    fn setup() -> (SProjector, MarkovSequence) {
        let alphabet = Alphabet::of_chars("ab");
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 4)
            .uniform_all()
            .build()
            .unwrap();
        let p = SProjector::simple(
            std::sync::Arc::new(alphabet.clone()),
            Dfa::word(2, &[alphabet.sym("a")]),
        )
        .unwrap();
        (p, m)
    }

    #[test]
    fn facade_modes_are_consistent() {
        let (p, m) = setup();
        let ev = SprojEvaluation::new(&p, &m).unwrap();
        let a = [m.alphabet().sym("a")];
        // 4 occurrence positions, each with confidence 1/2.
        let occ = ev.top_k_occurrences(10).unwrap();
        assert_eq!(occ.len(), 4);
        for o in &occ {
            assert!((o.confidence() - 0.5).abs() < 1e-12);
            assert!((ev.indexed_confidence(&o.output, o.index) - o.confidence()).abs() < 1e-12);
        }
        // One distinct string; I_max = 1/2; conf = 1 - (1/2)^4.
        let strings: Vec<_> = ev.strings().unwrap().collect();
        assert_eq!(strings.len(), 1);
        assert!((ev.imax(&a).unwrap() - 0.5).abs() < 1e-12);
        assert!((ev.confidence(&a).unwrap() - (1.0 - 0.0625)).abs() < 1e-12);
        // Scored mode bundles all three numbers.
        let scored = ev.top_k_scored(5).unwrap();
        assert_eq!(scored.len(), 1);
        let (out, imax, conf) = &scored[0];
        assert_eq!(out, &a.to_vec());
        assert!((imax - 0.5).abs() < 1e-12);
        assert!((conf - 0.9375).abs() < 1e-12);
        // Both I_max enumerations agree.
        let lawler: Vec<_> = ev.strings_poly_delay().unwrap().collect();
        assert_eq!(lawler.len(), 1);
        assert!((lawler[0].score() - strings[0].score()).abs() < 1e-12);
    }

    #[test]
    fn facade_rejects_mismatched_alphabets() {
        let (p, _) = setup();
        let m3 = MarkovSequenceBuilder::new(Alphabet::of_chars("abc"), 2)
            .uniform_all()
            .build()
            .unwrap();
        assert!(SprojEvaluation::new(&p, &m3).is_err());
    }
}
