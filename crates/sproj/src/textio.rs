//! A plain-text interchange format for s-projectors.
//!
//! Companion to the sequence and transducer formats; an extraction query
//! is three regular expressions over a character alphabet (exactly the
//! paper's Example 5.1 presentation):
//!
//! ```text
//! sprojector v1
//! alphabet abcABC:  …one character per symbol, concatenated
//! prefix .*Name:
//! pattern [a-zA-Z]+
//! suffix \s.*
//! ```
//!
//! `alphabet` is given as a single run of characters (symbol names must
//! be single characters for the regex syntax to apply; write `\s` for a
//! space symbol); the three component lines hold the §5 `B`, `A`, `E`
//! expressions. `#` comments and blank lines are ignored.

use std::fmt::Write as _;

use transmark_automata::Alphabet;

use crate::projector::SProjector;

pub use transmark_markov::textio::ParseError;

/// Everything that can go wrong reading an s-projector file.
#[derive(Debug)]
pub enum TextIoError {
    /// Syntactic problem (including regex errors, which carry the line of
    /// the offending component).
    Parse(ParseError),
}

impl std::fmt::Display for TextIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextIoError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TextIoError {}

fn err(line: usize, message: impl Into<String>) -> TextIoError {
    TextIoError::Parse(ParseError {
        line,
        message: message.into(),
    })
}

/// Serializes the *source form* of an s-projector: the alphabet and the
/// three component patterns. Since [`SProjector`] stores compiled DFAs
/// (patterns are not recoverable), this takes the patterns explicitly;
/// it is the inverse of [`from_text`].
pub fn to_text(alphabet: &Alphabet, prefix: &str, pattern: &str, suffix: &str) -> String {
    let mut out = String::new();
    out.push_str("sprojector v1\nalphabet ");
    for (_, name) in alphabet.iter() {
        // Whitespace would be destroyed by line trimming; escape it.
        if name == " " {
            out.push_str("\\s");
        } else {
            out.push_str(name);
        }
    }
    let _ = write!(
        out,
        "\nprefix {prefix}\npattern {pattern}\nsuffix {suffix}\n"
    );
    out
}

/// Parses the v1 text format and compiles the projector.
pub fn from_text(text: &str) -> Result<SProjector, TextIoError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (ln, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if header != "sprojector v1" {
        return Err(err(
            ln,
            format!("expected \"sprojector v1\", found {header:?}"),
        ));
    }
    let (ln, alpha_line) = lines
        .next()
        .ok_or_else(|| err(0, "missing alphabet line"))?;
    let chars = alpha_line
        .strip_prefix("alphabet")
        .map(str::trim)
        .ok_or_else(|| err(ln, "expected \"alphabet <chars>\""))?;
    if chars.is_empty() {
        return Err(err(ln, "alphabet must have at least one character"));
    }
    // `\s` escapes a space symbol (plain spaces are destroyed by trimming).
    let chars = chars.replace("\\s", " ");
    let alphabet = Alphabet::of_chars(&chars);
    if alphabet.len() != chars.chars().count() {
        return Err(err(ln, "duplicate characters in alphabet"));
    }

    let mut component = |what: &'static str| -> Result<(usize, String), TextIoError> {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| err(0, format!("missing \"{what}\" line")))?;
        let body = line
            .strip_prefix(what)
            .ok_or_else(|| err(ln, format!("expected \"{what} <regex>\"")))?;
        Ok((ln, body.trim().to_string()))
    };
    let (pl, prefix) = component("prefix")?;
    let (al, pattern) = component("pattern")?;
    let (sl, suffix) = component("suffix")?;

    // Compile each component separately so errors point at the right line.
    let compile_err = |ln: usize, which: &str, e: transmark_core::error::EngineError| {
        err(ln, format!("invalid {which} pattern: {e}"))
    };
    SProjector::from_patterns(alphabet.clone(), &prefix, &pattern, &suffix).map_err(|e| {
        // Re-compile the pieces to locate the failure.
        use transmark_automata::regex::Regex;
        if Regex::parse(&prefix, &alphabet).is_err() {
            compile_err(pl, "prefix", e)
        } else if Regex::parse(&pattern, &alphabet).is_err() {
            compile_err(al, "pattern", e)
        } else {
            compile_err(sl, "suffix", e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::SymbolId;

    #[test]
    fn round_trip_compiles_the_same_query() {
        let alphabet = Alphabet::of_chars("abN:me ");
        let text = to_text(&alphabet, ".*N:", "[ab]+", "\\s.*");
        let p = from_text(&text).unwrap();
        let parse = |s: &str| -> Vec<SymbolId> {
            s.chars()
                .map(|c| p.alphabet().sym(&c.to_string()))
                .collect()
        };
        assert!(p.matches(&parse("aN:ab b"), &parse("ab")));
        assert!(!p.matches(&parse("aaN:abb"), &parse("ab"))); // no trailing space
    }

    #[test]
    fn hand_written_file_parses() {
        let text =
            "# extract runs of a\nsprojector v1\nalphabet ab\nprefix b*\npattern a+\nsuffix .*\n";
        let p = from_text(text).unwrap();
        let a = p.alphabet().sym("a");
        let b = p.alphabet().sym("b");
        assert!(p.matches(&[b, a, a], &[a, a]));
        assert!(!p.matches(&[a, b, a], &[a, a]));
    }

    #[test]
    fn errors_carry_component_lines() {
        let missing = "sprojector v1\nalphabet ab\nprefix .*\npattern a+\n";
        assert!(matches!(from_text(missing), Err(TextIoError::Parse(_))));
        let bad_pattern = "sprojector v1\nalphabet ab\nprefix .*\npattern [a\nsuffix .*\n";
        match from_text(bad_pattern) {
            Err(TextIoError::Parse(e)) => {
                assert_eq!(e.line, 4, "{e}");
                assert!(e.message.contains("pattern"), "{e}");
            }
            other => panic!("expected located error, got {other:?}"),
        }
        let dup = "sprojector v1\nalphabet aa\nprefix .*\npattern a\nsuffix .*\n";
        assert!(matches!(from_text(dup), Err(TextIoError::Parse(_))));
    }
}
