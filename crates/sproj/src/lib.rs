#![warn(missing_docs)]
// The layered DP kernels live in `transmark-kernel`; what remains here are
// seed/reduce loops and table builders over (position, node, state)
// indices, where the clippy suggestion (iterators with enumerate/zip)
// obscures the indexing the kernel's cell layout is defined by.
#![allow(clippy::needless_range_loop)]

//! Substring projectors over Markov sequences (§5 of "Transducing Markov
//! Sequences", PODS 2010).
//!
//! An s-projector `P = [B]A[E]` extracts from a string the substrings
//! matching the DFA `A`, subject to the prefix of the string (before the
//! match) lying in `L(B)` and the suffix (after it) in `L(E)`:
//! `s →[P]→ o` iff `o ∈ L(A)` and `s = b·o·e` with `b ∈ L(B)`,
//! `e ∈ L(E)`. An *indexed* s-projector `[B]↓A[E]` additionally reports
//! *where* the match starts: its answers are pairs `(o, i)`.
//!
//! The paper's Section 5 results and their homes here:
//!
//! | Module | Result |
//! |---|---|
//! | [`projector`] | the `[B]A[E]` model, regex front-end, direct match semantics |
//! | [`compile`]   | the §5 observation that `P` is expressible as a nondeterministic transducer (so all §4 machinery applies) |
//! | [`indexed`]   | Thm 5.8 (indexed confidence in polynomial time) and Thm 5.7 (exact ranked enumeration via k-best DAG paths) |
//! | [`confidence`]| Thm 5.5 (`Pr(S →[P]→ o)` via the concatenation language `L(B)·o·L(E)`; exponential only in `|Q_E|`) — and the Thm 5.4 hardness is why it cannot be fully polynomial |
//! | [`enumerate`] | Lemma 5.10 / Thm 5.2 (`I_max` order = n-approximate confidence order), Prop. 5.9 bounds |

pub mod compile;
pub mod confidence;
pub mod enumerate;
pub mod evaluate;
pub mod indexed;
pub mod plan;
pub mod projector;
pub mod textio;

pub use confidence::sproj_confidence;
pub use enumerate::{enumerate_by_imax, enumerate_by_imax_lawler, top_k_by_imax};
pub use evaluate::SprojEvaluation;
pub use indexed::{enumerate_indexed, IndexedAnswer, IndexedEvaluator};
pub use plan::{PreparedProjector, SprojExplain};
pub use projector::SProjector;
