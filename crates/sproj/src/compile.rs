//! Compiling an s-projector to an equivalent transducer.
//!
//! §5's "easy observation": given `P = [B]A[E]`, one can efficiently
//! construct a *nondeterministic* transducer `Â^ω̂` with
//! `s →[P]→ o ⇔ s →[Â^ω̂]→ o`. The construction runs the three DFAs in
//! phases — read a prefix with `B` emitting `ε`, nondeterministically
//! hand over to `A` emitting each read symbol, then hand over to `E`
//! emitting `ε` again. Nondeterminism encodes the unknown split points;
//! this is exactly why s-projector confidence is hard (Thm 5.4) even
//! though all three components are deterministic.
//!
//! The compiled transducer plugs into *all* of the §4 machinery: unranked
//! enumeration (Thm 4.1 "holds for s-projectors"), `E_max` ranking,
//! membership tests, and the brute-force oracles.

use std::sync::Arc;

use transmark_automata::{StateId, SymbolId};
use transmark_core::error::EngineError;
use transmark_core::transducer::{Transducer, TransducerBuilder};

use crate::projector::SProjector;

/// Phase layout of the compiled machine's state space:
/// `[0, nb)` = B-phase, `[nb, nb+na)` = A-phase, `[nb+na, …)` = E-phase.
fn b_state(q: StateId) -> StateId {
    q
}
fn a_state(nb: usize, q: StateId) -> StateId {
    StateId((nb + q.index()) as u32)
}
fn e_state(nb: usize, na: usize, q: StateId) -> StateId {
    StateId((nb + na + q.index()) as u32)
}

/// Compiles `[B]A[E]` into an equivalent nondeterministic transducer over
/// `Σ_P` (output alphabet = `Σ_P`). `O((|Q_B|+|Q_A|+|Q_E|)·|Σ|)` states
/// and transitions.
pub fn to_transducer(p: &SProjector) -> Result<Transducer, EngineError> {
    let alphabet = p.alphabet_arc();
    let k = alphabet.len();
    let (b, a, e) = (p.prefix_dfa(), p.pattern_dfa(), p.suffix_dfa());
    let (nb, na, ne) = (b.n_states(), a.n_states(), e.n_states());
    let eps_in_a = a.is_accepting(a.initial());
    let eps_in_e = e.is_accepting(e.initial());

    let mut tb = TransducerBuilder::new(Arc::clone(&alphabet), Arc::clone(&alphabet));
    // B-phase states: accepting iff the whole string may stop here with
    // empty middle and empty suffix.
    for q in 0..nb {
        tb.add_state(b.is_accepting(StateId(q as u32)) && eps_in_a && eps_in_e);
    }
    // A-phase: accepting iff the match may end here with empty suffix.
    for q in 0..na {
        tb.add_state(a.is_accepting(StateId(q as u32)) && eps_in_e);
    }
    // E-phase: accepting iff E accepts.
    for q in 0..ne {
        tb.add_state(e.is_accepting(StateId(q as u32)));
    }
    tb.set_initial(b_state(b.initial()));

    for q in 0..nb {
        let from = StateId(q as u32);
        for s in 0..k {
            let sym = SymbolId(s as u32);
            // Stay in the prefix.
            tb.add_transition(b_state(from), sym, b_state(b.step(from, sym)), &[])?;
            if b.is_accepting(from) {
                // Hand over: this symbol starts the match...
                tb.add_transition(
                    b_state(from),
                    sym,
                    a_state(nb, a.step(a.initial(), sym)),
                    &[sym],
                )?;
                // ...or the match is empty and this symbol starts the suffix.
                if eps_in_a {
                    tb.add_transition(
                        b_state(from),
                        sym,
                        e_state(nb, na, e.step(e.initial(), sym)),
                        &[],
                    )?;
                }
            }
        }
    }
    for q in 0..na {
        let from = StateId(q as u32);
        for s in 0..k {
            let sym = SymbolId(s as u32);
            // Continue the match, emitting the symbol.
            tb.add_transition(
                a_state(nb, from),
                sym,
                a_state(nb, a.step(from, sym)),
                &[sym],
            )?;
            // Or end the match here; this symbol starts the suffix.
            if a.is_accepting(from) {
                tb.add_transition(
                    a_state(nb, from),
                    sym,
                    e_state(nb, na, e.step(e.initial(), sym)),
                    &[],
                )?;
            }
        }
    }
    for q in 0..ne {
        let from = StateId(q as u32);
        for s in 0..k {
            let sym = SymbolId(s as u32);
            tb.add_transition(
                e_state(nb, na, from),
                sym,
                e_state(nb, na, e.step(from, sym)),
                &[],
            )?;
        }
    }
    tb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::Alphabet;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    fn strings(k: usize, n: usize) -> Vec<Vec<SymbolId>> {
        let mut out: Vec<Vec<SymbolId>> = vec![vec![]];
        for _ in 0..n {
            out = out
                .into_iter()
                .flat_map(|s| {
                    (0..k).map(move |c| {
                        let mut t = s.clone();
                        t.push(sym(c as u32));
                        t
                    })
                })
                .collect();
        }
        out
    }

    /// Exhaustive equivalence: for every string s (up to a length), the
    /// transducer's output set equals the projector's match set.
    fn assert_equivalent(p: &SProjector, max_len: usize) {
        let t = to_transducer(p).unwrap();
        assert!(t.is_projector());
        for s in strings(p.alphabet().len(), max_len) {
            if s.is_empty() {
                continue; // Markov sequences have n ≥ 1
            }
            let got = t.transduce_all(&s);
            let want = p.project_all(&s);
            assert_eq!(got, want, "outputs differ on input {s:?}");
        }
    }

    #[test]
    fn simple_pattern_equivalence() {
        let alphabet = Alphabet::of_chars("ab");
        let p = SProjector::from_patterns(alphabet, ".*", "ab", ".*").unwrap();
        assert_equivalent(&p, 4);
    }

    #[test]
    fn constrained_pattern_equivalence() {
        let alphabet = Alphabet::of_chars("ab");
        let p = SProjector::from_patterns(alphabet, "b*", "a+", "b*").unwrap();
        assert_equivalent(&p, 4);
    }

    #[test]
    fn epsilon_pattern_equivalence() {
        let alphabet = Alphabet::of_chars("ab");
        // Middle can be empty: ε ∈ L(a*).
        let p = SProjector::from_patterns(alphabet, "a*", "a*", "b*").unwrap();
        assert_equivalent(&p, 4);
    }

    #[test]
    fn empty_suffix_language_equivalence() {
        let alphabet = Alphabet::of_chars("ab");
        // Suffix must be exactly "b".
        let p = SProjector::from_patterns(alphabet, ".*", "a+", "b").unwrap();
        assert_equivalent(&p, 4);
    }

    #[test]
    fn three_symbol_alphabet_equivalence() {
        let alphabet = Alphabet::of_chars("abc");
        let p = SProjector::from_patterns(alphabet, "[ab]*", "c+", "[ab]*").unwrap();
        assert_equivalent(&p, 3);
    }
}
