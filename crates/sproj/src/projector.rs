//! The s-projector model `[B]A[E]`.

use std::sync::Arc;

use transmark_automata::{ops, regex::Regex, Alphabet, Dfa, SymbolId};
use transmark_core::error::EngineError;

/// A substring projector `P = [B]A[E]` (§5).
///
/// All three components are *complete DFAs over the same alphabet* `Σ_P`
/// (which must equal the Markov sequence's `Σ_μ` at query time). `A` plays
/// the role of the paper's deterministic 1-uniform projector: the matched
/// substring is emitted verbatim, so no output function needs to be
/// stored.
#[derive(Debug, Clone)]
pub struct SProjector {
    alphabet: Arc<Alphabet>,
    prefix: Dfa,
    pattern: Dfa,
    suffix: Dfa,
}

impl SProjector {
    /// Builds `[B]A[E]` from three DFAs, validating completeness and
    /// alphabet agreement.
    pub fn new(
        alphabet: impl Into<Arc<Alphabet>>,
        prefix: Dfa,
        pattern: Dfa,
        suffix: Dfa,
    ) -> Result<Self, EngineError> {
        let alphabet = alphabet.into();
        for (dfa, _name) in [(&prefix, "B"), (&pattern, "A"), (&suffix, "E")] {
            dfa.validate()?;
            if dfa.n_symbols() != alphabet.len() {
                return Err(EngineError::AlphabetMismatch {
                    transducer: dfa.n_symbols(),
                    sequence: alphabet.len(),
                });
            }
        }
        Ok(Self {
            alphabet,
            prefix,
            pattern,
            suffix,
        })
    }

    /// A *simple* s-projector `[*]A[*]`: no prefix/suffix constraints.
    pub fn simple(alphabet: impl Into<Arc<Alphabet>>, pattern: Dfa) -> Result<Self, EngineError> {
        let alphabet = alphabet.into();
        let u = Dfa::universal(alphabet.len());
        Self::new(alphabet, u.clone(), pattern, u)
    }

    /// Builds an s-projector from three regular expressions in the
    /// Perl-ish syntax of [`transmark_automata::regex`] (the paper's
    /// Example 5.1 style: `[B]A[E]` = `(".*Name:", "[a-zA-Z,]+", "\s.*")`).
    ///
    /// ```
    /// use transmark_automata::Alphabet;
    /// use transmark_sproj::SProjector;
    ///
    /// // Extract a maximal run of a's that follows only b's.
    /// let alphabet = Alphabet::of_chars("ab");
    /// let p = SProjector::from_patterns(alphabet.clone(), "b*", "a+", ".*")?;
    /// let text: Vec<_> = "bbaab".chars().map(|c| alphabet.sym(&c.to_string())).collect();
    /// let aa: Vec<_> = "aa".chars().map(|c| alphabet.sym(&c.to_string())).collect();
    /// assert!(p.matches(&text, &aa));
    /// # Ok::<(), transmark_core::error::EngineError>(())
    /// ```
    pub fn from_patterns(
        alphabet: impl Into<Arc<Alphabet>>,
        prefix: &str,
        pattern: &str,
        suffix: &str,
    ) -> Result<Self, EngineError> {
        let alphabet = alphabet.into();
        let compile = |pat: &str| -> Result<Dfa, EngineError> {
            let nfa = Regex::to_nfa(pat, &alphabet)?;
            Ok(ops::determinize(&nfa))
        };
        let b = compile(prefix)?;
        let a = compile(pattern)?;
        let e = compile(suffix)?;
        Self::new(alphabet, b, a, e)
    }

    /// The shared alphabet `Σ_P`.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Shared handle to the alphabet.
    pub fn alphabet_arc(&self) -> Arc<Alphabet> {
        Arc::clone(&self.alphabet)
    }

    /// The prefix constraint `B`.
    pub fn prefix_dfa(&self) -> &Dfa {
        &self.prefix
    }

    /// The pattern `A`.
    pub fn pattern_dfa(&self) -> &Dfa {
        &self.pattern
    }

    /// The suffix constraint `E`.
    pub fn suffix_dfa(&self) -> &Dfa {
        &self.suffix
    }

    /// Whether both constraints are universal (`[*]A[*]`).
    pub fn is_simple(&self) -> bool {
        // A DFA is universal iff its complement's language is empty.
        let universal = |d: &Dfa| ops::is_empty_dfa(&ops::complement(d));
        universal(&self.prefix) && universal(&self.suffix)
    }

    /// Direct match semantics (by definition, trying every split):
    /// `s →[P]→ o` iff `o ∈ L(A)` and some split `s = b·o·e` has
    /// `b ∈ L(B)` and `e ∈ L(E)`. `O(n)` splits, each `O(n)` — used by
    /// oracles and tests.
    pub fn matches(&self, s: &[SymbolId], o: &[SymbolId]) -> bool {
        self.match_indices(s, o).next().is_some()
    }

    /// All (1-based) start indices `i` such that `(o, i)` is an answer for
    /// the *indexed* projector on the concrete string `s`.
    pub fn match_indices<'a>(
        &'a self,
        s: &'a [SymbolId],
        o: &'a [SymbolId],
    ) -> impl Iterator<Item = usize> + 'a {
        let m = o.len();
        let n = s.len();
        let pattern_ok = self.pattern.accepts(o);
        (1..=n.saturating_sub(m) + 1).filter(move |&i| {
            pattern_ok
                && s[i - 1..i - 1 + m] == *o
                && self.prefix.accepts(&s[..i - 1])
                && self.suffix.accepts(&s[i - 1 + m..])
        })
    }

    /// All answers of the (non-indexed) projector on a concrete string.
    pub fn project_all(&self, s: &[SymbolId]) -> Vec<Vec<SymbolId>> {
        let mut out = std::collections::BTreeSet::new();
        for i in 1..=s.len() + 1 {
            for j in i..=s.len() + 1 {
                let o = &s[i - 1..j - 1];
                if self.pattern.accepts(o)
                    && self.prefix.accepts(&s[..i - 1])
                    && self.suffix.accepts(&s[j - 1..])
                {
                    out.insert(o.to_vec());
                }
            }
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    fn strings(k: usize, n: usize) -> Vec<Vec<SymbolId>> {
        let mut out: Vec<Vec<SymbolId>> = vec![vec![]];
        for _ in 0..n {
            out = out
                .into_iter()
                .flat_map(|s| {
                    (0..k).map(move |c| {
                        let mut t = s.clone();
                        t.push(sym(c as u32));
                        t
                    })
                })
                .collect();
        }
        out
    }

    /// `[b* ] a+ [ .*]` over {a,b}: extract a block of a's that starts
    /// after only b's.
    fn block_projector() -> SProjector {
        let alphabet = Alphabet::of_chars("ab");
        SProjector::from_patterns(alphabet, "b*", "a+", ".*").unwrap()
    }

    #[test]
    fn matches_by_definition() {
        let p = block_projector();
        let a = |s: &str| -> Vec<SymbolId> {
            s.chars()
                .map(|c| if c == 'a' { sym(0) } else { sym(1) })
                .collect()
        };
        assert!(p.matches(&a("bbaab"), &a("aa")));
        assert!(p.matches(&a("bbaab"), &a("a"))); // shorter match inside
        assert!(!p.matches(&a("abaa"), &a("aa"))); // prefix "ab" ∉ b*
        assert!(p.matches(&a("aa"), &a("aa")));
        assert!(!p.matches(&a("bb"), &a("a")));
        assert!(!p.matches(&a("bbaab"), &a("b"))); // pattern must be a+
    }

    #[test]
    fn match_indices_are_correct() {
        let p = block_projector();
        let a = |s: &str| -> Vec<SymbolId> {
            s.chars()
                .map(|c| if c == 'a' { sym(0) } else { sym(1) })
                .collect()
        };
        let s = a("baab");
        let idx: Vec<usize> = p.match_indices(&s, &a("a")).collect();
        // "a" occurs at positions 2, 3; prefix "b" ∈ b*, prefix "ba" ∉ b*.
        assert_eq!(idx, vec![2]);
        let idx2: Vec<usize> = p.match_indices(&s, &a("aa")).collect();
        assert_eq!(idx2, vec![2]);
    }

    #[test]
    fn project_all_collects_every_match() {
        let p = block_projector();
        let a = |s: &str| -> Vec<SymbolId> {
            s.chars()
                .map(|c| if c == 'a' { sym(0) } else { sym(1) })
                .collect()
        };
        let outs = p.project_all(&a("baa"));
        assert_eq!(outs, vec![a("a"), a("aa")]);
    }

    #[test]
    fn simple_projector_has_no_context_constraints() {
        let alphabet = Alphabet::of_chars("ab");
        let pattern = {
            let nfa = Regex::to_nfa("ab", &alphabet).unwrap();
            transmark_automata::ops::determinize(&nfa)
        };
        let p = SProjector::simple(alphabet, pattern).unwrap();
        for s in strings(2, 4) {
            let expect = s.windows(2).any(|w| w == [sym(0), sym(1)]);
            assert_eq!(p.matches(&s, &[sym(0), sym(1)]), expect, "on {s:?}");
        }
    }

    #[test]
    fn empty_pattern_match_is_allowed() {
        // A accepts only ε: answers are (ε, i) wherever prefix/suffix split.
        let alphabet = Alphabet::of_chars("ab");
        let p = SProjector::from_patterns(alphabet, "a*", "", ".*").unwrap();
        assert!(p.matches(&[sym(0), sym(1)], &[]));
        assert!(!p.matches(&[sym(1), sym(1)], &[sym(1)]));
        // match_indices for ε: i-1 = |prefix| must satisfy a*.
        let idx: Vec<usize> = p.match_indices(&[sym(0), sym(1)], &[]).collect();
        assert_eq!(idx, vec![1, 2]); // prefixes "", "a" ∈ a*; "ab" ∉ a*
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let alphabet = Alphabet::of_chars("ab");
        let wrong = Dfa::universal(3);
        assert!(SProjector::new(
            alphabet.clone(),
            wrong,
            Dfa::universal(2),
            Dfa::universal(2)
        )
        .is_err());
    }
}
