//! The prepared-projector layer: the §5 counterpart of
//! [`transmark_core::plan`].
//!
//! A [`PreparedProjector`] compiles once, per projector, everything the
//! §5 engines would otherwise rebuild per call:
//!
//! * the B-DFA step graph behind every Theorem 5.8 table construction
//!   (one per bound sequence, otherwise one per *call*),
//! * the compiled §5 "easy observation" transducer (on first use),
//! * the Theorem 5.5 concatenation NFAs `B·o·E`, memoized per answer,
//! * the Lemma 5.10 Lawler–Murty constraint products (pattern ∩
//!   constraint), memoized per [`PrefixConstraint`] and shared across
//!   subspace probes *and* across binds.
//!
//! Everything cached is machine-side; the per-sequence Theorem 5.8 tables
//! are built at bind time by [`crate::SprojEvaluation`]. As in the core
//! plan layer, the on-the-fly determinization inside
//! `acceptance_probability` is deliberately *not* shared — a fresh
//! determinizer per evaluation keeps reduction order, and therefore float
//! output, bit-identical to the legacy path.

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use transmark_automata::{ops, Fingerprinter, Nfa, SymbolId};
use transmark_core::confidence::acceptance_probability;
use transmark_core::constraints::PrefixConstraint;
use transmark_core::error::EngineError;
use transmark_core::plan::{BoundedCache, PlanKind};
use transmark_core::transducer::Transducer;
use transmark_kernel::StepGraph;
use transmark_markov::MarkovSequence;

use crate::compile::to_transducer;
use crate::confidence::{concat_nfa_for, validate};
use crate::evaluate::SprojEvaluation;
use crate::indexed::dfa_step_graph;
use crate::projector::SProjector;

/// How many answer-keyed concatenation NFAs / constraint products each
/// prepared projector memoizes.
const CONCAT_CACHE_CAP: usize = 64;
const CONSTRAINT_CACHE_CAP: usize = 256;

/// A compiled s-projector: machine-side artifacts precompiled or
/// memoized, shareable as `Arc<PreparedProjector>` across threads and
/// binds.
pub struct PreparedProjector {
    p: SProjector,
    /// The B-DFA step graph every Theorem 5.8 table build runs over.
    bgraph: StepGraph,
    /// The §5 "easy observation" transducer, compiled on first use.
    compiled: OnceLock<Transducer>,
    /// Theorem 5.5 concatenation NFAs `B·o·E`, per answer.
    concat_nfas: Mutex<BoundedCache<Vec<SymbolId>, Nfa>>,
    /// Lemma 5.10 constraint products (pattern ∩ constraint DFA).
    constraint_products: Mutex<BoundedCache<PrefixConstraint, SProjector>>,
}

impl PreparedProjector {
    /// Compiles `p` (cloned into the plan, so the plan is self-contained).
    pub fn new(p: &SProjector) -> Self {
        Self::from_owned(p.clone())
    }

    /// Like [`PreparedProjector::new`] but takes ownership.
    pub fn from_owned(p: SProjector) -> Self {
        let bgraph = dfa_step_graph(p.prefix_dfa(), p.alphabet().len());
        Self {
            p,
            bgraph,
            compiled: OnceLock::new(),
            concat_nfas: Mutex::new(BoundedCache::new(CONCAT_CACHE_CAP)),
            constraint_products: Mutex::new(BoundedCache::new(CONSTRAINT_CACHE_CAP)),
        }
    }

    /// The compiled projector.
    pub fn projector(&self) -> &SProjector {
        &self.p
    }

    /// The Table 2 route for plain (non-indexed) evaluation.
    pub fn kind(&self) -> PlanKind {
        PlanKind::Sproj
    }

    /// The Table 2 route for indexed evaluation (Theorems 5.7/5.8).
    pub fn indexed_kind(&self) -> PlanKind {
        PlanKind::SprojIndexed
    }

    /// A structural fingerprint of the projector (domain-separated from
    /// transducer and automaton fingerprints).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_bytes(b"sproj");
        fp.write_usize(self.p.alphabet().len());
        fp.write_u64(self.p.prefix_dfa().fingerprint());
        fp.write_u64(self.p.pattern_dfa().fingerprint());
        fp.write_u64(self.p.suffix_dfa().fingerprint());
        fp.finish()
    }

    /// The precompiled B-DFA step graph (machine-side input to every
    /// Theorem 5.8 table build).
    pub(crate) fn bgraph(&self) -> &StepGraph {
        &self.bgraph
    }

    /// The §5 compiled transducer, built on first use and cached. All the
    /// §4 machinery (unranked enumeration, `E_max`, membership) runs on
    /// it.
    pub fn compiled(&self) -> &Transducer {
        self.compiled.get_or_init(|| {
            to_transducer(&self.p).expect("projector components share the alphabet")
        })
    }

    /// The memoized Theorem 5.5 concatenation NFA `B·o·E`.
    pub(crate) fn concat_nfa(&self, o: &[SymbolId]) -> Arc<Nfa> {
        let mut cache = self.concat_nfas.lock().expect("plan cache poisoned");
        cache.get_or_insert_with(&o.to_vec(), || concat_nfa_for(&self.p, o))
    }

    /// The memoized Lemma 5.10 constraint product: the projector whose
    /// pattern is `pattern ∩ constraint`.
    pub(crate) fn constrained(&self, c: &PrefixConstraint) -> Arc<SProjector> {
        let mut cache = self
            .constraint_products
            .lock()
            .expect("plan cache poisoned");
        cache.get_or_insert_with(c, || {
            let pattern = ops::product(
                self.p.pattern_dfa(),
                &c.to_dfa(self.p.alphabet().len()),
                ops::BoolOp::And,
            )
            .expect("pattern and constraint share the alphabet");
            SProjector::new(
                self.p.alphabet_arc(),
                self.p.prefix_dfa().clone(),
                pattern,
                self.p.suffix_dfa().clone(),
            )
            .expect("constrained projector is valid")
        })
    }

    /// **Theorem 5.5** confidence over the memoized concatenation NFA
    /// (bit-identical to [`crate::sproj_confidence`]).
    pub fn confidence(&self, m: &MarkovSequence, o: &[SymbolId]) -> Result<f64, EngineError> {
        validate(&self.p, m, o)?;
        if !self.p.pattern_dfa().accepts(o) {
            return Ok(0.0);
        }
        acceptance_probability(&self.concat_nfa(o), m)
    }

    /// Binds one sequence: builds the Theorem 5.8 tables over the
    /// precompiled B-graph and returns the full evaluation facade.
    pub fn bind<'a>(
        self: &'a Arc<Self>,
        m: &'a MarkovSequence,
    ) -> Result<SprojEvaluation<'a>, EngineError> {
        SprojEvaluation::with_plan(self, m)
    }

    /// EXPLAIN-style introspection.
    pub fn explain(&self) -> SprojExplain {
        let (cn_len, cn_hits, cn_misses) = {
            let c = self.concat_nfas.lock().expect("plan cache poisoned");
            (c.len(), c.hits(), c.misses())
        };
        let (cp_len, cp_hits, cp_misses) = {
            let c = self
                .constraint_products
                .lock()
                .expect("plan cache poisoned");
            (c.len(), c.hits(), c.misses())
        };
        SprojExplain {
            kind: self.kind(),
            indexed_kind: self.indexed_kind(),
            n_symbols: self.p.alphabet().len(),
            n_prefix_states: self.p.prefix_dfa().n_states(),
            n_pattern_states: self.p.pattern_dfa().n_states(),
            n_suffix_states: self.p.suffix_dfa().n_states(),
            simple: self.p.is_simple(),
            bgraph_edges: self.bgraph.n_edges(),
            precompiled_bytes: self.bgraph.approx_bytes(),
            compiled_transducer_states: self.compiled.get().map(Transducer::n_states),
            cached_concat_nfas: cn_len,
            cached_constraint_products: cp_len,
            cache_hits: cn_hits + cp_hits,
            cache_misses: cn_misses + cp_misses,
        }
    }
}

// One Arc<PreparedProjector> serves concurrent binds.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedProjector>();
};

/// EXPLAIN output for a prepared projector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SprojExplain {
    /// The plain-evaluation Table 2 route ([`PlanKind::Sproj`]).
    pub kind: PlanKind,
    /// The indexed-evaluation route ([`PlanKind::SprojIndexed`]).
    pub indexed_kind: PlanKind,
    /// `|Σ_P|`.
    pub n_symbols: usize,
    /// `|Q_B|`.
    pub n_prefix_states: usize,
    /// `|Q_A|`.
    pub n_pattern_states: usize,
    /// `|Q_E|`.
    pub n_suffix_states: usize,
    /// Whether `B` and `E` are universal (`P = ↓A` up to indexing).
    pub simple: bool,
    /// Edges in the precompiled B-DFA step graph.
    pub bgraph_edges: usize,
    /// Approximate bytes of eagerly precompiled machine-side artifacts.
    pub precompiled_bytes: usize,
    /// States of the compiled §5 transducer, if it has been built.
    pub compiled_transducer_states: Option<usize>,
    /// Concatenation NFAs currently memoized.
    pub cached_concat_nfas: usize,
    /// Constraint products currently memoized.
    pub cached_constraint_products: usize,
    /// Total plan-cache hits so far.
    pub cache_hits: u64,
    /// Total plan-cache misses (= compilations) so far.
    pub cache_misses: u64,
}

impl fmt::Display for SprojExplain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan: {}  [{}]; indexed: {}  [{}]",
            self.kind,
            self.kind.table2_row(),
            self.indexed_kind,
            self.indexed_kind.table2_row()
        )?;
        writeln!(
            f,
            "machine: |Q_B|={} |Q_A|={} |Q_E|={} over {} symbols{}",
            self.n_prefix_states,
            self.n_pattern_states,
            self.n_suffix_states,
            self.n_symbols,
            if self.simple { " (simple)" } else { "" }
        )?;
        writeln!(
            f,
            "precompiled: B-graph {} edges (~{} bytes); compiled transducer: {}",
            self.bgraph_edges,
            self.precompiled_bytes,
            match self.compiled_transducer_states {
                Some(n) => format!("{n} states"),
                None => "not yet built".to_string(),
            }
        )?;
        write!(
            f,
            "caches: {} concat NFAs, {} constraint products ({} hits / {} misses)",
            self.cached_concat_nfas,
            self.cached_constraint_products,
            self.cache_hits,
            self.cache_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::{Alphabet, Dfa};
    use transmark_markov::MarkovSequenceBuilder;

    fn setup() -> (SProjector, MarkovSequence) {
        let alphabet = Alphabet::of_chars("ab");
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 4)
            .uniform_all()
            .build()
            .unwrap();
        let p = SProjector::simple(
            Arc::new(alphabet.clone()),
            Dfa::word(2, &[alphabet.sym("a")]),
        )
        .unwrap();
        (p, m)
    }

    #[test]
    fn prepared_confidence_matches_free_function_bitwise() {
        let (p, m) = setup();
        let plan = Arc::new(PreparedProjector::new(&p));
        let o = [m.alphabet().sym("a")];
        let free = crate::sproj_confidence(&p, &m, &o).unwrap();
        let planned = plan.confidence(&m, &o).unwrap();
        assert_eq!(free.to_bits(), planned.to_bits());
        // Second call hits the concat-NFA cache and stays identical.
        assert_eq!(
            plan.confidence(&m, &o).unwrap().to_bits(),
            planned.to_bits()
        );
        let e = plan.explain();
        assert_eq!(e.cached_concat_nfas, 1);
        assert_eq!(e.cache_hits, 1);
        assert_eq!(e.cache_misses, 1);
    }

    #[test]
    fn fingerprint_distinguishes_projectors() {
        let (p, _) = setup();
        let plan = PreparedProjector::new(&p);
        assert_eq!(plan.fingerprint(), PreparedProjector::new(&p).fingerprint());
        let alphabet = Alphabet::of_chars("ab");
        let other = SProjector::simple(
            Arc::new(alphabet.clone()),
            Dfa::word(2, &[alphabet.sym("b")]),
        )
        .unwrap();
        assert_ne!(
            plan.fingerprint(),
            PreparedProjector::new(&other).fingerprint()
        );
    }

    #[test]
    fn compiled_transducer_is_lazy_and_cached() {
        let (p, _) = setup();
        let plan = PreparedProjector::new(&p);
        assert_eq!(plan.explain().compiled_transducer_states, None);
        let n1 = plan.compiled().n_states();
        assert_eq!(plan.explain().compiled_transducer_states, Some(n1));
        assert!(std::ptr::eq(plan.compiled(), plan.compiled()));
    }

    #[test]
    fn explain_display_names_both_routes() {
        let (p, _) = setup();
        let text = format!("{}", PreparedProjector::new(&p).explain());
        assert!(text.contains("Thm 5.5"));
        assert!(text.contains("sproj-indexed"));
        assert!(text.contains("(simple)"));
    }
}
