//! Indexed s-projectors `[B]↓A[E]` (§5.1).
//!
//! An indexed answer is a pair `(o, i)`: the matched substring together
//! with the (1-based) position where the match starts. Fixing the
//! position removes the union over occurrences that makes plain
//! s-projector confidence #P-hard (Thm 5.4), so both problems become
//! polynomial:
//!
//! * **Theorem 5.8** — [`IndexedEvaluator::confidence`]: the confidence of
//!   `(o, i)` factorizes as
//!   `W_pre(i, o₁) · ∏ⱼ μ(oⱼ, oⱼ₊₁) · W_suf(i+|o|-1, o_|o|)` where
//!   `W_pre` aggregates prefix strings in `L(B)` and `W_suf` aggregates
//!   suffix strings in `L(E)`. Both tables come from one forward DP over
//!   `(position, node, Q_B)` and one backward DP over
//!   `(position, Q_E, node)` — `O(n·|Σ|²·|Q|)` total, then `O(|o|)` per
//!   query.
//! * **Theorem 5.7** — [`enumerate_indexed`]: answers are in bijection
//!   with source→sink paths of a layered DAG whose path weights are
//!   exactly the confidences (`A` is deterministic, so each `(o, i)` has
//!   one path), and the k-best-paths enumerator of `transmark-kbest`
//!   yields them in decreasing confidence with polynomial delay.

use transmark_automata::{Dfa, StateId, SymbolId};
use transmark_core::error::EngineError;
use transmark_kbest::{Dag, KBestPaths};
use transmark_kernel::{advance, count_layers, Prob, StepGraph, Workspace};
use transmark_markov::numeric::KahanSum;
use transmark_markov::MarkovSequence;

use crate::projector::SProjector;

/// Precompiles a DFA's transition function into a kernel step graph:
/// rows are DFA states, one edge per `(symbol, state)`. Machine-side —
/// a [`crate::plan::PreparedProjector`] compiles it once and shares it
/// across binds.
pub(crate) fn dfa_step_graph(d: &Dfa, n_symbols: usize) -> StepGraph {
    let nq = d.n_states();
    let mut b = StepGraph::builder(n_symbols, nq);
    for sym in 0..n_symbols {
        for q in 0..nq {
            b.add_edge(
                sym as u32,
                q as u32,
                d.step(StateId(q as u32), SymbolId(sym as u32)).0,
                0,
            );
        }
    }
    b.build()
}

/// An answer of an indexed s-projector.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedAnswer {
    /// The matched substring `o`.
    pub output: Vec<SymbolId>,
    /// The 1-based start position `i` of the match
    /// (`s = b·o·e` with `|b| = i - 1`).
    pub index: usize,
    /// `ln Pr(S →[B]↓A[E]→ (o, i))`.
    pub log_confidence: f64,
}

impl IndexedAnswer {
    /// The confidence in linear space.
    pub fn confidence(&self) -> f64 {
        self.log_confidence.exp()
    }
}

/// Precomputed prefix/suffix probability tables for one
/// `(projector, Markov sequence)` pair — the engine behind Theorems 5.7
/// and 5.8.
pub struct IndexedEvaluator<'a> {
    p: &'a SProjector,
    m: &'a MarkovSequence,
    /// `prefix_b[l-1][x]` = `Pr(S[1..l] ∈ L(B) ∧ S_l = x)`, `l = 1..=n`.
    prefix_b: Vec<Vec<f64>>,
    /// `g[l-2][qE·|Σ| + y]` = `Pr(S[l..n] drives E from qE to acceptance
    /// | S_{l-1} = y)`, `l = 2..=n+1`.
    g: Vec<Vec<f64>>,
    /// `g_start[qE]` = `Pr(S[1..n] drives E from qE to acceptance)`.
    g_start: Vec<f64>,
    eps_in_b: bool,
    eps_in_e: bool,
}

impl<'a> IndexedEvaluator<'a> {
    /// Builds the tables: `O(n·|Σ|²·(|Q_B| + |Q_E|))`.
    pub fn new(p: &'a SProjector, m: &'a MarkovSequence) -> Result<Self, EngineError> {
        let bgraph = dfa_step_graph(p.prefix_dfa(), p.alphabet().len());
        Self::with_graph(p, m, &bgraph)
    }

    /// [`IndexedEvaluator::new`] over a precompiled B-DFA step graph
    /// (which must be `dfa_step_graph(p.prefix_dfa(), |Σ|)`). The graph is
    /// only read during construction; the prepared-projector path shares
    /// one graph across binds.
    pub(crate) fn with_graph(
        p: &'a SProjector,
        m: &'a MarkovSequence,
        bgraph: &StepGraph,
    ) -> Result<Self, EngineError> {
        if p.alphabet().len() != m.n_symbols() {
            return Err(EngineError::AlphabetMismatch {
                transducer: p.alphabet().len(),
                sequence: m.n_symbols(),
            });
        }
        let n = m.len();
        let k = m.n_symbols();
        let b: &Dfa = p.prefix_dfa();
        let e: &Dfa = p.suffix_dfa();
        let (nb, ne) = (b.n_states(), e.n_states());

        // Forward over (node, B-state): a kernel sum-product pass over the
        // B-DFA's step graph. Cells are fwd[x*nb + q].
        let steps = m.sparse_steps();
        let mut ws: Workspace<f64> = Workspace::new();
        ws.reset(k * nb, 0.0);
        for &(node, px) in steps.initial() {
            for e in bgraph.edges(node, b.initial().0) {
                ws.cur_mut()[node as usize * nb + e.to as usize] += px;
            }
        }
        let mut prefix_b = Vec::with_capacity(n);
        let collect_prefix = |fwd: &[f64]| -> Vec<f64> {
            (0..k)
                .map(|x| {
                    let mut acc = KahanSum::new();
                    for q in 0..nb {
                        if b.is_accepting(StateId(q as u32)) {
                            acc.add(fwd[x * nb + q]);
                        }
                    }
                    acc.total()
                })
                .collect()
        };
        prefix_b.push(collect_prefix(ws.cur()));
        for step in 0..n - 1 {
            ws.clear_next(0.0);
            let (cur, next) = ws.buffers();
            advance::<Prob, _>(&steps.at(step), bgraph, cur, next);
            ws.swap();
            prefix_b.push(collect_prefix(ws.cur()));
        }
        count_layers((n - 1) as u64);

        // Backward over (E-state, conditioning node). g[l-2][qE*k + y].
        // Base case l = n+1: acceptance indicator, no node dependence.
        let mut g: Vec<Vec<f64>> = vec![Vec::new(); n]; // slots for l = 2..=n+1
        let mut last = vec![0.0f64; ne * k];
        for q in 0..ne {
            let v = f64::from(u8::from(e.is_accepting(StateId(q as u32))));
            for y in 0..k {
                last[q * k + y] = v;
            }
        }
        g[n - 1] = last;
        for l in (2..=n).rev() {
            // g[l] from g[l+1]; transition 0-based index l-1 couples
            // 1-based positions l-1 → l... here: previous node y at l-1,
            // next node t at l, matrix index l-2.
            let mut cur = vec![0.0f64; ne * k];
            let nxt = &g[l - 1]; // slot of l+1 is (l+1)-2 = l-1
            for q in 0..ne {
                for y in 0..k {
                    let mut acc = KahanSum::new();
                    for (t, pt) in m.transitions_from(l - 2, SymbolId(y as u32)) {
                        let q2 = e.step(StateId(q as u32), t).index();
                        acc.add(pt * nxt[q2 * k + t.index()]);
                    }
                    cur[q * k + y] = acc.total();
                }
            }
            g[l - 2] = cur;
        }
        // g_start: suffix = whole string (l = 1), weighted by μ₀.
        let mut g_start = vec![0.0f64; ne];
        for q in 0..ne {
            let mut acc = KahanSum::new();
            for t in 0..k {
                let p0 = m.initial_prob(SymbolId(t as u32));
                if p0 > 0.0 {
                    let q2 = e.step(StateId(q as u32), SymbolId(t as u32)).index();
                    // value of "suffix from position 2 onwards" given node t:
                    let v = if n == 1 {
                        f64::from(u8::from(e.is_accepting(StateId(q2 as u32))))
                    } else {
                        g[0][q2 * k + t]
                    };
                    acc.add(p0 * v);
                }
            }
            g_start[q] = acc.total();
        }

        Ok(Self {
            eps_in_b: b.is_accepting(b.initial()),
            eps_in_e: e.is_accepting(e.initial()),
            p,
            m,
            prefix_b,
            g,
            g_start,
        })
    }

    /// The sequence length `n`.
    pub fn n(&self) -> usize {
        self.m.len()
    }

    /// `W_pre(i, c)` = `Pr(S[1..i-1] ∈ L(B) ∧ S_i = c)` — the probability
    /// mass of prefixes in `L(B)` followed by node `c` at position `i`
    /// (1-based).
    fn w_pre(&self, i: usize, c: SymbolId) -> f64 {
        if i == 1 {
            return if self.eps_in_b {
                self.m.initial_prob(c)
            } else {
                0.0
            };
        }
        let k = self.m.n_symbols();
        let mut acc = KahanSum::new();
        for x in 0..k {
            let pb = self.prefix_b[i - 2][x];
            if pb > 0.0 {
                acc.add(pb * self.m.transition_prob(i - 2, SymbolId(x as u32), c));
            }
        }
        acc.total()
    }

    /// `W_suf(l, y)` = `Pr(S[l..n] ∈ L(E) | S_{l-1} = y)` for `2 ≤ l ≤ n+1`
    /// (`l = n+1` means the suffix is empty).
    fn w_suf(&self, l: usize, y: SymbolId) -> f64 {
        debug_assert!(l >= 2);
        if l == self.m.len() + 1 {
            return f64::from(u8::from(self.eps_in_e));
        }
        let e0 = self.p.suffix_dfa().initial().index();
        self.g[l - 2][e0 * self.m.n_symbols() + y.index()]
    }

    /// **Theorem 5.8**: the confidence of the indexed answer `(o, i)`,
    /// in `O(|o| + |Σ|)` after table construction. Returns 0 for invalid
    /// indices or `o ∉ L(A)`.
    pub fn confidence(&self, o: &[SymbolId], i: usize) -> f64 {
        let n = self.m.len();
        let mlen = o.len();
        if i == 0 || !self.p.pattern_dfa().accepts(o) {
            return 0.0;
        }
        if mlen == 0 {
            // Valid indices 1..=n+1; conf = Pr(prefix ∈ L(B) ∧ suffix ∈ L(E)).
            if i > n + 1 {
                return 0.0;
            }
            return if i == 1 {
                if self.eps_in_b {
                    self.g_start[self.p.suffix_dfa().initial().index()]
                } else {
                    0.0
                }
            } else if i == n + 1 {
                if self.eps_in_e {
                    self.prefix_b[n - 1]
                        .iter()
                        .copied()
                        .collect::<KahanSum>()
                        .total()
                } else {
                    0.0
                }
            } else {
                let k = self.m.n_symbols();
                let e0 = self.p.suffix_dfa().initial().index();
                let mut acc = KahanSum::new();
                for x in 0..k {
                    let pb = self.prefix_b[i - 2][x];
                    if pb > 0.0 {
                        acc.add(pb * self.g[i - 2][e0 * k + x]);
                    }
                }
                acc.total()
            };
        }
        if i + mlen - 1 > n {
            return 0.0;
        }
        let mut prob = self.w_pre(i, o[0]);
        for j in 0..mlen - 1 {
            if prob == 0.0 {
                return 0.0;
            }
            prob *= self.m.transition_prob(i - 1 + j, o[j], o[j + 1]);
        }
        prob * self.w_suf(i + mlen, o[mlen - 1])
    }
}

// ---------------------------------------------------------------------------
// Theorem 5.7 — ranked enumeration via k-best DAG paths
// ---------------------------------------------------------------------------

/// What each DAG edge encodes, for reconstructing `(o, i)` from a path.
#[derive(Debug, Clone, Copy)]
enum EdgeKind {
    /// Path start: the match begins at position `i` with symbol `c`.
    Start { i: usize, c: SymbolId },
    /// The match continues with symbol `c`.
    Continue { c: SymbolId },
    /// The match ends (suffix weight absorbed here).
    Finish,
    /// A whole `(ε, i)` answer.
    Epsilon { i: usize },
}

/// Iterator over the indexed answers in non-increasing confidence
/// (Theorem 5.7).
pub struct IndexedEnumeration {
    paths: KBestPaths,
    kinds: Vec<EdgeKind>,
}

impl Iterator for IndexedEnumeration {
    type Item = IndexedAnswer;

    fn next(&mut self) -> Option<Self::Item> {
        let (edges, w) = self.paths.next()?;
        let mut output = Vec::new();
        let mut index = 0usize;
        for eid in edges {
            match self.kinds[eid] {
                EdgeKind::Start { i, c } => {
                    index = i;
                    output.push(c);
                }
                EdgeKind::Continue { c } => output.push(c),
                EdgeKind::Finish => {}
                EdgeKind::Epsilon { i } => index = i,
            }
        }
        Some(IndexedAnswer {
            output,
            index,
            log_confidence: w,
        })
    }
}

/// **Theorem 5.7**: enumerates the answers of `[B]↓A[E]` over `μ` in
/// decreasing confidence with polynomial delay.
///
/// Builds a layered DAG with nodes `(position, node, Q_A-state)` whose
/// source→sink paths are in weight-preserving bijection with the indexed
/// answers, then runs the best-first path enumerator. DAG size:
/// `O(n·|Σ|·|Q_A|)` nodes, `O(n·|Σ|²·|Q_A| + n·|Σ|)` edges.
pub fn enumerate_indexed(
    p: &SProjector,
    m: &MarkovSequence,
) -> Result<IndexedEnumeration, EngineError> {
    let ev = IndexedEvaluator::new(p, m)?;
    Ok(enumerate_indexed_from(&ev))
}

/// [`enumerate_indexed`] over precomputed Theorem 5.8 tables — the
/// prepared path builds the tables once per bind and derives every
/// enumeration from them. The returned iterator owns its DAG and borrows
/// nothing.
pub(crate) fn enumerate_indexed_from(ev: &IndexedEvaluator<'_>) -> IndexedEnumeration {
    let (p, m) = (ev.p, ev.m);
    let n = m.len();
    let k = m.n_symbols();
    let a: &Dfa = p.pattern_dfa();
    let na = a.n_states();
    let eps_in_a = a.is_accepting(a.initial());

    // Node ids: 0 = source, 1 = sink, then (pos, c, q) for pos = 1..=n,
    // then ε-answer nodes.
    let node_id = |pos: usize, c: usize, q: usize| 2 + ((pos - 1) * k + c) * na + q;
    let n_main = 2 + n * k * na;
    let n_eps = if eps_in_a { n + 1 } else { 0 };
    let mut dag = Dag::new(n_main + n_eps);
    let mut kinds: Vec<EdgeKind> = Vec::new();
    let add = |dag: &mut Dag, kinds: &mut Vec<EdgeKind>, from, to, w: f64, kind| {
        if w > f64::NEG_INFINITY {
            let id = dag.add_edge(from, to, w);
            debug_assert_eq!(id, kinds.len());
            kinds.push(kind);
        }
    };

    for pos in 1..=n {
        for c in 0..k {
            let sym = SymbolId(c as u32);
            // Start edges: prefix mass ends just before `pos`, match
            // begins with `c`.
            let q1 = a.step(a.initial(), sym);
            add(
                &mut dag,
                &mut kinds,
                0,
                node_id(pos, c, q1.index()),
                ev.w_pre(pos, sym).ln(),
                EdgeKind::Start { i: pos, c: sym },
            );
            for q in 0..na {
                // Continue edges.
                if pos < n {
                    for c2 in 0..k {
                        let sym2 = SymbolId(c2 as u32);
                        let q2 = a.step(StateId(q as u32), sym2);
                        add(
                            &mut dag,
                            &mut kinds,
                            node_id(pos, c, q),
                            node_id(pos + 1, c2, q2.index()),
                            m.transition_prob(pos - 1, sym, sym2).ln(),
                            EdgeKind::Continue { c: sym2 },
                        );
                    }
                }
                // Finish edges (only from accepting pattern states).
                if a.is_accepting(StateId(q as u32)) {
                    add(
                        &mut dag,
                        &mut kinds,
                        node_id(pos, c, q),
                        1,
                        ev.w_suf(pos + 1, sym).ln(),
                        EdgeKind::Finish,
                    );
                }
            }
        }
    }
    if eps_in_a {
        for i in 1..=n + 1 {
            let conf = ev.confidence(&[], i);
            let eps_node = n_main + (i - 1);
            add(
                &mut dag,
                &mut kinds,
                0,
                eps_node,
                conf.ln(),
                EdgeKind::Epsilon { i },
            );
            add(&mut dag, &mut kinds, eps_node, 1, 0.0, EdgeKind::Finish);
        }
    }

    IndexedEnumeration {
        paths: KBestPaths::new(dag, 0, 1),
        kinds,
    }
}

/// [`enumerate_indexed`] over a precompiled B-DFA step graph (see
/// [`IndexedEvaluator::with_graph`]) — used by the prepared Lawler–Murty
/// probes, whose constrained projectors all share the original `B`.
pub(crate) fn enumerate_indexed_with(
    p: &SProjector,
    m: &MarkovSequence,
    bgraph: &StepGraph,
) -> Result<IndexedEnumeration, EngineError> {
    let ev = IndexedEvaluator::with_graph(p, m, bgraph)?;
    Ok(enumerate_indexed_from(&ev))
}

/// Top-k indexed answers by confidence (stop Theorem 5.7 after `k`).
pub fn top_k_indexed(
    p: &SProjector,
    m: &MarkovSequence,
    k: usize,
) -> Result<Vec<IndexedAnswer>, EngineError> {
    Ok(enumerate_indexed(p, m)?.take(k).collect())
}
