//! Ranked enumeration for (non-indexed) s-projectors: the `I_max` order
//! (§5.2 — Lemma 5.10 and Theorem 5.2).
//!
//! For an answer `o`, `I_max(o)` is the best confidence among its
//! *occurrences*: `max_i Pr(S →[B]↓A[E]→ (o, i))`. Proposition 5.9
//! sandwiches the true confidence,
//! `I_max(o) ≤ Pr(S →[P]→ o) ≤ n·I_max(o)` (with `n+1` in place of `n`
//! when `ε`-matches are possible, since `ε` has `n+1` occurrence
//! positions), so enumerating by decreasing `I_max` is an enumeration in
//! `n`-approximately decreasing confidence — exponentially better than the
//! `|Σ|ⁿ` guarantee of the general `E_max` heuristic, and within reach of
//! the `√n` lower bound of Theorem 5.3.
//!
//! Two implementations, mirroring the two halves of §5.2:
//!
//! * [`enumerate_by_imax`] runs the exact indexed enumeration
//!   (Theorem 5.7) and deduplicates outputs; the first occurrence of each
//!   output carries its `I_max`. As the paper notes, deduplication alone
//!   guarantees only *incremental polynomial time* (a batch of duplicate
//!   outputs can intervene between two fresh answers).
//! * [`enumerate_by_imax_lawler`] restores *polynomial delay* the way
//!   Lemma 5.10 prescribes: combine "the strategy used for Theorem 4.3"
//!   (Lawler–Murty over output-prefix constraints) with the tractable
//!   constrained optimizer — the top indexed answer of the projector
//!   whose pattern is intersected with the constraint DFA. Each `best`
//!   call is one Theorem 5.7 DAG search on a machine of size
//!   `|Q_A|·(|prefix|+3)`, so the delay is polynomial regardless of how
//!   many occurrences each output has.

use std::collections::HashSet;
use std::sync::Arc;

use transmark_automata::ops;
use transmark_core::constraints::PrefixConstraint;
use transmark_core::enumerate::RankedAnswer;
use transmark_core::error::EngineError;
use transmark_kbest::{LawlerMurty, PartitionSpace};
use transmark_markov::MarkovSequence;

use crate::indexed::{enumerate_indexed, enumerate_indexed_with, IndexedEvaluator};
use crate::plan::PreparedProjector;
use crate::projector::SProjector;

/// Enumerates the distinct outputs of `P` over `μ` in decreasing `I_max`
/// (Lemma 5.10); by Proposition 5.9 this is an enumeration in
/// `n`-approximately decreasing confidence (Theorem 5.2).
///
/// Each yielded [`RankedAnswer`]'s `log_score` is `ln I_max(output)`.
pub fn enumerate_by_imax<'a>(
    p: &'a SProjector,
    m: &'a MarkovSequence,
) -> Result<impl Iterator<Item = RankedAnswer> + 'a, EngineError> {
    let inner = enumerate_indexed(p, m)?;
    let mut seen: HashSet<Vec<transmark_automata::SymbolId>> = HashSet::new();
    Ok(inner.filter_map(move |ia| {
        seen.insert(ia.output.clone()).then_some(RankedAnswer {
            output: ia.output,
            log_score: ia.log_confidence,
        })
    }))
}

/// The top-k distinct outputs by `I_max`.
pub fn top_k_by_imax(
    p: &SProjector,
    m: &MarkovSequence,
    k: usize,
) -> Result<Vec<RankedAnswer>, EngineError> {
    Ok(enumerate_by_imax(p, m)?.take(k).collect())
}

/// The [`PartitionSpace`] behind the polynomial-delay version of
/// Lemma 5.10: subspaces are output-prefix constraints; the constrained
/// optimizer intersects the projector's pattern DFA with the constraint
/// DFA (both over `Σ_P`) and takes the top indexed answer.
struct ImaxSpace<'a> {
    p: &'a SProjector,
    m: &'a MarkovSequence,
}

impl PartitionSpace for ImaxSpace<'_> {
    type Answer = Vec<transmark_automata::SymbolId>;
    type Constraint = PrefixConstraint;

    fn root(&self) -> PrefixConstraint {
        PrefixConstraint::all()
    }

    fn best(&mut self, constraint: &PrefixConstraint) -> Option<(Self::Answer, f64)> {
        let k = self.p.alphabet().len();
        let pattern = ops::product(
            self.p.pattern_dfa(),
            &constraint.to_dfa(k),
            ops::BoolOp::And,
        )
        .expect("pattern and constraint share the alphabet");
        let constrained = SProjector::new(
            self.p.alphabet_arc(),
            self.p.prefix_dfa().clone(),
            pattern,
            self.p.suffix_dfa().clone(),
        )
        .expect("constrained projector is valid");
        // The top indexed answer of the constrained projector: its output
        // maximizes I_max within the constraint, and its confidence *is*
        // that I_max (every occurrence of the output is in the subspace,
        // since the constraint restricts only the output).
        enumerate_indexed(&constrained, self.m)
            .expect("alphabets validated at construction")
            .next()
            .map(|ia| (ia.output, ia.log_confidence))
    }

    fn split(
        &mut self,
        constraint: &PrefixConstraint,
        answer: &Self::Answer,
    ) -> Vec<PrefixConstraint> {
        constraint.split_around(answer)
    }
}

/// The prepared counterpart of [`ImaxSpace`]: constrained projectors come
/// from the plan's constraint-product cache (shared across subspace probes
/// and across binds), and every probe's Theorem 5.8 tables reuse the
/// plan's precompiled B-DFA step graph. Probe results are bit-identical to
/// [`ImaxSpace`]'s, so the emission order is too.
struct PlanImaxSpace<'m> {
    plan: Arc<PreparedProjector>,
    m: &'m MarkovSequence,
}

impl PartitionSpace for PlanImaxSpace<'_> {
    type Answer = Vec<transmark_automata::SymbolId>;
    type Constraint = PrefixConstraint;

    fn root(&self) -> PrefixConstraint {
        PrefixConstraint::all()
    }

    fn best(&mut self, constraint: &PrefixConstraint) -> Option<(Self::Answer, f64)> {
        let constrained = self.plan.constrained(constraint);
        enumerate_indexed_with(&constrained, self.m, self.plan.bgraph())
            .expect("alphabets validated at construction")
            .next()
            .map(|ia| (ia.output, ia.log_confidence))
    }

    fn split(
        &mut self,
        constraint: &PrefixConstraint,
        answer: &Self::Answer,
    ) -> Vec<PrefixConstraint> {
        constraint.split_around(answer)
    }
}

/// Lemma 5.10 with *polynomial delay*: enumerates the distinct outputs in
/// decreasing `I_max` via Lawler–Murty over prefix constraints (see the
/// module docs). Produces exactly the same sequence as
/// [`enumerate_by_imax`]; prefer this variant when outputs can have many
/// occurrences each.
pub fn enumerate_by_imax_lawler<'a>(
    p: &'a SProjector,
    m: &'a MarkovSequence,
) -> Result<impl Iterator<Item = RankedAnswer> + 'a, EngineError> {
    // Validate alphabets eagerly (the space's `best` would only panic).
    crate::indexed::IndexedEvaluator::new(p, m)?;
    Ok(LawlerMurty::new(ImaxSpace { p, m })
        .map(|(output, log_score)| RankedAnswer { output, log_score }))
}

/// [`enumerate_by_imax_lawler`] over a prepared projector: same sequence,
/// but constraint products are served from the plan's cache. Inputs must
/// already be validated (the bind did).
pub(crate) fn enumerate_by_imax_lawler_planned<'m>(
    plan: Arc<PreparedProjector>,
    m: &'m MarkovSequence,
) -> impl Iterator<Item = RankedAnswer> + 'm {
    LawlerMurty::new(PlanImaxSpace { plan, m })
        .map(|(output, log_score)| RankedAnswer { output, log_score })
}

/// `I_max(o)` over already-built Theorem 5.8 tables: the best occurrence
/// confidence across all valid indices, `O(n·|o|)`.
pub(crate) fn imax_of_output_from(
    ev: &IndexedEvaluator<'_>,
    o: &[transmark_automata::SymbolId],
) -> f64 {
    let n = ev.n();
    let hi = if o.is_empty() {
        n + 1
    } else {
        n.saturating_sub(o.len()) + 1
    };
    let mut best = 0.0f64;
    for i in 1..=hi {
        best = best.max(ev.confidence(o, i));
    }
    best
}

/// `I_max(o)` directly: the best occurrence confidence, via the
/// Theorem 5.8 evaluator over all valid indices. `O(n·|o|)` after table
/// construction.
pub fn imax_of_output(
    p: &SProjector,
    m: &MarkovSequence,
    o: &[transmark_automata::SymbolId],
) -> Result<f64, EngineError> {
    let ev = crate::indexed::IndexedEvaluator::new(p, m)?;
    Ok(imax_of_output_from(&ev, o))
}
