//! The process-lifetime [`PlanCache`] under concurrency: N threads
//! hammering one shared cache with a mixed hit/miss/eviction workload
//! (including forced fingerprint collisions) must keep *exact*
//! accounting — `stats()` and the process-global `store.plan_cache.*`
//! counters agree to the unit — and every thread's query results must
//! be bit-identical to a single-threaded reference.
//!
//! This lives in its own integration binary on purpose: the obs
//! counters are process-global, so sharing a process with unrelated
//! plan-cache traffic would break exact accounting.

use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

use transmark_core::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark_core::transducer::Transducer;
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::MarkovSequence;
use transmark_store::PlanCache;

fn machine(seed: u64) -> Transducer {
    let mut rng = StdRng::seed_from_u64(seed);
    random_transducer(
        &RandomTransducerSpec {
            n_states: 3,
            n_input_symbols: 2,
            n_output_symbols: 2,
            class: TransducerClass::Deterministic,
            branching: 1.5,
        },
        &mut rng,
    )
}

fn sequence(seed: u64, len: usize) -> MarkovSequence {
    let mut rng = StdRng::seed_from_u64(seed);
    random_markov_sequence(
        &RandomChainSpec {
            len,
            n_symbols: 2,
            zero_prob: 0.2,
        },
        &mut rng,
    )
}

/// Distinct machines (pairwise different structure), each with at least
/// one answer over `m` so every thread has a confidence to check.
fn distinct_machines(n: usize, m: &MarkovSequence) -> Vec<Transducer> {
    let mut out: Vec<Transducer> = Vec::new();
    let mut seed = 0u64;
    while out.len() < n {
        let t = machine(seed);
        seed += 1;
        let has_answer = transmark_core::plan::prepare(&t)
            .bind(m)
            .and_then(|b| b.top())
            .ok()
            .flatten()
            .is_some();
        if has_answer && out.iter().all(|u| !u.same_structure(&t)) {
            out.push(t);
        }
    }
    out
}

/// The `store.plan_cache.*` counters as (hits, misses, evictions),
/// straight from the process-global registry.
fn global_counters() -> (u64, u64, u64) {
    let snap = transmark_obs::registry().snapshot();
    (
        snap.counter("store.plan_cache.hits"),
        snap.counter("store.plan_cache.misses"),
        snap.counter("store.plan_cache.evictions"),
    )
}

#[test]
fn concurrent_mixed_workload_keeps_exact_accounting() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 50;
    const CAP: usize = 4;

    let m = sequence(99, 4);
    let machines = distinct_machines(6, &m);
    // Single-threaded reference: each machine's top output and its
    // confidence, bit-for-bit.
    let reference: Vec<(Vec<transmark_automata::SymbolId>, u64)> = machines
        .iter()
        .map(|t| {
            let plan = transmark_core::plan::prepare(t);
            let bound = plan.bind(&m).expect("bind");
            let top = bound.top().expect("top query").expect("an answer exists");
            let bits = bound.confidence(&top.output).expect("confidence").to_bits();
            (top.output, bits)
        })
        .collect();

    let (hits0, misses0, evictions0) = global_counters();
    let cache = Arc::new(PlanCache::new(CAP));

    // ---- Phase 1: the working set fits (machines[0..CAP]) -----------------
    // The cache lock covers compile + insert, so each machine misses
    // exactly once no matter the interleaving; everything else hits.
    std::thread::scope(|scope| {
        for ti in 0..THREADS {
            let cache = Arc::clone(&cache);
            let machines = &machines;
            let m = &m;
            let reference = &reference;
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    let i = (ti + r) % CAP;
                    let plan = cache.get_or_prepare(&machines[i]);
                    assert!(plan.transducer().same_structure(&machines[i]));
                    let bound = plan.bind(m).expect("bind");
                    let (o, expect) = &reference[i];
                    let bits = bound.confidence(o).expect("confidence").to_bits();
                    assert_eq!(bits, *expect, "thread {ti} round {r} machine {i}");
                }
            });
        }
    });

    let stats = cache.stats();
    let total = (THREADS * ROUNDS) as u64;
    assert_eq!(stats.misses, CAP as u64, "one miss per machine, exactly");
    assert_eq!(stats.hits, total - CAP as u64);
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.len, CAP);
    let (hits1, misses1, evictions1) = global_counters();
    assert_eq!(hits1 - hits0, stats.hits, "registry hits == stats hits");
    assert_eq!(misses1 - misses0, stats.misses);
    assert_eq!(evictions1 - evictions0, stats.evictions);

    // ---- Phase 2: working set exceeds capacity (all 6 machines) -----------
    // Miss counts depend on interleaving, but the invariants are exact:
    // every lookup is a hit or a miss, and at capacity every miss evicts
    // exactly one plan.
    std::thread::scope(|scope| {
        for ti in 0..THREADS {
            let cache = Arc::clone(&cache);
            let machines = &machines;
            let m = &m;
            let reference = &reference;
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    let i = (ti + r) % machines.len();
                    let plan = cache.get_or_prepare(&machines[i]);
                    let bound = plan.bind(m).expect("bind");
                    let (o, expect) = &reference[i];
                    let bits = bound.confidence(o).expect("confidence").to_bits();
                    assert_eq!(bits, *expect, "thread {ti} round {r} machine {i}");
                }
            });
        }
    });

    let stats2 = cache.stats();
    let new_hits = stats2.hits - stats.hits;
    let new_misses = stats2.misses - stats.misses;
    let new_evictions = stats2.evictions - stats.evictions;
    assert_eq!(
        new_hits + new_misses,
        total,
        "every lookup is a hit or a miss"
    );
    assert!(new_misses >= 2, "two machines were cold at phase start");
    assert_eq!(
        new_evictions, new_misses,
        "at capacity, every miss evicts exactly one plan"
    );
    assert_eq!(stats2.len, CAP, "the cache never outgrows its capacity");
    let (hits2, misses2, evictions2) = global_counters();
    assert_eq!(hits2 - hits0, stats2.hits);
    assert_eq!(misses2 - misses0, stats2.misses);
    assert_eq!(evictions2 - evictions0, stats2.evictions);

    // ---- Phase 3: forced fingerprint collisions ---------------------------
    // Two structurally different machines on one key, from every thread
    // at once: they coexist under the key (no eviction ping-pong), each
    // misses exactly once, and each thread always gets the plan whose
    // machine it asked for.
    let cache3 = Arc::new(PlanCache::new(CAP));
    let colliders = &machines[..2];
    const KEY: u64 = 0xDEAD_BEEF_DEAD_BEEF;
    let (hits0, misses0, evictions0) = global_counters();
    std::thread::scope(|scope| {
        for ti in 0..THREADS {
            let cache = Arc::clone(&cache3);
            let reference = &reference;
            let m = &m;
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    let i = (ti + r) % colliders.len();
                    let plan = cache.get_or_prepare_keyed(KEY, &colliders[i]);
                    assert!(
                        plan.transducer().same_structure(&colliders[i]),
                        "a collision must never return the other machine's plan"
                    );
                    let bound = plan.bind(m).expect("bind");
                    let (o, expect) = &reference[i];
                    let bits = bound.confidence(o).expect("confidence").to_bits();
                    assert_eq!(bits, *expect);
                }
            });
        }
    });
    let stats3 = cache3.stats();
    assert_eq!(stats3.misses, 2, "each collider compiles exactly once");
    assert_eq!(stats3.hits, total - 2);
    assert_eq!(stats3.evictions, 0);
    assert_eq!(stats3.len, 2, "both colliders coexist under one key");
    let (hits3, misses3, evictions3) = global_counters();
    assert_eq!(hits3 - hits0, stats3.hits);
    assert_eq!(misses3 - misses0, stats3.misses);
    assert_eq!(evictions3 - evictions0, stats3.evictions);
}
