//! The monitor multiplexer is a scheduling layer, not a numerics layer:
//! whatever the worker count or tick batch, every stream's series must
//! be bit-identical to evaluating that stream alone, sequentially.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

use transmark_core::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark_core::incremental::SlidingWindowQuery;
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::MarkovSequence;
use transmark_store::{Monitor, MonitorConfig};

fn query(seed: u64) -> transmark_automata::Nfa {
    let mut rng = StdRng::seed_from_u64(seed);
    random_transducer(
        &RandomTransducerSpec {
            n_states: 3,
            n_input_symbols: 2,
            n_output_symbols: 2,
            class: TransducerClass::General,
            branching: 1.5,
        },
        &mut rng,
    )
    .underlying_nfa()
}

fn streams(seed: u64, count: usize) -> Vec<(String, MarkovSequence)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5_a5a5);
    (0..count)
        .map(|i| {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    // Deliberately ragged lengths: streams finish at
                    // different ticks, exercising the retire/backfill path.
                    len: 1 + (i * 7 + 3) % 11,
                    n_symbols: 2,
                    zero_prob: 0.3,
                },
                &mut rng,
            );
            (format!("s{i}"), m)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 1, 2, 4, and 7 workers (more workers than streams included), with
    /// assorted tick batches, all produce series bit-identical to the
    /// sequential per-stream oracle.
    #[test]
    fn monitor_is_bit_equal_to_sequential(seed in any::<u64>(), count in 1usize..9, window in prop_oneof![Just(None), Just(Some(1)), Just(Some(3))]) {
        let nfa = query(seed);
        let seqs = streams(seed, count);
        let refs: Vec<(String, &MarkovSequence)> =
            seqs.iter().map(|(n, m)| (n.clone(), m)).collect();

        // The sequential oracle: each stream alone, in order.
        let oracle: Vec<Vec<f64>> = match window {
            Some(w) => {
                let q = SlidingWindowQuery::new(nfa.clone(), w).unwrap();
                seqs.iter().map(|(_, m)| q.series(m).unwrap()).collect()
            }
            None => seqs
                .iter()
                .map(|(_, m)| {
                    transmark_core::prefix_acceptance_probabilities(&nfa, m).unwrap()
                })
                .collect(),
        };

        for threads in [1usize, 2, 4, 7] {
            for batch in [1usize, 3, 64] {
                let monitor = Monitor::new(
                    nfa.clone(),
                    MonitorConfig {
                        window,
                        threads,
                        batch,
                    },
                );
                let reports = monitor.run_sequences(&refs).unwrap();
                prop_assert_eq!(reports.len(), seqs.len());
                for (i, r) in reports.iter().enumerate() {
                    prop_assert_eq!(&r.name, &seqs[i].0, "order must match input");
                    prop_assert_eq!(
                        r.series.len(),
                        oracle[i].len(),
                        "threads {} batch {} stream {}",
                        threads, batch, i
                    );
                    for (a, b) in r.series.iter().zip(&oracle[i]) {
                        prop_assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "threads {} batch {} stream {}: {} vs {}",
                            threads, batch, i, a, b
                        );
                    }
                }
            }
        }
    }
}
