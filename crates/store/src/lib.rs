#![warn(missing_docs)]
//! A Markov-sequence store, in the spirit of Lahar.
//!
//! The paper studies querying a *single* Markov sequence "with the goal
//! of introducing strong querying capabilities into Lahar" — a
//! Markov-sequence *database* holding a collection of streams (one per
//! tracked object) and answering queries across them (§1, §6). This
//! crate supplies that system layer: a [`SequenceStore`] keyed by stream
//! name, sharing one node alphabet, with
//!
//! * **Boolean event queries** (Lahar's native query class, §6: "at each
//!   time period it returns the probability that it is evaluated to
//!   true") — [`SequenceStore::event_probability`],
//!   [`SequenceStore::event_series`], [`SequenceStore::detect`];
//! * **transducer queries** per stream — [`SequenceStore::top_k`];
//! * **s-projector extraction** per stream —
//!   [`SequenceStore::extract_top_k`];
//! * **cross-stream conjunctions** under the store's independence
//!   assumption (streams are separate objects, e.g. different carts) —
//!   [`SequenceStore::joint_event_probability`].
//!
//! Transducer queries compile through the plan layer: the store keeps an
//! LRU [`PlanCache`] keyed by the machine's structural fingerprint, so a
//! query fleet-evaluated across many streams (or re-issued later) reuses
//! one shared [`PreparedQuery`] — including across the worker threads of
//! [`SequenceStore::top_k_parallel`].

pub mod monitor;
pub mod pool;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

pub use monitor::{Monitor, MonitorConfig, StreamReport, DEFAULT_TICK_BATCH};
pub use pool::{resolve_threads, scoped_map, PoolError, WorkerPool};

use transmark_automata::{Alphabet, Nfa, SymbolId};
use transmark_core::confidence::{
    acceptance_probability, acceptance_probability_source, prefix_acceptance_probabilities,
};
use transmark_core::error::EngineError;
use transmark_core::evaluate::{Evaluation, ScoredAnswer};
use transmark_core::plan::{PreparedEventQuery, PreparedQuery};
use transmark_core::transducer::Transducer;
use transmark_markov::MarkovSequence;
use transmark_obs::log::RecordKind;
use transmark_sproj::{PreparedProjector, SProjector, SprojEvaluation};

/// Errors of the store layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A stream with this name already exists (use [`SequenceStore::replace`]).
    DuplicateStream(String),
    /// No stream with this name.
    UnknownStream(String),
    /// The stream's alphabet differs from the store's.
    AlphabetMismatch {
        /// The store's alphabet size.
        store: usize,
        /// The offending stream's alphabet size.
        stream: usize,
    },
    /// An engine error while evaluating a query.
    Engine(EngineError),
    /// A filesystem or format error during persistence.
    Io(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::DuplicateStream(n) => write!(f, "stream {n:?} already exists"),
            StoreError::UnknownStream(n) => write!(f, "no stream named {n:?}"),
            StoreError::AlphabetMismatch { store, stream } => {
                write!(f, "stream alphabet has {stream} symbols, store has {store}")
            }
            StoreError::Engine(e) => write!(f, "{e}"),
            StoreError::Io(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<EngineError> for StoreError {
    fn from(e: EngineError) -> Self {
        StoreError::Engine(e)
    }
}

// The reverse direction lives here too (the orphan rule requires the
// local type): a store failure folds into the facade's single error
// type. An engine error that merely round-tripped through the store
// unwraps back to itself rather than being stringified.
impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Engine(inner) => inner,
            other => EngineError::Store(other.to_string()),
        }
    }
}

/// Default number of prepared plans a store retains ([`PlanCache`]).
pub const DEFAULT_PLAN_CACHE_CAP: usize = 16;

/// A point-in-time snapshot of [`PlanCache`] accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans currently cached.
    pub len: usize,
    /// Maximum number of plans retained before LRU eviction.
    pub capacity: usize,
    /// Lookups served by an already-compiled plan.
    pub hits: u64,
    /// Lookups that had to compile a fresh plan.
    pub misses: u64,
    /// Plans dropped to make room at capacity (LRU policy).
    pub evictions: u64,
}

struct PlanCacheEntry {
    key: u64,
    plan: Arc<PreparedQuery>,
    last_used: u64,
}

struct PlanCacheInner {
    entries: Vec<PlanCacheEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    tick: u64,
}

/// An LRU cache of compiled transducer plans, keyed by the machine's
/// structural fingerprint ([`Transducer::fingerprint`]).
///
/// The fingerprint is a 64-bit hash, so distinct machines can in
/// principle share a key; a lookup only counts as a hit after the
/// cached machine passes full structural equality
/// ([`Transducer::same_structure`]) against the query. Colliding
/// machines therefore coexist in the cache under the same key rather
/// than poisoning each other's results. At capacity the
/// least-recently-used plan is evicted.
///
/// All methods take `&self`; the cache is internally synchronized and
/// safe to consult from the fleet-evaluation worker threads.
pub struct PlanCache {
    cap: usize,
    inner: Mutex<PlanCacheInner>,
}

impl PlanCache {
    /// Creates a cache retaining at most `cap` plans (minimum 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            inner: Mutex::new(PlanCacheInner {
                entries: Vec::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
                tick: 0,
            }),
        }
    }

    /// Returns the cached plan for `t`, compiling and inserting one on a
    /// miss. The returned `Arc` is shared: repeated calls with
    /// structurally identical machines get the same allocation.
    pub fn get_or_prepare(&self, t: &Transducer) -> Arc<PreparedQuery> {
        self.get_or_prepare_keyed(t.fingerprint(), t)
    }

    /// [`PlanCache::get_or_prepare`] with a caller-supplied key, exposed
    /// so collision handling is testable: structurally different
    /// machines forced onto one key still resolve to different plans.
    pub fn get_or_prepare_keyed(&self, key: u64, t: &Transducer) -> Arc<PreparedQuery> {
        let mut inner = self.inner.lock().expect("plan cache lock is not poisoned");
        inner.tick += 1;
        let now = inner.tick;
        if let Some(e) = inner
            .entries
            .iter_mut()
            .find(|e| e.key == key && e.plan.transducer().same_structure(t))
        {
            e.last_used = now;
            let plan = Arc::clone(&e.plan);
            inner.hits += 1;
            transmark_obs::counter!("store.plan_cache.hits").inc();
            transmark_obs::profile::instant("store.plan_cache.hit");
            return plan;
        }
        inner.misses += 1;
        transmark_obs::counter!("store.plan_cache.misses").inc();
        transmark_obs::profile::instant("store.plan_cache.miss");
        let plan = transmark_core::plan::prepare(t);
        if inner.entries.len() >= self.cap {
            let lru = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache at capacity is non-empty");
            let evicted = inner.entries.swap_remove(lru);
            inner.evictions += 1;
            transmark_obs::counter!("store.plan_cache.evictions").inc();
            transmark_obs::log::publish(
                RecordKind::PlanCacheEvict,
                "",
                &format!(
                    "evicted plan {:016x} (lru of {} at capacity)",
                    evicted.key, self.cap
                ),
                0,
            );
        }
        inner.entries.push(PlanCacheEntry {
            key,
            plan: Arc::clone(&plan),
            last_used: now,
        });
        plan
    }

    /// Current accounting: size, capacity, hits, misses, evictions.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().expect("plan cache lock is not poisoned");
        PlanCacheStats {
            len: inner.entries.len(),
            capacity: self.cap,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }

    /// Drops every cached plan (accounting is kept).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("plan cache lock is not poisoned")
            .entries
            .clear();
    }
}

/// A named collection of Markov sequences over one shared alphabet.
pub struct SequenceStore {
    alphabet: Arc<Alphabet>,
    streams: BTreeMap<String, MarkovSequence>,
    plans: PlanCache,
}

impl SequenceStore {
    /// Creates an empty store over `alphabet`.
    pub fn new(alphabet: impl Into<Arc<Alphabet>>) -> Self {
        Self::with_plan_capacity(alphabet, DEFAULT_PLAN_CACHE_CAP)
    }

    /// Creates an empty store whose plan cache retains at most `cap`
    /// compiled queries.
    pub fn with_plan_capacity(alphabet: impl Into<Arc<Alphabet>>, cap: usize) -> Self {
        Self {
            alphabet: alphabet.into(),
            streams: BTreeMap::new(),
            plans: PlanCache::new(cap),
        }
    }

    /// The shared node alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The store's cache of compiled transducer plans.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the store holds no streams.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Stream names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.streams.keys().map(String::as_str)
    }

    /// Inserts a new stream; errors on duplicates or alphabet mismatch.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        seq: MarkovSequence,
    ) -> Result<(), StoreError> {
        let name = name.into();
        if seq.n_symbols() != self.alphabet.len() {
            return Err(StoreError::AlphabetMismatch {
                store: self.alphabet.len(),
                stream: seq.n_symbols(),
            });
        }
        if self.streams.contains_key(&name) {
            return Err(StoreError::DuplicateStream(name));
        }
        self.streams.insert(name, seq);
        Ok(())
    }

    /// Inserts or replaces a stream.
    pub fn replace(
        &mut self,
        name: impl Into<String>,
        seq: MarkovSequence,
    ) -> Result<(), StoreError> {
        let name = name.into();
        if seq.n_symbols() != self.alphabet.len() {
            return Err(StoreError::AlphabetMismatch {
                store: self.alphabet.len(),
                stream: seq.n_symbols(),
            });
        }
        self.streams.insert(name, seq);
        Ok(())
    }

    /// Removes a stream, returning it.
    pub fn remove(&mut self, name: &str) -> Result<MarkovSequence, StoreError> {
        self.streams
            .remove(name)
            .ok_or_else(|| StoreError::UnknownStream(name.to_string()))
    }

    /// Fetches a stream.
    pub fn get(&self, name: &str) -> Result<&MarkovSequence, StoreError> {
        self.streams
            .get(name)
            .ok_or_else(|| StoreError::UnknownStream(name.to_string()))
    }

    // ---- Boolean event queries ------------------------------------------

    /// `Pr(stream ∈ L(query))` for every stream.
    pub fn event_probability(&self, query: &Nfa) -> Result<BTreeMap<String, f64>, StoreError> {
        self.streams
            .iter()
            .map(|(n, m)| Ok((n.clone(), acceptance_probability(query, m)?)))
            .collect()
    }

    /// The per-time-period truth-probability series for every stream
    /// (Lahar's query mode: `series[i]` is the probability that the
    /// prefix up to time `i+1` satisfies the query).
    pub fn event_series(&self, query: &Nfa) -> Result<BTreeMap<String, Vec<f64>>, StoreError> {
        self.streams
            .iter()
            .map(|(n, m)| Ok((n.clone(), prefix_acceptance_probabilities(query, m)?)))
            .collect()
    }

    /// [`SequenceStore::event_series`] with the scan strategy available:
    /// each stream's series runs under the planner's pick — the
    /// parallel-prefix scan on `n_threads` workers when the stream is
    /// long and the query small, the sequential fold otherwise
    /// (`n_threads == 0` = one worker per core). Unlike the fleet maps,
    /// the parallelism here is *within* each stream's evaluation, so the
    /// speedup applies even to a store holding one long stream. Scan
    /// results agree with [`SequenceStore::event_series`] within a
    /// relative `1e-12` (see `transmark_core::scan`).
    pub fn event_series_parallel(
        &self,
        query: &Nfa,
        n_threads: usize,
    ) -> Result<BTreeMap<String, Vec<f64>>, StoreError> {
        let n_threads = resolve_threads(n_threads);
        let q = PreparedEventQuery::new(query.clone());
        self.streams
            .iter()
            .map(|(n, m)| Ok((n.clone(), q.series_with(m, n_threads, None)?)))
            .collect()
    }

    /// Streams whose event probability reaches `threshold`, most probable
    /// first — the "which carts were (probably) in the contaminated lab"
    /// detection query.
    pub fn detect(&self, query: &Nfa, threshold: f64) -> Result<Vec<(String, f64)>, StoreError> {
        let mut hits: Vec<(String, f64)> = self
            .event_probability(query)?
            .into_iter()
            .filter(|(_, p)| *p >= threshold)
            .collect();
        hits.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("probabilities are not NaN"));
        Ok(hits)
    }

    /// Under stream independence, the probability that *every* named
    /// stream satisfies its query (product rule). Duplicate stream names
    /// are allowed only with identical queries (conjunction on the same
    /// stream is not independent); they are rejected.
    pub fn joint_event_probability(&self, queries: &[(&str, &Nfa)]) -> Result<f64, StoreError> {
        let mut seen = std::collections::BTreeSet::new();
        let mut p = 1.0;
        for (name, q) in queries {
            if !seen.insert(*name) {
                return Err(StoreError::DuplicateStream((*name).to_string()));
            }
            p *= acceptance_probability(q, self.get(name)?)?;
        }
        Ok(p)
    }

    // ---- Uncertainty profiling ----------------------------------------------

    /// Streams ranked by per-position perplexity, most uncertain first —
    /// "which objects does the sensor network track worst?". Perplexity is
    /// `2^{H/n}` (1 = deterministic, `|Σ|` = uniform noise).
    pub fn rank_by_uncertainty(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .streams
            .iter()
            .map(|(n, m)| (n.clone(), transmark_markov::info::perplexity(m)))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("perplexities are not NaN"));
        v
    }

    // ---- Parallel evaluation ----------------------------------------------

    /// Maps `f` over all streams on `n_threads` OS threads (queries are
    /// read-only and independent per stream, so fleet evaluation is
    /// embarrassingly parallel). `n_threads == 0` means one worker per
    /// available core ([`resolve_threads`]). Results come back in name
    /// order; the first error wins.
    pub fn par_map_streams<T, F>(
        &self,
        n_threads: usize,
        f: F,
    ) -> Result<BTreeMap<String, T>, StoreError>
    where
        T: Send,
        F: Fn(&str, &MarkovSequence) -> Result<T, StoreError> + Sync,
    {
        let streams: Vec<(&String, &MarkovSequence)> = self.streams.iter().collect();
        let pairs = pool::scoped_map(
            &streams,
            n_threads,
            |(name, m)| -> Result<(String, T), StoreError> { Ok(((*name).clone(), f(name, m)?)) },
        )?;
        Ok(pairs.into_iter().collect())
    }

    /// Parallel [`SequenceStore::event_probability`].
    pub fn event_probability_parallel(
        &self,
        query: &Nfa,
        n_threads: usize,
    ) -> Result<BTreeMap<String, f64>, StoreError> {
        self.par_map_streams(n_threads, |_, m| Ok(acceptance_probability(query, m)?))
    }

    /// Parallel [`SequenceStore::top_k`]. All workers bind the same
    /// cached `Arc<PreparedQuery>`; the machine is compiled at most once
    /// for the whole fleet.
    pub fn top_k_parallel(
        &self,
        query: &Transducer,
        k: usize,
        n_threads: usize,
    ) -> Result<BTreeMap<String, Vec<ScoredAnswer>>, StoreError> {
        let plan = self.plans.get_or_prepare(query);
        self.par_map_streams(n_threads, |_, m| {
            let ev = Evaluation::with_plan(&plan, m)?;
            Ok(ev.top_k_scored(k)?)
        })
    }

    // ---- Persistence ------------------------------------------------------

    /// Saves every stream to `dir` as `<name>.tms` files in the
    /// `markov-sequence v1` text format, plus a `store.manifest` listing
    /// them. Stream names must be valid file stems (no path separators).
    pub fn save_dir(&self, dir: &std::path::Path) -> Result<(), StoreError> {
        self.save_dir_with(dir, false)
    }

    /// [`SequenceStore::save_dir`] in the zero-copy binary `.tmsb` format
    /// ([`transmark_markov::binio`]) — the layout [`SequenceStore::load_dir`]
    /// and the streaming fleet helpers ([`event_probability_files`],
    /// [`confidence_files`]) consume without a text parse.
    pub fn save_dir_binary(&self, dir: &std::path::Path) -> Result<(), StoreError> {
        self.save_dir_with(dir, true)
    }

    fn save_dir_with(&self, dir: &std::path::Path, binary: bool) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Io(e.to_string()))?;
        let mut manifest = String::new();
        for (name, m) in &self.streams {
            if name.contains(['/', '\\']) {
                return Err(StoreError::Io(format!(
                    "stream name {name:?} is not a file stem"
                )));
            }
            let (ext, bytes) = if binary {
                ("tmsb", transmark_markov::binio::to_tmsb_bytes(m))
            } else {
                ("tms", transmark_markov::textio::to_text(m).into_bytes())
            };
            let path = dir.join(format!("{name}.{ext}"));
            std::fs::write(&path, bytes)
                .map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))?;
            manifest.push_str(name);
            manifest.push('\n');
        }
        std::fs::write(dir.join("store.manifest"), manifest)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(())
    }

    /// Loads a store previously written by [`SequenceStore::save_dir`] or
    /// [`SequenceStore::save_dir_binary`]: each manifest entry resolves to
    /// `<name>.tms` or, failing that, `<name>.tmsb`. The alphabet is taken
    /// from the first stream; all streams must agree on it.
    pub fn load_dir(dir: &std::path::Path) -> Result<SequenceStore, StoreError> {
        let manifest = std::fs::read_to_string(dir.join("store.manifest"))
            .map_err(|e| StoreError::Io(format!("{}: {e}", dir.display())))?;
        let names: Vec<&str> = manifest.lines().filter(|l| !l.is_empty()).collect();
        let mut store: Option<SequenceStore> = None;
        for name in names {
            let text_path = dir.join(format!("{name}.tms"));
            let path = if text_path.exists() {
                text_path
            } else {
                dir.join(format!("{name}.tmsb"))
            };
            let m = transmark_markov::fsio::read_sequence_path(&path)
                .map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))?;
            let s = store.get_or_insert_with(|| SequenceStore::new(m.alphabet_arc()));
            s.insert(name, m)?;
        }
        store.ok_or_else(|| StoreError::Io("manifest lists no streams".to_string()))
    }

    // ---- Transducer and s-projector queries ------------------------------

    /// Top-k transducer answers (by `E_max`, with exact confidences) for
    /// every stream. The query compiles once through the store's
    /// [`PlanCache`] and the shared plan is bound per stream.
    pub fn top_k(
        &self,
        query: &Transducer,
        k: usize,
    ) -> Result<BTreeMap<String, Vec<ScoredAnswer>>, StoreError> {
        let plan = self.plans.get_or_prepare(query);
        self.streams
            .iter()
            .map(|(n, m)| {
                let ev = Evaluation::with_plan(&plan, m)?;
                Ok((n.clone(), ev.top_k_scored(k)?))
            })
            .collect()
    }

    /// Batch confidence: `Pr(stream →[query]→ o)` for every stream,
    /// through one shared plan from the [`PlanCache`].
    pub fn confidence_all(
        &self,
        query: &Transducer,
        o: &[SymbolId],
    ) -> Result<BTreeMap<String, f64>, StoreError> {
        let plan = self.plans.get_or_prepare(query);
        self.streams
            .iter()
            .map(|(n, m)| Ok((n.clone(), plan.bind(m)?.confidence(o)?)))
            .collect()
    }

    /// Parallel [`SequenceStore::confidence_all`].
    pub fn confidence_all_parallel(
        &self,
        query: &Transducer,
        o: &[SymbolId],
        n_threads: usize,
    ) -> Result<BTreeMap<String, f64>, StoreError> {
        let plan = self.plans.get_or_prepare(query);
        self.par_map_streams(n_threads, |_, m| Ok(plan.bind(m)?.confidence(o)?))
    }

    /// Top-k distinct s-projector extractions (by `I_max`) per stream.
    /// The projector compiles to a [`PreparedProjector`] once; each
    /// stream binds the shared plan.
    pub fn extract_top_k(
        &self,
        query: &SProjector,
        k: usize,
    ) -> Result<BTreeMap<String, Vec<transmark_core::enumerate::RankedAnswer>>, StoreError> {
        let plan = Arc::new(PreparedProjector::new(query));
        self.streams
            .iter()
            .map(|(n, m)| {
                let ev = SprojEvaluation::with_plan(&plan, m)?;
                Ok((n.clone(), ev.strings()?.take(k).collect()))
            })
            .collect()
    }
}

// ---- Streaming file fleets ------------------------------------------------
//
// The fleet helpers below run forward-only queries directly over `.tms` /
// `.tmsb` files: every worker opens its file as a streaming
// [`StepSource`](transmark_markov::StepSource) and folds it layer at a
// time, so per-worker memory is O(|Σ|² + reachable subsets) regardless of
// sequence length — no stream is ever materialized. Results are
// bit-identical to loading the file and running the in-memory pass.

/// Maps `f` over sequence-file paths on `n_threads` OS threads
/// (`0` = auto, see [`resolve_threads`]). Results are keyed by the path's
/// display string, in sorted order; the first error wins. The fan-out
/// body is the shared [`pool::scoped_map`].
pub fn par_map_paths<T, F>(
    paths: &[std::path::PathBuf],
    n_threads: usize,
    f: F,
) -> Result<BTreeMap<String, T>, StoreError>
where
    T: Send,
    F: Fn(&std::path::Path) -> Result<T, StoreError> + Sync,
{
    let pairs = pool::scoped_map(
        paths,
        n_threads,
        |path| -> Result<(String, T), StoreError> { Ok((path.display().to_string(), f(path)?)) },
    )?;
    Ok(pairs.into_iter().collect())
}

fn open_source(path: &std::path::Path) -> Result<transmark_markov::FileStepSource, StoreError> {
    transmark_markov::fsio::open_step_source(path)
        .map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))
}

/// `Pr(stream ∈ L(query))` for every sequence file, streamed — the
/// on-disk counterpart of [`SequenceStore::event_probability_parallel`].
pub fn event_probability_files(
    query: &Nfa,
    paths: &[std::path::PathBuf],
    n_threads: usize,
) -> Result<BTreeMap<String, f64>, StoreError> {
    par_map_paths(paths, n_threads, |path| {
        let mut src = open_source(path)?;
        Ok(acceptance_probability_source(query, &mut src)?)
    })
}

/// `Pr(stream →[query]→ o)` for every sequence file, streamed through one
/// shared compiled plan — the on-disk counterpart of
/// [`SequenceStore::confidence_all_parallel`].
pub fn confidence_files(
    query: &Transducer,
    o: &[SymbolId],
    paths: &[std::path::PathBuf],
    n_threads: usize,
) -> Result<BTreeMap<String, f64>, StoreError> {
    let plan = transmark_core::plan::prepare(query);
    par_map_paths(paths, n_threads, |path| {
        let src = open_source(path)?;
        Ok(plan.bind_source(src)?.confidence(o)?)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_automata::SymbolId;
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
    use transmark_markov::support::support;
    use transmark_markov::MarkovSequenceBuilder;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    fn store_with_streams(k: usize) -> SequenceStore {
        let alphabet = Alphabet::of_chars("ab");
        let mut store = SequenceStore::new(alphabet);
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..k {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 3 + i % 2,
                    n_symbols: 2,
                    zero_prob: 0.2,
                },
                &mut rng,
            );
            store.insert(format!("cart{i}"), m).unwrap();
        }
        store
    }

    /// NFA: contains symbol b.
    fn has_b() -> Nfa {
        let mut nfa = Nfa::new(2);
        let q0 = nfa.add_state(false);
        let acc = nfa.add_state(true);
        nfa.add_transition(q0, sym(0), q0);
        nfa.add_transition(q0, sym(1), acc);
        nfa.add_transition(acc, sym(0), acc);
        nfa.add_transition(acc, sym(1), acc);
        nfa
    }

    #[test]
    fn crud_and_validation() {
        let mut store = store_with_streams(2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.names().collect::<Vec<_>>(), vec!["cart0", "cart1"]);
        assert!(matches!(
            store.insert("cart0", store.get("cart1").unwrap().clone()),
            Err(StoreError::DuplicateStream(_))
        ));
        let wrong = MarkovSequenceBuilder::new(Alphabet::of_chars("abc"), 2)
            .uniform_all()
            .build()
            .unwrap();
        assert!(matches!(
            store.insert("cart9", wrong),
            Err(StoreError::AlphabetMismatch { .. })
        ));
        assert!(store.get("nope").is_err());
        let removed = store.remove("cart0").unwrap();
        assert!(store.replace("cart0", removed).is_ok());
    }

    #[test]
    fn event_probabilities_match_brute_force() {
        let store = store_with_streams(3);
        let q = has_b();
        let probs = store.event_probability(&q).unwrap();
        for (name, p) in &probs {
            let m = store.get(name).unwrap();
            let want: f64 = support(m)
                .iter()
                .filter(|(s, _)| q.accepts(s))
                .map(|(_, pp)| pp)
                .sum();
            assert!((p - want).abs() < 1e-10, "stream {name}");
        }
        // Series last element equals the total probability.
        for (name, series) in store.event_series(&q).unwrap() {
            assert!((series.last().unwrap() - probs[&name]).abs() < 1e-12);
        }
        // The scan-capable form agrees with the fold within its
        // documented relative tolerance at every position.
        let seq = store.event_series(&q).unwrap();
        let par = store.event_series_parallel(&q, 4).unwrap();
        assert_eq!(
            seq.keys().collect::<Vec<_>>(),
            par.keys().collect::<Vec<_>>()
        );
        for (name, series) in &seq {
            for (i, (a, b)) in series.iter().zip(&par[name]).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "{name}[{i}]: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn detection_filters_and_sorts() {
        let store = store_with_streams(4);
        let q = has_b();
        let all = store.detect(&q, 0.0).unwrap();
        assert_eq!(all.len(), 4);
        for w in all.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let none = store.detect(&q, 1.1).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn joint_probability_is_the_product() {
        let store = store_with_streams(2);
        let q = has_b();
        let probs = store.event_probability(&q).unwrap();
        let joint = store
            .joint_event_probability(&[("cart0", &q), ("cart1", &q)])
            .unwrap();
        assert!((joint - probs["cart0"] * probs["cart1"]).abs() < 1e-12);
        // Same stream twice is rejected.
        assert!(matches!(
            store.joint_event_probability(&[("cart0", &q), ("cart0", &q)]),
            Err(StoreError::DuplicateStream(_))
        ));
    }

    #[test]
    fn per_stream_transducer_query() {
        let store = store_with_streams(2);
        // Identity transducer.
        let alphabet = Arc::clone(&store.alphabet);
        let mut b = Transducer::builder(Arc::clone(&alphabet), alphabet);
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, sym(s), q, &[sym(s)]).unwrap();
        }
        let t = b.build().unwrap();
        let results = store.top_k(&t, 2).unwrap();
        assert_eq!(results.len(), 2);
        for (name, answers) in results {
            assert!(!answers.is_empty(), "stream {name}");
            for a in &answers {
                // Identity: confidence = world probability = E_max.
                assert!((a.confidence - a.emax).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn per_stream_extraction() {
        let store = store_with_streams(2);
        let pattern = transmark_automata::Dfa::word(2, &[sym(1)]);
        // Make pattern complete (Dfa::word already is).
        assert!(pattern.validate().is_ok());
        let p = SProjector::simple(Arc::clone(&store.alphabet), pattern).unwrap();
        let results = store.extract_top_k(&p, 3).unwrap();
        for (name, answers) in results {
            let m = store.get(&name).unwrap();
            for a in &answers {
                // Every extraction really occurs with its I_max score.
                let want = transmark_sproj::enumerate::imax_of_output(&p, m, &a.output).unwrap();
                assert!((a.score() - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_store_behaves() {
        let store = SequenceStore::new(Alphabet::of_chars("ab"));
        assert!(store.is_empty());
        assert!(store.event_probability(&has_b()).unwrap().is_empty());
        assert_eq!(store.joint_event_probability(&[]).unwrap(), 1.0);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};

    #[test]
    fn save_and_load_round_trip() {
        let alphabet = Alphabet::of_chars("ab");
        let mut store = SequenceStore::new(alphabet);
        let mut rng = StdRng::seed_from_u64(99);
        for name in ["alpha", "beta", "gamma"] {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 4,
                    n_symbols: 2,
                    zero_prob: 0.2,
                },
                &mut rng,
            );
            store.insert(name, m).unwrap();
        }
        let dir = std::env::temp_dir().join(format!("transmark-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        store.save_dir(&dir).unwrap();
        let loaded = SequenceStore::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 3);
        for name in ["alpha", "beta", "gamma"] {
            let (a, b) = (store.get(name).unwrap(), loaded.get(name).unwrap());
            assert_eq!(a.len(), b.len());
            assert_eq!(a.initial_dist(), b.initial_dist());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_save_and_load_round_trip() {
        let alphabet = Alphabet::of_chars("ab");
        let mut store = SequenceStore::new(alphabet);
        let mut rng = StdRng::seed_from_u64(123);
        for name in ["alpha", "beta"] {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 5,
                    n_symbols: 2,
                    zero_prob: 0.2,
                },
                &mut rng,
            );
            store.insert(name, m).unwrap();
        }
        let dir = std::env::temp_dir().join(format!("transmark-store-bin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        store.save_dir_binary(&dir).unwrap();
        assert!(dir.join("alpha.tmsb").exists());
        assert!(!dir.join("alpha.tms").exists());
        let loaded = SequenceStore::load_dir(&dir).unwrap();
        for name in ["alpha", "beta"] {
            let (a, b) = (store.get(name).unwrap(), loaded.get(name).unwrap());
            assert_eq!(a.initial_dist(), b.initial_dist());
            assert_eq!(a.transitions_flat(), b.transitions_flat());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_stream_names_are_rejected() {
        let alphabet = Alphabet::of_chars("a");
        let mut store = SequenceStore::new(alphabet.clone());
        let m = transmark_markov::MarkovSequenceBuilder::new(alphabet, 1)
            .initial(transmark_automata::SymbolId(0), 1.0)
            .build()
            .unwrap();
        store.insert("evil/name", m).unwrap();
        let dir = std::env::temp_dir().join(format!("transmark-store-bad-{}", std::process::id()));
        assert!(matches!(store.save_dir(&dir), Err(StoreError::Io(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loading_missing_dir_fails_cleanly() {
        let missing = std::path::Path::new("/nonexistent/transmark-store");
        assert!(matches!(
            SequenceStore::load_dir(missing),
            Err(StoreError::Io(_))
        ));
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_automata::SymbolId;
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};

    fn big_store(streams: usize) -> SequenceStore {
        let alphabet = Alphabet::of_chars("ab");
        let mut store = SequenceStore::new(alphabet);
        let mut rng = StdRng::seed_from_u64(77);
        for i in 0..streams {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 6,
                    n_symbols: 2,
                    zero_prob: 0.2,
                },
                &mut rng,
            );
            store.insert(format!("s{i:03}"), m).unwrap();
        }
        store
    }

    fn has_b() -> Nfa {
        let mut nfa = Nfa::new(2);
        let q0 = nfa.add_state(false);
        let acc = nfa.add_state(true);
        nfa.add_transition(q0, SymbolId(0), q0);
        nfa.add_transition(q0, SymbolId(1), acc);
        nfa.add_transition(acc, SymbolId(0), acc);
        nfa.add_transition(acc, SymbolId(1), acc);
        nfa
    }

    #[test]
    fn parallel_matches_sequential() {
        let store = big_store(23); // deliberately not a multiple of threads
        let q = has_b();
        let seq = store.event_probability(&q).unwrap();
        for threads in [1usize, 2, 4, 7, 64] {
            let par = store.event_probability_parallel(&q, threads).unwrap();
            assert_eq!(seq.len(), par.len(), "threads = {threads}");
            for (name, p_seq) in &seq {
                // The DP sums in HashMap iteration order, which varies
                // between runs, so values agree only up to rounding.
                let p_par = par[name];
                assert!(
                    (p_seq - p_par).abs() < 1e-12,
                    "threads = {threads}, stream {name}: {p_seq} vs {p_par}"
                );
            }
        }
    }

    #[test]
    fn parallel_top_k_matches_sequential() {
        let store = big_store(6);
        let alphabet = Arc::clone(&store.alphabet);
        let mut b = Transducer::builder(Arc::clone(&alphabet), alphabet);
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, SymbolId(s), q, &[SymbolId(s)]).unwrap();
        }
        let t = b.build().unwrap();
        let seq = store.top_k(&t, 3).unwrap();
        let par = store.top_k_parallel(&t, 3, 3).unwrap();
        assert_eq!(seq.len(), par.len());
        for (name, answers) in seq {
            let pars = &par[&name];
            assert_eq!(answers.len(), pars.len(), "stream {name}");
            for (a, b) in answers.iter().zip(pars.iter()) {
                assert_eq!(a.output, b.output, "stream {name}");
                assert!((a.confidence - b.confidence).abs() < 1e-12);
                assert!((a.emax - b.emax).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_on_empty_store() {
        let store = SequenceStore::new(Alphabet::of_chars("ab"));
        assert!(store
            .event_probability_parallel(&has_b(), 4)
            .unwrap()
            .is_empty());
    }
}

#[cfg(test)]
mod plan_cache_tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};

    fn store_with_streams(k: usize) -> SequenceStore {
        let alphabet = Alphabet::of_chars("ab");
        let mut store = SequenceStore::new(alphabet);
        let mut rng = StdRng::seed_from_u64(41);
        for i in 0..k {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 5,
                    n_symbols: 2,
                    zero_prob: 0.2,
                },
                &mut rng,
            );
            store.insert(format!("s{i:03}"), m).unwrap();
        }
        store
    }

    /// Identity transducer over the two-symbol alphabet.
    fn identity(alphabet: &Arc<Alphabet>) -> Transducer {
        let mut b = Transducer::builder(Arc::clone(alphabet), Arc::clone(alphabet));
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, SymbolId(s), q, &[SymbolId(s)]).unwrap();
        }
        b.build().unwrap()
    }

    /// Swap transducer (a→b, b→a): structurally distinct from identity.
    fn swap(alphabet: &Arc<Alphabet>) -> Transducer {
        let mut b = Transducer::builder(Arc::clone(alphabet), Arc::clone(alphabet));
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, SymbolId(s), q, &[SymbolId(1 - s)])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn hit_and_miss_accounting() {
        let store = store_with_streams(3);
        let alphabet = Arc::clone(&store.alphabet);
        let t = identity(&alphabet);
        assert_eq!(store.plan_cache().stats().misses, 0);
        store.top_k(&t, 2).unwrap();
        let s1 = store.plan_cache().stats();
        assert_eq!((s1.len, s1.hits, s1.misses), (1, 0, 1));
        // Re-issuing the same query (even via a fresh, structurally
        // identical machine) hits.
        store.top_k(&identity(&alphabet), 2).unwrap();
        let s2 = store.plan_cache().stats();
        assert_eq!((s2.len, s2.hits, s2.misses), (1, 1, 1));
        // A different machine misses and coexists.
        store.top_k(&swap(&alphabet), 2).unwrap();
        let s3 = store.plan_cache().stats();
        assert_eq!((s3.len, s3.hits, s3.misses), (2, 1, 2));
    }

    #[test]
    fn forced_key_collisions_resolve_by_structure() {
        let alphabet = Arc::new(Alphabet::of_chars("ab"));
        let cache = PlanCache::new(8);
        let (t1, t2) = (identity(&alphabet), swap(&alphabet));
        assert!(!t1.same_structure(&t2));
        // Same 64-bit key, different machines: both get (and keep) their
        // own plan.
        let p1 = cache.get_or_prepare_keyed(42, &t1);
        let p2 = cache.get_or_prepare_keyed(42, &t2);
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert!(p1.transducer().same_structure(&t1));
        assert!(p2.transducer().same_structure(&t2));
        // Lookups under the colliding key route to the structurally
        // matching entry.
        assert!(Arc::ptr_eq(&cache.get_or_prepare_keyed(42, &t1), &p1));
        assert!(Arc::ptr_eq(&cache.get_or_prepare_keyed(42, &t2), &p2));
        let s = cache.stats();
        assert_eq!((s.len, s.hits, s.misses), (2, 2, 2));
    }

    #[test]
    fn eviction_at_capacity_is_lru() {
        let alphabet = Arc::new(Alphabet::of_chars("ab"));
        let cache = PlanCache::new(2);
        let (t1, t2) = (identity(&alphabet), swap(&alphabet));
        // A third structurally distinct machine: two states.
        let t3 = {
            let mut b = Transducer::builder(Arc::clone(&alphabet), Arc::clone(&alphabet));
            let q0 = b.add_state(false);
            let q1 = b.add_state(true);
            for s in 0..2u32 {
                b.add_transition(q0, SymbolId(s), q1, &[SymbolId(s)])
                    .unwrap();
                b.add_transition(q1, SymbolId(s), q1, &[SymbolId(s)])
                    .unwrap();
            }
            b.build().unwrap()
        };
        let p1 = cache.get_or_prepare(&t1);
        cache.get_or_prepare(&t2);
        // Touch t1 so t2 becomes least recently used, then overflow.
        assert!(Arc::ptr_eq(&cache.get_or_prepare(&t1), &p1));
        cache.get_or_prepare(&t3);
        assert_eq!(cache.stats().len, 2);
        // t1 survived (hit), t2 was evicted (fresh miss recompiles).
        assert!(Arc::ptr_eq(&cache.get_or_prepare(&t1), &p1));
        let before = cache.stats().misses;
        cache.get_or_prepare(&t2);
        assert_eq!(cache.stats().misses, before + 1);
    }

    #[test]
    fn fleet_evaluation_shares_one_plan() {
        let store = store_with_streams(17);
        let alphabet = Arc::clone(&store.alphabet);
        let t = identity(&alphabet);
        let seq = store.top_k(&t, 3).unwrap();
        let par = store.top_k_parallel(&t, 3, 4).unwrap();
        // One compile total across both fleet passes; results bitwise
        // identical (same plan artifacts, same accumulation order).
        let s = store.plan_cache().stats();
        assert_eq!((s.len, s.misses), (1, 1));
        assert!(s.hits >= 1);
        assert_eq!(seq.len(), par.len());
        for (name, answers) in &seq {
            let pars = &par[name];
            assert_eq!(answers.len(), pars.len(), "stream {name}");
            for (a, b) in answers.iter().zip(pars.iter()) {
                assert_eq!(a.output, b.output);
                assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
                assert_eq!(a.emax.to_bits(), b.emax.to_bits());
            }
        }
    }

    #[test]
    fn batch_confidence_matches_per_stream_evaluation() {
        let store = store_with_streams(8);
        let alphabet = Arc::clone(&store.alphabet);
        let t = identity(&alphabet);
        let o = [SymbolId(0), SymbolId(1)];
        let batch = store.confidence_all(&t, &o).unwrap();
        let batch_par = store.confidence_all_parallel(&t, &o, 3).unwrap();
        assert_eq!(batch, batch_par);
        for (name, c) in &batch {
            let m = store.get(name).unwrap();
            let want = transmark_core::confidence(&t, m, &o).unwrap();
            assert_eq!(c.to_bits(), want.to_bits(), "stream {name}");
        }
    }
}

#[cfg(test)]
mod file_fleet_tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};

    fn store_with_streams(k: usize) -> SequenceStore {
        let alphabet = Alphabet::of_chars("ab");
        let mut store = SequenceStore::new(alphabet);
        let mut rng = StdRng::seed_from_u64(55);
        for i in 0..k {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 6,
                    n_symbols: 2,
                    zero_prob: 0.2,
                },
                &mut rng,
            );
            store.insert(format!("s{i}"), m).unwrap();
        }
        store
    }

    fn has_b() -> Nfa {
        let mut nfa = Nfa::new(2);
        let q0 = nfa.add_state(false);
        let acc = nfa.add_state(true);
        nfa.add_transition(q0, SymbolId(0), q0);
        nfa.add_transition(q0, SymbolId(1), acc);
        nfa.add_transition(acc, SymbolId(0), acc);
        nfa.add_transition(acc, SymbolId(1), acc);
        nfa
    }

    #[test]
    fn resolve_threads_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        // And the fleet path accepts 0 end to end.
        let store = store_with_streams(3);
        let seq = store.event_probability(&has_b()).unwrap();
        let auto = store.event_probability_parallel(&has_b(), 0).unwrap();
        assert_eq!(seq, auto);
    }

    /// Mixed-format file fleet, streamed: bitwise equal to the in-memory
    /// passes, for both the Boolean and the transducer query.
    #[test]
    fn streamed_file_fleet_matches_in_memory_bitwise() {
        let store = store_with_streams(5);
        let dir =
            std::env::temp_dir().join(format!("transmark-store-fleet-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Alternate text and binary files across the fleet.
        let mut paths = Vec::new();
        for (i, name) in store.names().enumerate() {
            let m = store.get(name).unwrap();
            let path = if i % 2 == 0 {
                let p = dir.join(format!("{name}.tms"));
                std::fs::write(&p, transmark_markov::textio::to_text(m)).unwrap();
                p
            } else {
                let p = dir.join(format!("{name}.tmsb"));
                std::fs::write(&p, transmark_markov::binio::to_tmsb_bytes(m)).unwrap();
                p
            };
            paths.push(path);
        }

        let q = has_b();
        let streamed = event_probability_files(&q, &paths, 2).unwrap();
        for (name, path) in store.names().zip(paths.iter()) {
            let want = acceptance_probability(&q, store.get(name).unwrap()).unwrap();
            let got = streamed[&path.display().to_string()];
            assert_eq!(got.to_bits(), want.to_bits(), "stream {name}");
        }

        // Identity transducer; confidence of output "a b".
        let alphabet = Arc::new(store.alphabet().clone());
        let mut b = Transducer::builder(Arc::clone(&alphabet), Arc::clone(&alphabet));
        let st = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(st, SymbolId(s), st, &[SymbolId(s)])
                .unwrap();
        }
        let t = b.build().unwrap();
        let o = [SymbolId(0), SymbolId(1)];
        let streamed = confidence_files(&t, &o, &paths, 0).unwrap();
        for (name, path) in store.names().zip(paths.iter()) {
            let want = transmark_core::confidence(&t, store.get(name).unwrap(), &o).unwrap();
            let got = streamed[&path.display().to_string()];
            assert_eq!(got.to_bits(), want.to_bits(), "stream {name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_fails_cleanly() {
        let paths = vec![std::path::PathBuf::from("/nonexistent/x.tms")];
        assert!(matches!(
            event_probability_files(&has_b(), &paths, 1),
            Err(StoreError::Io(_))
        ));
    }
}

#[cfg(test)]
mod uncertainty_tests {
    use super::*;
    use transmark_markov::MarkovSequenceBuilder;

    #[test]
    fn uncertainty_ranking_orders_by_perplexity() {
        let alphabet = Alphabet::of_chars("xy");
        let mut store = SequenceStore::new(alphabet.clone());
        let noisy = MarkovSequenceBuilder::new(alphabet.clone(), 4)
            .uniform_all()
            .build()
            .unwrap();
        let sharp =
            MarkovSequence::homogeneous(alphabet.clone(), 4, &[1.0, 0.0], &[0.9, 0.1, 0.1, 0.9])
                .unwrap();
        store.insert("noisy", noisy).unwrap();
        store.insert("sharp", sharp).unwrap();
        let ranked = store.rank_by_uncertainty();
        assert_eq!(ranked[0].0, "noisy");
        assert!((ranked[0].1 - 2.0).abs() < 1e-12);
        assert!(ranked[1].1 < 2.0);
    }
}

#[cfg(test)]
mod error_propagation_tests {
    use super::*;

    #[test]
    fn par_map_propagates_the_first_error() {
        let alphabet = Alphabet::of_chars("ab");
        let mut store = SequenceStore::new(alphabet.clone());
        for i in 0..8 {
            let m = transmark_markov::MarkovSequenceBuilder::new(alphabet.clone(), 2)
                .uniform_all()
                .build()
                .unwrap();
            store.insert(format!("s{i}"), m).unwrap();
        }
        // A worker that fails on one specific stream.
        let result = store.par_map_streams(3, |name, _| {
            if name == "s5" {
                Err(StoreError::UnknownStream("injected".into()))
            } else {
                Ok(name.len())
            }
        });
        assert!(matches!(result, Err(StoreError::UnknownStream(_))));
        // And a query with the wrong alphabet fails cleanly in parallel.
        let bad_query = Nfa::new(3); // zero states + wrong alphabet width
        assert!(store.event_probability_parallel(&bad_query, 2).is_err());
    }
}
