//! The stream monitor: one query multiplexed over many live streams.
//!
//! Lahar's workload (§6) is not one stream but a database of them — every
//! tracked object is its own Markov stream, and the system reports, "at
//! each time period", the probability that each stream satisfies the
//! query. The fleet helpers in the crate root evaluate one stream at a
//! time to completion; a [`Monitor`] instead keeps *every* stream's
//! incremental session ([`transmark_core::incremental`]) in flight at
//! once and interleaves them in tick batches, the shape of a live
//! deployment where layers arrive continuously on thousands of streams
//! and none of them can be "finished first".
//!
//! Streams are assigned round-robin to `threads` workers; each worker
//! slices `batch` ticks per stream per scheduling round. The per-stream
//! arithmetic is exactly the single-stream session's — sessions never
//! interact and never rewind — so a monitor run is bit-identical to N
//! sequential runs at any worker count or batch size (asserted by the
//! tests here and by the CI smoke test).
//!
//! Each worker installs its own `monitor-N` profiler lane and the run
//! accounts under `store.monitor.*` (streams, ticks, workers, wall
//! time).

use std::path::PathBuf;

use transmark_automata::Nfa;
use transmark_core::incremental::{EventSession, SlidingWindowQuery, WindowSession};
use transmark_markov::{MarkovSequence, StepSource};

use crate::pool::resolve_threads;
use crate::StoreError;

/// Default ticks a worker advances one stream before moving to the next.
pub const DEFAULT_TICK_BATCH: usize = 64;

/// How a [`Monitor`] evaluates each stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// `Some(w)`: per-position sliding-window probability
    /// `Pr(S[t−w+1..t] ∈ L(A))` via [`SlidingWindowQuery`] (O(k²) per
    /// tick, no rewind). `None`: Lahar's native prefix series
    /// `Pr(S[1..t] ∈ L(A))` via [`EventSession`].
    pub window: Option<usize>,
    /// Worker threads (`0` = one per core, [`resolve_threads`]).
    pub threads: usize,
    /// Ticks per stream per scheduling slice (`0` =
    /// [`DEFAULT_TICK_BATCH`]). Smaller batches interleave more finely;
    /// results are identical for any value.
    pub batch: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: None,
            threads: 0,
            batch: DEFAULT_TICK_BATCH,
        }
    }
}

/// One stream's completed monitoring output.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Stream name (file path display string or caller-supplied key).
    pub name: String,
    /// Probability series, one entry per consumed position (`series[t]`
    /// is the window or prefix probability after position `t + 1`).
    pub series: Vec<f64>,
    /// Positions consumed (= `series.len()`).
    pub positions: usize,
}

impl StreamReport {
    /// The final probability (last series entry).
    pub fn final_probability(&self) -> f64 {
        *self.series.last().expect("a stream has ≥ 1 position")
    }
}

/// A stream's in-flight session: the prefix fold or the sliding window.
enum Session<'q> {
    Event(EventSession),
    Window(WindowSession<'q>),
}

impl Session<'_> {
    fn probability(&self) -> f64 {
        match self {
            Session::Event(s) => s.probability(),
            Session::Window(s) => s.probability(),
        }
    }

    fn advance(&mut self, matrix: &[f64]) -> Result<f64, transmark_core::EngineError> {
        match self {
            Session::Event(s) => s.advance(matrix),
            Session::Window(s) => s.advance(matrix),
        }
    }
}

/// One worker-owned stream mid-flight.
struct Active<'q, S> {
    idx: usize,
    name: String,
    src: S,
    sess: Session<'q>,
    series: Vec<f64>,
    done: bool,
}

/// A Boolean query multiplexed over many streams (see the module docs).
pub struct Monitor {
    nfa: Nfa,
    cfg: MonitorConfig,
}

impl Monitor {
    /// A monitor evaluating `query` under `cfg`.
    pub fn new(query: Nfa, cfg: MonitorConfig) -> Monitor {
        Monitor { nfa: query, cfg }
    }

    /// The query automaton.
    pub fn query(&self) -> &Nfa {
        &self.nfa
    }

    /// Monitors every `.tms` / `.tmsb` file in `paths`, streamed (each
    /// worker holds O(streams/workers · (|Σ|² + window state)) memory).
    /// Reports come back in input order; the first error wins.
    pub fn run_paths(&self, paths: &[PathBuf]) -> Result<Vec<StreamReport>, StoreError> {
        let names: Vec<String> = paths.iter().map(|p| p.display().to_string()).collect();
        self.run_generic(&names, |i| {
            transmark_markov::fsio::open_step_source(&paths[i])
                .map_err(|e| StoreError::Io(format!("{}: {e}", paths[i].display())))
        })
    }

    /// Monitors in-memory sequences (name, stream) — the store-resident
    /// counterpart of [`Monitor::run_paths`].
    pub fn run_sequences(
        &self,
        streams: &[(String, &MarkovSequence)],
    ) -> Result<Vec<StreamReport>, StoreError> {
        let names: Vec<String> = streams.iter().map(|(n, _)| n.clone()).collect();
        self.run_generic(&names, |i| Ok(streams[i].1.step_source()))
    }

    /// The multiplexer body: round-robin assignment, batched tick
    /// interleaving, scoped workers. `open(i)` builds stream `i`'s
    /// [`StepSource`] inside the worker that owns it.
    fn run_generic<S, F>(&self, names: &[String], open: F) -> Result<Vec<StreamReport>, StoreError>
    where
        S: StepSource,
        F: Fn(usize) -> Result<S, StoreError> + Sync,
    {
        if names.is_empty() {
            return Ok(Vec::new());
        }
        let n_threads = resolve_threads(self.cfg.threads).min(names.len());
        let batch = if self.cfg.batch == 0 {
            DEFAULT_TICK_BATCH
        } else {
            self.cfg.batch
        };
        // The window machinery compiles once (scan DFA over the query)
        // and is shared read-only by every worker's sessions.
        let window_query = match self.cfg.window {
            Some(w) => Some(SlidingWindowQuery::new(self.nfa.clone(), w)?),
            None => None,
        };

        // The mode label splits monitor traffic by evaluation shape:
        // full-prefix event series vs. sliding-window queries.
        let mode = if self.cfg.window.is_some() {
            "window"
        } else {
            "series"
        };
        transmark_obs::counter!("store.monitor.runs").inc();
        transmark_obs::counter!("store.monitor.runs", mode = mode).inc();
        transmark_obs::gauge!("store.monitor.workers").set(n_threads as u64);
        transmark_obs::counter!("store.monitor.streams").add(names.len() as u64);
        transmark_obs::counter!("store.monitor.streams", mode = mode).add(names.len() as u64);
        let t_run = transmark_obs::Timer::start();
        let rec = transmark_obs::profile::current();

        let per_worker: Result<Vec<Vec<(usize, StreamReport)>>, StoreError> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_threads)
                    .map(|wi| {
                        let open = &open;
                        let window_query = window_query.as_ref();
                        let nfa = &self.nfa;
                        let rec = rec.clone();
                        scope.spawn(move || {
                            let _lane = rec.as_ref().map(|r| r.install(format!("monitor-{wi}")));
                            let mut active: Vec<Active<'_, S>> = Vec::new();
                            // Round-robin ownership: worker wi takes
                            // streams wi, wi + n_threads, …
                            for idx in (wi..names.len()).step_by(n_threads) {
                                let src = open(idx)?;
                                let sess = match window_query {
                                    Some(q) => Session::Window(q.start(src.initial())?),
                                    None => Session::Event(EventSession::start(
                                        nfa.clone(),
                                        src.initial(),
                                    )?),
                                };
                                let series = vec![sess.probability()];
                                active.push(Active {
                                    idx,
                                    name: names[idx].clone(),
                                    src,
                                    sess,
                                    series,
                                    done: false,
                                });
                            }
                            let mut ticks = 0u64;
                            let mut open_streams = active.len();
                            while open_streams > 0 {
                                for a in active.iter_mut().filter(|a| !a.done) {
                                    for _ in 0..batch {
                                        match a.src.next_step().map_err(|e| {
                                            StoreError::Io(format!("{}: {e}", a.name))
                                        })? {
                                            Some(matrix) => {
                                                a.series.push(a.sess.advance(matrix)?);
                                                ticks += 1;
                                            }
                                            None => {
                                                a.done = true;
                                                open_streams -= 1;
                                                break;
                                            }
                                        }
                                    }
                                }
                            }
                            transmark_obs::counter!("store.monitor.ticks").add(ticks);
                            Ok(active
                                .into_iter()
                                .map(|a| {
                                    let positions = a.series.len();
                                    (
                                        a.idx,
                                        StreamReport {
                                            name: a.name,
                                            series: a.series,
                                            positions,
                                        },
                                    )
                                })
                                .collect::<Vec<_>>())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("monitor worker does not panic"))
                    .collect()
            });
        t_run.observe(transmark_obs::histogram!("store.monitor.wall_ns"));

        let mut reports: Vec<Option<StreamReport>> = (0..names.len()).map(|_| None).collect();
        for (idx, report) in per_worker?.into_iter().flatten() {
            reports[idx] = Some(report);
        }
        Ok(reports
            .into_iter()
            .map(|r| r.expect("every stream index is owned by exactly one worker"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_automata::SymbolId;
    use transmark_core::streaming::EventMonitor;
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};

    /// NFA over 3 symbols: has seen symbol 2.
    fn has_two() -> Nfa {
        let mut nfa = Nfa::new(3);
        let q0 = nfa.add_state(false);
        let acc = nfa.add_state(true);
        for s in 0..3u32 {
            nfa.add_transition(q0, SymbolId(s), if s == 2 { acc } else { q0 });
            nfa.add_transition(acc, SymbolId(s), acc);
        }
        nfa
    }

    fn fleet(n: usize, seed: u64) -> Vec<(String, MarkovSequence)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let m = random_markov_sequence(
                    &RandomChainSpec {
                        len: 5 + i % 7,
                        n_symbols: 3,
                        zero_prob: 0.3,
                    },
                    &mut rng,
                );
                (format!("s{i:03}"), m)
            })
            .collect()
    }

    /// Monitor output is bit-equal to N independent sequential runs, at
    /// every worker count and batch size — the multiplexing is pure
    /// scheduling, never arithmetic.
    #[test]
    fn multiplexed_event_series_is_bit_equal_to_sequential() {
        let streams = fleet(13, 7);
        let refs: Vec<(String, &MarkovSequence)> =
            streams.iter().map(|(n, m)| (n.clone(), m)).collect();
        let sequential: Vec<Vec<f64>> = streams
            .iter()
            .map(|(_, m)| EventMonitor::replay(has_two(), m).unwrap())
            .collect();
        for threads in [1usize, 2, 4, 7] {
            for batch in [1usize, 3, 64] {
                let monitor = Monitor::new(
                    has_two(),
                    MonitorConfig {
                        window: None,
                        threads,
                        batch,
                    },
                );
                let reports = monitor.run_sequences(&refs).unwrap();
                assert_eq!(reports.len(), streams.len());
                for (i, r) in reports.iter().enumerate() {
                    assert_eq!(r.name, streams[i].0, "order preserved");
                    assert_eq!(r.positions, streams[i].1.len());
                    assert_eq!(
                        r.series.len(),
                        sequential[i].len(),
                        "threads {threads} batch {batch} stream {i}"
                    );
                    for (a, b) in r.series.iter().zip(&sequential[i]) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "threads {threads} batch {batch} stream {i}"
                        );
                    }
                }
            }
        }
    }

    /// Same bit-parity for the sliding-window mode.
    #[test]
    fn multiplexed_window_series_is_bit_equal_to_sequential() {
        let streams = fleet(9, 21);
        let refs: Vec<(String, &MarkovSequence)> =
            streams.iter().map(|(n, m)| (n.clone(), m)).collect();
        let q = SlidingWindowQuery::new(has_two(), 3).unwrap();
        let sequential: Vec<Vec<f64>> = streams.iter().map(|(_, m)| q.series(m).unwrap()).collect();
        for threads in [1usize, 2, 4, 7] {
            let monitor = Monitor::new(
                has_two(),
                MonitorConfig {
                    window: Some(3),
                    threads,
                    batch: 2,
                },
            );
            let reports = monitor.run_sequences(&refs).unwrap();
            for (i, r) in reports.iter().enumerate() {
                for (a, b) in r.series.iter().zip(&sequential[i]) {
                    assert_eq!(a.to_bits(), b.to_bits(), "threads {threads} stream {i}");
                }
            }
        }
    }

    /// File-backed streams (mixed `.tms` / `.tmsb`) give the same bits
    /// as the in-memory run.
    #[test]
    fn file_backed_monitor_matches_in_memory() {
        let streams = fleet(8, 33);
        let dir = std::env::temp_dir().join(format!("transmark-monitor-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for (i, (name, m)) in streams.iter().enumerate() {
            let path = if i % 2 == 0 {
                let p = dir.join(format!("{name}.tms"));
                std::fs::write(&p, transmark_markov::textio::to_text(m)).unwrap();
                p
            } else {
                let p = dir.join(format!("{name}.tmsb"));
                std::fs::write(&p, transmark_markov::binio::to_tmsb_bytes(m)).unwrap();
                p
            };
            paths.push(path);
        }
        let monitor = Monitor::new(
            has_two(),
            MonitorConfig {
                window: Some(2),
                threads: 3,
                batch: 5,
            },
        );
        let from_files = monitor.run_paths(&paths).unwrap();
        let refs: Vec<(String, &MarkovSequence)> =
            streams.iter().map(|(n, m)| (n.clone(), m)).collect();
        let in_memory = monitor.run_sequences(&refs).unwrap();
        for (f, m) in from_files.iter().zip(in_memory.iter()) {
            assert_eq!(f.series.len(), m.series.len());
            for (a, b) in f.series.iter().zip(&m.series) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Errors (bad window, missing file) surface as typed errors, and an
    /// empty fleet is a clean no-op.
    #[test]
    fn monitor_edge_cases() {
        let monitor = Monitor::new(has_two(), MonitorConfig::default());
        assert!(monitor.run_paths(&[]).unwrap().is_empty());

        let bad_window = Monitor::new(
            has_two(),
            MonitorConfig {
                window: Some(0),
                ..MonitorConfig::default()
            },
        );
        let streams = fleet(1, 1);
        let refs: Vec<(String, &MarkovSequence)> =
            streams.iter().map(|(n, m)| (n.clone(), m)).collect();
        assert!(bad_window.run_sequences(&refs).is_err());

        let missing = vec![std::path::PathBuf::from("/nonexistent/x.tms")];
        assert!(matches!(
            monitor.run_paths(&missing),
            Err(StoreError::Io(_))
        ));
    }
}
