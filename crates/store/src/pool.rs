//! Shared worker-pool layer: thread-count resolution, fleet accounting,
//! scoped fan-out, and a process-lifetime [`WorkerPool`].
//!
//! Two execution shapes live here:
//!
//! * **Scoped fleets** ([`scoped_map`]) — the batch shape used by
//!   [`SequenceStore::par_map_streams`](crate::SequenceStore::par_map_streams)
//!   and [`par_map_paths`](crate::par_map_paths): a fixed item set is
//!   chunked over short-lived scoped threads and the call blocks until
//!   every item is done. Borrowed (non-`'static`) closures are fine.
//! * **A long-lived [`WorkerPool`]** — the service shape: a fixed set of
//!   OS threads draining a *bounded* task queue for the lifetime of the
//!   process. Submission is either blocking ([`WorkerPool::execute`]) or
//!   failing-fast ([`WorkerPool::try_execute`], the admission-control
//!   hook: a saturated queue is a typed [`PoolError::Saturated`] instead
//!   of unbounded memory growth). [`WorkerPool::shutdown`] drains the
//!   queue and joins every worker.
//!
//! Both shapes share the same accounting vocabulary: fleets record
//! `store.fleet.*` (runs, workers, per-task latency, queue wait, wall vs
//! summed CPU), the pool records `store.pool.*` (submitted, completed,
//! rejected, queue depth, queue-wait latency).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Resolves a requested worker count: `0` means "one worker per available
/// core" ([`std::thread::available_parallelism`]); anything else is taken
/// literally.
pub fn resolve_threads(n_threads: usize) -> usize {
    if n_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        n_threads
    }
}

/// Per-run accounting for one fleet evaluation (`store.fleet.*`).
///
/// Created once per [`scoped_map`] call; each worker thread takes a
/// [`FleetWorker`] and routes its tasks through it, so the registry sees
/// per-task latency, per-worker task counts, queue wait (fleet start →
/// worker's first task), and the run's wall vs summed-CPU time — the
/// ratio of the latter two is the realized parallel speedup.
struct FleetRun {
    start: transmark_obs::Timer,
    cpu_ns: AtomicU64,
}

impl FleetRun {
    fn begin(workers: usize) -> FleetRun {
        transmark_obs::counter!("store.fleet.runs").inc();
        transmark_obs::gauge!("store.fleet.workers").set(workers as u64);
        FleetRun {
            start: transmark_obs::Timer::start(),
            cpu_ns: AtomicU64::new(0),
        }
    }

    fn worker(&self) -> FleetWorker<'_> {
        FleetWorker {
            run: self,
            tasks: 0,
            cpu_ns: 0,
        }
    }

    fn finish(self) {
        transmark_obs::histogram!("store.fleet.wall_ns").record(self.start.elapsed_ns());
        transmark_obs::histogram!("store.fleet.cpu_ns").record(self.cpu_ns.load(Ordering::Relaxed));
    }
}

/// One worker thread's view of a [`FleetRun`]; folds its totals into the
/// run (and the global registry) on drop, so early error returns still
/// account for the tasks that did run.
struct FleetWorker<'a> {
    run: &'a FleetRun,
    tasks: u64,
    cpu_ns: u64,
}

impl FleetWorker<'_> {
    fn task<T>(&mut self, f: impl FnOnce() -> T) -> T {
        if self.tasks == 0 {
            transmark_obs::histogram!("store.fleet.queue_wait_ns")
                .record(self.run.start.elapsed_ns());
        }
        // On a profiled run each task is a span on its worker's lane
        // ("task", with bind/execute nesting under it), so the timeline
        // shows where each worker's wall time went.
        let _span = transmark_obs::span::enter("task");
        let t = transmark_obs::Timer::start();
        let out = f();
        self.cpu_ns += t.observe(transmark_obs::histogram!("store.fleet.task_ns"));
        self.tasks += 1;
        out
    }
}

impl Drop for FleetWorker<'_> {
    fn drop(&mut self) {
        transmark_obs::counter!("store.fleet.tasks").add(self.tasks);
        transmark_obs::histogram!("store.fleet.tasks_per_worker").record(self.tasks);
        self.run.cpu_ns.fetch_add(self.cpu_ns, Ordering::Relaxed);
    }
}

/// Maps `f` over `items` on up to `n_threads` scoped OS threads
/// (`0` = auto, see [`resolve_threads`]), preserving item order in the
/// result; the first error wins. Items are chunked contiguously, one
/// chunk per worker; each worker propagates the caller's profiler into
/// its own `worker-N` lane and accounts through [`FleetRun`] /
/// [`FleetWorker`] (`store.fleet.*`).
///
/// This is the single fan-out body behind
/// [`SequenceStore::par_map_streams`](crate::SequenceStore::par_map_streams)
/// and [`par_map_paths`](crate::par_map_paths); it also serves ad-hoc
/// fleets like the bench harness's loopback client swarm.
pub fn scoped_map<I, T, E, F>(items: &[I], n_threads: usize, f: F) -> Result<Vec<T>, E>
where
    I: Sync,
    T: Send,
    E: Send,
    F: Fn(&I) -> Result<T, E> + Sync,
{
    let n_threads = resolve_threads(n_threads);
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let chunk = items.len().div_ceil(n_threads).max(1);
    let run = FleetRun::begin(items.len().div_ceil(chunk));
    // Propagate the caller's profiler into the workers: each gets its
    // own "worker-N" lane, so queue-wait vs. compute is visible per
    // worker in the merged timeline.
    let rec = transmark_obs::profile::current();
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(wi, part)| {
                let f = &f;
                let run = &run;
                let rec = rec.clone();
                scope.spawn(move || {
                    let _lane = rec.as_ref().map(|r| r.install(format!("worker-{wi}")));
                    let mut w = run.worker();
                    part.iter()
                        .map(|item| w.task(|| f(item)))
                        .collect::<Result<Vec<T>, E>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread does not panic"))
            .collect::<Result<Vec<Vec<T>>, E>>()
    });
    run.finish();
    Ok(results?.into_iter().flatten().collect())
}

/// Why a [`WorkerPool`] submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The bounded queue is full ([`WorkerPool::try_execute`] only) —
    /// the admission-control signal: shed load instead of queueing
    /// without bound.
    Saturated,
    /// [`WorkerPool::shutdown`] has begun; no new work is accepted.
    ShuttingDown,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Saturated => write!(f, "worker pool queue is full"),
            PoolError::ShuttingDown => write!(f, "worker pool is shutting down"),
        }
    }
}

impl std::error::Error for PoolError {}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<(Job, transmark_obs::Timer)>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for work (or shutdown)…
    work_ready: Condvar,
    /// …and blocking submitters wait here for queue space.
    space_ready: Condvar,
    queue_cap: usize,
    /// Label value for the per-pool `store.pool.*{pool=…}` series, so
    /// co-resident pools (e.g. `serve` vs an embedder's own) stay
    /// distinguishable in one registry.
    name: &'static str,
}

/// A fixed set of long-lived worker threads draining a bounded FIFO task
/// queue — the process-lifetime execution resource behind `tmk serve`.
///
/// Unlike the scoped fleets ([`scoped_map`]), jobs must be `'static`:
/// they outlive the submitting call. The queue bound is the pool's
/// admission-control surface — [`WorkerPool::try_execute`] refuses work
/// with [`PoolError::Saturated`] when the backlog reaches capacity,
/// while [`WorkerPool::execute`] blocks the submitter (backpressure)
/// until a slot frees.
///
/// Accounting (`store.pool.*`): `submitted` / `completed` / `rejected`
/// counters, a `queue_depth` gauge, and a `queue_wait_ns` histogram
/// (submission → a worker dequeues the job).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `workers` threads (`0` = one per core, see
    /// [`resolve_threads`]) and a queue bounded at `queue_cap` pending
    /// jobs (minimum 1). The pool reports under the `pool=pool` label;
    /// use [`WorkerPool::named`] to pick the label value.
    pub fn new(workers: usize, queue_cap: usize) -> WorkerPool {
        WorkerPool::named("pool", workers, queue_cap)
    }

    /// Like [`WorkerPool::new`], with an explicit name for the pool's
    /// `store.pool.*{pool=…}` metric series (the unlabeled totals are
    /// still recorded).
    pub fn named(name: &'static str, workers: usize, queue_cap: usize) -> WorkerPool {
        let n = resolve_threads(workers);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            queue_cap: queue_cap.max(1),
            name,
        });
        transmark_obs::gauge!("store.pool.workers").set(n as u64);
        transmark_obs::gauge!("store.pool.workers", pool = name).set(n as u64);
        let workers = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tmk-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawns")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queue_len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock is not poisoned")
            .queue
            .len()
    }

    /// Submits `job`, failing fast with [`PoolError::Saturated`] when the
    /// queue is at capacity — the admission-control entry point.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolError> {
        let mut state = self.shared.state.lock().expect("pool lock is not poisoned");
        if state.shutdown {
            return Err(PoolError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.queue_cap {
            transmark_obs::counter!("store.pool.rejected").inc();
            transmark_obs::counter!("store.pool.rejected", pool = self.shared.name).inc();
            return Err(PoolError::Saturated);
        }
        self.enqueue(&mut state, Box::new(job));
        Ok(())
    }

    /// Submits `job`, blocking the caller until queue space is available
    /// (backpressure). Fails only when the pool is shutting down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolError> {
        let mut state = self.shared.state.lock().expect("pool lock is not poisoned");
        while !state.shutdown && state.queue.len() >= self.shared.queue_cap {
            state = self
                .shared
                .space_ready
                .wait(state)
                .expect("pool lock is not poisoned");
        }
        if state.shutdown {
            return Err(PoolError::ShuttingDown);
        }
        self.enqueue(&mut state, Box::new(job));
        Ok(())
    }

    fn enqueue(&self, state: &mut PoolState, job: Job) {
        state.queue.push_back((job, transmark_obs::Timer::start()));
        transmark_obs::counter!("store.pool.submitted").inc();
        transmark_obs::counter!("store.pool.submitted", pool = self.shared.name).inc();
        transmark_obs::gauge!("store.pool.queue_depth").set(state.queue.len() as u64);
        transmark_obs::gauge!("store.pool.queue_depth", pool = self.shared.name)
            .set(state.queue.len() as u64);
        self.shared.work_ready.notify_one();
    }

    /// Graceful shutdown: refuses new work, drains every queued job, and
    /// joins all worker threads. Idempotent by construction (consumes the
    /// pool); dropping a pool without calling this shuts it down the same
    /// way.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock is not poisoned");
            state.shutdown = true;
            self.shared.work_ready.notify_all();
            self.shared.space_ready.notify_all();
        }
        for h in self.workers.drain(..) {
            h.join().expect("worker thread does not panic");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock is not poisoned");
            loop {
                if let Some((job, queued)) = state.queue.pop_front() {
                    transmark_obs::gauge!("store.pool.queue_depth").set(state.queue.len() as u64);
                    transmark_obs::gauge!("store.pool.queue_depth", pool = shared.name)
                        .set(state.queue.len() as u64);
                    let wait =
                        queued.observe(transmark_obs::histogram!("store.pool.queue_wait_ns"));
                    transmark_obs::histogram!("store.pool.queue_wait_ns", pool = shared.name)
                        .record(wait);
                    shared.space_ready.notify_one();
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .expect("pool lock is not poisoned");
            }
        };
        job();
        transmark_obs::counter!("store.pool.completed").inc();
        transmark_obs::counter!("store.pool.completed", pool = shared.name).inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn resolve_threads_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn scoped_map_preserves_order_and_propagates_errors() {
        let items: Vec<usize> = (0..37).collect();
        let out: Vec<usize> = scoped_map(&items, 4, |&i| Ok::<_, ()>(i * 2)).expect("no errors");
        assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>());

        let err = scoped_map(&items, 4, |&i| if i == 20 { Err(i) } else { Ok(i) });
        assert_eq!(err, Err(20));

        let empty: Vec<usize> = scoped_map(&[] as &[usize], 4, |&i| Ok::<_, ()>(i)).expect("empty");
        assert!(empty.is_empty());
    }

    #[test]
    fn pool_runs_jobs_and_drains_on_shutdown() {
        let pool = WorkerPool::new(3, 64);
        assert_eq!(pool.workers(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .expect("pool accepts work");
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn saturated_pool_rejects_with_typed_error() {
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));

        // Park the single worker so the queue backs up deterministically.
        let g = Arc::clone(&gate);
        pool.execute(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .expect("first job is accepted");

        // Wait until the worker has dequeued the parked job — on a
        // single-core box it may not be scheduled until we yield — so
        // the queue's one slot is demonstrably free again.
        while pool.queue_len() > 0 {
            std::thread::yield_now();
        }

        // Fill the single queue slot, then overflow it.
        let fill = pool.try_execute(|| {});
        let overflow = pool.try_execute(|| {});

        // Unpark the worker *before* asserting: a failed assertion would
        // otherwise unwind into the pool's drain-and-join drop while the
        // worker still waits on a gate nobody will open.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();

        assert_eq!(fill, Ok(()), "queue slot admits one job");
        assert_eq!(
            overflow,
            Err(PoolError::Saturated),
            "overflow is a typed rejection"
        );
    }

    #[test]
    fn shutdown_pool_refuses_new_work() {
        let pool = WorkerPool::new(2, 8);
        let shared = Arc::clone(&pool.shared);
        pool.shutdown();
        // A fresh handle to the shared state shows shutdown latched.
        assert!(shared.state.lock().unwrap().shutdown);
    }
}
