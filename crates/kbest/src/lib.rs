#![warn(missing_docs)]
// Index-based loops are the clearest way to write the layered DP kernels
// and matrix scans in this codebase; the clippy suggestion (iterators with
// enumerate/zip) obscures the (position, node, state) indexing.
#![allow(clippy::needless_range_loop)]

//! Ranked-enumeration machinery used by the `transmark` query engine.
//!
//! The paper obtains its ranked-evaluation results through two classical
//! reductions, both implemented here generically:
//!
//! * [`lawler`] — the Lawler–Murty procedure \[38, 43\] (also behind Yen's
//!   algorithm \[59\]): enumerate the answers of a constraint-partitionable
//!   space in decreasing score, given only a *constrained optimizer*
//!   ("best answer under constraint") and a *partitioner* ("split a
//!   constraint around an answer"). Theorem 4.3 (ranked enumeration by
//!   `E_max`) and Lemma 5.10 (`I_max`) instantiate this.
//! * [`dag`] — enumeration of source→sink paths of an edge-weighted DAG in
//!   decreasing weight, in the spirit of Eppstein \[14\]; Theorem 5.7
//!   (indexed s-projectors in exact confidence order) reduces to it. Our
//!   enumerator is best-first search with a perfect suffix heuristic: the
//!   same output order and polynomial delay as Eppstein's algorithm, with
//!   space that grows with the number of emitted paths (a documented
//!   deviation from the strict poly-space bound).
//!
//! Scores are logarithms of probabilities (`f64`, larger is better);
//! `-∞` encodes probability zero and is never emitted.

pub mod dag;
pub mod lawler;

pub use dag::{Dag, EdgeId, KBestPaths, NodeId};
pub use lawler::{LawlerMurty, PartitionSpace};

/// A total order wrapper for non-NaN `f64` scores (log probabilities).
///
/// `BinaryHeap` needs `Ord`; probabilities are never NaN (we assert this at
/// construction), so the wrapper simply promotes the partial order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score(pub f64);

impl Score {
    /// Wraps a score, panicking on NaN (which would poison the heap order).
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "score must not be NaN");
        Score(v)
    }
}

impl Eq for Score {}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("scores are not NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::Score;

    #[test]
    fn score_orders_like_f64() {
        let mut v = [
            Score::new(0.5),
            Score::new(-1.0),
            Score::new(f64::NEG_INFINITY),
        ];
        v.sort();
        assert_eq!(v[0].0, f64::NEG_INFINITY);
        assert_eq!(v[2].0, 0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_are_rejected() {
        Score::new(f64::NAN);
    }
}
