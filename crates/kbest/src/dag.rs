//! k-best source→sink paths in an edge-weighted DAG.
//!
//! Weights are log-probabilities; the weight of a path is the sum of its
//! edge weights and paths are enumerated in non-increasing weight. The
//! enumerator is best-first search over path prefixes guided by the exact
//! best-suffix potential (computed once by a backward DP over a
//! topological order), i.e. A* with a perfect heuristic — every popped
//! complete path is a next-best path, so the delay between consecutive
//! outputs is `O(L·d·log(queue))` for path length `L` and max out-degree
//! `d`.

use std::collections::BinaryHeap;

use crate::Score;

/// Index of a node in a [`Dag`].
pub type NodeId = usize;
/// Index of an edge in a [`Dag`].
pub type EdgeId = usize;

#[derive(Debug, Clone)]
struct Edge {
    from: NodeId,
    to: NodeId,
    /// Log-weight (log-probability); `-∞` means the edge is unusable.
    weight: f64,
}

/// An edge-weighted directed acyclic graph.
///
/// Acyclicity is verified lazily by [`KBestPaths::new`] (which needs a
/// topological order anyway); constructing a cyclic graph and never
/// enumerating it is allowed.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    edges: Vec<Edge>,
    out: Vec<Vec<EdgeId>>,
}

impl Dag {
    /// Creates a graph with `n_nodes` nodes and no edges.
    pub fn new(n_nodes: usize) -> Self {
        Self {
            edges: Vec::new(),
            out: vec![Vec::new(); n_nodes],
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.out.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.out.push(Vec::new());
        self.out.len() - 1
    }

    /// Adds an edge with log-weight `weight`, returning its id. Edges with
    /// weight `-∞` are legal but never appear on enumerated paths.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: f64) -> EdgeId {
        assert!(
            from < self.out.len() && to < self.out.len(),
            "node out of range"
        );
        assert!(!weight.is_nan(), "edge weight must not be NaN");
        let id = self.edges.len();
        self.edges.push(Edge { from, to, weight });
        self.out[from].push(id);
        id
    }

    /// The endpoints `(from, to)` of an edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        (self.edges[e].from, self.edges[e].to)
    }

    /// The log-weight of an edge.
    pub fn weight(&self, e: EdgeId) -> f64 {
        self.edges[e].weight
    }

    /// Topological order of all nodes, or `None` if the graph has a cycle.
    fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.out.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to] += 1;
        }
        let mut queue: Vec<NodeId> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &eid in &self.out[v] {
                let to = self.edges[eid].to;
                indegree[to] -= 1;
                if indegree[to] == 0 {
                    queue.push(to);
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

/// A prefix in the best-first search frontier.
#[derive(Debug)]
struct Partial {
    /// `prefix weight + best suffix from node` — the priority.
    potential: Score,
    /// Weight of the prefix alone.
    prefix_weight: f64,
    node: NodeId,
    /// Edges of the prefix, in order.
    edges: Vec<EdgeId>,
}

impl PartialEq for Partial {
    fn eq(&self, other: &Self) -> bool {
        self.potential == other.potential
    }
}
impl Eq for Partial {}
impl PartialOrd for Partial {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Partial {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.potential.cmp(&other.potential)
    }
}

/// Iterator over the source→sink paths of a [`Dag`] in non-increasing
/// total log-weight. Yields `(edges, total_log_weight)` pairs; paths of
/// weight `-∞` (probability zero) are not emitted.
///
/// Owns its graph so that callers can return the iterator without
/// self-referential borrows; use [`KBestPaths::dag`] to map emitted edge
/// ids back to whatever the edges encode.
pub struct KBestPaths {
    dag: Dag,
    /// Exact best log-weight from each node to the sink.
    best_suffix: Vec<f64>,
    frontier: BinaryHeap<Partial>,
    sink: NodeId,
}

impl KBestPaths {
    /// Prepares enumeration from `source` to `sink`.
    ///
    /// # Panics
    /// Panics if the graph is cyclic (the engine only ever builds layered
    /// graphs, so a cycle is a programming error, not an input error).
    pub fn new(dag: Dag, source: NodeId, sink: NodeId) -> Self {
        let order = dag
            .topological_order()
            .expect("k-best paths requires a DAG");
        let mut best_suffix = vec![f64::NEG_INFINITY; dag.n_nodes()];
        best_suffix[sink] = 0.0;
        for &v in order.iter().rev() {
            for &eid in &dag.out[v] {
                let e = &dag.edges[eid];
                let cand = e.weight + best_suffix[e.to];
                if cand > best_suffix[v] {
                    best_suffix[v] = cand;
                }
            }
        }
        let mut frontier = BinaryHeap::new();
        if best_suffix[source] > f64::NEG_INFINITY {
            frontier.push(Partial {
                potential: Score::new(best_suffix[source]),
                prefix_weight: 0.0,
                node: source,
                edges: Vec::new(),
            });
        }
        Self {
            dag,
            best_suffix,
            frontier,
            sink,
        }
    }

    /// The underlying graph (for mapping edge ids back to labels).
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Current size of the search frontier (exposed for the experiments
    /// that measure space usage).
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

impl Iterator for KBestPaths {
    type Item = (Vec<EdgeId>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(p) = self.frontier.pop() {
            if p.potential.0 == f64::NEG_INFINITY {
                // Everything left has probability zero.
                return None;
            }
            if p.node == self.sink {
                return Some((p.edges, p.prefix_weight));
            }
            for &eid in &self.dag.out[p.node] {
                let e = &self.dag.edges[eid];
                let w = p.prefix_weight + e.weight;
                let potential = w + self.best_suffix[e.to];
                if potential == f64::NEG_INFINITY {
                    continue;
                }
                let mut edges = p.edges.clone();
                edges.push(eid);
                self.frontier.push(Partial {
                    potential: Score::new(potential),
                    prefix_weight: w,
                    node: e.to,
                    edges,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a 2×3 grid DAG: nodes (r,c), edges right and down, plus
    /// source and sink wires; returns all path weights by brute force.
    fn diamond() -> (Dag, NodeId, NodeId) {
        // source -> a (0.9) / b (0.1); a -> sink (0.5), b -> sink (1.0)
        let mut g = Dag::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        g.add_edge(s, a, (0.9f64).ln());
        g.add_edge(s, b, (0.1f64).ln());
        g.add_edge(a, t, (0.5f64).ln());
        g.add_edge(b, t, (1.0f64).ln());
        (g, s, t)
    }

    #[test]
    fn paths_come_out_in_decreasing_weight() {
        let (g, s, t) = diamond();
        let paths: Vec<_> = KBestPaths::new(g, s, t).collect();
        assert_eq!(paths.len(), 2);
        let w: Vec<f64> = paths.iter().map(|(_, w)| w.exp()).collect();
        assert!((w[0] - 0.45).abs() < 1e-12);
        assert!((w[1] - 0.10).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_paths_are_skipped() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1, f64::NEG_INFINITY);
        g.add_edge(1, 2, 0.0);
        g.add_edge(0, 2, (0.3f64).ln());
        let paths: Vec<_> = KBestPaths::new(g, 0, 2).collect();
        assert_eq!(paths.len(), 1);
        assert!((paths[0].1.exp() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn disconnected_sink_yields_nothing() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1, 0.0);
        assert_eq!(KBestPaths::new(g, 0, 2).count(), 0);
    }

    #[test]
    fn source_equals_sink_gives_empty_path() {
        let g = Dag::new(1);
        let paths: Vec<_> = KBestPaths::new(g, 0, 0).collect();
        assert_eq!(paths, vec![(vec![], 0.0)]);
    }

    #[test]
    #[should_panic(expected = "requires a DAG")]
    fn cycles_are_detected() {
        let mut g = Dag::new(2);
        g.add_edge(0, 1, 0.0);
        g.add_edge(1, 0, 0.0);
        let _ = KBestPaths::new(g, 0, 1);
    }

    /// Layered random DAG: compare against brute-force enumeration.
    #[test]
    fn matches_brute_force_on_layered_graph() {
        use rand::{rngs::StdRng, Rng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1234);
        let layers = 5usize;
        let width = 3usize;
        // Node layout: 0 = source; 1..=layers*width; last = sink.
        let n = 2 + layers * width;
        let sink = n - 1;
        let mut g = Dag::new(n);
        let node = |l: usize, i: usize| 1 + l * width + i;
        for i in 0..width {
            g.add_edge(0, node(0, i), ln_rand(&mut rng));
        }
        for l in 0..layers - 1 {
            for i in 0..width {
                for j in 0..width {
                    if rng.random_bool(0.7) {
                        g.add_edge(node(l, i), node(l + 1, j), ln_rand(&mut rng));
                    }
                }
            }
        }
        for i in 0..width {
            g.add_edge(node(layers - 1, i), sink, ln_rand(&mut rng));
        }

        // Brute force: DFS collecting all paths with weights.
        fn dfs(g: &Dag, v: NodeId, sink: NodeId, w: f64, acc: &mut Vec<f64>) {
            if v == sink {
                acc.push(w);
                return;
            }
            for &eid in &g.out[v] {
                let e = &g.edges[eid];
                if e.weight > f64::NEG_INFINITY {
                    dfs(g, e.to, sink, w + e.weight, acc);
                }
            }
        }
        let mut brute = Vec::new();
        dfs(&g, 0, sink, 0.0, &mut brute);
        brute.sort_by(|a, b| b.partial_cmp(a).unwrap());

        let got: Vec<f64> = KBestPaths::new(g.clone(), 0, sink)
            .map(|(_, w)| w)
            .collect();
        assert_eq!(got.len(), brute.len());
        for (a, b) in got.iter().zip(brute.iter()) {
            assert!((a - b).abs() < 1e-9, "weights diverge: {a} vs {b}");
        }
        // Order must be non-increasing.
        for w in got.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }

        fn ln_rand<R: Rng>(rng: &mut R) -> f64 {
            let p: f64 = rng.random_range(0.05..1.0);
            p.ln()
        }
    }

    #[test]
    fn edge_accessors_work() {
        let (g, _, _) = diamond();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.endpoints(0), (0, 1));
        assert!((g.weight(0) - (0.9f64).ln()).abs() < 1e-15);
    }
}
