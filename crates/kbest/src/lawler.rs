//! The Lawler–Murty ranked-enumeration procedure.
//!
//! Lawler \[38\] and Murty \[43\] reduce "enumerate all answers in decreasing
//! score" to "find the single best answer subject to a constraint": after
//! emitting the best answer of a subspace, the subspace minus that answer
//! is partitioned into disjoint constrained subspaces, the best answer of
//! each is computed, and all are pushed into a priority queue.
//!
//! The paper uses this technique twice, with its *prefix constraints* as
//! the constraint class: Theorem 4.3 (transducer answers by decreasing
//! `E_max`) and Lemma 5.10 (s-projector answers by decreasing `I_max`).
//! Both instantiate [`PartitionSpace`].
//!
//! Correctness requires the usual two properties, which implementors must
//! guarantee:
//!
//! 1. `split(c, a)` partitions `{answers of c} ∖ {a}` into *disjoint*
//!    subspaces (no duplicates, nothing lost);
//! 2. `best(c)` returns an answer of maximal score within `c`.
//!
//! Under these, the iterator yields every answer exactly once, in
//! non-increasing score, with delay `O(cost(best) · |split|)` plus heap
//! maintenance. Space grows with the number of emitted answers — exactly
//! the trade-off the paper notes for Theorem 4.3.

use std::collections::BinaryHeap;

use crate::Score;

/// A constraint-partitionable answer space with a constrained optimizer.
pub trait PartitionSpace {
    /// The answer type (e.g. an output string of a transducer).
    type Answer;
    /// A description of a subspace of answers.
    type Constraint;

    /// The unconstrained space.
    fn root(&self) -> Self::Constraint;

    /// The best `(answer, log-score)` within `constraint`, or `None` if
    /// the subspace is empty. Scores of `-∞` are treated as empty.
    fn best(&mut self, constraint: &Self::Constraint) -> Option<(Self::Answer, f64)>;

    /// Partitions `constraint ∖ {answer}` into disjoint subspaces.
    /// `answer` is the value previously returned by `best(constraint)`.
    fn split(
        &mut self,
        constraint: &Self::Constraint,
        answer: &Self::Answer,
    ) -> Vec<Self::Constraint>;
}

struct Entry<S: PartitionSpace> {
    score: Score,
    answer: S::Answer,
    constraint: S::Constraint,
}

impl<S: PartitionSpace> PartialEq for Entry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl<S: PartitionSpace> Eq for Entry<S> {}
impl<S: PartitionSpace> PartialOrd for Entry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S: PartitionSpace> Ord for Entry<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score.cmp(&other.score)
    }
}

/// Iterator produced by the Lawler–Murty procedure: yields
/// `(answer, log-score)` in non-increasing score.
pub struct LawlerMurty<S: PartitionSpace> {
    space: S,
    frontier: BinaryHeap<Entry<S>>,
}

impl<S: PartitionSpace> LawlerMurty<S> {
    /// Starts enumeration over the whole space.
    pub fn new(mut space: S) -> Self {
        let mut frontier = BinaryHeap::new();
        let root = space.root();
        if let Some((answer, score)) = space.best(&root) {
            if score > f64::NEG_INFINITY {
                frontier.push(Entry {
                    score: Score::new(score),
                    answer,
                    constraint: root,
                });
            }
        }
        Self { space, frontier }
    }

    /// Current frontier size (for space-usage experiments).
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

impl<S: PartitionSpace> Iterator for LawlerMurty<S> {
    type Item = (S::Answer, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let Entry {
            score,
            answer,
            constraint,
        } = self.frontier.pop()?;
        for sub in self.space.split(&constraint, &answer) {
            if let Some((a, s)) = self.space.best(&sub) {
                if s > f64::NEG_INFINITY {
                    self.frontier.push(Entry {
                        score: Score::new(s),
                        answer: a,
                        constraint: sub,
                    });
                }
            }
        }
        Some((answer, score.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy space: answers are the integers `0..n` with given scores;
    /// constraints are index ranges; `best` scans, `split` removes the
    /// argmax by splitting the range around it.
    struct RangeSpace {
        scores: Vec<f64>,
        best_calls: usize,
    }

    impl PartitionSpace for RangeSpace {
        type Answer = usize;
        type Constraint = (usize, usize); // half-open range

        fn root(&self) -> (usize, usize) {
            (0, self.scores.len())
        }

        fn best(&mut self, &(lo, hi): &(usize, usize)) -> Option<(usize, f64)> {
            self.best_calls += 1;
            (lo..hi)
                .map(|i| (i, self.scores[i]))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        }

        fn split(&mut self, &(lo, hi): &(usize, usize), &a: &usize) -> Vec<(usize, usize)> {
            let mut out = Vec::new();
            if lo < a {
                out.push((lo, a));
            }
            if a + 1 < hi {
                out.push((a + 1, hi));
            }
            out
        }
    }

    #[test]
    fn enumerates_in_decreasing_score_without_duplicates() {
        let scores = vec![0.3, -1.0, 2.5, 2.5, 0.0, -3.5, 1.0];
        let it = LawlerMurty::new(RangeSpace {
            scores: scores.clone(),
            best_calls: 0,
        });
        let got: Vec<(usize, f64)> = it.collect();
        assert_eq!(got.len(), scores.len());
        // Non-increasing scores.
        for w in got.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Every answer exactly once.
        let mut ids: Vec<usize> = got.iter().map(|(i, _)| *i).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..scores.len()).collect::<Vec<_>>());
        // Scores match.
        for (i, s) in &got {
            assert_eq!(*s, scores[*i]);
        }
    }

    #[test]
    fn neg_infinity_answers_are_suppressed() {
        let scores = vec![f64::NEG_INFINITY, 1.0, f64::NEG_INFINITY];
        let got: Vec<_> = LawlerMurty::new(RangeSpace {
            scores,
            best_calls: 0,
        })
        .collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 1);
    }

    #[test]
    fn empty_space_yields_nothing() {
        let got: Vec<_> = LawlerMurty::new(RangeSpace {
            scores: vec![],
            best_calls: 0,
        })
        .collect();
        assert!(got.is_empty());
    }

    #[test]
    fn top_k_early_stop_is_cheap() {
        // Taking k answers must not call `best` more than O(k · splits).
        let scores: Vec<f64> = (0..1000).map(|i| -(i as f64)).collect();
        let mut it = LawlerMurty::new(RangeSpace {
            scores,
            best_calls: 0,
        });
        for _ in 0..5 {
            it.next();
        }
        assert!(
            it.space.best_calls <= 1 + 5 * 2,
            "best called {} times",
            it.space.best_calls
        );
    }
}
