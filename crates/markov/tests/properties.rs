// Index loops keep the (position, symbol) indexing visible in the checks.
#![allow(clippy::needless_range_loop)]
//! Property-based tests for the Markov-sequence data model and its
//! statistical front-ends.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use transmark_automata::{Alphabet, SymbolId};
use transmark_markov::factors::chain_from_factors;
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::numeric::approx_eq;
use transmark_markov::support::{support, support_size};
use transmark_markov::{Hmm, KOrderMarkovSequence};

fn all_strings(k: usize, n: usize) -> Vec<Vec<SymbolId>> {
    let mut out: Vec<Vec<SymbolId>> = vec![vec![]];
    for _ in 0..n {
        out = out
            .into_iter()
            .flat_map(|s| {
                (0..k).map(move |c| {
                    let mut t = s.clone();
                    t.push(SymbolId(c as u32));
                    t
                })
            })
            .collect();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. (1) defines a probability distribution: the support sums to 1,
    /// and the most likely string is the support's argmax.
    #[test]
    fn support_is_a_distribution(seed in any::<u64>(), n in 1usize..5, k in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_markov_sequence(
            &RandomChainSpec { len: n, n_symbols: k, zero_prob: 0.3 },
            &mut rng,
        );
        let sup = support(&m);
        prop_assert_eq!(sup.len(), support_size(&m));
        let total: f64 = sup.iter().map(|(_, p)| p).sum();
        prop_assert!(approx_eq(total, 1.0, 1e-9, 0.0), "total {}", total);

        let (viterbi, p_viterbi) = m.most_likely_string();
        let best = sup.iter().map(|(_, p)| *p).fold(0.0, f64::max);
        prop_assert!(approx_eq(p_viterbi, best, 1e-12, 1e-9));
        prop_assert!(approx_eq(
            m.string_probability(&viterbi).unwrap(), best, 1e-12, 1e-9
        ));
    }

    /// Marginals from the forward pass equal marginals from the support.
    #[test]
    fn marginals_match_support(seed in any::<u64>(), n in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_markov_sequence(
            &RandomChainSpec { len: n, n_symbols: 3, zero_prob: 0.3 },
            &mut rng,
        );
        let marg = m.marginals();
        for pos in 0..n {
            for sym in 0..3 {
                let direct: f64 = support(&m)
                    .iter()
                    .filter(|(s, _)| s[pos] == SymbolId(sym as u32))
                    .map(|(_, p)| p)
                    .sum();
                prop_assert!(
                    approx_eq(marg[pos][sym], direct, 1e-10, 1e-8),
                    "pos {} sym {}: {} vs {}", pos, sym, marg[pos][sym], direct
                );
            }
        }
    }

    /// The factor-chain translation reproduces the Gibbs distribution for
    /// arbitrary nonnegative factors.
    #[test]
    fn factor_chain_matches_gibbs(
        phi in proptest::collection::vec(0.0f64..2.0, 2),
        f1 in proptest::collection::vec(0.0f64..2.0, 4),
        f2 in proptest::collection::vec(0.0f64..2.0, 4),
    ) {
        let alphabet = Alphabet::of_chars("ab");
        let gibbs = |s: &[SymbolId]| -> f64 {
            phi[s[0].index()]
                * f1[s[0].index() * 2 + s[1].index()]
                * f2[s[1].index() * 2 + s[2].index()]
        };
        let z: f64 = all_strings(2, 3).iter().map(|s| gibbs(s)).sum();
        match chain_from_factors(alphabet, &phi, &[f1.clone(), f2.clone()]) {
            Ok(m) => {
                prop_assert!(z > 0.0, "zero mass should have errored");
                for s in all_strings(2, 3) {
                    let want = gibbs(&s) / z;
                    let got = m.string_probability(&s).unwrap();
                    prop_assert!(
                        approx_eq(got, want, 1e-10, 1e-8),
                        "string {:?}: {} vs {}", s, got, want
                    );
                }
            }
            Err(_) => prop_assert!(approx_eq(z, 0.0, 1e-12, 0.0), "mass {} but errored", z),
        }
    }

    /// HMM posterior: a genuine distribution whose probabilities match
    /// Bayes' rule on every hidden string.
    #[test]
    fn hmm_posterior_is_bayes(seed in any::<u64>(), obs_bits in 0u8..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let dirichlet = |rng: &mut StdRng, k: usize| -> Vec<f64> {
            let raw: Vec<f64> = (0..k).map(|_| rng.random::<f64>() + 0.05).collect();
            let s: f64 = raw.iter().sum();
            raw.into_iter().map(|v| v / s).collect()
        };
        let hidden = Alphabet::of_chars("xy");
        let observed = Alphabet::of_chars("01");
        let initial = dirichlet(&mut rng, 2);
        let mut transition = dirichlet(&mut rng, 2);
        transition.extend(dirichlet(&mut rng, 2));
        let mut emission = dirichlet(&mut rng, 2);
        emission.extend(dirichlet(&mut rng, 2));
        let hmm = Hmm::new(hidden, observed, initial, transition, emission).unwrap();

        let obs: Vec<SymbolId> =
            (0..3).map(|i| SymbolId(u32::from(obs_bits >> i & 1))).collect();
        let joint = |h: &[SymbolId]| -> f64 {
            let mut p = hmm.initial_prob(h[0]) * hmm.emission_prob(h[0], obs[0]);
            for i in 1..3 {
                p *= hmm.transition_prob(h[i - 1], h[i]) * hmm.emission_prob(h[i], obs[i]);
            }
            p
        };
        let z: f64 = all_strings(2, 3).iter().map(|h| joint(h)).sum();
        let m = hmm.posterior(&obs).unwrap();
        for h in all_strings(2, 3) {
            let want = joint(&h) / z;
            let got = m.string_probability(&h).unwrap();
            prop_assert!(approx_eq(got, want, 1e-10, 1e-8), "{:?}: {} vs {}", h, got, want);
        }
        // Likelihoods agree too.
        prop_assert!(approx_eq(hmm.log_likelihood(&obs).unwrap().exp(), z, 1e-10, 1e-8));
    }

    /// k-order reduction is probability-preserving and decodes correctly.
    #[test]
    fn korder_reduction_round_trips(
        seed in any::<u64>(),
        k in 1usize..3,
        extra in 0usize..3,
    ) {
        let n = k + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let sigma = 2usize;
        let n_ctx = sigma.pow(k as u32);
        let dirichlet = |rng: &mut StdRng, k: usize| -> Vec<f64> {
            let raw: Vec<f64> = (0..k).map(|_| rng.random::<f64>() + 0.05).collect();
            let s: f64 = raw.iter().sum();
            raw.into_iter().map(|v| v / s).collect()
        };
        let initial = dirichlet(&mut rng, n_ctx);
        let transitions: Vec<Vec<f64>> = (0..n - k)
            .map(|_| {
                let mut t = Vec::new();
                for _ in 0..n_ctx {
                    t.extend(dirichlet(&mut rng, sigma));
                }
                t
            })
            .collect();
        let alphabet = Alphabet::of_chars("ab");
        let korder =
            KOrderMarkovSequence::new(alphabet, k, n, initial, transitions).unwrap();
        let (chain, enc) = korder.to_first_order();
        for s in all_strings(sigma, n) {
            let w = enc.encode(&s).unwrap();
            prop_assert!(approx_eq(
                korder.string_probability(&s).unwrap(),
                chain.string_probability(&w).unwrap(),
                1e-12,
                1e-10
            ));
            prop_assert_eq!(enc.decode(&w).unwrap(), s);
        }
    }

    /// Sampled strings are always in the support.
    #[test]
    fn samples_lie_in_the_support(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_markov_sequence(
            &RandomChainSpec { len: 6, n_symbols: 3, zero_prob: 0.5 },
            &mut rng,
        );
        for _ in 0..50 {
            let s = m.sample(&mut rng);
            prop_assert!(m.is_possible(&s).unwrap());
        }
    }
}

mod seqops_props {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
    use transmark_markov::seqops::{condition, evidence_probability, reverse, window, Evidence};
    use transmark_markov::support::support;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Windows are exact marginals of the original chain.
        #[test]
        fn window_is_the_marginal(seed in any::<u64>(), n in 2usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = random_markov_sequence(
                &RandomChainSpec { len: n, n_symbols: 2, zero_prob: 0.25 },
                &mut rng,
            );
            let start = rng.random_range(0..n);
            let len = rng.random_range(1..=n - start);
            let w = window(&m, start, len).unwrap();
            for (sub, pw) in support(&w) {
                let direct: f64 = support(&m)
                    .iter()
                    .filter(|(s, _)| s[start..start + len] == sub[..])
                    .map(|(_, p)| p)
                    .sum();
                prop_assert!(approx_eq(pw, direct, 1e-10, 1e-8), "{:?}", sub);
            }
        }

        /// Hard conditioning is Bayes' rule; evidence probability is the
        /// normalizer.
        #[test]
        fn conditioning_is_bayes(seed in any::<u64>(), n in 1usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = random_markov_sequence(
                &RandomChainSpec { len: n, n_symbols: 2, zero_prob: 0.25 },
                &mut rng,
            );
            let pos = rng.random_range(0..n);
            let node = SymbolId(rng.random_range(0..2u32));
            let ev = [(pos, Evidence::Exactly(node))];
            let z: f64 = support(&m)
                .iter()
                .filter(|(s, _)| s[pos] == node)
                .map(|(_, p)| p)
                .sum();
            match condition(&m, &ev) {
                Ok(cond) => {
                    prop_assert!(z > 0.0);
                    for (s, p) in support(&m) {
                        let want = if s[pos] == node { p / z } else { 0.0 };
                        prop_assert!(approx_eq(
                            cond.string_probability(&s).unwrap(), want, 1e-10, 1e-8
                        ));
                    }
                }
                Err(_) => prop_assert!(approx_eq(z, 0.0, 1e-12, 0.0)),
            }
            prop_assert!(approx_eq(evidence_probability(&m, &ev).unwrap(), z, 1e-10, 1e-8));
        }

        /// Reversal preserves string probabilities and is an involution in
        /// distribution.
        #[test]
        fn reversal_preserves_distribution(seed in any::<u64>(), n in 1usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = random_markov_sequence(
                &RandomChainSpec { len: n, n_symbols: 3, zero_prob: 0.3 },
                &mut rng,
            );
            let r = reverse(&m);
            for (s, p) in support(&m) {
                let rev: Vec<_> = s.iter().rev().copied().collect();
                prop_assert!(approx_eq(r.string_probability(&rev).unwrap(), p, 1e-9, 1e-7));
            }
            let rr = reverse(&r);
            for (s, p) in support(&m) {
                prop_assert!(approx_eq(rr.string_probability(&s).unwrap(), p, 1e-9, 1e-7));
            }
        }
    }
}
