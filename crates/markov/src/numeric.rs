//! Numeric helpers: compensated summation and tolerant comparison.
//!
//! Confidence computation sums huge numbers of tiny path probabilities;
//! the engine's DPs use Neumaier (improved Kahan) accumulation so that the
//! brute-force oracles and the dynamic programs agree to tight tolerances
//! in tests. The accumulator itself lives in `transmark-kernel` (the
//! bottom of the workspace dependency graph) so every crate folds floats
//! through the exact same operation sequence; `KahanSum` is its historical
//! name here.

pub use transmark_kernel::Neumaier as KahanSum;

/// Compensated sum of a slice.
pub fn kahan_sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<KahanSum>().total()
}

/// Whether `a` and `b` are equal within absolute tolerance `abs` or
/// relative tolerance `rel` (whichever is looser).
pub fn approx_eq(a: f64, b: f64, abs: f64, rel: f64) -> bool {
    let diff = (a - b).abs();
    diff <= abs || diff <= rel * a.abs().max(b.abs())
}

/// Default tolerance used when validating that distributions sum to 1.
pub const DIST_TOLERANCE: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_adversarial_input() {
        // 1 followed by many values that individually vanish against it.
        let mut values = vec![1.0f64];
        values.extend(std::iter::repeat_n(1e-16, 10_000));
        let naive: f64 = values.iter().sum();
        let kahan = kahan_sum(&values);
        let exact = 1.0 + 1e-16 * 10_000.0;
        assert!((kahan - exact).abs() < (naive - exact).abs() || naive == exact);
        assert!(approx_eq(kahan, exact, 1e-15, 1e-15));
    }

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(approx_eq(1e12, 1e12 + 1.0, 0.0, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9, 1e-9));
        assert!(approx_eq(0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn from_iterator_matches_manual() {
        let xs = [0.1, 0.2, 0.3, 0.4];
        let k: KahanSum = xs.iter().copied().collect();
        assert!(approx_eq(k.total(), 1.0, 1e-15, 0.0));
    }
}
