//! Error type for Markov-sequence construction and translation.

use std::fmt;

/// Errors produced while building or transforming Markov sequences.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// A distribution row does not sum to 1 (within tolerance).
    NotADistribution {
        /// Which object: "initial" or "transition".
        what: &'static str,
        /// Transition-step index (0 for the initial distribution).
        position: usize,
        /// Source node index (0 for the initial distribution).
        row: usize,
        /// The offending sum.
        sum: f64,
    },
    /// A probability was negative, NaN, or infinite.
    InvalidProbability {
        /// Which object: "initial", "transition", "factor", ….
        what: &'static str,
        /// Position index of the offending entry.
        position: usize,
        /// The offending value.
        value: f64,
    },
    /// The sequence length is zero (the paper's `μ[n]` has `n ≥ 1`).
    EmptySequence,
    /// Alphabet sizes disagree between combined objects.
    AlphabetMismatch {
        /// Alphabet size on the left/first object.
        left: usize,
        /// Alphabet size on the right/second object.
        right: usize,
    },
    /// A string had the wrong length for this sequence.
    LengthMismatch {
        /// The required length.
        expected: usize,
        /// The length that was supplied.
        actual: usize,
    },
    /// The observation sequence refers to an unknown observation symbol,
    /// or is impossible under the HMM (zero likelihood).
    ImpossibleEvidence,
    /// A k-order sequence was requested with an unsupported shape.
    InvalidOrder {
        /// The requested order `k`.
        order: usize,
        /// The sequence length `n`.
        length: usize,
    },
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::NotADistribution {
                what,
                position,
                row,
                sum,
            } => write!(
                f,
                "{what} distribution at position {position}, row {row} sums to {sum} (expected 1)"
            ),
            MarkovError::InvalidProbability {
                what,
                position,
                value,
            } => {
                write!(
                    f,
                    "invalid probability {value} in {what} at position {position}"
                )
            }
            MarkovError::EmptySequence => write!(f, "a Markov sequence must have length ≥ 1"),
            MarkovError::AlphabetMismatch { left, right } => {
                write!(f, "alphabet size mismatch: {left} vs {right}")
            }
            MarkovError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "string length {actual} does not match sequence length {expected}"
                )
            }
            MarkovError::ImpossibleEvidence => {
                write!(
                    f,
                    "the observation sequence has zero likelihood under the model"
                )
            }
            MarkovError::InvalidOrder { order, length } => {
                write!(f, "invalid k-order shape: order {order}, length {length}")
            }
        }
    }
}

impl std::error::Error for MarkovError {}
