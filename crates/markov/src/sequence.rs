//! The core [`MarkovSequence`] model and its builder.

use std::fmt;
use std::sync::Arc;

use rand::{Rng, RngExt};
use transmark_automata::{Alphabet, SymbolId};

use crate::error::MarkovError;
use crate::numeric::{approx_eq, KahanSum, DIST_TOLERANCE};

/// A Markov sequence `μ[n]` over state nodes `Σ` (§3.1 of the paper).
///
/// * `initial[s]` is `μ₀→(s)`.
/// * `transition(i)` (for `0 ≤ i < n-1`) is the matrix coupling positions
///   `i` and `i+1` (the paper's `μ_{i+1→}`, shifted to 0-based), stored
///   row-major: entry `from * |Σ| + to`.
///
/// The structure is immutable after construction and validated: every row
/// of every transition matrix and the initial vector sum to 1 within
/// [`DIST_TOLERANCE`]. The alphabet is shared via `Arc` so that slicing
/// and the workload generators stay cheap.
#[derive(Clone)]
pub struct MarkovSequence {
    alphabet: Arc<Alphabet>,
    n: usize,
    initial: Vec<f64>,
    /// The `n - 1` row-major `|Σ|×|Σ|` matrices, back to back in one
    /// contiguous buffer with stride `|Σ|²` (SoA layout). Step `i`'s
    /// matrix is `transitions[i·|Σ|² .. (i+1)·|Σ|²]`.
    transitions: Vec<f64>,
    /// Count of strictly positive entries in `transitions`, tallied once
    /// at construction (piggybacking the validation pass); the planner's
    /// execution-strategy choice reads the derived [`Self::density`]
    /// instead of rescanning `n·|Σ|²` floats per bind.
    nnz: usize,
}

/// Strictly positive transition entries in a flat layer buffer.
fn count_nnz(transitions: &[f64]) -> usize {
    transitions.iter().filter(|&&p| p > 0.0).count()
}

impl fmt::Debug for MarkovSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MarkovSequence")
            .field("n", &self.n)
            .field("n_symbols", &self.alphabet.len())
            .finish_non_exhaustive()
    }
}

impl MarkovSequence {
    /// The sequence length `n` (number of random variables `S₁…Sₙ`).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `n ≥ 1` always holds, so this is always `false`; provided for
    /// clippy-idiomatic call sites.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shared node alphabet `Σ_μ`.
    #[inline]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The shared alphabet handle.
    pub fn alphabet_arc(&self) -> Arc<Alphabet> {
        Arc::clone(&self.alphabet)
    }

    /// A borrow of the shared alphabet handle (no refcount traffic).
    #[inline]
    pub fn alphabet_ref(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Alphabet size `|Σ_μ|`.
    #[inline]
    pub fn n_symbols(&self) -> usize {
        self.alphabet.len()
    }

    /// `μ₀→(s)`.
    #[inline]
    pub fn initial_prob(&self, s: SymbolId) -> f64 {
        self.initial[s.index()]
    }

    /// The initial distribution as a slice.
    #[inline]
    pub fn initial_dist(&self) -> &[f64] {
        &self.initial
    }

    /// `μ_{i+1→}(from, to)` — the probability of moving from node `from`
    /// at position `i` to node `to` at position `i+1` (0-based positions,
    /// `0 ≤ i < n-1`).
    #[inline]
    pub fn transition_prob(&self, i: usize, from: SymbolId, to: SymbolId) -> f64 {
        let k = self.alphabet.len();
        self.transitions[i * k * k + from.index() * k + to.index()]
    }

    /// The row `μ_{i+1→}(from, ·)` as a slice.
    #[inline]
    pub fn transition_row(&self, i: usize, from: SymbolId) -> &[f64] {
        let k = self.alphabet.len();
        let base = i * k * k + from.index() * k;
        &self.transitions[base..base + k]
    }

    /// The whole step-`i` matrix as a row-major `|Σ|²` slice.
    #[inline]
    pub fn transition_matrix(&self, i: usize) -> &[f64] {
        let kk = self.alphabet.len() * self.alphabet.len();
        &self.transitions[i * kk..(i + 1) * kk]
    }

    /// All `n−1` transition matrices, back to back (stride `|Σ|²`) — the
    /// contiguous buffer backing the sequence. Binary writers and the
    /// window slicer read this directly.
    #[inline]
    pub fn transitions_flat(&self) -> &[f64] {
        &self.transitions
    }

    /// Count of strictly positive transition entries across all `n−1`
    /// matrices, tallied once at construction.
    #[inline]
    pub fn transition_nnz(&self) -> usize {
        self.nnz
    }

    /// Fraction of transition entries that are strictly positive, in
    /// `[0, 1]`. The planner's execution-strategy heuristic compares this
    /// against its dense threshold at bind time. A length-1 sequence has
    /// no transitions and reports `1.0` (trivially dense).
    #[inline]
    pub fn density(&self) -> f64 {
        if self.transitions.is_empty() {
            1.0
        } else {
            self.nnz as f64 / self.transitions.len() as f64
        }
    }

    /// The dense execution view over this sequence's contiguous layer
    /// buffer: no CSR build, just the nonzero initial entries plus a
    /// borrow of [`MarkovSequence::transitions_flat`]. O(|Σ|) to
    /// construct — the whole point of the dense strategy for tiny binds.
    pub fn dense_steps(&self) -> transmark_kernel::DenseSteps<'_> {
        transmark_kernel::DenseSteps::new(self.alphabet.len(), &self.initial, &self.transitions)
    }

    /// The nonzero entries of the row `μ_{i+1→}(from, ·)`, in ascending
    /// target order. The sparse counterpart of
    /// [`MarkovSequence::transition_row`]: scans that skip zero-probability
    /// targets should iterate this instead of testing each dense entry.
    #[inline]
    pub fn transitions_from(
        &self,
        i: usize,
        from: SymbolId,
    ) -> impl Iterator<Item = (SymbolId, f64)> + '_ {
        self.transition_row(i, from)
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0.0)
            .map(|(to, &p)| (SymbolId(to as u32), p))
    }

    /// Flattens the chain into the kernel's CSR form: one sparse row per
    /// `(step, node)` with zero-probability transitions dropped at build
    /// time. Built once per query and fed to the `transmark_kernel::dp`
    /// drivers; rows keep ascending target order, so DPs that previously
    /// scanned dense rows (skipping zeros inline) accumulate in the exact
    /// same sequence.
    pub fn sparse_steps(&self) -> transmark_kernel::SparseSteps {
        let t = transmark_obs::Timer::start();
        let k = self.alphabet.len();
        let mut b = transmark_kernel::SparseSteps::builder(k, self.n - 1);
        b.reserve((self.n - 1) * k * k);
        for (s, &p) in self.initial.iter().enumerate() {
            if p > 0.0 {
                b.push_initial(s as u32, p);
            }
        }
        for m in self.transitions.chunks_exact(k * k) {
            for from in 0..k {
                for (to, &p) in m[from * k..(from + 1) * k].iter().enumerate() {
                    if p > 0.0 {
                        b.push_transition(to as u32, p);
                    }
                }
                b.finish_row();
            }
        }
        let steps = b.build();
        t.observe(transmark_obs::histogram!("kernel.csr.build_ns"));
        steps
    }

    /// A rewindable [`crate::source::StepSource`] cursor over this
    /// in-memory sequence — the reference implementation the streamed
    /// readers are pinned bit-identical against.
    pub fn step_source(&self) -> crate::source::SequenceSource<'_> {
        crate::source::SequenceSource::new(self)
    }

    /// Eq. (1): the probability `p(s)` of a full string `s ∈ Σⁿ`.
    pub fn string_probability(&self, s: &[SymbolId]) -> Result<f64, MarkovError> {
        if s.len() != self.n {
            return Err(MarkovError::LengthMismatch {
                expected: self.n,
                actual: s.len(),
            });
        }
        let mut p = self.initial_prob(s[0]);
        for i in 0..self.n - 1 {
            if p == 0.0 {
                return Ok(0.0);
            }
            p *= self.transition_prob(i, s[i], s[i + 1]);
        }
        Ok(p)
    }

    /// `ln p(s)`, `-∞` for impossible strings.
    pub fn log_string_probability(&self, s: &[SymbolId]) -> Result<f64, MarkovError> {
        Ok(self.string_probability(s)?.ln())
    }

    /// Whether `p(s) > 0`.
    pub fn is_possible(&self, s: &[SymbolId]) -> Result<bool, MarkovError> {
        Ok(self.string_probability(s)? > 0.0)
    }

    /// Samples one string from the distribution. Transition rows are
    /// walked through [`MarkovSequence::transitions_from`], so zero
    /// entries cost nothing; they also absorb none of the uniform draw,
    /// so the sampled strings are identical to a dense walk.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<SymbolId> {
        let mut out = Vec::with_capacity(self.n);
        let first = sample_index(&self.initial, rng);
        out.push(SymbolId(first as u32));
        for i in 0..self.n - 1 {
            let from = *out.last().expect("nonempty");
            let mut u: f64 = rng.random();
            let mut chosen = None;
            let mut last = None;
            for (to, p) in self.transitions_from(i, from) {
                last = Some(to);
                if u < p {
                    chosen = Some(to);
                    break;
                }
                u -= p;
            }
            // Rounding can leave `u` past the end: take the last positive
            // entry, as the dense walk did.
            out.push(chosen.or(last).expect("distribution has positive mass"));
        }
        out
    }

    /// The marginal distributions `Pr(Sᵢ = s)` for every position, via a
    /// forward pass (the chain is already normalized, so no backward pass
    /// is needed).
    pub fn marginals(&self) -> Vec<Vec<f64>> {
        let k = self.alphabet.len();
        let mut out = Vec::with_capacity(self.n);
        out.push(self.initial.clone());
        for i in 0..self.n - 1 {
            let prev = &out[i];
            let mut next = vec![KahanSum::new(); k];
            for (from, &pf) in prev.iter().enumerate() {
                if pf == 0.0 {
                    continue;
                }
                for (to, pt) in self.transitions_from(i, SymbolId(from as u32)) {
                    next[to.index()].add(pf * pt);
                }
            }
            out.push(next.into_iter().map(|a| a.total()).collect());
        }
        out
    }

    /// The most likely string and its probability (Viterbi over the
    /// chain). Useful as a baseline and for tests.
    pub fn most_likely_string(&self) -> (Vec<SymbolId>, f64) {
        let k = self.alphabet.len();
        // Work in log space; track back-pointers.
        let mut score: Vec<f64> = self.initial.iter().map(|p| p.ln()).collect();
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(self.n.saturating_sub(1));
        for i in 0..self.n - 1 {
            let mut next = vec![f64::NEG_INFINITY; k];
            let mut arg = vec![0usize; k];
            for from in 0..k {
                if score[from] == f64::NEG_INFINITY {
                    continue;
                }
                let row = self.transition_row(i, SymbolId(from as u32));
                for (to, &p) in row.iter().enumerate() {
                    if p > 0.0 {
                        let cand = score[from] + p.ln();
                        if cand > next[to] {
                            next[to] = cand;
                            arg[to] = from;
                        }
                    }
                }
            }
            score = next;
            back.push(arg);
        }
        let (mut best, mut best_score) = (0usize, f64::NEG_INFINITY);
        for (s, &v) in score.iter().enumerate() {
            if v > best_score {
                best_score = v;
                best = s;
            }
        }
        let mut path = vec![best];
        for arg in back.iter().rev() {
            path.push(arg[*path.last().expect("nonempty")]);
        }
        path.reverse();
        (
            path.into_iter().map(|i| SymbolId(i as u32)).collect(),
            best_score.exp(),
        )
    }

    /// Concatenates `self` with `other` (which must share the alphabet),
    /// gluing them with the transition matrix `glue` (row-major `|Σ|²`).
    /// Used by the hardness-gadget amplification of Theorems 4.4/4.5
    /// ("concatenating a polynomial number of copies of the given Markov
    /// sequence").
    pub fn concat(
        &self,
        glue: &[f64],
        other: &MarkovSequence,
    ) -> Result<MarkovSequence, MarkovError> {
        let k = self.alphabet.len();
        if other.alphabet.len() != k {
            return Err(MarkovError::AlphabetMismatch {
                left: k,
                right: other.alphabet.len(),
            });
        }
        if glue.len() != k * k {
            return Err(MarkovError::LengthMismatch {
                expected: k * k,
                actual: glue.len(),
            });
        }
        validate_matrix(glue, k, "transition", self.n - 1)?;
        // The glued chain ignores `other`'s initial distribution: positions
        // after the glue step follow `glue` then `other`'s transitions.
        let mut transitions = self.transitions.clone();
        transitions.extend_from_slice(glue);
        transitions.extend_from_slice(&other.transitions);
        let nnz = self.nnz + count_nnz(glue) + other.nnz;
        Ok(MarkovSequence {
            alphabet: Arc::clone(&self.alphabet),
            n: self.n + other.n,
            initial: self.initial.clone(),
            transitions,
            nnz,
        })
    }
}

/// Samples an index from an unnormalized-but-valid distribution slice.
fn sample_index<R: Rng + ?Sized>(dist: &[f64], rng: &mut R) -> usize {
    let mut u: f64 = rng.random();
    for (i, &p) in dist.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    // Rounding left us past the end: return the last positive entry.
    dist.iter()
        .rposition(|&p| p > 0.0)
        .expect("distribution has positive mass")
}

pub(crate) fn validate_vector(
    v: &[f64],
    what: &'static str,
    position: usize,
) -> Result<(), MarkovError> {
    let mut sum = KahanSum::new();
    for &p in v {
        if !p.is_finite() || p < 0.0 {
            return Err(MarkovError::InvalidProbability {
                what,
                position,
                value: p,
            });
        }
        sum.add(p);
    }
    let total = sum.total();
    if !approx_eq(total, 1.0, DIST_TOLERANCE, DIST_TOLERANCE) {
        return Err(MarkovError::NotADistribution {
            what,
            position,
            row: 0,
            sum: total,
        });
    }
    Ok(())
}

pub(crate) fn validate_matrix(
    m: &[f64],
    k: usize,
    what: &'static str,
    position: usize,
) -> Result<(), MarkovError> {
    for row in 0..k {
        let slice = &m[row * k..(row + 1) * k];
        let mut sum = KahanSum::new();
        for &p in slice {
            if !p.is_finite() || p < 0.0 {
                return Err(MarkovError::InvalidProbability {
                    what,
                    position,
                    value: p,
                });
            }
            sum.add(p);
        }
        let total = sum.total();
        if !approx_eq(total, 1.0, DIST_TOLERANCE, DIST_TOLERANCE) {
            return Err(MarkovError::NotADistribution {
                what,
                position,
                row,
                sum: total,
            });
        }
    }
    Ok(())
}

impl MarkovSequence {
    /// A time-homogeneous chain: one transition matrix used at every step
    /// (the common special case — stationary dynamics observed for `n`
    /// steps). `matrix` is row-major `|Σ|²`; validated like any chain.
    pub fn homogeneous(
        alphabet: impl Into<Arc<Alphabet>>,
        n: usize,
        initial: &[f64],
        matrix: &[f64],
    ) -> Result<MarkovSequence, MarkovError> {
        let alphabet = alphabet.into();
        let mut b = MarkovSequenceBuilder::new(Arc::clone(&alphabet), n).initial_dist(initial);
        for i in 0..n.saturating_sub(1) {
            b = b.transition_matrix(i, matrix);
        }
        b.build()
    }
}

/// Builder for [`MarkovSequence`].
///
/// Probabilities default to 0; set the nonzero entries and call
/// [`MarkovSequenceBuilder::build`], which validates that every row is a
/// distribution. Rows can also be filled with
/// [`MarkovSequenceBuilder::uniform_row`] /
/// [`MarkovSequenceBuilder::uniform_all`].
pub struct MarkovSequenceBuilder {
    alphabet: Arc<Alphabet>,
    n: usize,
    initial: Vec<f64>,
    /// Flat stride-`|Σ|²` buffer, same layout as the built sequence.
    transitions: Vec<f64>,
}

impl MarkovSequenceBuilder {
    /// Starts building a sequence of length `n` over `alphabet`.
    pub fn new(alphabet: impl Into<Arc<Alphabet>>, n: usize) -> Self {
        let alphabet = alphabet.into();
        let k = alphabet.len();
        Self {
            n,
            initial: vec![0.0; k],
            transitions: vec![0.0; n.saturating_sub(1) * k * k],
            alphabet,
        }
    }

    /// Sets `μ₀→(s) = p`.
    pub fn initial(mut self, s: SymbolId, p: f64) -> Self {
        self.initial[s.index()] = p;
        self
    }

    /// Sets the whole initial distribution.
    pub fn initial_dist(mut self, dist: &[f64]) -> Self {
        self.initial.copy_from_slice(dist);
        self
    }

    /// Sets `μ_{i+1→}(from, to) = p` (0-based step `i`, `0 ≤ i < n-1`).
    pub fn transition(mut self, i: usize, from: SymbolId, to: SymbolId, p: f64) -> Self {
        let k = self.alphabet.len();
        self.transitions[i * k * k + from.index() * k + to.index()] = p;
        self
    }

    /// Replaces the whole step-`i` matrix (row-major `|Σ|²`).
    pub fn transition_matrix(mut self, i: usize, matrix: &[f64]) -> Self {
        let kk = self.alphabet.len() * self.alphabet.len();
        self.transitions[i * kk..(i + 1) * kk].copy_from_slice(matrix);
        self
    }

    /// Makes the step-`i` row of `from` uniform over all nodes.
    pub fn uniform_row(mut self, i: usize, from: SymbolId) -> Self {
        let k = self.alphabet.len();
        let p = 1.0 / k as f64;
        let base = i * k * k + from.index() * k;
        for to in 0..k {
            self.transitions[base + to] = p;
        }
        self
    }

    /// Makes every row of every step uniform, and the initial distribution
    /// uniform. A convenient starting point that later `transition` /
    /// `initial` calls can override (override whole rows to keep them
    /// summing to 1).
    pub fn uniform_all(mut self) -> Self {
        let k = self.alphabet.len();
        let p = 1.0 / k as f64;
        self.initial = vec![p; k];
        for v in self.transitions.iter_mut() {
            *v = p;
        }
        self
    }

    /// For rows the query can never reach (e.g. after a zero-probability
    /// node) it is still mandatory — per the paper's definition — that the
    /// row be a distribution. `fill_dead_rows_self_loop` turns every
    /// all-zero row into a deterministic self-loop.
    pub fn fill_dead_rows_self_loop(mut self) -> Self {
        let k = self.alphabet.len();
        if k == 0 {
            return self;
        }
        for (r, row) in self.transitions.chunks_exact_mut(k).enumerate() {
            if row.iter().all(|&p| p == 0.0) {
                row[r % k] = 1.0;
            }
        }
        self
    }

    /// Validates and builds.
    pub fn build(self) -> Result<MarkovSequence, MarkovError> {
        if self.n == 0 {
            return Err(MarkovError::EmptySequence);
        }
        validate_vector(&self.initial, "initial", 0)?;
        let k = self.alphabet.len();
        for (i, m) in self.transitions.chunks_exact(k * k).enumerate() {
            validate_matrix(m, k, "transition", i)?;
        }
        let nnz = count_nnz(&self.transitions);
        Ok(MarkovSequence {
            alphabet: self.alphabet,
            n: self.n,
            initial: self.initial,
            transitions: self.transitions,
            nnz,
        })
    }
}

/// Internal constructor used by the translation front-ends (`hmm`,
/// `factors`) and the binary reader, which produce already-validated rows.
/// `transitions` is the flat stride-`|Σ|²` buffer; `n` is derived from its
/// length.
pub(crate) fn from_validated_parts(
    alphabet: Arc<Alphabet>,
    initial: Vec<f64>,
    transitions: Vec<f64>,
) -> MarkovSequence {
    let kk = alphabet.len() * alphabet.len();
    debug_assert!(kk > 0, "alphabet must be nonempty");
    debug_assert_eq!(
        transitions.len() % kk,
        0,
        "flat buffer must be whole matrices"
    );
    let n = transitions.len() / kk + 1;
    let nnz = count_nnz(&transitions);
    MarkovSequence {
        alphabet,
        n,
        initial,
        transitions,
        nnz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn two_step() -> MarkovSequence {
        let alphabet = Alphabet::from_names(["x", "y"]);
        let (x, y) = (alphabet.sym("x"), alphabet.sym("y"));
        MarkovSequenceBuilder::new(alphabet, 3)
            .initial(x, 0.25)
            .initial(y, 0.75)
            .transition(0, x, x, 0.5)
            .transition(0, x, y, 0.5)
            .transition(0, y, x, 1.0)
            .transition(1, x, y, 1.0)
            .transition(1, y, y, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn eq1_string_probability() {
        let m = two_step();
        let a = m.alphabet().clone();
        let (x, y) = (a.sym("x"), a.sym("y"));
        assert_eq!(m.string_probability(&[x, x, y]).unwrap(), 0.25 * 0.5 * 1.0);
        assert_eq!(m.string_probability(&[y, x, y]).unwrap(), 0.75 * 1.0 * 1.0);
        assert_eq!(m.string_probability(&[y, y, y]).unwrap(), 0.0);
        assert!(m.is_possible(&[x, y, y]).unwrap());
        assert!(!m.is_possible(&[x, x, x]).unwrap());
    }

    #[test]
    fn wrong_length_is_an_error() {
        let m = two_step();
        let x = m.alphabet().sym("x");
        assert!(matches!(
            m.string_probability(&[x]),
            Err(MarkovError::LengthMismatch {
                expected: 3,
                actual: 1
            })
        ));
    }

    #[test]
    fn build_rejects_bad_rows() {
        let alphabet = Alphabet::from_names(["x", "y"]);
        let x = alphabet.sym("x");
        let err = MarkovSequenceBuilder::new(alphabet.clone(), 2)
            .initial(x, 1.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            MarkovError::NotADistribution {
                what: "transition",
                ..
            }
        ));

        let err2 = MarkovSequenceBuilder::new(alphabet.clone(), 1)
            .initial(x, 0.5)
            .build()
            .unwrap_err();
        assert!(matches!(
            err2,
            MarkovError::NotADistribution {
                what: "initial",
                ..
            }
        ));

        let err3 = MarkovSequenceBuilder::new(alphabet, 1)
            .initial(x, -1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err3, MarkovError::InvalidProbability { .. }));
    }

    #[test]
    fn zero_length_rejected() {
        let alphabet = Alphabet::from_names(["x"]);
        assert!(matches!(
            MarkovSequenceBuilder::new(alphabet, 0).build(),
            Err(MarkovError::EmptySequence)
        ));
    }

    #[test]
    fn fill_dead_rows_makes_build_pass() {
        let alphabet = Alphabet::from_names(["x", "y"]);
        let x = alphabet.sym("x");
        let y = alphabet.sym("y");
        let m = MarkovSequenceBuilder::new(alphabet, 2)
            .initial(x, 1.0)
            .transition(0, x, y, 1.0)
            .fill_dead_rows_self_loop()
            .build()
            .unwrap();
        assert_eq!(m.transition_prob(0, y, y), 1.0);
    }

    #[test]
    fn marginals_sum_to_one_and_match_chain() {
        let m = two_step();
        let marg = m.marginals();
        assert_eq!(marg.len(), 3);
        for dist in &marg {
            let s: f64 = dist.iter().sum();
            assert!(approx_eq(s, 1.0, 1e-12, 0.0), "sum {s}");
        }
        // Position 1: P(x) = 0.25·0.5 + 0.75·1.0
        assert!(approx_eq(marg[1][0], 0.25 * 0.5 + 0.75, 1e-12, 0.0));
        // Position 2: everything funnels to y.
        assert!(approx_eq(marg[2][1], 1.0, 1e-12, 0.0));
    }

    #[test]
    fn most_likely_string_is_argmax() {
        let m = two_step();
        let a = m.alphabet().clone();
        let (x, y) = (a.sym("x"), a.sym("y"));
        let (best, p) = m.most_likely_string();
        assert_eq!(best, vec![y, x, y]);
        assert!(approx_eq(p, 0.75, 1e-12, 0.0));
    }

    #[test]
    fn sampling_matches_distribution() {
        let m = two_step();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let mut count_yxy = 0usize;
        for _ in 0..trials {
            let s = m.sample(&mut rng);
            assert!(m.is_possible(&s).unwrap(), "sampled impossible string");
            let a = m.alphabet();
            if s == [a.sym("y"), a.sym("x"), a.sym("y")] {
                count_yxy += 1;
            }
        }
        let freq = count_yxy as f64 / trials as f64;
        assert!((freq - 0.75).abs() < 0.02, "freq {freq} far from 0.75");
    }

    #[test]
    fn sparse_views_match_dense_rows() {
        let m = two_step();
        let a = m.alphabet().clone();
        let (x, y) = (a.sym("x"), a.sym("y"));
        let got: Vec<_> = m.transitions_from(0, x).collect();
        assert_eq!(got, vec![(x, 0.5), (y, 0.5)]);
        let got: Vec<_> = m.transitions_from(1, x).collect();
        assert_eq!(got, vec![(y, 1.0)]); // the x→x zero is skipped
        let steps = m.sparse_steps();
        assert_eq!(steps.n_nodes(), 2);
        assert_eq!(steps.n_steps(), 2);
        assert_eq!(steps.initial(), &[(0, 0.25), (1, 0.75)]);
        assert_eq!(steps.row(0, 1), &[(0, 1.0)]); // y→x at step 0
        assert_eq!(steps.row(1, 1), &[(1, 1.0)]);
    }

    #[test]
    fn concat_glues_chains() {
        let m = two_step();
        let glue = vec![0.0, 1.0, 1.0, 0.0]; // x→y, y→x deterministically
        let g = m.concat(&glue, &m).unwrap();
        assert_eq!(g.len(), 6);
        let a = m.alphabet().clone();
        let (x, y) = (a.sym("x"), a.sym("y"));
        // y x y -x-> then x y y: p = 0.75 · glue(y,x) · 0.5 (x→y at step 0 of copy) · 1.0
        let p = g.string_probability(&[y, x, y, x, y, y]).unwrap();
        assert!(approx_eq(p, 0.75 * 1.0 * 0.5 * 1.0, 1e-12, 0.0));
    }

    #[test]
    fn concat_validates_glue() {
        let m = two_step();
        assert!(m.concat(&[0.5, 0.4, 1.0, 0.0], &m).is_err());
        assert!(m.concat(&[1.0, 0.0], &m).is_err());
    }
}

#[cfg(test)]
mod homogeneous_tests {
    use super::*;

    #[test]
    fn homogeneous_matches_manual_construction() {
        let a = Alphabet::of_chars("xy");
        let matrix = [0.3, 0.7, 0.6, 0.4];
        let m = MarkovSequence::homogeneous(a.clone(), 4, &[0.5, 0.5], &matrix).unwrap();
        assert_eq!(m.len(), 4);
        for i in 0..3 {
            assert_eq!(m.transition_prob(i, SymbolId(0), SymbolId(1)), 0.7);
            assert_eq!(m.transition_prob(i, SymbolId(1), SymbolId(0)), 0.6);
        }
        // n = 1 works too (no matrices consumed).
        let one = MarkovSequence::homogeneous(a, 1, &[1.0, 0.0], &matrix).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn homogeneous_validates() {
        let a = Alphabet::of_chars("xy");
        assert!(MarkovSequence::homogeneous(a, 3, &[0.5, 0.4], &[1.0, 0.0, 0.0, 1.0]).is_err());
    }
}
