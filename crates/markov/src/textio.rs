//! A plain-text interchange format for Markov sequences.
//!
//! The paper assumes sequences are "represented in a straightforward
//! manner … a transition matrix for each index and an array for μ₀→"
//! (§3.2). This module fixes one such representation so sequences can be
//! stored, diffed and fed to the CLI:
//!
//! ```text
//! markov-sequence v1
//! alphabet r1a r1b la
//! length 3
//! initial 0.7 0.28 0.02
//! step 0
//! 0.1 0.0 0.9
//! 0.0 0.9 0.1
//! 0.0 1.0 0.0
//! step 1
//! …
//! ```
//!
//! * `#`-prefixed lines and blank lines are ignored;
//! * symbol names may not contain whitespace;
//! * each `step i` block holds `|Σ|` rows of `|Σ|` probabilities
//!   (row = source node, in alphabet order);
//! * probabilities accept anything `f64::from_str` does.
//!
//! Parsing validates through [`MarkovSequenceBuilder`], so a file that
//! parses is a *valid* Markov sequence (rows summing to 1, etc.).

use std::fmt::Write as _;
use std::sync::Arc;

use transmark_automata::{Alphabet, SymbolId};

use crate::error::MarkovError;
use crate::sequence::{MarkovSequence, MarkovSequenceBuilder};

/// A parse failure with its (1-based) line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the failure (0 = end of input).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Everything that can go wrong reading a sequence file.
#[derive(Debug)]
pub enum TextIoError {
    /// Syntactic problem.
    Parse(ParseError),
    /// The parsed data is not a valid Markov sequence.
    Model(MarkovError),
}

impl std::fmt::Display for TextIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextIoError::Parse(e) => write!(f, "{e}"),
            TextIoError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TextIoError {}

impl From<MarkovError> for TextIoError {
    fn from(e: MarkovError) -> Self {
        TextIoError::Model(e)
    }
}

fn err(line: usize, message: impl Into<String>) -> TextIoError {
    TextIoError::Parse(ParseError {
        line,
        message: message.into(),
    })
}

/// Serializes a sequence to the v1 text format.
pub fn to_text(m: &MarkovSequence) -> String {
    let k = m.n_symbols();
    let mut out = String::new();
    out.push_str("markov-sequence v1\n");
    out.push_str("alphabet");
    for (_, name) in m.alphabet().iter() {
        let _ = write!(out, " {name}");
    }
    out.push('\n');
    let _ = writeln!(out, "length {}", m.len());
    out.push_str("initial");
    for &p in m.initial_dist() {
        let _ = write!(out, " {p}");
    }
    out.push('\n');
    for i in 0..m.len() - 1 {
        let _ = writeln!(out, "step {i}");
        for from in 0..k {
            let row = m.transition_row(i, SymbolId(from as u32));
            let rendered: Vec<String> = row.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(out, "{}", rendered.join(" "));
        }
    }
    out
}

/// Parses the v1 text format.
pub fn from_text(text: &str) -> Result<MarkovSequence, TextIoError> {
    // Meaningful lines with their 1-based numbers.
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (ln, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if header != "markov-sequence v1" {
        return Err(err(
            ln,
            format!("expected \"markov-sequence v1\", found {header:?}"),
        ));
    }

    let (ln, alpha_line) = lines
        .next()
        .ok_or_else(|| err(0, "missing alphabet line"))?;
    let mut parts = alpha_line.split_whitespace();
    if parts.next() != Some("alphabet") {
        return Err(err(ln, "expected \"alphabet <names…>\""));
    }
    let names: Vec<&str> = parts.collect();
    if names.is_empty() {
        return Err(err(ln, "alphabet must have at least one symbol"));
    }
    let alphabet = Arc::new(Alphabet::from_names(names.iter().copied()));
    if alphabet.len() != names.len() {
        return Err(err(ln, "duplicate symbol names in alphabet"));
    }
    let k = alphabet.len();

    let (ln, len_line) = lines.next().ok_or_else(|| err(0, "missing length line"))?;
    let n: usize = len_line
        .strip_prefix("length")
        .map(str::trim)
        .ok_or_else(|| err(ln, "expected \"length <n>\""))?
        .parse()
        .map_err(|e| err(ln, format!("bad length: {e}")))?;

    let parse_row = |ln: usize, line: &str, what: &str| -> Result<Vec<f64>, TextIoError> {
        let vals: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse).collect();
        let vals = vals.map_err(|e| err(ln, format!("bad number in {what}: {e}")))?;
        if vals.len() != k {
            return Err(err(
                ln,
                format!("{what} has {} entries, expected {k}", vals.len()),
            ));
        }
        Ok(vals)
    };

    let (ln, init_line) = lines.next().ok_or_else(|| err(0, "missing initial line"))?;
    let init_body = init_line
        .strip_prefix("initial")
        .ok_or_else(|| err(ln, "expected \"initial <p…>\""))?;
    let initial = parse_row(ln, init_body, "initial distribution")?;

    let mut b = MarkovSequenceBuilder::new(Arc::clone(&alphabet), n).initial_dist(&initial);
    for step in 0..n.saturating_sub(1) {
        let (ln, step_line) = lines
            .next()
            .ok_or_else(|| err(0, format!("missing \"step {step}\" header")))?;
        if step_line != format!("step {step}") {
            return Err(err(
                ln,
                format!("expected \"step {step}\", found {step_line:?}"),
            ));
        }
        let mut matrix = Vec::with_capacity(k * k);
        for row in 0..k {
            let (ln, row_line) = lines
                .next()
                .ok_or_else(|| err(0, format!("missing row {row} of step {step}")))?;
            matrix.extend(parse_row(ln, row_line, &format!("step {step} row {row}"))?);
        }
        b = b.transition_matrix(step, &matrix);
    }
    if let Some((ln, extra)) = lines.next() {
        return Err(err(ln, format!("unexpected trailing content: {extra:?}")));
    }
    Ok(b.build()?)
}

/// A chunked, incremental reader of the v1 text format: a
/// [`StepSource`](crate::source::StepSource) that parses one `step` block
/// at a time from any [`BufRead`], holding O(|Σ|²) state regardless of
/// sequence length. Feeding it the output of [`to_text`] yields exactly
/// the matrices [`from_text`] would materialize (same `f64::from_str`
/// parses), so streamed evaluation is bit-identical to the in-memory
/// path.
///
/// Forward-only: text readers (files, pipes, stdin) are consumed as they
/// are parsed. Use the binary format ([`crate::binio`]) when a
/// rewindable source is needed.
pub struct TmsTextSource<R> {
    reader: R,
    line_no: usize,
    /// Reused raw-line buffer.
    line: String,
    alphabet: Arc<Alphabet>,
    n: usize,
    initial: Vec<f64>,
    pos: usize,
    /// Reused `|Σ|²` matrix buffer.
    buf: Vec<f64>,
    trailing_checked: bool,
}

use std::io::BufRead;

use crate::sequence::{validate_matrix, validate_vector};
use crate::source::{SourceError, StepSource};

fn serr(line: usize, message: impl Into<String>) -> SourceError {
    SourceError::Parse {
        line,
        message: message.into(),
    }
}

impl<R: BufRead> TmsTextSource<R> {
    /// Parses the header (magic line, alphabet, length, initial
    /// distribution), leaving the reader positioned before the first
    /// `step` block.
    pub fn new(reader: R) -> Result<Self, SourceError> {
        let mut src = TmsTextSource {
            reader,
            line_no: 0,
            line: String::new(),
            alphabet: Arc::new(Alphabet::from_names(std::iter::empty::<&str>())),
            n: 0,
            initial: Vec::new(),
            pos: 0,
            buf: Vec::new(),
            trailing_checked: false,
        };

        let ln = src
            .read_meaningful()?
            .ok_or_else(|| serr(0, "empty input"))?;
        let header = src.line.trim();
        if header != "markov-sequence v1" {
            return Err(serr(
                ln,
                format!("expected \"markov-sequence v1\", found {header:?}"),
            ));
        }

        let ln = src
            .read_meaningful()?
            .ok_or_else(|| serr(0, "missing alphabet line"))?;
        {
            let mut parts = src.line.split_whitespace();
            if parts.next() != Some("alphabet") {
                return Err(serr(ln, "expected \"alphabet <names…>\""));
            }
            let names: Vec<&str> = parts.collect();
            if names.is_empty() {
                return Err(serr(ln, "alphabet must have at least one symbol"));
            }
            let alphabet = Arc::new(Alphabet::from_names(names.iter().copied()));
            if alphabet.len() != names.len() {
                return Err(serr(ln, "duplicate symbol names in alphabet"));
            }
            src.alphabet = alphabet;
        }
        let k = src.alphabet.len();

        let ln = src
            .read_meaningful()?
            .ok_or_else(|| serr(0, "missing length line"))?;
        src.n = src
            .line
            .trim()
            .strip_prefix("length")
            .map(str::trim)
            .ok_or_else(|| serr(ln, "expected \"length <n>\""))?
            .parse()
            .map_err(|e| serr(ln, format!("bad length: {e}")))?;
        if src.n == 0 {
            return Err(SourceError::Model(MarkovError::EmptySequence));
        }

        let ln = src
            .read_meaningful()?
            .ok_or_else(|| serr(0, "missing initial line"))?;
        let body = src
            .line
            .trim()
            .strip_prefix("initial")
            .ok_or_else(|| serr(ln, "expected \"initial <p…>\""))?
            .to_string();
        src.initial = parse_floats(ln, &body, k, "initial distribution")?;
        validate_vector(&src.initial, "initial", 0)?;

        src.buf.reserve(k * k);
        Ok(src)
    }

    /// Reads the next nonempty, non-comment line into `self.line`,
    /// returning its 1-based number; `None` at end of input.
    fn read_meaningful(&mut self) -> Result<Option<usize>, SourceError> {
        loop {
            self.line.clear();
            let read = self.reader.read_line(&mut self.line)?;
            if read == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let t = self.line.trim();
            if !t.is_empty() && !t.starts_with('#') {
                return Ok(Some(self.line_no));
            }
        }
    }
}

fn parse_floats(ln: usize, body: &str, k: usize, what: &str) -> Result<Vec<f64>, SourceError> {
    let vals: Result<Vec<f64>, _> = body.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|e| serr(ln, format!("bad number in {what}: {e}")))?;
    if vals.len() != k {
        return Err(serr(
            ln,
            format!("{what} has {} entries, expected {k}", vals.len()),
        ));
    }
    Ok(vals)
}

impl<R: BufRead> StepSource for TmsTextSource<R> {
    fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    fn len(&self) -> usize {
        self.n
    }

    fn initial(&self) -> &[f64] {
        &self.initial
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn next_step(&mut self) -> Result<Option<&[f64]>, SourceError> {
        if self.pos + 1 >= self.n {
            if !self.trailing_checked {
                self.trailing_checked = true;
                if let Some(ln) = self.read_meaningful()? {
                    return Err(serr(
                        ln,
                        format!("unexpected trailing content: {:?}", self.line.trim()),
                    ));
                }
            }
            return Ok(None);
        }
        let step = self.pos;
        let k = self.alphabet.len();
        let t = transmark_obs::Timer::start();

        let ln = self
            .read_meaningful()?
            .ok_or_else(|| serr(0, format!("missing \"step {step}\" header")))?;
        if self.line.trim() != format!("step {step}") {
            return Err(serr(
                ln,
                format!("expected \"step {step}\", found {:?}", self.line.trim()),
            ));
        }

        self.buf.clear();
        for row in 0..k {
            let ln = self
                .read_meaningful()?
                .ok_or_else(|| serr(0, format!("missing row {row} of step {step}")))?;
            let body = self.line.trim().to_string();
            let vals = parse_floats(ln, &body, k, &format!("step {step} row {row}"))?;
            self.buf.extend_from_slice(&vals);
        }
        validate_matrix(&self.buf, k, "transition", step)?;
        self.pos += 1;
        t.observe(transmark_obs::histogram!("dataplane.tms.decode_ns"));
        crate::obs::record_step(self.buf.len());
        Ok(Some(&self.buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_markov_sequence, RandomChainSpec};
    use crate::numeric::approx_eq;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn round_trip_preserves_everything() {
        let mut rng = StdRng::seed_from_u64(77);
        for len in [1usize, 2, 5] {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len,
                    n_symbols: 3,
                    zero_prob: 0.3,
                },
                &mut rng,
            );
            let text = to_text(&m);
            let back = from_text(&text).expect("round trip parses");
            assert_eq!(back.len(), m.len());
            assert_eq!(back.n_symbols(), m.n_symbols());
            for s in 0..3 {
                assert_eq!(
                    back.alphabet().name(SymbolId(s)),
                    m.alphabet().name(SymbolId(s))
                );
            }
            assert_eq!(back.initial_dist(), m.initial_dist());
            for i in 0..len.saturating_sub(1) {
                for from in 0..3u32 {
                    assert_eq!(
                        back.transition_row(i, SymbolId(from)),
                        m.transition_row(i, SymbolId(from))
                    );
                }
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# weather model\nmarkov-sequence v1\n\nalphabet x y\nlength 2\n# start\ninitial 1 0\nstep 0\n0.5 0.5\n# dead row\n0 1\n";
        let m = from_text(text).unwrap();
        assert_eq!(m.len(), 2);
        assert!(approx_eq(
            m.transition_prob(0, SymbolId(0), SymbolId(1)),
            0.5,
            0.0,
            0.0
        ));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases: Vec<(&str, usize)> = vec![
            ("nope", 1),
            ("markov-sequence v1\nalphabet", 2),
            ("markov-sequence v1\nalphabet a a\nlength 1\ninitial 1", 2),
            ("markov-sequence v1\nalphabet a b\nlen 2", 3),
            (
                "markov-sequence v1\nalphabet a b\nlength 2\ninitial 1 0\nstep 1\n1 0\n0 1",
                5,
            ),
            (
                "markov-sequence v1\nalphabet a b\nlength 2\ninitial 1 0\nstep 0\n1 0 0\n0 1",
                6,
            ),
            (
                "markov-sequence v1\nalphabet a b\nlength 1\ninitial 1 0\ntrailing junk",
                5,
            ),
        ];
        for (text, line) in cases {
            match from_text(text) {
                Err(TextIoError::Parse(e)) => assert_eq!(e.line, line, "input {text:?}"),
                other => panic!("expected parse error at line {line} for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_model_is_rejected_after_parsing() {
        // Rows parse but don't sum to 1.
        let text =
            "markov-sequence v1\nalphabet a b\nlength 2\ninitial 0.6 0.3\nstep 0\n1 0\n0 1\n";
        assert!(matches!(from_text(text), Err(TextIoError::Model(_))));
    }

    #[test]
    fn streamed_text_source_matches_in_memory_bitwise() {
        let mut rng = StdRng::seed_from_u64(123);
        for len in [1usize, 2, 6] {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len,
                    n_symbols: 3,
                    zero_prob: 0.4,
                },
                &mut rng,
            );
            let text = to_text(&m);
            let parsed = from_text(&text).unwrap();
            let mut src = TmsTextSource::new(text.as_bytes()).unwrap();
            assert_eq!(src.len(), parsed.len());
            assert_eq!(src.initial(), parsed.initial_dist());
            for i in 0..len - 1 {
                let layer = src.next_step().unwrap().expect("layer").to_vec();
                assert_eq!(layer, parsed.transition_matrix(i));
            }
            assert!(src.next_step().unwrap().is_none());
        }
    }

    #[test]
    fn streamed_text_source_rejects_what_from_text_rejects() {
        let bad = [
            "nope",
            "markov-sequence v1\nalphabet",
            "markov-sequence v1\nalphabet a a\nlength 1\ninitial 1",
            "markov-sequence v1\nalphabet a b\nlen 2",
            "markov-sequence v1\nalphabet a b\nlength 2\ninitial 1 0\nstep 1\n1 0\n0 1",
            "markov-sequence v1\nalphabet a b\nlength 2\ninitial 1 0\nstep 0\n1 0 0\n0 1",
            "markov-sequence v1\nalphabet a b\nlength 2\ninitial 0.6 0.3\nstep 0\n1 0\n0 1",
        ];
        for text in bad {
            let drained = TmsTextSource::new(text.as_bytes()).and_then(|mut s| {
                while s.next_step()?.is_some() {}
                Ok(())
            });
            assert!(drained.is_err(), "accepted {text:?}");
            assert!(from_text(text).is_err());
        }
        // Trailing junk is caught at end of stream.
        let trailing = "markov-sequence v1\nalphabet a b\nlength 1\ninitial 1 0\ntrailing junk";
        let mut s = TmsTextSource::new(trailing.as_bytes()).unwrap();
        assert!(s.next_step().is_err());
    }

    #[test]
    fn exact_float_round_trip_via_display() {
        // `f64::to_string` is shortest-round-trip, so parse(to_string(x)) == x.
        let m = {
            let a = Alphabet::of_chars("ab");
            MarkovSequenceBuilder::new(a, 2)
                .initial(SymbolId(0), 1.0 / 3.0)
                .initial(SymbolId(1), 2.0 / 3.0)
                .transition(0, SymbolId(0), SymbolId(0), 0.1)
                .transition(0, SymbolId(0), SymbolId(1), 0.9)
                .transition(0, SymbolId(1), SymbolId(1), 1.0)
                .build()
                .unwrap()
        };
        let back = from_text(&to_text(&m)).unwrap();
        assert_eq!(back.initial_dist()[0], 1.0 / 3.0);
        assert_eq!(back.transition_prob(0, SymbolId(0), SymbolId(0)), 0.1);
    }
}
