//! Seeded random Markov-sequence generators.
//!
//! Used by the property-based tests (random instances cross-checked
//! against brute-force oracles) and by the benchmark harness (scaling
//! sweeps). All generators are deterministic given the RNG.

use std::sync::Arc;

use rand::{Rng, RngExt};
use transmark_automata::Alphabet;

use crate::sequence::{from_validated_parts, MarkovSequence};

/// Parameters for [`random_markov_sequence`].
#[derive(Debug, Clone)]
pub struct RandomChainSpec {
    /// Sequence length `n ≥ 1`.
    pub len: usize,
    /// Alphabet size `|Σ| ≥ 1`.
    pub n_symbols: usize,
    /// Probability that any given transition entry is zero (sparsity).
    /// Rows are re-rolled until at least one entry survives, so any value
    /// in `[0, 1)` is safe.
    pub zero_prob: f64,
}

impl Default for RandomChainSpec {
    fn default() -> Self {
        Self {
            len: 5,
            n_symbols: 3,
            zero_prob: 0.3,
        }
    }
}

/// Generates a random Markov sequence with Dirichlet-ish rows (i.i.d.
/// exponentials, normalized) and the requested sparsity. Symbol names are
/// `s0, s1, …`.
pub fn random_markov_sequence<R: Rng + ?Sized>(
    spec: &RandomChainSpec,
    rng: &mut R,
) -> MarkovSequence {
    assert!(spec.len >= 1 && spec.n_symbols >= 1, "degenerate spec");
    assert!(
        (0.0..1.0).contains(&spec.zero_prob),
        "zero_prob must be in [0,1)"
    );
    let alphabet = Arc::new(Alphabet::from_names(
        (0..spec.n_symbols).map(|i| format!("s{i}")),
    ));
    let k = spec.n_symbols;
    let initial = random_row(k, spec.zero_prob, rng);
    let mut transitions = Vec::with_capacity((spec.len - 1) * k * k);
    for _ in 0..spec.len - 1 {
        for _ in 0..k {
            transitions.extend(random_row(k, spec.zero_prob, rng));
        }
    }
    from_validated_parts(alphabet, initial, transitions)
}

/// One random distribution row with the requested sparsity; guaranteed to
/// have at least one positive entry and to sum to exactly 1.0 up to
/// floating-point rounding of the final normalization.
fn random_row<R: Rng + ?Sized>(k: usize, zero_prob: f64, rng: &mut R) -> Vec<f64> {
    loop {
        let mut row: Vec<f64> = (0..k)
            .map(|_| {
                if rng.random_bool(zero_prob) {
                    0.0
                } else {
                    // Exponential variate: -ln(U).
                    -(rng.random::<f64>().max(f64::MIN_POSITIVE)).ln()
                }
            })
            .collect();
        let sum: f64 = row.iter().sum();
        if sum > 0.0 {
            for v in &mut row {
                *v /= sum;
            }
            return row;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn generated_chains_are_valid() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in [1usize, 2, 5, 20] {
            for k in [1usize, 2, 4] {
                let m = random_markov_sequence(
                    &RandomChainSpec {
                        len,
                        n_symbols: k,
                        zero_prob: 0.4,
                    },
                    &mut rng,
                );
                assert_eq!(m.len(), len);
                assert_eq!(m.n_symbols(), k);
                let init_sum: f64 = m.initial_dist().iter().sum();
                assert!(approx_eq(init_sum, 1.0, 1e-9, 0.0));
                for dist in m.marginals() {
                    let s: f64 = dist.iter().sum();
                    assert!(approx_eq(s, 1.0, 1e-9, 0.0));
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = RandomChainSpec::default();
        let a = random_markov_sequence(&spec, &mut StdRng::seed_from_u64(7));
        let b = random_markov_sequence(&spec, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.initial_dist(), b.initial_dist());
    }
}
