//! The streaming data plane: pull-based step sources.
//!
//! The engine's forward passes consume a Markov sequence strictly left to
//! right: the initial distribution once, then one `|Σ|×|Σ|` transition
//! matrix per step. [`StepSource`] abstracts exactly that access pattern,
//! so the same pass runs over an in-memory [`MarkovSequence`]
//! ([`SequenceSource`]), a chunked text reader
//! ([`crate::textio::TmsTextSource`]), or the zero-copy binary `.tmsb`
//! format ([`crate::binio`]) — holding only O(|Σ|²) of sequence data at a
//! time, independent of `n`.
//!
//! # Contract
//!
//! * `len()` is the sequence length `n ≥ 1`; exactly `n − 1` calls to
//!   [`StepSource::next_step`] yield `Some`, after which every call yields
//!   `None`.
//! * Step `i`'s matrix is row-major (`matrix[from · |Σ| + to]`), and every
//!   row is a validated probability distribution — sources validate on
//!   pull, so a consumer never sees malformed data.
//! * The matrices a source yields are **bitwise equal** to the in-memory
//!   sequence's [`MarkovSequence::transition_matrix`] slices. Combined
//!   with the kernel's `LayerCsr` (which compacts a dense layer into the
//!   exact rows a materialized CSR would hold), a forward DP driven off
//!   any source accumulates floats in the same order and reproduces the
//!   in-memory result bit for bit.
//!
//! # Forward-only vs. rewindable
//!
//! A plain [`StepSource`] supports a single left-to-right pass — enough
//! for acceptance, the confidence prefix series, evidence probability
//! (`E_max` of a fixed output), Monte-Carlo estimation, and event
//! monitoring. Passes with a backward sweep (forward–backward marginals,
//! `E_max` traceback re-runs) need either auxiliary per-step state saved
//! on the way forward (back-pointers) or a second pass; the latter take a
//! [`RewindableStepSource`], whose [`rewind`](RewindableStepSource::rewind)
//! restarts the step cursor at 0. In-memory and seekable binary sources
//! rewind; stdin-fed text sources do not.

use std::fmt;
use std::sync::Arc;

use transmark_automata::Alphabet;

use crate::error::MarkovError;
use crate::sequence::MarkovSequence;

/// Everything that can go wrong pulling from a step source.
#[derive(Debug)]
pub enum SourceError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// Malformed text input (1-based line; 0 = end of input).
    Parse {
        /// 1-based line of the failure (0 = end of input).
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Malformed binary layout (bad magic, truncation, size mismatch).
    Format(String),
    /// The header's format version is one this reader does not speak —
    /// typed (rather than a generic [`SourceError::Format`]) so network
    /// peers can negotiate: a server seeing a future version can answer
    /// "speak version ≤ `supported`" instead of calling the frame
    /// garbage.
    Version {
        /// The version the header declares.
        found: u32,
        /// The newest version this reader understands.
        supported: u32,
    },
    /// A layer's byte run disagrees with the fixed `8·|Σ|²` stride the
    /// header implies — a partial layer mid-payload rather than a clean
    /// truncation at a layer boundary (which stays [`SourceError::Format`]).
    Stride {
        /// 0-based step at which the mismatch surfaced.
        step: usize,
        /// Bytes one layer must span (`8·|Σ|²`).
        expected: usize,
        /// Bytes actually present for that layer.
        actual: usize,
    },
    /// The data parsed but is not a valid Markov sequence.
    Model(MarkovError),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Io(e) => write!(f, "i/o error: {e}"),
            SourceError::Parse { line, message } => write!(f, "line {line}: {message}"),
            SourceError::Format(m) => write!(f, "invalid tmsb data: {m}"),
            SourceError::Version { found, supported } => write!(
                f,
                "unsupported tmsb version {found} (this reader speaks versions up to {supported})"
            ),
            SourceError::Stride {
                step,
                expected,
                actual,
            } => write!(
                f,
                "invalid tmsb data: layer {step} violates the fixed stride: \
                 expected {expected} bytes, found {actual}"
            ),
            SourceError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<std::io::Error> for SourceError {
    fn from(e: std::io::Error) -> Self {
        SourceError::Io(e)
    }
}

impl From<MarkovError> for SourceError {
    fn from(e: MarkovError) -> Self {
        SourceError::Model(e)
    }
}

/// A pull-based reader of one Markov sequence: `initial()` once, then
/// `n − 1` step matrices in order. See the [module docs](self) for the
/// full contract.
pub trait StepSource {
    /// The shared node alphabet `Σ`.
    fn alphabet(&self) -> &Arc<Alphabet>;

    /// The sequence length `n` (positions, not steps).
    fn len(&self) -> usize;

    /// `n ≥ 1` always holds for a valid source, so this is `false`.
    fn is_empty(&self) -> bool {
        false
    }

    /// The initial distribution `μ₀→` (length `|Σ|`), available before,
    /// during, and after step consumption.
    fn initial(&self) -> &[f64];

    /// Number of step matrices already yielded.
    fn position(&self) -> usize;

    /// Pulls the next step's row-major `|Σ|²` matrix; `None` once all
    /// `n − 1` steps are consumed. The borrow ends before the next pull,
    /// so implementations may reuse one internal buffer.
    fn next_step(&mut self) -> Result<Option<&[f64]>, SourceError>;
}

/// A [`StepSource`] that can restart its step cursor, enabling multi-pass
/// (backward-sweep) algorithms over the same underlying data.
pub trait RewindableStepSource: StepSource {
    /// Resets the cursor so the next [`StepSource::next_step`] yields
    /// step 0 again.
    fn rewind(&mut self) -> Result<(), SourceError>;
}

// The trait is object-safe; delegate through `&mut` and `Box` so callers
// can hand `&mut dyn StepSource` / `Box<dyn StepSource>` to the generic
// consumers (the engine's `*_source` entry points take `S: StepSource`).
impl<S: StepSource + ?Sized> StepSource for &mut S {
    fn alphabet(&self) -> &Arc<Alphabet> {
        (**self).alphabet()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn initial(&self) -> &[f64] {
        (**self).initial()
    }
    fn position(&self) -> usize {
        (**self).position()
    }
    fn next_step(&mut self) -> Result<Option<&[f64]>, SourceError> {
        (**self).next_step()
    }
}

impl<S: StepSource + ?Sized> StepSource for Box<S> {
    fn alphabet(&self) -> &Arc<Alphabet> {
        (**self).alphabet()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn initial(&self) -> &[f64] {
        (**self).initial()
    }
    fn position(&self) -> usize {
        (**self).position()
    }
    fn next_step(&mut self) -> Result<Option<&[f64]>, SourceError> {
        (**self).next_step()
    }
}

impl<S: RewindableStepSource + ?Sized> RewindableStepSource for &mut S {
    fn rewind(&mut self) -> Result<(), SourceError> {
        (**self).rewind()
    }
}

impl<S: RewindableStepSource + ?Sized> RewindableStepSource for Box<S> {
    fn rewind(&mut self) -> Result<(), SourceError> {
        (**self).rewind()
    }
}

/// The in-memory source: a cursor over a borrowed [`MarkovSequence`].
/// Yields each [`MarkovSequence::transition_matrix`] slice directly (no
/// copy), so it is trivially bit-identical to the materialized path.
#[derive(Debug, Clone)]
pub struct SequenceSource<'a> {
    m: &'a MarkovSequence,
    pos: usize,
}

impl<'a> SequenceSource<'a> {
    /// A cursor positioned before step 0.
    pub fn new(m: &'a MarkovSequence) -> Self {
        SequenceSource { m, pos: 0 }
    }
}

impl StepSource for SequenceSource<'_> {
    fn alphabet(&self) -> &Arc<Alphabet> {
        self.m.alphabet_ref()
    }

    fn len(&self) -> usize {
        self.m.len()
    }

    fn initial(&self) -> &[f64] {
        self.m.initial_dist()
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn next_step(&mut self) -> Result<Option<&[f64]>, SourceError> {
        if self.pos + 1 >= self.m.len() {
            return Ok(None);
        }
        let i = self.pos;
        self.pos += 1;
        let m = self.m.transition_matrix(i);
        crate::obs::record_step(m.len());
        Ok(Some(m))
    }
}

impl RewindableStepSource for SequenceSource<'_> {
    fn rewind(&mut self) -> Result<(), SourceError> {
        crate::obs::record_rewind();
        self.pos = 0;
        Ok(())
    }
}

/// Drains a source into a fully materialized [`MarkovSequence`] (the flat
/// SoA buffer). The inverse of [`MarkovSequence::step_source`]; used by
/// consumers that genuinely need random access.
pub fn materialize<S: StepSource>(src: &mut S) -> Result<MarkovSequence, SourceError> {
    let alphabet = Arc::clone(src.alphabet());
    let k = alphabet.len();
    let n = src.len();
    let initial = src.initial().to_vec();
    let mut transitions = Vec::with_capacity(n.saturating_sub(1) * k * k);
    while let Some(m) = src.next_step()? {
        transitions.extend_from_slice(m);
    }
    if transitions.len() != n.saturating_sub(1) * k * k {
        return Err(SourceError::Format(format!(
            "source yielded {} step entries, expected {}",
            transitions.len(),
            n.saturating_sub(1) * k * k
        )));
    }
    Ok(crate::sequence::from_validated_parts(
        alphabet,
        initial,
        transitions,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_markov_sequence, RandomChainSpec};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn sequence_source_yields_every_layer_then_none() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = random_markov_sequence(
            &RandomChainSpec {
                len: 6,
                n_symbols: 3,
                zero_prob: 0.2,
            },
            &mut rng,
        );
        let mut src = m.step_source();
        assert_eq!(src.len(), 6);
        assert_eq!(src.initial(), m.initial_dist());
        for i in 0..5 {
            assert_eq!(src.position(), i);
            let layer = src.next_step().unwrap().expect("step present");
            assert_eq!(layer, m.transition_matrix(i));
        }
        assert!(src.next_step().unwrap().is_none());
        assert!(src.next_step().unwrap().is_none());
        src.rewind().unwrap();
        assert_eq!(src.next_step().unwrap().unwrap(), m.transition_matrix(0));
    }

    #[test]
    fn materialize_round_trips() {
        let mut rng = StdRng::seed_from_u64(4);
        for len in [1usize, 2, 7] {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len,
                    n_symbols: 2,
                    zero_prob: 0.3,
                },
                &mut rng,
            );
            let back = materialize(&mut m.step_source()).unwrap();
            assert_eq!(back.len(), m.len());
            assert_eq!(back.initial_dist(), m.initial_dist());
            assert_eq!(back.transitions_flat(), m.transitions_flat());
        }
    }
}
