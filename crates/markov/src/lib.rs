#![warn(missing_docs)]
// Index-based loops are the clearest way to write the layered DP kernels
// and matrix scans in this codebase; the clippy suggestion (iterators with
// enumerate/zip) obscures the (position, node, state) indexing.
#![allow(clippy::needless_range_loop)]

//! Markov sequences — the data model of `transmark`.
//!
//! A *Markov sequence* `μ[n]` (§3.1 of "Transducing Markov Sequences",
//! PODS 2010) is a time-inhomogeneous Markov chain over a finite set of
//! state nodes `Σ`: an initial distribution `μ₀→` and, for each position
//! `1 ≤ i < n`, a transition matrix `μᵢ→`. It defines the probability
//! space `(Σⁿ, p)` with
//!
//! ```text
//! p(s₁⋯sₙ) = μ₀→(s₁) · ∏ᵢ μᵢ→(sᵢ, sᵢ₊₁)              (Eq. 1)
//! ```
//!
//! The paper's Markov sequences are typically *produced* by statistical
//! models: an HMM conditioned on a sequence of observations (footnote 1)
//! or a linear-chain CRF. This crate provides:
//!
//! * [`MarkovSequence`] and [`MarkovSequenceBuilder`] — the core model
//!   with validation, Eq. (1) probabilities, sampling, and marginals.
//! * [`hmm`] — hidden Markov models and the exact posterior translation
//!   `HMM + observations → MarkovSequence`.
//! * [`factors`] — the general chain-Gibbs translation (nonnegative factor
//!   chains, e.g. linear-chain CRFs, → `MarkovSequence`).
//! * [`korder`] — k-order Markov sequences and their reduction to
//!   first-order ones over a window alphabet (footnote 3).
//! * [`source`] — the streaming data plane: the [`StepSource`] pull
//!   contract plus the in-memory cursor; [`textio`] adds a chunked text
//!   reader, [`binio`] the zero-copy binary `.tmsb` format, and [`fsio`]
//!   the path-based opener dispatching between the two.
//! * [`support`] — exhaustive enumeration of the nonzero-probability
//!   strings, used as the brute-force oracle throughout the test suite.
//! * [`numeric`] — compensated summation and comparison helpers shared by
//!   the dynamic programs downstream.

pub mod binio;
pub mod error;
pub mod factors;
pub mod fsio;
pub mod generate;
pub mod hmm;
pub mod hmm_textio;
pub mod info;
pub mod korder;
pub mod numeric;
pub(crate) mod obs;
pub mod seqops;
pub mod sequence;
pub mod source;
pub mod support;
pub mod textio;

pub use error::MarkovError;
pub use fsio::FileStepSource;
pub use hmm::Hmm;
pub use korder::KOrderMarkovSequence;
pub use sequence::{MarkovSequence, MarkovSequenceBuilder};
pub use source::{RewindableStepSource, SequenceSource, SourceError, StepSource};

pub use transmark_automata::{Alphabet, SymbolId};
