//! Path-based step sources: one opener for both on-disk formats.
//!
//! The data plane has two file formats — `.tms` text ([`crate::textio`])
//! and `.tmsb` binary ([`crate::binio`]) — each with its own streaming
//! reader. Consumers that take a *path* (the store's fleet helpers, the
//! `tmk` CLI) dispatch on the extension here, getting back one
//! [`FileStepSource`] that streams either format layer-at-a-time with
//! O(|Σ|²) memory.

use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::sync::Arc;

use transmark_automata::Alphabet;

use crate::binio::TmsbReader;
use crate::sequence::MarkovSequence;
use crate::source::{SourceError, StepSource};
use crate::textio::TmsTextSource;

/// Whether `path` names the binary `.tmsb` format (by extension,
/// case-insensitive); anything else is treated as `.tms` text.
pub fn is_binary_path(path: &Path) -> bool {
    path.extension()
        .map(|e| e.eq_ignore_ascii_case("tmsb"))
        .unwrap_or(false)
}

/// A forward-only [`StepSource`] over an on-disk sequence in either
/// format, chosen by [`is_binary_path`]. Both arms stream one layer per
/// pull; neither materializes the sequence.
pub enum FileStepSource {
    /// `.tms` — chunked text reader.
    Text(TmsTextSource<BufReader<File>>),
    /// `.tmsb` — fixed-stride binary reader.
    Binary(TmsbReader<BufReader<File>>),
}

/// Opens `path` as a streaming step source, dispatching on the extension.
pub fn open_step_source(path: &Path) -> Result<FileStepSource, SourceError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    if is_binary_path(path) {
        Ok(FileStepSource::Binary(TmsbReader::new(reader)?))
    } else {
        Ok(FileStepSource::Text(TmsTextSource::new(reader)?))
    }
}

/// Reads and fully materializes a sequence from `path` (either format),
/// validating every distribution on the way in.
pub fn read_sequence_path(path: &Path) -> Result<MarkovSequence, SourceError> {
    let mut src = open_step_source(path)?;
    crate::source::materialize(&mut src)
}

impl StepSource for FileStepSource {
    fn alphabet(&self) -> &Arc<Alphabet> {
        match self {
            FileStepSource::Text(s) => s.alphabet(),
            FileStepSource::Binary(s) => s.alphabet(),
        }
    }

    fn len(&self) -> usize {
        match self {
            FileStepSource::Text(s) => s.len(),
            FileStepSource::Binary(s) => s.len(),
        }
    }

    fn initial(&self) -> &[f64] {
        match self {
            FileStepSource::Text(s) => s.initial(),
            FileStepSource::Binary(s) => s.initial(),
        }
    }

    fn position(&self) -> usize {
        match self {
            FileStepSource::Text(s) => s.position(),
            FileStepSource::Binary(s) => s.position(),
        }
    }

    fn next_step(&mut self) -> Result<Option<&[f64]>, SourceError> {
        match self {
            FileStepSource::Text(s) => s.next_step(),
            FileStepSource::Binary(s) => s.next_step(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_markov_sequence, RandomChainSpec};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn both_formats_stream_identically() {
        let mut rng = StdRng::seed_from_u64(31);
        let m = random_markov_sequence(
            &RandomChainSpec {
                len: 5,
                n_symbols: 3,
                zero_prob: 0.3,
            },
            &mut rng,
        );
        let dir = std::env::temp_dir().join(format!("transmark-fsio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let text_path = dir.join("m.tms");
        let bin_path = dir.join("m.tmsb");
        std::fs::write(&text_path, crate::textio::to_text(&m)).unwrap();
        std::fs::write(&bin_path, crate::binio::to_tmsb_bytes(&m)).unwrap();

        assert!(!is_binary_path(&text_path));
        assert!(is_binary_path(&bin_path));
        for path in [&text_path, &bin_path] {
            let back = read_sequence_path(path).unwrap();
            assert_eq!(back.len(), m.len());
            assert_eq!(back.initial_dist(), m.initial_dist());
            assert_eq!(back.transitions_flat(), m.transitions_flat());

            let mut src = open_step_source(path).unwrap();
            assert_eq!(src.len(), m.len());
            assert_eq!(src.initial(), m.initial_dist());
            for i in 0..m.len() - 1 {
                assert_eq!(src.next_step().unwrap().unwrap(), m.transition_matrix(i));
            }
            assert!(src.next_step().unwrap().is_none());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_errors_cleanly() {
        assert!(matches!(
            open_step_source(Path::new("/nonexistent/x.tms")),
            Err(SourceError::Io(_))
        ));
    }
}
