//! Database-style operations on Markov sequences.
//!
//! A Markov-sequence store (the paper's Lahar setting) needs more than
//! queries: it slices streams into windows and conditions them on ground
//! observations ("the cart *was* in the lab at 3pm"). Both operations
//! stay inside the model class:
//!
//! * [`window`] — the marginal of a contiguous window of a Markov chain
//!   is again a Markov chain with the same transition matrices and the
//!   window-start marginal as its initial distribution;
//! * [`condition`] — conditioning on `Sᵢ = s` (or any per-position
//!   evidence) is a chain Gibbs distribution, handled by the
//!   [`crate::factors`] translation.

use std::sync::Arc;

use transmark_automata::SymbolId;

use crate::error::MarkovError;
use crate::factors::chain_from_factors;
use crate::sequence::{from_validated_parts, MarkovSequence};

/// The marginal Markov sequence of the window `[start, start + len)`
/// (0-based positions). Errors if the window is empty or out of range.
pub fn window(m: &MarkovSequence, start: usize, len: usize) -> Result<MarkovSequence, MarkovError> {
    if len == 0 {
        return Err(MarkovError::EmptySequence);
    }
    if start + len > m.len() {
        return Err(MarkovError::LengthMismatch {
            expected: m.len(),
            actual: start + len,
        });
    }
    let initial = m.marginals()[start].clone();
    // The window's matrices are a contiguous slice of the flat buffer.
    let kk = m.n_symbols() * m.n_symbols();
    let transitions = m.transitions_flat()[start * kk..(start + len - 1) * kk].to_vec();
    Ok(from_validated_parts(m.alphabet_arc(), initial, transitions))
}

/// Per-position evidence: a hard observation or a soft likelihood.
#[derive(Debug, Clone)]
pub enum Evidence {
    /// `Sᵢ` is known to be exactly this node.
    Exactly(SymbolId),
    /// `Sᵢ` is known to be one of these nodes.
    OneOf(Vec<SymbolId>),
    /// A nonnegative likelihood weight per node (virtual evidence).
    Likelihood(Vec<f64>),
}

/// Conditions the sequence on evidence at given positions:
/// `P(S | evidence) ∝ P(S) · ∏ weightᵢ(Sᵢ)`.
///
/// Returns [`MarkovError::ImpossibleEvidence`] when the evidence has zero
/// probability.
pub fn condition(
    m: &MarkovSequence,
    evidence: &[(usize, Evidence)],
) -> Result<MarkovSequence, MarkovError> {
    let k = m.n_symbols();
    let n = m.len();
    // Per-position weights, defaulting to 1.
    let mut weights = vec![vec![1.0f64; k]; n];
    for (pos, ev) in evidence {
        if *pos >= n {
            return Err(MarkovError::LengthMismatch {
                expected: n,
                actual: *pos + 1,
            });
        }
        let w = &mut weights[*pos];
        match ev {
            Evidence::Exactly(s) => {
                for (i, v) in w.iter_mut().enumerate() {
                    *v *= f64::from(u8::from(i == s.index()));
                }
            }
            Evidence::OneOf(set) => {
                for (i, v) in w.iter_mut().enumerate() {
                    *v *= f64::from(u8::from(set.iter().any(|s| s.index() == i)));
                }
            }
            Evidence::Likelihood(l) => {
                if l.len() != k {
                    return Err(MarkovError::LengthMismatch {
                        expected: k,
                        actual: l.len(),
                    });
                }
                for (v, &li) in w.iter_mut().zip(l) {
                    if !li.is_finite() || li < 0.0 {
                        return Err(MarkovError::InvalidProbability {
                            what: "likelihood",
                            position: *pos,
                            value: li,
                        });
                    }
                    *v *= li;
                }
            }
        }
    }

    // Build the Gibbs factors: φ₀(s) = μ₀(s)·w₀(s);
    // ψᵢ(s, t) = μᵢ(s, t)·wᵢ₊₁(t).
    let phi0: Vec<f64> = (0..k)
        .map(|s| m.initial_prob(SymbolId(s as u32)) * weights[0][s])
        .collect();
    let factors: Vec<Vec<f64>> = (0..n - 1)
        .map(|i| {
            let mut f = vec![0.0; k * k];
            for s in 0..k {
                let row = m.transition_row(i, SymbolId(s as u32));
                for t in 0..k {
                    f[s * k + t] = row[t] * weights[i + 1][t];
                }
            }
            f
        })
        .collect();
    chain_from_factors(m.alphabet_arc(), &phi0, &factors)
}

/// The probability of the evidence itself, `Pr(∏ weightᵢ(Sᵢ))` for hard
/// evidence (for soft evidence: the expected likelihood). Computed by one
/// forward pass.
pub fn evidence_probability(
    m: &MarkovSequence,
    evidence: &[(usize, Evidence)],
) -> Result<f64, MarkovError> {
    let k = m.n_symbols();
    let n = m.len();
    let mut weights = vec![vec![1.0f64; k]; n];
    for (pos, ev) in evidence {
        if *pos >= n {
            return Err(MarkovError::LengthMismatch {
                expected: n,
                actual: *pos + 1,
            });
        }
        match ev {
            Evidence::Exactly(s) => {
                for (i, v) in weights[*pos].iter_mut().enumerate() {
                    *v *= f64::from(u8::from(i == s.index()));
                }
            }
            Evidence::OneOf(set) => {
                for (i, v) in weights[*pos].iter_mut().enumerate() {
                    *v *= f64::from(u8::from(set.iter().any(|s| s.index() == i)));
                }
            }
            Evidence::Likelihood(l) => {
                for (v, &li) in weights[*pos].iter_mut().zip(l) {
                    *v *= li;
                }
            }
        }
    }
    let mut alpha: Vec<f64> = (0..k)
        .map(|s| m.initial_prob(SymbolId(s as u32)) * weights[0][s])
        .collect();
    for i in 0..n - 1 {
        let mut next = vec![0.0f64; k];
        for s in 0..k {
            if alpha[s] == 0.0 {
                continue;
            }
            let row = m.transition_row(i, SymbolId(s as u32));
            for t in 0..k {
                if row[t] > 0.0 {
                    next[t] += alpha[s] * row[t] * weights[i + 1][t];
                }
            }
        }
        alpha = next;
    }
    Ok(alpha.iter().sum())
}

/// Reverses a Markov sequence: the distribution of `Sₙ⋯S₁` (useful for
/// suffix-anchored queries). The reversed chain's parameters come from
/// Bayes' rule over the forward marginals.
pub fn reverse(m: &MarkovSequence) -> MarkovSequence {
    let k = m.n_symbols();
    let n = m.len();
    let marg = m.marginals();
    let initial = marg[n - 1].clone();
    let mut transitions = Vec::with_capacity(n.saturating_sub(1) * k * k);
    // Reversed step j couples reversed positions j → j+1, i.e. original
    // positions n-1-j → n-2-j.
    for j in 0..n - 1 {
        let orig = n - 2 - j; // original step index: orig → orig+1
        let mut t = vec![0.0; k * k];
        for from in 0..k {
            // from = original position orig+1 node; to = original orig node.
            let p_from = marg[orig + 1][from];
            let row = &mut t[from * k..(from + 1) * k];
            if p_from > 0.0 {
                for (to, slot) in row.iter_mut().enumerate() {
                    *slot = marg[orig][to]
                        * m.transition_prob(orig, SymbolId(to as u32), SymbolId(from as u32))
                        / p_from;
                }
                // Normalize away rounding drift.
                let s: f64 = row.iter().sum();
                if s > 0.0 {
                    for v in row.iter_mut() {
                        *v /= s;
                    }
                } else {
                    row[from] = 1.0;
                }
            } else {
                row[from] = 1.0;
            }
        }
        transitions.extend_from_slice(&t);
    }
    from_validated_parts(Arc::clone(&m.alphabet_arc()), initial, transitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;
    use crate::sequence::MarkovSequenceBuilder;
    use crate::support::support;
    use transmark_automata::Alphabet;

    fn chain() -> MarkovSequence {
        let a = Alphabet::of_chars("xy");
        let (x, y) = (a.sym("x"), a.sym("y"));
        MarkovSequenceBuilder::new(a, 4)
            .initial(x, 0.7)
            .initial(y, 0.3)
            .transition(0, x, x, 0.5)
            .transition(0, x, y, 0.5)
            .transition(0, y, y, 1.0)
            .transition(1, x, y, 0.8)
            .transition(1, x, x, 0.2)
            .transition(1, y, x, 0.4)
            .transition(1, y, y, 0.6)
            .transition(2, x, x, 1.0)
            .transition(2, y, x, 0.9)
            .transition(2, y, y, 0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn window_marginals_match_full_chain() {
        let m = chain();
        let w = window(&m, 1, 2).unwrap();
        assert_eq!(w.len(), 2);
        // P(w = s t) must equal P(S₂ = s, S₃ = t) in the original.
        for (pair, pw) in support(&w) {
            let want: f64 = support(&m)
                .iter()
                .filter(|(s, _)| s[1] == pair[0] && s[2] == pair[1])
                .map(|(_, p)| p)
                .sum();
            assert!(approx_eq(pw, want, 1e-12, 1e-10), "pair {pair:?}");
        }
    }

    #[test]
    fn window_bounds_are_checked() {
        let m = chain();
        assert!(matches!(window(&m, 0, 0), Err(MarkovError::EmptySequence)));
        assert!(matches!(
            window(&m, 3, 2),
            Err(MarkovError::LengthMismatch { .. })
        ));
        assert!(window(&m, 0, 4).is_ok());
    }

    #[test]
    fn conditioning_is_bayes() {
        let m = chain();
        let a = m.alphabet().clone();
        let y = a.sym("y");
        let cond = condition(&m, &[(2, Evidence::Exactly(y))]).unwrap();
        // Compare against direct Bayes over the support.
        let z: f64 = support(&m)
            .iter()
            .filter(|(s, _)| s[2] == y)
            .map(|(_, p)| p)
            .sum();
        for (s, p) in support(&m) {
            let want = if s[2] == y { p / z } else { 0.0 };
            let got = cond.string_probability(&s).unwrap();
            assert!(
                approx_eq(got, want, 1e-12, 1e-9),
                "string {s:?}: {got} vs {want}"
            );
        }
        // Evidence probability matches the normalizer.
        let pe = evidence_probability(&m, &[(2, Evidence::Exactly(y))]).unwrap();
        assert!(approx_eq(pe, z, 1e-12, 1e-10));
    }

    #[test]
    fn soft_evidence_reweights() {
        let m = chain();
        let like = vec![2.0, 0.5];
        let cond = condition(&m, &[(0, Evidence::Likelihood(like.clone()))]).unwrap();
        let z: f64 = support(&m)
            .iter()
            .map(|(s, p)| p * like[s[0].index()])
            .sum();
        for (s, p) in support(&m) {
            let want = p * like[s[0].index()] / z;
            assert!(approx_eq(
                cond.string_probability(&s).unwrap(),
                want,
                1e-12,
                1e-9
            ));
        }
    }

    #[test]
    fn impossible_evidence_errors() {
        let m = chain();
        let a = m.alphabet().clone();
        // S₁ = x and S₂ = x is possible; S₁ = y then S₂ = x is not (y→y only).
        let bad = condition(
            &m,
            &[
                (0, Evidence::Exactly(a.sym("y"))),
                (1, Evidence::Exactly(a.sym("x"))),
            ],
        );
        assert!(matches!(bad, Err(MarkovError::ImpossibleEvidence)));
    }

    #[test]
    fn one_of_evidence_filters() {
        let m = chain();
        let a = m.alphabet().clone();
        let both = condition(&m, &[(1, Evidence::OneOf(vec![a.sym("x"), a.sym("y")]))]).unwrap();
        // Conditioning on the full set is a no-op.
        for (s, p) in support(&m) {
            assert!(approx_eq(
                both.string_probability(&s).unwrap(),
                p,
                1e-12,
                1e-9
            ));
        }
    }

    #[test]
    fn reverse_preserves_string_probabilities() {
        let m = chain();
        let r = reverse(&m);
        assert_eq!(r.len(), m.len());
        for (s, p) in support(&m) {
            let rev: Vec<_> = s.iter().rev().copied().collect();
            let pr = r.string_probability(&rev).unwrap();
            assert!(approx_eq(pr, p, 1e-12, 1e-9), "string {s:?}: {pr} vs {p}");
        }
    }

    #[test]
    fn reverse_is_involutive_on_probabilities() {
        let m = chain();
        let rr = reverse(&reverse(&m));
        for (s, p) in support(&m) {
            assert!(approx_eq(
                rr.string_probability(&s).unwrap(),
                p,
                1e-12,
                1e-9
            ));
        }
    }
}
