//! `.tmsb` — the zero-copy binary interchange format for Markov
//! sequences.
//!
//! The text format ([`crate::textio`]) is human-diffable but demands a
//! full parse; `.tmsb` stores the same model as fixed-stride
//! little-endian `f64` payload so readers can stream layers with no
//! parsing, and memory-mapped (or otherwise byte-sliced) consumers can
//! view each layer as a `&[f64]` without copying.
//!
//! # Layout (version 1)
//!
//! ```text
//! offset  size      field
//! 0       4         magic "TMSB"
//! 4       4         version        u32 LE = 1
//! 8       4         k = |Σ|        u32 LE, ≥ 1
//! 12      4         reserved       u32 LE = 0
//! 16      8         n (length)     u64 LE, ≥ 1
//! 24      8         names_len      u64 LE (bytes, multiple of 8)
//! 32      names_len names block:   per symbol, u32 LE byte-length +
//!                                  UTF-8 bytes; zero-padded to 8
//! …       8·k       initial        k × f64 LE
//! …       8·k²·(n−1) layers        fixed stride k² × f64 LE per step
//! ```
//!
//! The header is 32 bytes and the names block is padded to a multiple of
//! 8, so in any 8-aligned buffer (mmap pages, most allocations) the
//! payload is `f64`-aligned and [`TmsbSlice`] serves true zero-copy
//! views; unaligned or big-endian hosts fall back to a per-layer copy,
//! bit-identical either way.
//!
//! Distributions are validated on read, layer by layer — a `.tmsb` that
//! streams to completion is a valid Markov sequence, exactly like a
//! `.tms` that parses.

use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::Arc;

use transmark_automata::Alphabet;

use crate::error::MarkovError;
use crate::sequence::{from_validated_parts, validate_matrix, validate_vector, MarkovSequence};
use crate::source::{RewindableStepSource, SourceError, StepSource};

/// File magic: `"TMSB"`.
pub const MAGIC: [u8; 4] = *b"TMSB";
/// Current format version.
pub const VERSION: u32 = 1;
const HEADER_LEN: usize = 32;

fn ferr(message: impl Into<String>) -> SourceError {
    SourceError::Format(message.into())
}

/// Serializes the names block (length-prefixed UTF-8, zero-padded to a
/// multiple of 8).
fn names_block(alphabet: &Alphabet) -> Vec<u8> {
    let mut block = Vec::new();
    for (_, name) in alphabet.iter() {
        block.extend_from_slice(&(name.len() as u32).to_le_bytes());
        block.extend_from_slice(name.as_bytes());
    }
    while block.len() % 8 != 0 {
        block.push(0);
    }
    block
}

/// Streams a source to `w` in `.tmsb` form without materializing it:
/// header and initial first, then one fixed-stride layer per pull. This
/// is the `tms → tmsb` converter's core; the source validates layers as
/// they are pulled, so the written file is valid by construction.
pub fn write_tmsb<W: Write, S: StepSource>(w: &mut W, src: &mut S) -> Result<(), SourceError> {
    let alphabet = Arc::clone(src.alphabet());
    let k = alphabet.len();
    let n = src.len();
    if k == 0 || k > u32::MAX as usize {
        return Err(ferr(format!("alphabet size {k} not representable")));
    }
    let names = names_block(&alphabet);

    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(k as u32).to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&(n as u64).to_le_bytes())?;
    w.write_all(&(names.len() as u64).to_le_bytes())?;
    w.write_all(&names)?;

    let initial = src.initial();
    if initial.len() != k {
        return Err(ferr(format!(
            "initial distribution has {} entries, expected {k}",
            initial.len()
        )));
    }
    for &p in initial {
        w.write_all(&p.to_le_bytes())?;
    }

    let mut written = 0usize;
    while let Some(matrix) = src.next_step()? {
        for &p in matrix {
            w.write_all(&p.to_le_bytes())?;
        }
        written += 1;
    }
    if written != n - 1 {
        return Err(ferr(format!(
            "source yielded {written} layers, expected {}",
            n - 1
        )));
    }
    Ok(())
}

/// Serializes an in-memory sequence to `.tmsb` bytes.
pub fn to_tmsb_bytes(m: &MarkovSequence) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(HEADER_LEN + 8 * m.n_symbols() * (1 + m.n_symbols() * (m.len() - 1)));
    write_tmsb(&mut out, &mut m.step_source()).expect("in-memory write cannot fail");
    out
}

/// Parsed `.tmsb` header fields.
struct Header {
    alphabet: Arc<Alphabet>,
    k: usize,
    n: usize,
}

fn parse_header(header: &[u8; HEADER_LEN], names: &[u8]) -> Result<Header, SourceError> {
    if header[0..4] != MAGIC {
        return Err(ferr("bad magic (not a .tmsb file)"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        // Typed, not a generic format error: a peer streaming a
        // future-versioned file over the wire gets a negotiable
        // "I speak up to VERSION" answer instead of a decode panic or
        // garbage layers.
        return Err(SourceError::Version {
            found: version,
            supported: VERSION,
        });
    }
    let k = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
    if k == 0 {
        return Err(ferr("alphabet size must be ≥ 1"));
    }
    let n = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes")) as usize;
    if n == 0 {
        return Err(SourceError::Model(MarkovError::EmptySequence));
    }

    let mut at = 0usize;
    let mut names_vec = Vec::with_capacity(k);
    for i in 0..k {
        if at + 4 > names.len() {
            return Err(ferr(format!("names block truncated at symbol {i}")));
        }
        let len = u32::from_le_bytes(names[at..at + 4].try_into().expect("4 bytes")) as usize;
        at += 4;
        if at + len > names.len() {
            return Err(ferr(format!("name {i} overruns names block")));
        }
        let name = std::str::from_utf8(&names[at..at + len])
            .map_err(|_| ferr(format!("name {i} is not valid UTF-8")))?;
        names_vec.push(name.to_string());
        at += len;
    }
    let alphabet = Arc::new(Alphabet::from_names(names_vec.iter().map(String::as_str)));
    if alphabet.len() != k {
        return Err(ferr("duplicate symbol names"));
    }
    Ok(Header { alphabet, k, n })
}

fn decode_f64s(bytes: &[u8], out: &mut Vec<f64>) {
    out.clear();
    for chunk in bytes.chunks_exact(8) {
        out.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
    }
}

/// `Read`-backed streaming `.tmsb` reader: pulls one fixed-stride layer
/// per [`StepSource::next_step`], holding O(|Σ|²) memory. Rewindable when
/// the underlying reader is seekable (files, in-memory cursors).
pub struct TmsbReader<R> {
    reader: R,
    alphabet: Arc<Alphabet>,
    n: usize,
    initial: Vec<f64>,
    pos: usize,
    /// Byte offset of the first layer, for rewinding.
    layers_start: u64,
    raw: Vec<u8>,
    buf: Vec<f64>,
}

impl<R: Read> TmsbReader<R> {
    /// Reads and validates the header, names, and initial distribution.
    pub fn new(mut reader: R) -> Result<Self, SourceError> {
        let mut header = [0u8; HEADER_LEN];
        reader.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ferr("truncated header")
            } else {
                SourceError::Io(e)
            }
        })?;
        let names_len = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes")) as usize;
        if !names_len.is_multiple_of(8) {
            return Err(ferr("names block length must be a multiple of 8"));
        }
        let mut names = vec![0u8; names_len];
        reader.read_exact(&mut names)?;
        let h = parse_header(&header, &names)?;

        let stride = layer_stride(h.k)?;
        let mut raw = vec![0u8; 8 * h.k];
        reader.read_exact(&mut raw)?;
        let mut initial = Vec::with_capacity(h.k);
        decode_f64s(&raw, &mut initial);
        validate_vector(&initial, "initial", 0)?;

        let layers_start = (HEADER_LEN + names_len + 8 * h.k) as u64;
        Ok(TmsbReader {
            reader,
            alphabet: h.alphabet,
            n: h.n,
            initial,
            pos: 0,
            layers_start,
            raw: vec![0u8; stride],
            buf: Vec::with_capacity(h.k * h.k),
        })
    }
}

/// `8·|Σ|²`, the byte span of one layer, with the multiplication checked
/// so a hostile header cannot wrap the stride into a short buffer (and,
/// downstream, a short `&[f64]` layer slice).
fn layer_stride(k: usize) -> Result<usize, SourceError> {
    k.checked_mul(k)
        .and_then(|kk| kk.checked_mul(8))
        .ok_or_else(|| ferr(format!("layer stride 8·{k}² overflows")))
}

impl<R: Read> StepSource for TmsbReader<R> {
    fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    fn len(&self) -> usize {
        self.n
    }

    fn initial(&self) -> &[f64] {
        &self.initial
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn next_step(&mut self) -> Result<Option<&[f64]>, SourceError> {
        if self.pos + 1 >= self.n {
            return Ok(None);
        }
        let step = self.pos;
        let t = transmark_obs::Timer::start();
        // A manual fill loop instead of `read_exact`: on EOF it knows how
        // many bytes arrived, which distinguishes a payload that ends at a
        // layer boundary (clean truncation) from one that ends mid-layer —
        // the header's |Σ| disagrees with the actual stride, reported as
        // the typed [`SourceError::Stride`] rather than a short decode.
        let mut filled = 0;
        while filled < self.raw.len() {
            match self.reader.read(&mut self.raw[filled..]) {
                Ok(0) => break,
                Ok(nread) => filled += nread,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(SourceError::Io(e)),
            }
        }
        if filled < self.raw.len() {
            return Err(if filled == 0 {
                ferr(format!("layer {step} truncated"))
            } else {
                SourceError::Stride {
                    step,
                    expected: self.raw.len(),
                    actual: filled,
                }
            });
        }
        decode_f64s(&self.raw, &mut self.buf);
        validate_matrix(&self.buf, self.alphabet.len(), "transition", step)?;
        self.pos += 1;
        t.observe(transmark_obs::histogram!("dataplane.tmsb.decode_ns"));
        crate::obs::record_step(self.buf.len());
        Ok(Some(&self.buf))
    }
}

impl<R: Read + Seek> RewindableStepSource for TmsbReader<R> {
    fn rewind(&mut self) -> Result<(), SourceError> {
        crate::obs::record_rewind();
        self.reader.seek(SeekFrom::Start(self.layers_start))?;
        self.pos = 0;
        Ok(())
    }
}

/// The `.tmsb` prelude — everything before the layer payload — parsed
/// without consuming any layers.
///
/// This is the resume-oriented split of [`TmsbReader::new`]: a session
/// that checkpoints after `p` layers records only `p`; the peer that
/// resumes it re-reads the prelude, seeks (or slices) to
/// [`TmsbPrelude::layer_offset`]`(p)`, and feeds the remaining layers
/// through a [`RawLayerReader`].
pub struct TmsbPrelude {
    alphabet: Arc<Alphabet>,
    n: usize,
    initial: Vec<f64>,
    layers_start: u64,
}

impl TmsbPrelude {
    /// The sequence alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Sequence length `n` (number of positions; layers are `n − 1`).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (`n ≥ 1` is validated on parse).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The validated initial distribution (`|Σ|` entries).
    pub fn initial(&self) -> &[f64] {
        &self.initial
    }

    /// Byte offset of the first layer in the file.
    pub fn layers_start(&self) -> u64 {
        self.layers_start
    }

    /// Byte offset of layer `step` (0-based): where a resumed session
    /// that has already consumed `step` layers continues reading.
    pub fn layer_offset(&self, step: u64) -> u64 {
        let k = self.alphabet.len() as u64;
        self.layers_start + step * 8 * k * k
    }
}

/// Reads and validates the `.tmsb` prelude (header, names, initial)
/// from `reader`, leaving it positioned at the first layer.
pub fn read_prelude<R: Read>(reader: &mut R) -> Result<TmsbPrelude, SourceError> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ferr("truncated header")
        } else {
            SourceError::Io(e)
        }
    })?;
    let names_len = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes")) as usize;
    if !names_len.is_multiple_of(8) {
        return Err(ferr("names block length must be a multiple of 8"));
    }
    let mut names = vec![0u8; names_len];
    reader.read_exact(&mut names)?;
    let h = parse_header(&header, &names)?;
    layer_stride(h.k)?;

    let mut raw = vec![0u8; 8 * h.k];
    reader.read_exact(&mut raw)?;
    let mut initial = Vec::with_capacity(h.k);
    decode_f64s(&raw, &mut initial);
    validate_vector(&initial, "initial", 0)?;

    Ok(TmsbPrelude {
        alphabet: h.alphabet,
        n: h.n,
        initial,
        layers_start: (HEADER_LEN + names_len + 8 * h.k) as u64,
    })
}

/// A layer puller with *persisted fill state*, for byte streams that can
/// be interrupted mid-layer and retried.
///
/// [`TmsbReader`] owns its reader and treats any I/O error as fatal. A
/// serving loop multiplexing control frames into a data stream instead
/// surfaces an out-of-band request as a marker `io::Error` from `read` —
/// possibly in the middle of a layer. `RawLayerReader` keeps the bytes
/// already filled across that error, so the caller can service the
/// request (e.g. emit a checkpoint) and call
/// [`RawLayerReader::next_layer`] again; the retried call resumes the
/// fill exactly where it stopped and the decoded stream stays
/// bit-identical to an uninterrupted one.
pub struct RawLayerReader {
    k: usize,
    n: usize,
    pos: usize,
    raw: Vec<u8>,
    filled: usize,
    buf: Vec<f64>,
}

impl RawLayerReader {
    /// A reader positioned at layer 0 of `prelude`'s stream.
    pub fn new(prelude: &TmsbPrelude) -> Result<Self, SourceError> {
        Self::resume(prelude, 0)
    }

    /// A reader positioned at layer `consumed` — the continuation point
    /// of a session that checkpointed after consuming that many layers.
    /// The byte stream it is fed must start at
    /// [`TmsbPrelude::layer_offset`]`(consumed)`.
    pub fn resume(prelude: &TmsbPrelude, consumed: u64) -> Result<Self, SourceError> {
        Self::from_dims(prelude.alphabet.len(), prelude.n, consumed)
    }

    /// [`RawLayerReader::resume`] from recorded dimensions alone — for a
    /// resuming peer that checkpointed `(|Σ|, n, consumed)` and receives
    /// the byte stream already sliced past the prelude.
    pub fn from_dims(k: usize, n: usize, consumed: u64) -> Result<Self, SourceError> {
        let stride = layer_stride(k)?;
        if k == 0 {
            return Err(ferr("alphabet size must be ≥ 1"));
        }
        if n == 0 || consumed as usize > n - 1 {
            return Err(ferr(format!(
                "cannot resume at layer {consumed}: stream has {}",
                n.saturating_sub(1)
            )));
        }
        Ok(RawLayerReader {
            k,
            n,
            pos: consumed as usize,
            raw: vec![0u8; stride],
            filled: 0,
            buf: Vec::with_capacity(k * k),
        })
    }

    /// Layers fully consumed so far (counting any resume offset).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether an interrupted fill is pending — the last
    /// [`RawLayerReader::next_layer`] stopped mid-layer on an I/O error
    /// and must be retried before the state is at a layer boundary.
    pub fn mid_layer(&self) -> bool {
        self.filled != 0
    }

    /// Pulls the next validated layer from `reader`, or `None` when all
    /// `n − 1` layers have been consumed.
    ///
    /// On a non-[`Interrupted`] I/O error the partial fill is kept; a
    /// subsequent call with a reader that continues the same byte stream
    /// completes the layer. [`Interrupted`]: std::io::ErrorKind::Interrupted
    pub fn next_layer<R: Read>(&mut self, reader: &mut R) -> Result<Option<&[f64]>, SourceError> {
        if self.pos + 1 >= self.n {
            return Ok(None);
        }
        let step = self.pos;
        let t = transmark_obs::Timer::start();
        while self.filled < self.raw.len() {
            match reader.read(&mut self.raw[self.filled..]) {
                Ok(0) => break,
                Ok(nread) => self.filled += nread,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(SourceError::Io(e)),
            }
        }
        if self.filled < self.raw.len() {
            return Err(if self.filled == 0 {
                ferr(format!("layer {step} truncated"))
            } else {
                SourceError::Stride {
                    step,
                    expected: self.raw.len(),
                    actual: self.filled,
                }
            });
        }
        self.filled = 0;
        decode_f64s(&self.raw, &mut self.buf);
        validate_matrix(&self.buf, self.k, "transition", step)?;
        self.pos += 1;
        t.observe(transmark_obs::histogram!("dataplane.tmsb.decode_ns"));
        crate::obs::record_step(self.buf.len());
        Ok(Some(&self.buf))
    }
}

/// Zero-copy `.tmsb` view over a byte slice (e.g. a memory map).
///
/// When the slice is 8-aligned and the host is little-endian, each layer
/// is served as a direct `&[f64]` reinterpretation of the payload bytes —
/// no copy, no decode. Otherwise pulls fall back to decoding into an
/// internal buffer; results are bit-identical either way (the payload
/// *is* the IEEE-754 bit pattern).
pub struct TmsbSlice<'a> {
    alphabet: Arc<Alphabet>,
    n: usize,
    k: usize,
    initial: Vec<f64>,
    /// Layer payload bytes (`8·k²·(n−1)`, fixed stride).
    layers: &'a [u8],
    pos: usize,
    buf: Vec<f64>,
}

/// Reinterprets little-endian `f64` payload bytes in place when the
/// platform allows it.
fn cast_f64s(bytes: &[u8]) -> Option<&[f64]> {
    if cfg!(target_endian = "little")
        && (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>())
        && bytes.len().is_multiple_of(8)
    {
        // SAFETY: the pointer is checked to be 8-aligned, the length is a
        // multiple of 8, the returned slice borrows `bytes` (same
        // lifetime), and any bit pattern is a valid f64.
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, bytes.len() / 8) })
    } else {
        None
    }
}

impl<'a> TmsbSlice<'a> {
    /// Parses the header and validates the initial distribution; layers
    /// are validated lazily as they are pulled.
    pub fn new(data: &'a [u8]) -> Result<Self, SourceError> {
        if data.len() < HEADER_LEN {
            return Err(ferr("truncated header"));
        }
        let header: &[u8; HEADER_LEN] = data[..HEADER_LEN].try_into().expect("checked");
        let names_len = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes")) as usize;
        if !names_len.is_multiple_of(8) {
            return Err(ferr("names block length must be a multiple of 8"));
        }
        if data.len() < HEADER_LEN + names_len {
            return Err(ferr("truncated names block"));
        }
        let h = parse_header(header, &data[HEADER_LEN..HEADER_LEN + names_len])?;

        let initial_start = HEADER_LEN + names_len;
        let layers_start = initial_start + 8 * h.k;
        let stride = layer_stride(h.k)?;
        let layers_len = stride
            .checked_mul(h.n - 1)
            .and_then(|l| l.checked_add(layers_start))
            .ok_or_else(|| ferr(format!("layer payload for n = {} overflows", h.n)))?
            - layers_start;
        let expected_len = layers_start + layers_len;
        if data.len() != expected_len {
            // A mismatch that is a whole number of layers is a clean
            // truncation (or surplus); anything else means the payload's
            // stride disagrees with the header's |Σ| — typed so callers
            // can tell corruption from a short copy, and so no short
            // `&[f64]` layer view is ever produced.
            let actual_layers = data.len().saturating_sub(layers_start);
            if !actual_layers.is_multiple_of(stride) {
                return Err(SourceError::Stride {
                    step: actual_layers / stride,
                    expected: stride,
                    actual: actual_layers % stride,
                });
            }
            return Err(ferr(format!(
                "payload is {} bytes, expected {expected_len}",
                data.len()
            )));
        }

        let mut initial = Vec::with_capacity(h.k);
        decode_f64s(&data[initial_start..layers_start], &mut initial);
        validate_vector(&initial, "initial", 0)?;

        Ok(TmsbSlice {
            alphabet: h.alphabet,
            n: h.n,
            k: h.k,
            initial,
            layers: &data[layers_start..],
            pos: 0,
            buf: Vec::new(),
        })
    }

    /// Whether pulls are served zero-copy on this host/buffer.
    pub fn is_zero_copy(&self) -> bool {
        self.n == 1 || cast_f64s(self.layers).is_some()
    }

    /// Random access to step `i`'s raw (unvalidated) matrix view; `None`
    /// when the platform requires the copy fallback.
    pub fn matrix(&self, i: usize) -> Option<&[f64]> {
        let stride = 8 * self.k * self.k;
        cast_f64s(&self.layers[i * stride..(i + 1) * stride])
    }
}

impl StepSource for TmsbSlice<'_> {
    fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    fn len(&self) -> usize {
        self.n
    }

    fn initial(&self) -> &[f64] {
        &self.initial
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn next_step(&mut self) -> Result<Option<&[f64]>, SourceError> {
        if self.pos + 1 >= self.n {
            return Ok(None);
        }
        let step = self.pos;
        let stride = 8 * self.k * self.k;
        let bytes = &self.layers[step * stride..(step + 1) * stride];
        self.pos += 1;
        crate::obs::record_step(self.k * self.k);
        if let Some(view) = cast_f64s(bytes) {
            validate_matrix(view, self.k, "transition", step)?;
            Ok(Some(view))
        } else {
            decode_f64s(bytes, &mut self.buf);
            validate_matrix(&self.buf, self.k, "transition", step)?;
            Ok(Some(&self.buf))
        }
    }
}

impl RewindableStepSource for TmsbSlice<'_> {
    fn rewind(&mut self) -> Result<(), SourceError> {
        crate::obs::record_rewind();
        self.pos = 0;
        Ok(())
    }
}

/// Materializes a `.tmsb` byte buffer into a [`MarkovSequence`],
/// validating every distribution (the round-trip check of the
/// `tms ↔ tmsb` converter).
pub fn from_tmsb_bytes(data: &[u8]) -> Result<MarkovSequence, SourceError> {
    let mut slice = TmsbSlice::new(data)?;
    let alphabet = Arc::clone(slice.alphabet());
    let k = alphabet.len();
    let n = slice.len();
    let initial = slice.initial().to_vec();
    let mut transitions = Vec::with_capacity((n - 1) * k * k);
    while let Some(m) = slice.next_step()? {
        transitions.extend_from_slice(m);
    }
    Ok(from_validated_parts(alphabet, initial, transitions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_markov_sequence, RandomChainSpec};
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_automata::SymbolId;

    fn chains() -> Vec<MarkovSequence> {
        let mut rng = StdRng::seed_from_u64(99);
        let mut out = Vec::new();
        for len in [1usize, 2, 3, 9] {
            for k in [1usize, 2, 4] {
                out.push(random_markov_sequence(
                    &RandomChainSpec {
                        len,
                        n_symbols: k,
                        zero_prob: 0.3,
                    },
                    &mut rng,
                ));
            }
        }
        out
    }

    #[test]
    fn bytes_round_trip_bitwise() {
        for m in chains() {
            let bytes = to_tmsb_bytes(&m);
            let back = from_tmsb_bytes(&bytes).expect("round trip");
            assert_eq!(back.len(), m.len());
            assert_eq!(back.n_symbols(), m.n_symbols());
            for s in 0..m.n_symbols() as u32 {
                assert_eq!(
                    back.alphabet().name(SymbolId(s)),
                    m.alphabet().name(SymbolId(s))
                );
            }
            assert_eq!(back.initial_dist(), m.initial_dist());
            assert_eq!(back.transitions_flat(), m.transitions_flat());
        }
    }

    #[test]
    fn reader_streams_layers_and_rewinds() {
        let m = chains().pop().expect("nonempty");
        let bytes = to_tmsb_bytes(&m);
        let mut r = TmsbReader::new(std::io::Cursor::new(&bytes)).unwrap();
        assert_eq!(r.len(), m.len());
        assert_eq!(r.initial(), m.initial_dist());
        for i in 0..m.len() - 1 {
            let layer = r.next_step().unwrap().expect("layer");
            assert_eq!(layer, m.transition_matrix(i));
        }
        assert!(r.next_step().unwrap().is_none());
        r.rewind().unwrap();
        assert_eq!(r.next_step().unwrap().unwrap(), m.transition_matrix(0));
    }

    #[test]
    fn slice_view_matches_and_reports_zero_copy() {
        let m = chains().pop().expect("nonempty");
        let bytes = to_tmsb_bytes(&m);
        let mut s = TmsbSlice::new(&bytes).unwrap();
        let zero_copy = s.is_zero_copy();
        for i in 0..m.len() - 1 {
            let layer = s.next_step().unwrap().expect("layer");
            assert_eq!(layer, m.transition_matrix(i));
        }
        assert!(s.next_step().unwrap().is_none());
        // Vec<u8> from to_tmsb_bytes is at least 8-aligned on common
        // allocators; only assert consistency, not alignment.
        if zero_copy {
            assert!(s.matrix(0).is_some() || m.len() == 1);
        }
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let m = chains().pop().expect("nonempty");
        let bytes = to_tmsb_bytes(&m);

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(TmsbSlice::new(&bad), Err(SourceError::Format(_))));

        // Payload cut at a layer boundary: clean truncation.
        let stride = 8 * m.n_symbols() * m.n_symbols();
        assert!(matches!(
            TmsbSlice::new(&bytes[..bytes.len() - stride]),
            Err(SourceError::Format(_))
        ));

        // Payload cut mid-layer: the stride no longer matches the
        // header's |Σ| — typed stride error, never a short layer slice.
        match TmsbSlice::new(&bytes[..bytes.len() - 3]) {
            Err(SourceError::Stride {
                step,
                expected,
                actual,
            }) => {
                assert_eq!(step, m.len() - 2);
                assert_eq!(expected, stride);
                assert_eq!(actual, stride - 3);
            }
            Err(other) => panic!("expected stride error, got {other:?}"),
            Ok(_) => panic!("mid-layer cut accepted"),
        }

        // Surplus bytes that are not whole layers: also a stride error.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0u8; 11]);
        assert!(matches!(
            TmsbSlice::new(&padded),
            Err(SourceError::Stride { .. })
        ));

        // A layer row that no longer sums to 1.
        let mut invalid = bytes.clone();
        let len = invalid.len();
        invalid[len - 8..].copy_from_slice(&5.0f64.to_le_bytes());
        let mut s = TmsbSlice::new(&invalid).unwrap();
        let mut saw_model_error = false;
        loop {
            match s.next_step() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(SourceError::Model(_)) => {
                    saw_model_error = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(saw_model_error || m.len() == 1);
    }

    /// Drains a reader until it errors (panics if it finishes cleanly).
    fn drain_until_error<R: Read>(mut r: TmsbReader<R>) -> SourceError {
        loop {
            match r.next_step() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("malformed input streamed cleanly"),
                Err(e) => return e,
            }
        }
    }

    #[test]
    fn truncated_reader_errors_cleanly() {
        let m = chains().pop().expect("nonempty");
        let bytes = to_tmsb_bytes(&m);
        let stride = 8 * m.n_symbols() * m.n_symbols();

        // Missing whole layers: clean truncation at a layer boundary.
        let cut = &bytes[..bytes.len() - stride];
        match TmsbReader::new(std::io::Cursor::new(cut)) {
            Ok(r) => assert!(matches!(drain_until_error(r), SourceError::Format(_))),
            Err(e) => assert!(matches!(e, SourceError::Format(_) | SourceError::Io(_))),
        }

        // A partial final layer: the stream's stride disagrees with the
        // header's |Σ| — the reader reports how many bytes it did see
        // instead of decoding a short layer.
        let cut = &bytes[..bytes.len() - 5];
        match TmsbReader::new(std::io::Cursor::new(cut)) {
            Ok(r) => match drain_until_error(r) {
                SourceError::Stride {
                    step,
                    expected,
                    actual,
                } => {
                    assert_eq!(step, m.len() - 2);
                    assert_eq!(expected, stride);
                    assert_eq!(actual, stride - 5);
                }
                other => panic!("expected stride error, got {other:?}"),
            },
            Err(e) => assert!(matches!(e, SourceError::Format(_) | SourceError::Io(_))),
        }
    }

    #[test]
    fn future_version_is_a_typed_negotiable_error() {
        let m = chains().pop().expect("nonempty");
        let mut bytes = to_tmsb_bytes(&m);
        // Stamp a future format version into the header.
        bytes[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        for result in [
            TmsbSlice::new(&bytes).map(|_| ()),
            TmsbReader::new(std::io::Cursor::new(&bytes)).map(|_| ()),
            from_tmsb_bytes(&bytes).map(|_| ()),
        ] {
            match result {
                Err(SourceError::Version { found, supported }) => {
                    assert_eq!(found, VERSION + 1);
                    assert_eq!(supported, VERSION);
                }
                Err(other) => panic!("expected typed version error, got {other:?}"),
                Ok(()) => panic!("future version accepted"),
            }
        }
        // Version 0 (pre-release garbage) is equally negotiable.
        bytes[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            TmsbSlice::new(&bytes),
            Err(SourceError::Version { found: 0, .. })
        ));
    }

    #[test]
    fn prelude_and_raw_layers_match_reader() {
        for m in chains() {
            let bytes = to_tmsb_bytes(&m);
            let mut cursor = std::io::Cursor::new(&bytes);
            let prelude = read_prelude(&mut cursor).expect("prelude");
            assert_eq!(prelude.len(), m.len());
            assert_eq!(prelude.initial(), m.initial_dist());
            assert_eq!(prelude.alphabet().len(), m.n_symbols());
            assert_eq!(cursor.position(), prelude.layers_start());

            let mut raw = RawLayerReader::new(&prelude).unwrap();
            for i in 0..m.len() - 1 {
                assert_eq!(raw.position(), i);
                let layer = raw.next_layer(&mut cursor).unwrap().expect("layer");
                assert_eq!(layer, m.transition_matrix(i));
            }
            assert!(raw.next_layer(&mut cursor).unwrap().is_none());
            assert!(!raw.mid_layer());
        }
    }

    #[test]
    fn resume_slices_at_layer_offset() {
        let m = chains().pop().expect("nonempty");
        let bytes = to_tmsb_bytes(&m);
        let prelude = read_prelude(&mut std::io::Cursor::new(&bytes)).unwrap();
        for consumed in 0..m.len() as u64 {
            if consumed as usize > m.len() - 1 {
                break;
            }
            let mut raw = RawLayerReader::resume(&prelude, consumed).unwrap();
            let mut tail = std::io::Cursor::new(&bytes[prelude.layer_offset(consumed) as usize..]);
            for i in consumed as usize..m.len() - 1 {
                let layer = raw.next_layer(&mut tail).unwrap().expect("layer");
                assert_eq!(layer, m.transition_matrix(i), "resume {consumed} layer {i}");
            }
            assert!(raw.next_layer(&mut tail).unwrap().is_none());
        }
        // Resuming past the last layer is a typed error, not a panic.
        assert!(RawLayerReader::resume(&prelude, m.len() as u64).is_err());
    }

    /// A reader that yields a marker error after serving `until` bytes,
    /// then continues — the shape a serving loop's control-frame
    /// interruption presents to [`RawLayerReader`].
    struct InterruptOnce<'a> {
        bytes: &'a [u8],
        at: usize,
        until: usize,
        fired: bool,
    }

    impl Read for InterruptOnce<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.fired && self.at >= self.until {
                self.fired = true;
                return Err(std::io::Error::other("checkpoint requested"));
            }
            let cap = if self.fired {
                self.bytes.len()
            } else {
                self.until
            };
            let n = (cap - self.at).min(buf.len()).min(2);
            if n == 0 {
                return Ok(0);
            }
            buf[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn interrupted_fill_is_retryable_mid_layer() {
        let m = chains().pop().expect("nonempty");
        if m.len() < 2 {
            return;
        }
        let bytes = to_tmsb_bytes(&m);
        let prelude = read_prelude(&mut std::io::Cursor::new(&bytes)).unwrap();
        let payload = &bytes[prelude.layers_start() as usize..];
        // Interrupt at every byte offset inside the first layer.
        let stride = 8 * m.n_symbols() * m.n_symbols();
        for cut in [0usize, 1, 3, stride - 1, stride, stride + 5] {
            if cut > payload.len() {
                break;
            }
            let mut r = InterruptOnce {
                bytes: payload,
                at: 0,
                until: cut,
                fired: false,
            };
            let mut raw = RawLayerReader::new(&prelude).unwrap();
            let mut layers = Vec::new();
            loop {
                match raw.next_layer(&mut r) {
                    Ok(Some(layer)) => layers.push(layer.to_vec()),
                    Ok(None) => break,
                    Err(SourceError::Io(_)) => {
                        // The marker error: state is preserved; retry.
                        assert_eq!(raw.position(), layers.len());
                        continue;
                    }
                    Err(other) => panic!("cut {cut}: unexpected error {other}"),
                }
            }
            assert_eq!(layers.len(), m.len() - 1, "cut {cut}");
            for (i, layer) in layers.iter().enumerate() {
                assert_eq!(layer.as_slice(), m.transition_matrix(i), "cut {cut}");
            }
        }
    }

    /// A network-ish peer: serves its bytes in dribbles (1..=3 bytes per
    /// `read`), optionally cutting the connection after `limit` bytes —
    /// the shape a slow or dying TCP sender presents to `TmsbReader`.
    struct SlowPeer<'a> {
        bytes: &'a [u8],
        at: usize,
        limit: usize,
        calls: usize,
    }

    impl<'a> SlowPeer<'a> {
        fn new(bytes: &'a [u8], limit: usize) -> Self {
            SlowPeer {
                bytes,
                at: 0,
                limit,
                calls: 0,
            }
        }
    }

    impl Read for SlowPeer<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.calls += 1;
            let end = self.bytes.len().min(self.limit);
            if self.at >= end {
                return Ok(0);
            }
            // Deterministic 1/2/3-byte dribble, exercising every
            // partial-fill path in the reader's layer loop.
            let n = (self.calls % 3 + 1).min(end - self.at).min(buf.len());
            buf[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn slow_peer_streams_bitwise_identically() {
        for m in chains() {
            let bytes = to_tmsb_bytes(&m);
            let mut r =
                TmsbReader::new(SlowPeer::new(&bytes, bytes.len())).expect("header assembles");
            assert_eq!(r.initial(), m.initial_dist());
            for i in 0..m.len() - 1 {
                assert_eq!(
                    r.next_step().unwrap().expect("layer"),
                    m.transition_matrix(i)
                );
            }
            assert!(r.next_step().unwrap().is_none());
        }
    }

    #[test]
    fn slow_peer_truncation_is_typed_at_every_cut() {
        let m = chains().pop().expect("nonempty");
        let bytes = to_tmsb_bytes(&m);
        let stride = 8 * m.n_symbols() * m.n_symbols();
        for cut in [
            3usize,                      // inside the fixed header
            HEADER_LEN.min(bytes.len()), // header only, no payload
            bytes.len() - stride,        // clean layer-boundary truncation
            bytes.len() - 5,             // mid-layer, mid-dribble
        ] {
            match TmsbReader::new(SlowPeer::new(&bytes, cut)) {
                Ok(r) => {
                    let e = drain_until_error(r);
                    assert!(
                        matches!(
                            e,
                            SourceError::Format(_)
                                | SourceError::Stride { .. }
                                | SourceError::Io(_)
                        ),
                        "cut at {cut}: unexpected error {e:?}"
                    );
                }
                Err(e) => assert!(
                    matches!(e, SourceError::Format(_) | SourceError::Io(_)),
                    "cut at {cut}: unexpected header error {e:?}"
                ),
            }
        }
    }
}
