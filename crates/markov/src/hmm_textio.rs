//! A plain-text interchange format for HMMs.
//!
//! Completes the CLI pipeline: a stored model plus an observation
//! sequence yields a queryable Markov sequence (footnote 1's
//! translation), without writing any code.
//!
//! ```text
//! hmm v1
//! hidden rain sun
//! observations umbrella none
//! initial 0.5 0.5
//! transition
//! 0.7 0.3
//! 0.3 0.7
//! emission
//! 0.9 0.1
//! 0.2 0.8
//! ```
//!
//! `transition` is `|S|` rows of `|S|` probabilities; `emission` is `|S|`
//! rows of `|O|` probabilities. `#` comments and blank lines are ignored.

use std::fmt::Write as _;
use std::sync::Arc;

use transmark_automata::Alphabet;

use crate::hmm::Hmm;
use crate::textio::{ParseError, TextIoError};

fn err(line: usize, message: impl Into<String>) -> TextIoError {
    TextIoError::Parse(ParseError {
        line,
        message: message.into(),
    })
}

/// Serializes an HMM to the v1 text format.
pub fn to_text(hmm: &Hmm) -> String {
    let k = hmm.hidden_alphabet().len();
    let m = hmm.observation_alphabet().len();
    let mut out = String::new();
    out.push_str("hmm v1\nhidden");
    for (_, n) in hmm.hidden_alphabet().iter() {
        let _ = write!(out, " {n}");
    }
    out.push_str("\nobservations");
    for (_, n) in hmm.observation_alphabet().iter() {
        let _ = write!(out, " {n}");
    }
    out.push_str("\ninitial");
    for s in hmm.hidden_alphabet().ids() {
        let _ = write!(out, " {}", hmm.initial_prob(s));
    }
    out.push_str("\ntransition\n");
    for s in 0..k {
        let row: Vec<String> = (0..k)
            .map(|t| {
                hmm.transition_prob(
                    transmark_automata::SymbolId(s as u32),
                    transmark_automata::SymbolId(t as u32),
                )
                .to_string()
            })
            .collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out.push_str("emission\n");
    for s in 0..k {
        let row: Vec<String> = (0..m)
            .map(|o| {
                hmm.emission_prob(
                    transmark_automata::SymbolId(s as u32),
                    transmark_automata::SymbolId(o as u32),
                )
                .to_string()
            })
            .collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out
}

/// Parses the v1 text format; the result is validated by [`Hmm::new`].
pub fn from_text(text: &str) -> Result<Hmm, TextIoError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (ln, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if header != "hmm v1" {
        return Err(err(ln, format!("expected \"hmm v1\", found {header:?}")));
    }
    let mut alphabet_line = |prefix: &str| -> Result<Arc<Alphabet>, TextIoError> {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| err(0, format!("missing \"{prefix}\" line")))?;
        let names: Vec<&str> = line
            .strip_prefix(prefix)
            .ok_or_else(|| err(ln, format!("expected \"{prefix} <names…>\"")))?
            .split_whitespace()
            .collect();
        if names.is_empty() {
            return Err(err(ln, format!("{prefix} must list at least one symbol")));
        }
        let a = Alphabet::from_names(names.iter().copied());
        if a.len() != names.len() {
            return Err(err(ln, format!("duplicate names in {prefix}")));
        }
        Ok(Arc::new(a))
    };
    let hidden = alphabet_line("hidden")?;
    let observations = alphabet_line("observations")?;
    let (k, m) = (hidden.len(), observations.len());

    let parse_row =
        |ln: usize, body: &str, cols: usize, what: &str| -> Result<Vec<f64>, TextIoError> {
            let vals: Result<Vec<f64>, _> = body.split_whitespace().map(str::parse).collect();
            let vals = vals.map_err(|e| err(ln, format!("bad number in {what}: {e}")))?;
            if vals.len() != cols {
                return Err(err(
                    ln,
                    format!("{what} has {} entries, expected {cols}", vals.len()),
                ));
            }
            Ok(vals)
        };

    let (ln, init_line) = lines.next().ok_or_else(|| err(0, "missing initial line"))?;
    let initial = parse_row(
        ln,
        init_line
            .strip_prefix("initial")
            .ok_or_else(|| err(ln, "expected \"initial <p…>\""))?,
        k,
        "initial distribution",
    )?;

    let mut table = |header: &str, cols: usize| -> Result<Vec<f64>, TextIoError> {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| err(0, format!("missing \"{header}\" header")))?;
        if line != header {
            return Err(err(ln, format!("expected \"{header}\", found {line:?}")));
        }
        let mut out = Vec::with_capacity(k * cols);
        for row in 0..k {
            let (ln, body) = lines
                .next()
                .ok_or_else(|| err(0, format!("missing row {row} of {header}")))?;
            out.extend(parse_row(ln, body, cols, &format!("{header} row {row}"))?);
        }
        Ok(out)
    };
    let transition = table("transition", k)?;
    let emission = table("emission", m)?;
    if let Some((ln, extra)) = lines.next() {
        return Err(err(ln, format!("unexpected trailing content: {extra:?}")));
    }
    let observations = Arc::try_unwrap(observations).unwrap_or_else(|a| (*a).clone());
    Hmm::new(hidden, observations, initial, transition, emission).map_err(TextIoError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Hmm {
        let hidden = Alphabet::from_names(["rain", "sun"]);
        let obs = Alphabet::from_names(["umbrella", "none"]);
        Hmm::new(
            hidden,
            obs,
            vec![0.6, 0.4],
            vec![0.7, 0.3, 0.2, 0.8],
            vec![0.9, 0.1, 0.25, 0.75],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_parameters() {
        let hmm = toy();
        let back = from_text(&to_text(&hmm)).unwrap();
        let o = back.observation_alphabet().clone();
        let obs = vec![o.sym("umbrella"), o.sym("none")];
        // Same posterior ⇒ same parameters (given fixed structure).
        let a = hmm.posterior(&obs).unwrap();
        let b = back.posterior(&obs).unwrap();
        assert_eq!(a.initial_dist(), b.initial_dist());
        assert_eq!(
            hmm.log_likelihood(&obs).unwrap().to_bits(),
            back.log_likelihood(&obs).unwrap().to_bits()
        );
    }

    #[test]
    fn hand_written_file_parses() {
        let text = "# weather\nhmm v1\nhidden rain sun\nobservations u n\ninitial 0.5 0.5\ntransition\n0.7 0.3\n0.3 0.7\nemission\n0.9 0.1\n0.2 0.8\n";
        let hmm = from_text(text).unwrap();
        assert_eq!(hmm.hidden_alphabet().len(), 2);
        assert_eq!(hmm.observation_alphabet().len(), 2);
    }

    #[test]
    fn errors_are_located_and_classified() {
        assert!(matches!(from_text(""), Err(TextIoError::Parse(_))));
        let short_row =
            "hmm v1\nhidden a b\nobservations x\ninitial 1 0\ntransition\n1 0\n0\nemission\n1\n1\n";
        match from_text(short_row) {
            Err(TextIoError::Parse(e)) => assert_eq!(e.line, 7, "{e}"),
            other => panic!("expected located error, got {other:?}"),
        }
        // Rows that parse but are not distributions: a model error.
        let bad_dist = "hmm v1\nhidden a b\nobservations x\ninitial 0.7 0.7\ntransition\n1 0\n0 1\nemission\n1\n1\n";
        assert!(matches!(from_text(bad_dist), Err(TextIoError::Model(_))));
    }
}
