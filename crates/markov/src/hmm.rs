//! Hidden Markov models and their translation into Markov sequences.
//!
//! The paper's data arrives as the *posterior* of an HMM given a sequence
//! of observations (footnote 1 and Example 3.1: RFID antenna sightings →
//! distribution over location sequences). [`Hmm::posterior`] performs that
//! translation exactly: the conditional distribution
//! `P(S₁⋯Sₙ | O₁⋯Oₙ = o)` of a hidden chain given its observations is
//! itself a (time-inhomogeneous) Markov chain, obtained by treating
//! `π(s)·e(s,o₁)` and `T(s,t)·e(t,oᵢ₊₁)` as chain factors and running the
//! backward-message translation of [`crate::factors`].

use std::sync::Arc;

use rand::{Rng, RngExt};
use transmark_automata::{Alphabet, SymbolId};

use crate::error::MarkovError;
use crate::factors::chain_from_factors;
use crate::numeric::{approx_eq, KahanSum, DIST_TOLERANCE};
use crate::sequence::MarkovSequence;

/// A time-homogeneous hidden Markov model.
///
/// * hidden states are symbols of `hidden` (these become the node alphabet
///   of the posterior Markov sequence);
/// * observations are symbols of `observations`;
/// * `initial[s]`, `transition[s·K+t]`, `emission[s·M+o]` are the usual
///   parameter tables (`K` hidden states, `M` observation symbols).
#[derive(Debug, Clone)]
pub struct Hmm {
    hidden: Arc<Alphabet>,
    observations: Alphabet,
    initial: Vec<f64>,
    transition: Vec<f64>,
    emission: Vec<f64>,
}

impl Hmm {
    /// Builds and validates an HMM.
    pub fn new(
        hidden: impl Into<Arc<Alphabet>>,
        observations: Alphabet,
        initial: Vec<f64>,
        transition: Vec<f64>,
        emission: Vec<f64>,
    ) -> Result<Self, MarkovError> {
        let hidden = hidden.into();
        let k = hidden.len();
        let m = observations.len();
        if initial.len() != k {
            return Err(MarkovError::LengthMismatch {
                expected: k,
                actual: initial.len(),
            });
        }
        if transition.len() != k * k {
            return Err(MarkovError::LengthMismatch {
                expected: k * k,
                actual: transition.len(),
            });
        }
        if emission.len() != k * m {
            return Err(MarkovError::LengthMismatch {
                expected: k * m,
                actual: emission.len(),
            });
        }
        check_rows(&initial, 1, initial.len(), "initial")?;
        check_rows(&transition, k, k, "transition")?;
        check_rows(&emission, k, m, "emission")?;
        Ok(Self {
            hidden,
            observations,
            initial,
            transition,
            emission,
        })
    }

    /// The hidden-state alphabet.
    pub fn hidden_alphabet(&self) -> &Alphabet {
        &self.hidden
    }

    /// The observation alphabet.
    pub fn observation_alphabet(&self) -> &Alphabet {
        &self.observations
    }

    /// `P(S₁ = s)`.
    pub fn initial_prob(&self, s: SymbolId) -> f64 {
        self.initial[s.index()]
    }

    /// `P(Sᵢ₊₁ = t | Sᵢ = s)`.
    pub fn transition_prob(&self, s: SymbolId, t: SymbolId) -> f64 {
        self.transition[s.index() * self.hidden.len() + t.index()]
    }

    /// `P(Oᵢ = o | Sᵢ = s)`.
    pub fn emission_prob(&self, s: SymbolId, o: SymbolId) -> f64 {
        self.emission[s.index() * self.observations.len() + o.index()]
    }

    /// The exact posterior Markov sequence
    /// `μ = P(S₁⋯Sₙ | O₁⋯Oₙ = obs)`.
    ///
    /// This is the footnote-1 translation: the query engine then runs
    /// entirely on `μ`, never touching raw observations again.
    ///
    /// ```
    /// use transmark_automata::Alphabet;
    /// use transmark_markov::Hmm;
    ///
    /// // Rain/sun with umbrella observations.
    /// let hidden = Alphabet::from_names(["rain", "sun"]);
    /// let obs = Alphabet::from_names(["umbrella", "none"]);
    /// let hmm = Hmm::new(
    ///     hidden.clone(), obs.clone(),
    ///     vec![0.5, 0.5],
    ///     vec![0.7, 0.3, 0.3, 0.7],
    ///     vec![0.9, 0.1, 0.2, 0.8],
    /// )?;
    /// let seen = vec![obs.sym("umbrella"), obs.sym("umbrella")];
    /// let mu = hmm.posterior(&seen)?;
    /// // Two umbrella days make rain the most likely hidden sequence.
    /// let (best, _) = mu.most_likely_string();
    /// assert_eq!(best, vec![hidden.sym("rain"), hidden.sym("rain")]);
    /// # Ok::<(), transmark_markov::MarkovError>(())
    /// ```
    pub fn posterior(&self, obs: &[SymbolId]) -> Result<MarkovSequence, MarkovError> {
        if obs.is_empty() {
            return Err(MarkovError::EmptySequence);
        }
        let k = self.hidden.len();
        let phi0: Vec<f64> = (0..k)
            .map(|s| self.initial[s] * self.emission_prob(SymbolId(s as u32), obs[0]))
            .collect();
        let factors: Vec<Vec<f64>> = (1..obs.len())
            .map(|i| {
                let mut f = vec![0.0; k * k];
                for s in 0..k {
                    for t in 0..k {
                        f[s * k + t] = self.transition[s * k + t]
                            * self.emission_prob(SymbolId(t as u32), obs[i]);
                    }
                }
                f
            })
            .collect();
        chain_from_factors(Arc::clone(&self.hidden), &phi0, &factors)
    }

    /// The likelihood `P(O₁⋯Oₙ = obs)` via the forward algorithm (with
    /// per-step scaling; returns the log-likelihood to stay stable for
    /// long observation sequences).
    pub fn log_likelihood(&self, obs: &[SymbolId]) -> Result<f64, MarkovError> {
        if obs.is_empty() {
            return Err(MarkovError::EmptySequence);
        }
        let k = self.hidden.len();
        let mut alpha: Vec<f64> = (0..k)
            .map(|s| self.initial[s] * self.emission_prob(SymbolId(s as u32), obs[0]))
            .collect();
        let mut log_z = 0.0f64;
        let scale = |a: &mut Vec<f64>, log_z: &mut f64| -> Result<(), MarkovError> {
            let z: f64 = a.iter().copied().collect::<KahanSum>().total();
            if z <= 0.0 {
                return Err(MarkovError::ImpossibleEvidence);
            }
            for v in a.iter_mut() {
                *v /= z;
            }
            *log_z += z.ln();
            Ok(())
        };
        scale(&mut alpha, &mut log_z)?;
        for &o in &obs[1..] {
            let mut next = vec![0.0; k];
            for s in 0..k {
                if alpha[s] == 0.0 {
                    continue;
                }
                for t in 0..k {
                    let p = self.transition[s * k + t];
                    if p > 0.0 {
                        next[t] += alpha[s] * p * self.emission_prob(SymbolId(t as u32), o);
                    }
                }
            }
            alpha = next;
            scale(&mut alpha, &mut log_z)?;
        }
        Ok(log_z)
    }

    /// Classic Viterbi decoding: the most likely hidden sequence given
    /// `obs`, with its posterior-unnormalized log score. Used in tests to
    /// cross-check the posterior translation.
    pub fn viterbi(&self, obs: &[SymbolId]) -> Result<(Vec<SymbolId>, f64), MarkovError> {
        if obs.is_empty() {
            return Err(MarkovError::EmptySequence);
        }
        let k = self.hidden.len();
        let mut score: Vec<f64> = (0..k)
            .map(|s| (self.initial[s] * self.emission_prob(SymbolId(s as u32), obs[0])).ln())
            .collect();
        let mut back: Vec<Vec<usize>> = Vec::new();
        for &o in &obs[1..] {
            let mut next = vec![f64::NEG_INFINITY; k];
            let mut arg = vec![0usize; k];
            for s in 0..k {
                if score[s] == f64::NEG_INFINITY {
                    continue;
                }
                for t in 0..k {
                    let p = self.transition[s * k + t] * self.emission_prob(SymbolId(t as u32), o);
                    if p > 0.0 {
                        let cand = score[s] + p.ln();
                        if cand > next[t] {
                            next[t] = cand;
                            arg[t] = s;
                        }
                    }
                }
            }
            score = next;
            back.push(arg);
        }
        let (mut best, mut best_score) = (0usize, f64::NEG_INFINITY);
        for (s, &v) in score.iter().enumerate() {
            if v > best_score {
                best_score = v;
                best = s;
            }
        }
        if best_score == f64::NEG_INFINITY {
            return Err(MarkovError::ImpossibleEvidence);
        }
        let mut path = vec![best];
        for arg in back.iter().rev() {
            path.push(arg[*path.last().expect("nonempty")]);
        }
        path.reverse();
        Ok((
            path.into_iter().map(|i| SymbolId(i as u32)).collect(),
            best_score,
        ))
    }

    /// Samples a trajectory of `n` (hidden, observation) pairs.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> (Vec<SymbolId>, Vec<SymbolId>) {
        let k = self.hidden.len();
        let m = self.observations.len();
        let mut hidden = Vec::with_capacity(n);
        let mut obs = Vec::with_capacity(n);
        for i in 0..n {
            let s = if i == 0 {
                pick(&self.initial, rng)
            } else {
                let prev = hidden[i - 1] as usize;
                pick(&self.transition[prev * k..(prev + 1) * k], rng)
            };
            hidden.push(s as u32);
            let o = pick(&self.emission[s * m..(s + 1) * m], rng);
            obs.push(o as u32);
        }
        (
            hidden.into_iter().map(SymbolId).collect(),
            obs.into_iter().map(SymbolId).collect(),
        )
    }
}

fn pick<R: Rng + ?Sized>(dist: &[f64], rng: &mut R) -> usize {
    let mut u: f64 = rng.random();
    for (i, &p) in dist.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    dist.iter().rposition(|&p| p > 0.0).expect("positive mass")
}

fn check_rows(
    table: &[f64],
    rows: usize,
    cols: usize,
    what: &'static str,
) -> Result<(), MarkovError> {
    for r in 0..rows {
        let row = &table[r * cols..(r + 1) * cols];
        let mut sum = KahanSum::new();
        for &p in row {
            if !p.is_finite() || p < 0.0 {
                return Err(MarkovError::InvalidProbability {
                    what,
                    position: r,
                    value: p,
                });
            }
            sum.add(p);
        }
        let total = sum.total();
        if !approx_eq(total, 1.0, DIST_TOLERANCE, DIST_TOLERANCE) {
            return Err(MarkovError::NotADistribution {
                what,
                position: 0,
                row: r,
                sum: total,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::support;

    /// A 2-state, 2-observation HMM (noisy channel).
    fn toy_hmm() -> Hmm {
        let hidden = Alphabet::from_names(["rain", "sun"]);
        let obs = Alphabet::from_names(["umbrella", "none"]);
        Hmm::new(
            hidden,
            obs,
            vec![0.6, 0.4],
            vec![0.7, 0.3, 0.2, 0.8],
            vec![0.9, 0.1, 0.25, 0.75],
        )
        .unwrap()
    }

    /// Brute-force posterior: P(hidden | obs) by enumerating all hidden
    /// sequences.
    fn brute_posterior(hmm: &Hmm, obs: &[SymbolId], hidden: &[SymbolId]) -> f64 {
        let k = hmm.hidden_alphabet().len();
        let n = obs.len();
        let joint = |h: &[SymbolId]| -> f64 {
            let mut p = hmm.initial_prob(h[0]) * hmm.emission_prob(h[0], obs[0]);
            for i in 1..n {
                p *= hmm.transition_prob(h[i - 1], h[i]) * hmm.emission_prob(h[i], obs[i]);
            }
            p
        };
        let mut z = 0.0;
        let mut stack: Vec<Vec<SymbolId>> = vec![vec![]];
        for _ in 0..n {
            stack = stack
                .into_iter()
                .flat_map(|s| {
                    (0..k).map(move |c| {
                        let mut t = s.clone();
                        t.push(SymbolId(c as u32));
                        t
                    })
                })
                .collect();
        }
        for h in &stack {
            z += joint(h);
        }
        joint(hidden) / z
    }

    #[test]
    fn posterior_matches_brute_force() {
        let hmm = toy_hmm();
        let o = hmm.observation_alphabet().clone();
        let obs = vec![o.sym("umbrella"), o.sym("none"), o.sym("umbrella")];
        let m = hmm.posterior(&obs).unwrap();
        for (s, p) in support(&m) {
            let expected = brute_posterior(&hmm, &obs, &s);
            assert!(
                approx_eq(p, expected, 1e-12, 1e-10),
                "hidden {s:?}: chain gives {p}, brute force {expected}"
            );
        }
        // Posterior support must cover all positive-probability sequences.
        let total: f64 = support(&m).iter().map(|(_, p)| p).sum();
        assert!(approx_eq(total, 1.0, 1e-10, 0.0));
    }

    #[test]
    fn log_likelihood_matches_enumeration() {
        let hmm = toy_hmm();
        let o = hmm.observation_alphabet().clone();
        let obs = vec![
            o.sym("none"),
            o.sym("none"),
            o.sym("umbrella"),
            o.sym("none"),
        ];
        let k = hmm.hidden_alphabet().len();
        let mut z = 0.0;
        let mut seqs: Vec<Vec<SymbolId>> = vec![vec![]];
        for _ in 0..obs.len() {
            seqs = seqs
                .into_iter()
                .flat_map(|s| {
                    (0..k).map(move |c| {
                        let mut t = s.clone();
                        t.push(SymbolId(c as u32));
                        t
                    })
                })
                .collect();
        }
        for h in &seqs {
            let mut p = hmm.initial_prob(h[0]) * hmm.emission_prob(h[0], obs[0]);
            for i in 1..obs.len() {
                p *= hmm.transition_prob(h[i - 1], h[i]) * hmm.emission_prob(h[i], obs[i]);
            }
            z += p;
        }
        let ll = hmm.log_likelihood(&obs).unwrap();
        assert!(
            approx_eq(ll.exp(), z, 1e-12, 1e-10),
            "ll.exp()={} z={z}",
            ll.exp()
        );
    }

    #[test]
    fn viterbi_agrees_with_posterior_most_likely() {
        let hmm = toy_hmm();
        let o = hmm.observation_alphabet().clone();
        let obs = vec![o.sym("umbrella"), o.sym("umbrella"), o.sym("none")];
        let (vit, _) = hmm.viterbi(&obs).unwrap();
        let m = hmm.posterior(&obs).unwrap();
        let (best, _) = m.most_likely_string();
        assert_eq!(vit, best);
    }

    #[test]
    fn impossible_evidence_is_reported() {
        let hidden = Alphabet::from_names(["a"]);
        let obs = Alphabet::from_names(["x", "y"]);
        // State "a" never emits "y".
        let hmm = Hmm::new(hidden, obs.clone(), vec![1.0], vec![1.0], vec![1.0, 0.0]).unwrap();
        let seq = vec![obs.sym("y")];
        assert!(matches!(
            hmm.posterior(&seq),
            Err(MarkovError::ImpossibleEvidence)
        ));
        assert!(matches!(
            hmm.log_likelihood(&seq),
            Err(MarkovError::ImpossibleEvidence)
        ));
    }

    #[test]
    fn sampling_produces_consistent_pairs() {
        use rand::{rngs::StdRng, SeedableRng};
        let hmm = toy_hmm();
        let mut rng = StdRng::seed_from_u64(7);
        let (hidden, obs) = hmm.sample(&mut rng, 50);
        assert_eq!(hidden.len(), 50);
        assert_eq!(obs.len(), 50);
        // Every sampled step must have positive model probability.
        assert!(hmm.initial_prob(hidden[0]) > 0.0);
        for i in 1..50 {
            assert!(hmm.transition_prob(hidden[i - 1], hidden[i]) > 0.0);
            assert!(hmm.emission_prob(hidden[i], obs[i]) > 0.0);
        }
    }

    #[test]
    fn constructor_validates_tables() {
        let hidden = Alphabet::from_names(["a", "b"]);
        let obs = Alphabet::from_names(["x"]);
        let bad = Hmm::new(
            hidden,
            obs,
            vec![0.5, 0.4], // sums to 0.9
            vec![1.0, 0.0, 0.0, 1.0],
            vec![1.0, 1.0],
        );
        assert!(matches!(bad, Err(MarkovError::NotADistribution { .. })));
    }
}
