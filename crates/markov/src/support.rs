//! Exhaustive enumeration of a Markov sequence's support.
//!
//! `support(μ)` yields every string `s ∈ Σⁿ` with `p(s) > 0` together with
//! its probability. This is exponential in `n` by nature — it exists as
//! the *brute-force oracle* for the engine's tests and for the paper's
//! tiny running example (where the support is small), not as a query
//! mechanism.

use transmark_automata::SymbolId;

use crate::sequence::MarkovSequence;

/// All `(string, probability)` pairs with positive probability, in
/// lexicographic order of the string (by symbol id).
///
/// Cost is `O(|support| · n)`; callers are expected to use this only for
/// small instances (tests, examples, oracles).
pub fn support(m: &MarkovSequence) -> Vec<(Vec<SymbolId>, f64)> {
    let mut out = Vec::new();
    let mut prefix: Vec<SymbolId> = Vec::with_capacity(m.len());
    for s in 0..m.n_symbols() {
        let sym = SymbolId(s as u32);
        let p = m.initial_prob(sym);
        if p > 0.0 {
            prefix.push(sym);
            recurse(m, &mut prefix, p, &mut out);
            prefix.pop();
        }
    }
    out
}

fn recurse(
    m: &MarkovSequence,
    prefix: &mut Vec<SymbolId>,
    p: f64,
    out: &mut Vec<(Vec<SymbolId>, f64)>,
) {
    if prefix.len() == m.len() {
        out.push((prefix.clone(), p));
        return;
    }
    let i = prefix.len() - 1;
    let from = *prefix.last().expect("nonempty prefix");
    for t in 0..m.n_symbols() {
        let sym = SymbolId(t as u32);
        let q = m.transition_prob(i, from, sym);
        if q > 0.0 {
            prefix.push(sym);
            recurse(m, prefix, p * q, out);
            prefix.pop();
        }
    }
}

/// The number of positive-probability strings (same traversal as
/// [`support`], without materializing the strings).
pub fn support_size(m: &MarkovSequence) -> usize {
    fn count(m: &MarkovSequence, i: usize, from: SymbolId) -> usize {
        if i == m.len() - 1 {
            return 1;
        }
        (0..m.n_symbols())
            .filter(|&t| m.transition_prob(i, from, SymbolId(t as u32)) > 0.0)
            .map(|t| count(m, i + 1, SymbolId(t as u32)))
            .sum()
    }
    (0..m.n_symbols())
        .filter(|&s| m.initial_prob(SymbolId(s as u32)) > 0.0)
        .map(|s| count(m, 0, SymbolId(s as u32)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;
    use crate::sequence::MarkovSequenceBuilder;
    use transmark_automata::Alphabet;

    fn chain() -> MarkovSequence {
        let a = Alphabet::from_names(["p", "q"]);
        let (p, q) = (a.sym("p"), a.sym("q"));
        MarkovSequenceBuilder::new(a, 3)
            .initial(p, 0.5)
            .initial(q, 0.5)
            .transition(0, p, p, 1.0)
            .transition(0, q, p, 0.5)
            .transition(0, q, q, 0.5)
            .transition(1, p, q, 1.0)
            .transition(1, q, p, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn support_sums_to_one_and_matches_probabilities() {
        let m = chain();
        let sup = support(&m);
        let total: f64 = sup.iter().map(|(_, p)| p).sum();
        assert!(approx_eq(total, 1.0, 1e-12, 0.0));
        for (s, p) in &sup {
            assert!(approx_eq(*p, m.string_probability(s).unwrap(), 1e-15, 0.0));
            assert!(*p > 0.0);
        }
        assert_eq!(sup.len(), support_size(&m));
        assert_eq!(sup.len(), 3); // ppq, qpq, qqp
    }

    #[test]
    fn support_is_lexicographically_sorted() {
        let m = chain();
        let sup = support(&m);
        for w in sup.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn singleton_sequence() {
        let a = Alphabet::from_names(["p", "q"]);
        let m = MarkovSequenceBuilder::new(a.clone(), 1)
            .initial(a.sym("q"), 1.0)
            .build()
            .unwrap();
        let sup = support(&m);
        assert_eq!(sup, vec![(vec![a.sym("q")], 1.0)]);
    }
}
