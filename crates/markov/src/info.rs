//! Information-theoretic utilities for Markov sequences.
//!
//! A Markov-sequence store needs to *quantify* the uncertainty it manages
//! — which streams are noisy enough to need review, how far a posterior
//! is from its prior, how much evidence a conditioning step bought. All
//! three questions have exact, closed-form answers on Markov chains, in
//! time `O(n·|Σ|²)`:
//!
//! * [`entropy`] — the Shannon entropy of the whole distribution over
//!   `Σⁿ`, via the chain rule
//!   `H(S) = H(S₁) + Σᵢ H(Sᵢ₊₁ | Sᵢ)`;
//! * [`kl_divergence`] — `KL(μ ‖ ν)` between two sequences over the same
//!   alphabet and length, via the analogous chain rule under `μ`'s
//!   marginals;
//! * [`perplexity`] — `2^{H(S)/n}`, the per-position effective branching
//!   factor (the speech-recognition convention).
//!
//! All quantities use natural units internally and are returned in
//! **bits**.

use transmark_automata::SymbolId;

use crate::error::MarkovError;
use crate::numeric::KahanSum;
use crate::sequence::MarkovSequence;

/// `x·log₂(x)` with the `0·log 0 = 0` convention.
#[inline]
fn xlog2(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.log2()
    }
}

/// The Shannon entropy `H(S)` of the distribution over `Σⁿ`, in bits.
///
/// Chain rule: `H(S) = H(S₁) + Σᵢ Σₓ Pr(Sᵢ = x) · H(μᵢ→(x, ·))`.
pub fn entropy(m: &MarkovSequence) -> f64 {
    let marginals = m.marginals();
    let mut total = KahanSum::new();
    for &p in &marginals[0] {
        total.add(-xlog2(p));
    }
    for i in 0..m.len() - 1 {
        for (x, &px) in marginals[i].iter().enumerate() {
            if px == 0.0 {
                continue;
            }
            let row = m.transition_row(i, SymbolId(x as u32));
            let mut h_row = KahanSum::new();
            for &q in row {
                h_row.add(-xlog2(q));
            }
            total.add(px * h_row.total());
        }
    }
    total.total().max(0.0)
}

/// The per-position perplexity `2^{H(S)/n}` — between 1 (deterministic)
/// and `|Σ|` (uniform i.i.d.).
pub fn perplexity(m: &MarkovSequence) -> f64 {
    (entropy(m) / m.len() as f64).exp2()
}

/// `KL(μ ‖ ν)` in bits, for sequences over the same alphabet and length.
///
/// Chain rule under `μ`:
/// `KL = Σₓ μ₀(x)·log(μ₀(x)/ν₀(x)) + Σᵢ Σₓ Prμ(Sᵢ=x)·KL(μᵢ→(x,·) ‖ νᵢ→(x,·))`.
///
/// Returns `+∞` when `μ` puts mass somewhere `ν` does not (absolute
/// continuity fails) and an error on shape mismatch.
pub fn kl_divergence(mu: &MarkovSequence, nu: &MarkovSequence) -> Result<f64, MarkovError> {
    if mu.n_symbols() != nu.n_symbols() {
        return Err(MarkovError::AlphabetMismatch {
            left: mu.n_symbols(),
            right: nu.n_symbols(),
        });
    }
    if mu.len() != nu.len() {
        return Err(MarkovError::LengthMismatch {
            expected: mu.len(),
            actual: nu.len(),
        });
    }
    let mut total = KahanSum::new();
    let term = |p: f64, q: f64| -> f64 {
        if p == 0.0 {
            0.0
        } else if q == 0.0 {
            f64::INFINITY
        } else {
            p * (p / q).log2()
        }
    };
    for (x, &p) in mu.initial_dist().iter().enumerate() {
        let t = term(p, nu.initial_dist()[x]);
        if t.is_infinite() {
            return Ok(f64::INFINITY);
        }
        total.add(t);
    }
    let marginals = mu.marginals();
    for i in 0..mu.len() - 1 {
        for (x, &px) in marginals[i].iter().enumerate() {
            if px == 0.0 {
                continue;
            }
            let rm = mu.transition_row(i, SymbolId(x as u32));
            let rn = nu.transition_row(i, SymbolId(x as u32));
            for (pm, pn) in rm.iter().zip(rn.iter()) {
                let t = term(*pm, *pn);
                if t.is_infinite() {
                    return Ok(f64::INFINITY);
                }
                total.add(px * t);
            }
        }
    }
    Ok(total.total().max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_markov_sequence, RandomChainSpec};
    use crate::numeric::approx_eq;
    use crate::support::support;
    use crate::MarkovSequenceBuilder;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_automata::Alphabet;

    /// Brute-force entropy: `-Σ p log₂ p` over the support.
    fn brute_entropy(m: &MarkovSequence) -> f64 {
        -support(m).iter().map(|(_, p)| xlog2(*p)).sum::<f64>()
    }

    fn brute_kl(mu: &MarkovSequence, nu: &MarkovSequence) -> f64 {
        let mut total = 0.0;
        for (s, p) in support(mu) {
            let q = nu.string_probability(&s).unwrap();
            if q == 0.0 {
                return f64::INFINITY;
            }
            total += p * (p / q).log2();
        }
        total
    }

    #[test]
    fn entropy_matches_brute_force_on_random_chains() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 4,
                    n_symbols: 3,
                    zero_prob: 0.3,
                },
                &mut rng,
            );
            let fast = entropy(&m);
            let brute = brute_entropy(&m);
            assert!(approx_eq(fast, brute, 1e-9, 1e-7), "{fast} vs {brute}");
        }
    }

    #[test]
    fn entropy_extremes() {
        let a = Alphabet::of_chars("xy");
        // Deterministic chain: zero entropy, perplexity 1.
        let det =
            MarkovSequence::homogeneous(a.clone(), 5, &[1.0, 0.0], &[0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(entropy(&det).abs() < 1e-12);
        assert!((perplexity(&det) - 1.0).abs() < 1e-12);
        // Uniform i.i.d.: n bits over a binary alphabet, perplexity 2.
        let uni = MarkovSequenceBuilder::new(a, 5)
            .uniform_all()
            .build()
            .unwrap();
        assert!(approx_eq(entropy(&uni), 5.0, 1e-12, 0.0));
        assert!(approx_eq(perplexity(&uni), 2.0, 1e-12, 0.0));
    }

    #[test]
    fn kl_matches_brute_force_and_is_nonnegative() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            // zero_prob = 0 keeps ν absolutely continuous w.r.t. μ.
            let mu = random_markov_sequence(
                &RandomChainSpec {
                    len: 4,
                    n_symbols: 2,
                    zero_prob: 0.0,
                },
                &mut rng,
            );
            let nu = random_markov_sequence(
                &RandomChainSpec {
                    len: 4,
                    n_symbols: 2,
                    zero_prob: 0.0,
                },
                &mut rng,
            );
            let fast = kl_divergence(&mu, &nu).unwrap();
            let brute = brute_kl(&mu, &nu);
            assert!(approx_eq(fast, brute, 1e-9, 1e-7), "{fast} vs {brute}");
            assert!(fast >= 0.0);
            // KL(μ‖μ) = 0.
            assert!(kl_divergence(&mu, &mu).unwrap().abs() < 1e-12);
        }
    }

    #[test]
    fn kl_detects_support_violations() {
        let a = Alphabet::of_chars("xy");
        let mu = MarkovSequenceBuilder::new(a.clone(), 2)
            .uniform_all()
            .build()
            .unwrap();
        let nu = MarkovSequence::homogeneous(a, 2, &[1.0, 0.0], &[1.0, 0.0, 0.5, 0.5]).unwrap();
        assert_eq!(kl_divergence(&mu, &nu).unwrap(), f64::INFINITY);
    }

    #[test]
    fn kl_validates_shapes() {
        let a2 = Alphabet::of_chars("xy");
        let a3 = Alphabet::of_chars("xyz");
        let mu = MarkovSequenceBuilder::new(a2.clone(), 2)
            .uniform_all()
            .build()
            .unwrap();
        let nu3 = MarkovSequenceBuilder::new(a3, 2)
            .uniform_all()
            .build()
            .unwrap();
        assert!(kl_divergence(&mu, &nu3).is_err());
        let nu_long = MarkovSequenceBuilder::new(a2, 3)
            .uniform_all()
            .build()
            .unwrap();
        assert!(kl_divergence(&mu, &nu_long).is_err());
    }

    #[test]
    fn conditioning_reduces_entropy_on_average() {
        // H(S | evidence) averaged over the evidence value ≤ H(S).
        use crate::seqops::{condition, Evidence};
        let mut rng = StdRng::seed_from_u64(17);
        let m = random_markov_sequence(
            &RandomChainSpec {
                len: 4,
                n_symbols: 2,
                zero_prob: 0.0,
            },
            &mut rng,
        );
        let h = entropy(&m);
        let marg = m.marginals();
        let mut expected_conditional = 0.0;
        for node in 0..2u32 {
            let pe = marg[2][node as usize];
            if pe > 0.0 {
                let cond = condition(&m, &[(2, Evidence::Exactly(SymbolId(node)))]).unwrap();
                expected_conditional += pe * entropy(&cond);
            }
        }
        assert!(
            expected_conditional <= h + 1e-9,
            "{expected_conditional} > {h}"
        );
    }
}
