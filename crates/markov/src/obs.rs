//! Data-plane metric helpers shared by the step sources.
//!
//! Every [`crate::source::StepSource`] pull funnels through
//! [`record_step`] so `dataplane.steps` / `dataplane.bytes` mean the same
//! thing regardless of which source served the layer. Decode timing is
//! recorded only where real decoding happens (`.tms` parsing, `.tmsb`
//! read+decode); the zero-copy in-memory and slice paths count steps and
//! bytes but skip the clock — two relaxed atomic adds is their entire
//! instrumentation cost.

/// Records one pulled step layer of `entries` f64 cells. Also feeds the
/// query-scoped profiler's byte throughput when a recorder is active
/// (inactive cost: one relaxed load).
#[inline]
pub(crate) fn record_step(entries: usize) {
    let bytes = 8 * entries as u64;
    transmark_obs::counter!("dataplane.steps").inc();
    transmark_obs::counter!("dataplane.bytes").add(bytes);
    transmark_obs::profile::bytes(bytes);
}

/// Records one source rewind: a counter bump plus a timeline instant so
/// re-reads are visible in per-query traces.
#[inline]
pub(crate) fn record_rewind() {
    transmark_obs::counter!("dataplane.rewinds").inc();
    transmark_obs::profile::instant("dataplane.rewind");
}
