//! Data-plane metric helpers shared by the step sources.
//!
//! Every [`crate::source::StepSource`] pull funnels through
//! [`record_step`] so `dataplane.steps` / `dataplane.bytes` mean the same
//! thing regardless of which source served the layer. Decode timing is
//! recorded only where real decoding happens (`.tms` parsing, `.tmsb`
//! read+decode); the zero-copy in-memory and slice paths count steps and
//! bytes but skip the clock — two relaxed atomic adds is their entire
//! instrumentation cost.

/// Records one pulled step layer of `entries` f64 cells.
#[inline]
pub(crate) fn record_step(entries: usize) {
    transmark_obs::counter!("dataplane.steps").inc();
    transmark_obs::counter!("dataplane.bytes").add(8 * entries as u64);
}
