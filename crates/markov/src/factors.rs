//! Translating chain-structured Gibbs distributions into Markov sequences.
//!
//! Both translations the paper relies on — HMM-conditioned-on-observations
//! (footnote 1) and linear-chain CRFs \[37\] — are instances of one fact:
//! any distribution of the form
//!
//! ```text
//! P(s₁⋯sₙ) ∝ φ₀(s₁) · ∏_{i=1}^{n-1} ψᵢ(sᵢ, sᵢ₊₁)
//! ```
//!
//! with nonnegative factors is a time-inhomogeneous Markov chain, with
//! conditionals recoverable by backward message passing:
//!
//! ```text
//! βₙ(s) = 1,      βᵢ(s) ∝ Σ_t ψᵢ(s,t)·βᵢ₊₁(t)
//! μ₀→(s)   ∝ φ₀(s)·β₁(s)
//! μᵢ→(s,t) ∝ ψᵢ(s,t)·βᵢ₊₁(t)        (normalized per row)
//! ```
//!
//! Messages are renormalized at every step, so the translation is stable
//! for arbitrarily long chains (no underflow), and rows that get zero mass
//! (nodes that cannot occur at that position) become deterministic
//! self-loops to honour the paper's requirement that *every* row of a
//! Markov sequence is a distribution.

use std::sync::Arc;

use transmark_automata::Alphabet;

use crate::error::MarkovError;
use crate::numeric::KahanSum;
use crate::sequence::{from_validated_parts, MarkovSequence};

/// Converts a chain Gibbs distribution (factor chain) into the equivalent
/// [`MarkovSequence`].
///
/// * `phi0` — length-`|Σ|` nonnegative vector (position-1 factor).
/// * `factors` — `n-1` row-major `|Σ|²` nonnegative matrices.
///
/// Returns [`MarkovError::ImpossibleEvidence`] if the total mass is zero.
pub fn chain_from_factors(
    alphabet: impl Into<Arc<Alphabet>>,
    phi0: &[f64],
    factors: &[Vec<f64>],
) -> Result<MarkovSequence, MarkovError> {
    let alphabet = alphabet.into();
    let k = alphabet.len();
    if phi0.len() != k {
        return Err(MarkovError::LengthMismatch {
            expected: k,
            actual: phi0.len(),
        });
    }
    for (i, m) in factors.iter().enumerate() {
        if m.len() != k * k {
            return Err(MarkovError::LengthMismatch {
                expected: k * k,
                actual: m.len(),
            });
        }
        for &v in m {
            if !v.is_finite() || v < 0.0 {
                return Err(MarkovError::InvalidProbability {
                    what: "factor",
                    position: i,
                    value: v,
                });
            }
        }
    }
    for &v in phi0 {
        if !v.is_finite() || v < 0.0 {
            return Err(MarkovError::InvalidProbability {
                what: "phi0",
                position: 0,
                value: v,
            });
        }
    }

    let n_minus_1 = factors.len();

    // Backward messages, renormalized at each position.
    // beta[i] corresponds to position i (0-based), beta[n-1] = 1.
    let mut betas: Vec<Vec<f64>> = vec![Vec::new(); n_minus_1 + 1];
    betas[n_minus_1] = vec![1.0; k];
    for i in (0..n_minus_1).rev() {
        let next = &betas[i + 1];
        let mut b = vec![0.0; k];
        let mut total = KahanSum::new();
        for s in 0..k {
            let mut acc = KahanSum::new();
            let row = &factors[i][s * k..(s + 1) * k];
            for (t, &psi) in row.iter().enumerate() {
                if psi > 0.0 && next[t] > 0.0 {
                    acc.add(psi * next[t]);
                }
            }
            b[s] = acc.total();
            total.add(b[s]);
        }
        let z = total.total();
        if z > 0.0 {
            for v in &mut b {
                *v /= z;
            }
        }
        betas[i] = b;
    }

    // Initial distribution.
    let mut initial = vec![0.0; k];
    let mut z0 = KahanSum::new();
    for s in 0..k {
        let v = phi0[s] * betas[0][s];
        initial[s] = v;
        z0.add(v);
    }
    let z0 = z0.total();
    if z0 <= 0.0 {
        return Err(MarkovError::ImpossibleEvidence);
    }
    for v in &mut initial {
        *v /= z0;
    }

    // Row-normalized transition matrices, appended to one flat buffer.
    let mut transitions = Vec::with_capacity(n_minus_1 * k * k);
    for i in 0..n_minus_1 {
        let next = &betas[i + 1];
        let mut m = vec![0.0; k * k];
        for s in 0..k {
            let frow = &factors[i][s * k..(s + 1) * k];
            let row = &mut m[s * k..(s + 1) * k];
            let mut total = KahanSum::new();
            for (t, &psi) in frow.iter().enumerate() {
                let v = psi * next[t];
                row[t] = v;
                total.add(v);
            }
            let z = total.total();
            if z > 0.0 {
                for v in row.iter_mut() {
                    *v /= z;
                }
            } else {
                // Dead row: the node cannot occur at position i with
                // positive posterior mass. Any distribution is valid here;
                // use a self-loop.
                row[s] = 1.0;
            }
        }
        transitions.extend_from_slice(&m);
    }

    Ok(from_validated_parts(alphabet, initial, transitions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;
    use transmark_automata::SymbolId;

    /// Brute-force Gibbs probability of a string.
    fn gibbs_prob(phi0: &[f64], factors: &[Vec<f64>], k: usize, s: &[usize]) -> f64 {
        let mut p = phi0[s[0]];
        for i in 0..s.len() - 1 {
            p *= factors[i][s[i] * k + s[i + 1]];
        }
        p
    }

    fn all_strings(k: usize, n: usize) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = vec![vec![]];
        for _ in 0..n {
            out = out
                .into_iter()
                .flat_map(|s| {
                    (0..k).map(move |c| {
                        let mut t = s.clone();
                        t.push(c);
                        t
                    })
                })
                .collect();
        }
        out
    }

    #[test]
    fn chain_matches_gibbs_distribution() {
        let alphabet = Alphabet::from_names(["a", "b", "c"]);
        let k = 3;
        let phi0 = vec![2.0, 1.0, 0.0];
        let factors = vec![
            vec![1.0, 2.0, 0.5, 0.0, 3.0, 1.0, 1.0, 1.0, 1.0],
            vec![0.5, 0.5, 0.5, 2.0, 0.0, 1.0, 0.0, 0.0, 4.0],
        ];
        let m = chain_from_factors(alphabet, &phi0, &factors).unwrap();

        // Normalizing constant by brute force.
        let z: f64 = all_strings(k, 3)
            .iter()
            .map(|s| gibbs_prob(&phi0, &factors, k, s))
            .sum();

        for s in all_strings(k, 3) {
            let syms: Vec<SymbolId> = s.iter().map(|&i| SymbolId(i as u32)).collect();
            let expected = gibbs_prob(&phi0, &factors, k, &s) / z;
            let actual = m.string_probability(&syms).unwrap();
            assert!(
                approx_eq(actual, expected, 1e-12, 1e-10),
                "string {s:?}: got {actual}, want {expected}"
            );
        }
    }

    #[test]
    fn zero_mass_is_rejected() {
        let alphabet = Alphabet::from_names(["a", "b"]);
        let phi0 = vec![1.0, 0.0];
        // Factor forbids everything reachable from a.
        let factors = vec![vec![0.0, 0.0, 1.0, 1.0]];
        assert!(matches!(
            chain_from_factors(alphabet, &phi0, &factors),
            Err(MarkovError::ImpossibleEvidence)
        ));
    }

    #[test]
    fn negative_factor_is_rejected() {
        let alphabet = Alphabet::from_names(["a", "b"]);
        let phi0 = vec![1.0, 1.0];
        let factors = vec![vec![1.0, -0.5, 1.0, 1.0]];
        assert!(matches!(
            chain_from_factors(alphabet, &phi0, &factors),
            Err(MarkovError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn length_one_chain() {
        let alphabet = Alphabet::from_names(["a", "b"]);
        let m = chain_from_factors(alphabet, &[3.0, 1.0], &[]).unwrap();
        assert_eq!(m.len(), 1);
        assert!(approx_eq(m.initial_dist()[0], 0.75, 1e-12, 0.0));
    }

    #[test]
    fn long_chain_is_numerically_stable() {
        // Factors with tiny values would underflow a naive implementation.
        let alphabet = Alphabet::from_names(["a", "b"]);
        let phi0 = vec![1.0, 1.0];
        let factors = vec![vec![1e-30, 2e-30, 3e-30, 4e-30]; 500];
        let m = chain_from_factors(alphabet, &phi0, &factors).unwrap();
        for dist in m.marginals() {
            let s: f64 = dist.iter().sum();
            assert!(approx_eq(s, 1.0, 1e-9, 0.0), "marginal sum {s}");
        }
    }
}
