//! k-order Markov sequences and their first-order reduction.
//!
//! Footnote 3 of the paper: "all our results generalize to k-order Markov
//! sequences, provided that k is fixed". The generalization works by
//! re-encoding: a k-order chain over `Σ` of length `n` is equivalent to a
//! first-order chain over the window alphabet `Σᵏ` of length `n-k+1`,
//! where consecutive windows overlap in `k-1` symbols. This module
//! implements the k-order model, the reduction, and the decoding map back
//! to `Σ` strings.

use std::sync::Arc;

use transmark_automata::{Alphabet, SymbolId};

use crate::error::MarkovError;
use crate::numeric::{approx_eq, KahanSum, DIST_TOLERANCE};
use crate::sequence::{from_validated_parts, MarkovSequence};

/// A k-order Markov sequence: `P(Sᵢ | S₁⋯Sᵢ₋₁) = P(Sᵢ | Sᵢ₋ₖ⋯Sᵢ₋₁)`.
///
/// The model is given as a joint distribution over the first `k` symbols
/// plus, for each later position, a conditional over the next symbol given
/// the previous `k`. Requires `1 ≤ k ≤ n`.
#[derive(Debug, Clone)]
pub struct KOrderMarkovSequence {
    alphabet: Arc<Alphabet>,
    k: usize,
    n: usize,
    /// Joint distribution over `Σᵏ`; index is big-endian base-`|Σ|`.
    initial_joint: Vec<f64>,
    /// `n - k` conditionals; entry `ctx * |Σ| + next`.
    transitions: Vec<Vec<f64>>,
}

impl KOrderMarkovSequence {
    /// Builds and validates a k-order sequence.
    pub fn new(
        alphabet: impl Into<Arc<Alphabet>>,
        k: usize,
        n: usize,
        initial_joint: Vec<f64>,
        transitions: Vec<Vec<f64>>,
    ) -> Result<Self, MarkovError> {
        let alphabet = alphabet.into();
        let sigma = alphabet.len();
        if k == 0 || k > n {
            return Err(MarkovError::InvalidOrder {
                order: k,
                length: n,
            });
        }
        let n_ctx = sigma.pow(k as u32);
        if initial_joint.len() != n_ctx {
            return Err(MarkovError::LengthMismatch {
                expected: n_ctx,
                actual: initial_joint.len(),
            });
        }
        if transitions.len() != n - k {
            return Err(MarkovError::LengthMismatch {
                expected: n - k,
                actual: transitions.len(),
            });
        }
        // Initial joint must be a distribution.
        let mut sum = KahanSum::new();
        for &p in &initial_joint {
            if !p.is_finite() || p < 0.0 {
                return Err(MarkovError::InvalidProbability {
                    what: "initial",
                    position: 0,
                    value: p,
                });
            }
            sum.add(p);
        }
        if !approx_eq(sum.total(), 1.0, DIST_TOLERANCE, DIST_TOLERANCE) {
            return Err(MarkovError::NotADistribution {
                what: "initial",
                position: 0,
                row: 0,
                sum: sum.total(),
            });
        }
        for (i, t) in transitions.iter().enumerate() {
            if t.len() != n_ctx * sigma {
                return Err(MarkovError::LengthMismatch {
                    expected: n_ctx * sigma,
                    actual: t.len(),
                });
            }
            for ctx in 0..n_ctx {
                let row = &t[ctx * sigma..(ctx + 1) * sigma];
                let mut s = KahanSum::new();
                for &p in row {
                    if !p.is_finite() || p < 0.0 {
                        return Err(MarkovError::InvalidProbability {
                            what: "transition",
                            position: i,
                            value: p,
                        });
                    }
                    s.add(p);
                }
                if !approx_eq(s.total(), 1.0, DIST_TOLERANCE, DIST_TOLERANCE) {
                    return Err(MarkovError::NotADistribution {
                        what: "transition",
                        position: i,
                        row: ctx,
                        sum: s.total(),
                    });
                }
            }
        }
        Ok(Self {
            alphabet,
            k,
            n,
            initial_joint,
            transitions,
        })
    }

    /// The order `k`.
    pub fn order(&self) -> usize {
        self.k
    }

    /// The sequence length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `n ≥ 1` always holds.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying symbol alphabet `Σ`.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Big-endian base-`|Σ|` encoding of a context window.
    fn encode(&self, window: &[SymbolId]) -> usize {
        let sigma = self.alphabet.len();
        window.iter().fold(0usize, |acc, s| acc * sigma + s.index())
    }

    /// The probability of a full string `s ∈ Σⁿ`.
    pub fn string_probability(&self, s: &[SymbolId]) -> Result<f64, MarkovError> {
        if s.len() != self.n {
            return Err(MarkovError::LengthMismatch {
                expected: self.n,
                actual: s.len(),
            });
        }
        let sigma = self.alphabet.len();
        let mut p = self.initial_joint[self.encode(&s[..self.k])];
        for i in self.k..self.n {
            if p == 0.0 {
                return Ok(0.0);
            }
            let ctx = self.encode(&s[i - self.k..i]);
            p *= self.transitions[i - self.k][ctx * sigma + s[i].index()];
        }
        Ok(p)
    }

    /// Reduces to a first-order [`MarkovSequence`] over the window
    /// alphabet `Σᵏ`, returning the chain and the [`WindowEncoding`] that
    /// maps window strings back to `Σ` strings.
    ///
    /// The reduction is probability-preserving: for every `s ∈ Σⁿ`,
    /// `p(s) = p'(windows(s))` where `windows(s)` is the length
    /// `n-k+1` sequence of overlapping k-windows.
    pub fn to_first_order(&self) -> (MarkovSequence, WindowEncoding) {
        let sigma = self.alphabet.len();
        let n_ctx = sigma.pow(self.k as u32);
        // Window alphabet: names are the component names joined by '·'.
        let mut names = Vec::with_capacity(n_ctx);
        for code in 0..n_ctx {
            names.push(self.window_name(code));
        }
        let window_alphabet = Arc::new(Alphabet::from_names(names));

        let initial = self.initial_joint.clone();
        let mut matrices = Vec::with_capacity((self.n - self.k) * n_ctx * n_ctx);
        for t in &self.transitions {
            let mut m = vec![0.0; n_ctx * n_ctx];
            for ctx in 0..n_ctx {
                let row = &t[ctx * sigma..(ctx + 1) * sigma];
                let mut dead = true;
                for (next_sym, &p) in row.iter().enumerate() {
                    // shift: drop the most significant symbol, append next.
                    let shifted = (ctx % sigma.pow((self.k - 1) as u32)) * sigma + next_sym;
                    m[ctx * n_ctx + shifted] = p;
                    if p > 0.0 {
                        dead = false;
                    }
                }
                if dead {
                    // Validation guarantees rows sum to 1, so this branch is
                    // unreachable for validated inputs; keep the chain valid
                    // regardless.
                    m[ctx * n_ctx + ctx] = 1.0;
                }
            }
            matrices.extend_from_slice(&m);
        }
        let chain = from_validated_parts(Arc::clone(&window_alphabet), initial, matrices);
        (
            chain,
            WindowEncoding {
                alphabet: Arc::clone(&self.alphabet),
                k: self.k,
            },
        )
    }

    fn window_name(&self, mut code: usize) -> String {
        let sigma = self.alphabet.len();
        let mut parts = vec![""; self.k];
        for slot in (0..self.k).rev() {
            parts[slot] = self.alphabet.name(SymbolId((code % sigma) as u32));
            code /= sigma;
        }
        parts.join("·")
    }
}

/// The mapping between `Σ` strings and window strings produced by
/// [`KOrderMarkovSequence::to_first_order`].
#[derive(Debug, Clone)]
pub struct WindowEncoding {
    alphabet: Arc<Alphabet>,
    k: usize,
}

impl WindowEncoding {
    /// Encodes a `Σ` string of length `n ≥ k` into its window string of
    /// length `n-k+1`.
    pub fn encode(&self, s: &[SymbolId]) -> Result<Vec<SymbolId>, MarkovError> {
        if s.len() < self.k {
            return Err(MarkovError::LengthMismatch {
                expected: self.k,
                actual: s.len(),
            });
        }
        let sigma = self.alphabet.len();
        Ok(s.windows(self.k)
            .map(|w| SymbolId(w.iter().fold(0usize, |acc, c| acc * sigma + c.index()) as u32))
            .collect())
    }

    /// Decodes a window string back to a `Σ` string. Adjacent windows must
    /// be overlap-consistent; this is guaranteed for strings in the support
    /// of the reduced chain.
    pub fn decode(&self, w: &[SymbolId]) -> Result<Vec<SymbolId>, MarkovError> {
        if w.is_empty() {
            return Err(MarkovError::EmptySequence);
        }
        let sigma = self.alphabet.len();
        let digits = |code: usize| -> Vec<usize> {
            let mut c = code;
            let mut d = vec![0usize; self.k];
            for slot in (0..self.k).rev() {
                d[slot] = c % sigma;
                c /= sigma;
            }
            d
        };
        let mut out: Vec<usize> = digits(w[0].index());
        for &win in &w[1..] {
            out.push(*digits(win.index()).last().expect("k ≥ 1"));
        }
        Ok(out.into_iter().map(|i| SymbolId(i as u32)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2nd-order chain over {a, b} of length 4 where the next symbol
    /// prefers to repeat the symbol from two steps ago.
    fn second_order() -> KOrderMarkovSequence {
        let alphabet = Alphabet::from_names(["a", "b"]);
        // contexts (big-endian): aa=0, ab=1, ba=2, bb=3
        let initial = vec![0.4, 0.1, 0.2, 0.3];
        let t = vec![
            // ctx aa: next a w.p. .9
            0.9, 0.1, // ctx ab: repeat-two-ago ⇒ a w.p. .8
            0.8, 0.2, // ctx ba: b w.p. .7
            0.3, 0.7, // ctx bb
            0.25, 0.75,
        ];
        KOrderMarkovSequence::new(alphabet, 2, 4, initial, vec![t.clone(), t]).unwrap()
    }

    fn all_strings(k: usize, n: usize) -> Vec<Vec<SymbolId>> {
        let mut out: Vec<Vec<SymbolId>> = vec![vec![]];
        for _ in 0..n {
            out = out
                .into_iter()
                .flat_map(|s| {
                    (0..k).map(move |c| {
                        let mut t = s.clone();
                        t.push(SymbolId(c as u32));
                        t
                    })
                })
                .collect();
        }
        out
    }

    #[test]
    fn korder_probabilities_sum_to_one() {
        let m = second_order();
        let total: f64 = all_strings(2, 4)
            .iter()
            .map(|s| m.string_probability(s).unwrap())
            .sum();
        assert!(approx_eq(total, 1.0, 1e-12, 0.0), "total {total}");
    }

    #[test]
    fn reduction_preserves_probabilities() {
        let m = second_order();
        let (chain, enc) = m.to_first_order();
        assert_eq!(chain.len(), 3); // n - k + 1
        assert_eq!(chain.n_symbols(), 4);
        for s in all_strings(2, 4) {
            let w = enc.encode(&s).unwrap();
            let p_korder = m.string_probability(&s).unwrap();
            let p_chain = chain.string_probability(&w).unwrap();
            assert!(
                approx_eq(p_korder, p_chain, 1e-14, 1e-12),
                "string {s:?}: {p_korder} vs {p_chain}"
            );
            assert_eq!(enc.decode(&w).unwrap(), s);
        }
    }

    #[test]
    fn reduced_chain_support_decodes_to_valid_strings() {
        let m = second_order();
        let (chain, enc) = m.to_first_order();
        for (w, p) in crate::support::support(&chain) {
            let s = enc.decode(&w).unwrap();
            assert!(approx_eq(
                m.string_probability(&s).unwrap(),
                p,
                1e-14,
                1e-12
            ));
        }
    }

    #[test]
    fn window_names_are_descriptive() {
        let m = second_order();
        let (chain, _) = m.to_first_order();
        assert_eq!(chain.alphabet().name(SymbolId(0)), "a·a");
        assert_eq!(chain.alphabet().name(SymbolId(1)), "a·b");
        assert_eq!(chain.alphabet().name(SymbolId(3)), "b·b");
    }

    #[test]
    fn invalid_orders_are_rejected() {
        let alphabet = Alphabet::from_names(["a", "b"]);
        assert!(matches!(
            KOrderMarkovSequence::new(alphabet.clone(), 0, 3, vec![1.0], vec![]),
            Err(MarkovError::InvalidOrder { .. })
        ));
        assert!(matches!(
            KOrderMarkovSequence::new(alphabet, 5, 3, vec![1.0], vec![]),
            Err(MarkovError::InvalidOrder { .. })
        ));
    }

    #[test]
    fn order_one_reduction_is_identity_shaped() {
        let alphabet = Alphabet::from_names(["a", "b"]);
        let m = KOrderMarkovSequence::new(
            alphabet,
            1,
            3,
            vec![0.5, 0.5],
            vec![vec![0.1, 0.9, 0.6, 0.4], vec![1.0, 0.0, 0.0, 1.0]],
        )
        .unwrap();
        let (chain, enc) = m.to_first_order();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.n_symbols(), 2);
        for s in all_strings(2, 3) {
            assert_eq!(enc.encode(&s).unwrap(), s);
            assert!(approx_eq(
                chain.string_probability(&s).unwrap(),
                m.string_probability(&s).unwrap(),
                1e-15,
                0.0
            ));
        }
    }
}
