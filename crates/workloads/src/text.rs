//! Noisy-text extraction workloads for s-projectors.
//!
//! §5 motivates s-projectors with data extraction from handwritten-form /
//! OCR text (Example 5.1: extract `Hillary` from `Name:Hillary␣`). The
//! upstream recognizer is modeled here as a per-character confusion
//! process over a template string: each template character is read
//! correctly with probability `1 - noise` and confused with a designated
//! look-alike otherwise, *with a Markov twist* — confusions are sticky
//! (a misread character makes the next confusion more likely), which
//! makes the result a genuine Markov sequence rather than a product
//! distribution.

use std::sync::Arc;

use transmark_automata::Alphabet;
use transmark_core::error::EngineError;
use transmark_markov::{MarkovSequence, MarkovSequenceBuilder};
use transmark_sproj::SProjector;

/// Parameters of the noisy-text model.
#[derive(Debug, Clone)]
pub struct TextSpec {
    /// Base probability of confusing a character.
    pub noise: f64,
    /// Multiplier on `noise` right after a confusion (sticky errors);
    /// the product is clamped to 0.9.
    pub stickiness: f64,
}

impl Default for TextSpec {
    fn default() -> Self {
        Self {
            noise: 0.1,
            stickiness: 3.0,
        }
    }
}

/// Look-alike used when a character is confused (a fixed visual-confusion
/// table; characters without an entry get `.` as their confusion).
fn confusion_of(c: char) -> char {
    match c {
        'l' => '1',
        '1' => 'l',
        'o' | 'O' => '0',
        '0' => 'o',
        'i' => 'j',
        'a' => 'o',
        'e' => 'c',
        'n' => 'm',
        'm' => 'n',
        'r' => 'n',
        's' => '5',
        'B' => '8',
        ':' => ';',
        ' ' => '_',
        _ => '.',
    }
}

/// A generated noisy document: the character alphabet and the Markov
/// sequence over it.
pub struct NoisyDocument {
    /// Character alphabet (single-char symbol names, regex-ready).
    pub alphabet: Arc<Alphabet>,
    /// The OCR-posterior-like Markov sequence, one position per template
    /// character.
    pub sequence: MarkovSequence,
    /// The clean template.
    pub template: String,
}

/// Builds the noisy Markov sequence for `template`.
///
/// State space per position: the template character or its look-alike;
/// the chain state additionally remembers (implicitly, through which
/// character is observed) whether the previous position was confused.
pub fn noisy_document(template: &str, spec: &TextSpec) -> NoisyDocument {
    assert!(!template.is_empty(), "template must be nonempty");
    let chars: Vec<char> = template.chars().collect();
    // Alphabet: all template characters plus all confusions.
    let mut names: Vec<String> = Vec::new();
    for &c in &chars {
        names.push(c.to_string());
        names.push(confusion_of(c).to_string());
    }
    let alphabet = Arc::new(Alphabet::from_names(names.iter().map(String::as_str)));

    let p0 = spec.noise.clamp(0.0, 0.9);
    let p_sticky = (spec.noise * spec.stickiness).clamp(0.0, 0.9);
    let n = chars.len();
    let mut b = MarkovSequenceBuilder::new(Arc::clone(&alphabet), n);
    let good = |i: usize| alphabet.sym(&chars[i].to_string());
    let bad = |i: usize| alphabet.sym(&confusion_of(chars[i]).to_string());

    b = b.initial(good(0), 1.0 - p0);
    if bad(0) == good(0) {
        // Confusion maps to the same symbol (degenerate entry).
        b = b.initial(good(0), 1.0);
    } else {
        b = b.initial(bad(0), p0);
    }
    for i in 0..n - 1 {
        for (from, sticky) in [(good(i), false), (bad(i), true)] {
            let p_bad = if sticky { p_sticky } else { p0 };
            if bad(i + 1) == good(i + 1) {
                b = b.transition(i, from, good(i + 1), 1.0);
            } else {
                b = b.transition(i, from, good(i + 1), 1.0 - p_bad).transition(
                    i,
                    from,
                    bad(i + 1),
                    p_bad,
                );
            }
            if from == bad(i) && !sticky {
                // good(i) == bad(i): the pair collapses; skip duplicate.
                break;
            }
        }
    }
    let sequence = b
        .fill_dead_rows_self_loop()
        .build()
        .expect("noisy chain is valid");
    NoisyDocument {
        alphabet,
        sequence,
        template: template.to_string(),
    }
}

impl NoisyDocument {
    /// The Example 5.1 extractor: `[".*Name:"] "[a-zA-Z]+" ["\s.*"]` —
    /// a name following the literal `Name:` and followed by whitespace —
    /// compiled against this document's alphabet.
    pub fn name_extractor(&self) -> Result<SProjector, EngineError> {
        SProjector::from_patterns(Arc::clone(&self.alphabet), ".*Name:", "[a-zA-Z]+", "\\s.*")
    }

    /// A custom extractor over this document's alphabet.
    pub fn extractor(
        &self,
        prefix: &str,
        pattern: &str,
        suffix: &str,
    ) -> Result<SProjector, EngineError> {
        SProjector::from_patterns(Arc::clone(&self.alphabet), prefix, pattern, suffix)
    }

    /// Renders a symbol string as text.
    pub fn render(&self, s: &[transmark_automata::SymbolId]) -> String {
        self.alphabet.render(s, "")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_sproj::enumerate::enumerate_by_imax;
    use transmark_sproj::indexed::enumerate_indexed;

    #[test]
    fn clean_template_is_most_likely() {
        let doc = noisy_document("Name:Al ", &TextSpec::default());
        let (best, p) = doc.sequence.most_likely_string();
        assert_eq!(doc.render(&best), "Name:Al ");
        assert!(p > 0.3);
    }

    #[test]
    fn name_extractor_finds_the_clean_name_first() {
        let doc = noisy_document(
            "xName:Al y",
            &TextSpec {
                noise: 0.05,
                stickiness: 2.0,
            },
        );
        let p = doc.name_extractor().unwrap();
        let top = enumerate_by_imax(&p, &doc.sequence)
            .unwrap()
            .next()
            .expect("some extraction exists");
        assert_eq!(doc.render(&top.output), "Al");
    }

    #[test]
    fn indexed_extraction_reports_the_position() {
        let doc = noisy_document(
            "xName:Al y",
            &TextSpec {
                noise: 0.05,
                stickiness: 2.0,
            },
        );
        let p = doc.name_extractor().unwrap();
        let top = enumerate_indexed(&p, &doc.sequence)
            .unwrap()
            .next()
            .expect("some extraction exists");
        // "Al" starts at 1-based position 7 of "xName:Al y".
        assert_eq!(doc.render(&top.output), "Al");
        assert_eq!(top.index, 7);
    }

    #[test]
    fn noise_creates_competing_answers() {
        // 'l' ↔ '1' confusion: with an unconstrained suffix, both the full
        // name "Al" and its truncation "A" (all that remains alphabetic
        // when 'l' is misread as '1') are answers.
        let doc = noisy_document(
            "xName:Al y",
            &TextSpec {
                noise: 0.3,
                stickiness: 1.0,
            },
        );
        let p = doc.extractor(".*Name:", "[a-zA-Z]+", ".*").unwrap();
        let outs: Vec<String> = enumerate_by_imax(&p, &doc.sequence)
            .unwrap()
            .map(|r| doc.render(&r.output))
            .collect();
        assert!(outs.contains(&"Al".to_string()), "answers: {outs:?}");
        assert!(outs.contains(&"A".to_string()), "answers: {outs:?}");
        // The misread world "xName:A1 y" yields no whitespace-terminated
        // name at all, so the strict extractor returns only "Al".
        let strict = doc.name_extractor().unwrap();
        let strict_outs: Vec<String> = enumerate_by_imax(&strict, &doc.sequence)
            .unwrap()
            .map(|r| doc.render(&r.output))
            .collect();
        assert_eq!(strict_outs, vec!["Al".to_string()]);
    }
}
