//! Synthetic RFID deployment (substitute for the Lahar production data).
//!
//! The paper's motivating deployment — RFID sensors in a hospital feeding
//! the Lahar Markov-sequence database \[39, 40, 47\] — is proprietary. This
//! module builds the closest synthetic equivalent: a corridor of `rooms`
//! rooms, each with `locations_per_room` sub-locations, a crash cart
//! performing a random walk over sub-locations, and noisy sensors that
//! misreport sub-locations. Conditioning the HMM on a sampled sensor read
//! sequence yields exactly the kind of posterior Markov sequence the
//! engine queries (footnote 1), at any length — the algorithms only ever
//! see the [`MarkovSequence`] abstraction, so the substitution preserves
//! the exercised code paths.

use std::sync::Arc;

use rand::Rng;
use transmark_automata::{Alphabet, SymbolId};
use transmark_core::transducer::Transducer;
use transmark_markov::{Hmm, MarkovSequence};

/// Parameters of the synthetic deployment.
#[derive(Debug, Clone)]
pub struct RfidSpec {
    /// Number of rooms along the corridor.
    pub rooms: usize,
    /// Sub-locations (antenna zones) per room.
    pub locations_per_room: usize,
    /// Probability of staying at the current sub-location per step.
    pub stay_prob: f64,
    /// Probability that a sensor reports a uniformly random sub-location
    /// instead of the true one.
    pub noise: f64,
}

impl Default for RfidSpec {
    fn default() -> Self {
        Self {
            rooms: 3,
            locations_per_room: 2,
            stay_prob: 0.5,
            noise: 0.2,
        }
    }
}

/// A generated deployment: the HMM, its alphabets, and helpers.
pub struct RfidDeployment {
    /// The movement/sensing model.
    pub hmm: Hmm,
    /// Hidden-state alphabet: sub-locations named `r{room}{letter}`.
    pub locations: Arc<Alphabet>,
    spec: RfidSpec,
}

/// Builds the corridor HMM. Sub-locations are ordered along the corridor;
/// the cart moves to adjacent sub-locations or stays; sensors read the
/// true sub-location with probability `1 - noise` (plus a uniform share
/// of the noise).
pub fn deployment(spec: &RfidSpec) -> RfidDeployment {
    assert!(
        spec.rooms >= 1 && spec.locations_per_room >= 1,
        "degenerate deployment"
    );
    let n = spec.rooms * spec.locations_per_room;
    let letters = "abcdefghij";
    assert!(
        spec.locations_per_room <= letters.len(),
        "too many sub-locations per room"
    );
    let names: Vec<String> = (0..n)
        .map(|i| {
            let room = i / spec.locations_per_room + 1;
            let letter = letters.as_bytes()[i % spec.locations_per_room] as char;
            format!("r{room}{letter}")
        })
        .collect();
    let locations = Arc::new(Alphabet::from_names(names.iter().map(String::as_str)));
    // Observations: one sensor per sub-location.
    let observations = Alphabet::from_names(names.iter().map(|s| format!("sense_{s}")));

    // Uniform start.
    let initial = vec![1.0 / n as f64; n];
    // Random walk on the corridor: stay, or step to a neighbour.
    let mut transition = vec![0.0; n * n];
    for i in 0..n {
        let mut targets = vec![i];
        if i > 0 {
            targets.push(i - 1);
        }
        if i + 1 < n {
            targets.push(i + 1);
        }
        let move_prob = (1.0 - spec.stay_prob) / (targets.len() - 1).max(1) as f64;
        for &t in &targets {
            transition[i * n + t] = if t == i {
                if targets.len() == 1 {
                    1.0
                } else {
                    spec.stay_prob
                }
            } else {
                move_prob
            };
        }
    }
    // Noisy sensing.
    let mut emission = vec![0.0; n * n];
    for i in 0..n {
        for o in 0..n {
            emission[i * n + o] =
                if i == o { 1.0 - spec.noise } else { 0.0 } + spec.noise / n as f64;
        }
    }
    let hmm = Hmm::new(
        Arc::clone(&locations),
        observations,
        initial,
        transition,
        emission,
    )
    .expect("corridor HMM is valid");
    RfidDeployment {
        hmm,
        locations,
        spec: spec.clone(),
    }
}

impl RfidDeployment {
    /// Samples a trajectory of length `n` and returns the posterior
    /// Markov sequence given the sampled sensor reads (plus the true
    /// hidden trajectory, for evaluation).
    pub fn sample_posterior<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> (MarkovSequence, Vec<SymbolId>) {
        let (hidden, obs) = self.hmm.sample(rng, n);
        let posterior = self
            .hmm
            .posterior(&obs)
            .expect("sampled evidence is possible");
        (posterior, hidden)
    }

    /// The room-visit transducer generalizing Figure 2 to this
    /// deployment: after the first visit to the designated `lab_room`
    /// (1-based), emit the room number whenever a room is entered from a
    /// different room. With `lab_room = None` the tracker is
    /// non-selective and reports every room entry from the start
    /// (including the first room) — the variant used by the
    /// uniform-emission benchmarks.
    pub fn room_tracker(&self, lab_room: Option<usize>) -> Transducer {
        let rooms = self.spec.rooms;
        let lpr = self.spec.locations_per_room;
        let output = Arc::new(Alphabet::from_names((1..=rooms).map(|r| format!("{r}"))));
        let mut b = Transducer::builder(Arc::clone(&self.locations), Arc::clone(&output));

        let pre = lab_room.map(|_| b.add_state(false));
        let room_states: Vec<_> = (0..rooms).map(|_| b.add_state(true)).collect();
        // A synthetic "nowhere" start so the first symbol counts as
        // entering its room (lab-less variant only).
        let start = if pre.is_none() {
            Some(b.add_state(true))
        } else {
            None
        };
        b.set_initial(pre.or(start).expect("one of the two start states exists"));

        let room_of = |sym: usize| sym / lpr; // 0-based room
        for s in 0..rooms * lpr {
            let sym = SymbolId(s as u32);
            let room = room_of(s);
            let out_sym = SymbolId(room as u32);
            if let Some(p) = pre {
                let lab = lab_room.expect("pre implies lab") - 1;
                if room == lab {
                    // First lab visit: start tracking, ε emission
                    // (mirrors Figure 2's q0 → qλ).
                    b.add_transition(p, sym, room_states[room], &[])
                        .expect("valid");
                } else {
                    b.add_transition(p, sym, p, &[]).expect("valid");
                }
            } else if let Some(start) = start {
                b.add_transition(start, sym, room_states[room], &[out_sym])
                    .expect("valid");
            }
            for (r, &state) in room_states.iter().enumerate() {
                if r == room {
                    b.add_transition(state, sym, state, &[]).expect("valid");
                } else {
                    b.add_transition(state, sym, room_states[room], &[out_sym])
                        .expect("valid");
                }
            }
        }
        b.build().expect("room tracker is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_core::confidence::confidence_deterministic;
    use transmark_markov::numeric::approx_eq;

    #[test]
    fn deployment_produces_valid_posteriors() {
        let dep = deployment(&RfidSpec::default());
        let mut rng = StdRng::seed_from_u64(42);
        let (posterior, hidden) = dep.sample_posterior(8, &mut rng);
        assert_eq!(posterior.len(), 8);
        assert_eq!(posterior.n_symbols(), 6);
        // The true trajectory must have positive posterior probability.
        assert!(posterior.string_probability(&hidden).unwrap() > 0.0);
        for dist in posterior.marginals() {
            let s: f64 = dist.iter().sum();
            assert!(approx_eq(s, 1.0, 1e-9, 0.0));
        }
    }

    #[test]
    fn room_tracker_is_deterministic_and_selective_with_lab() {
        let dep = deployment(&RfidSpec::default());
        let t = dep.room_tracker(Some(2));
        assert!(t.is_deterministic());
        assert!(t.is_selective());
        // A trajectory that never enters room 2 is rejected.
        let a = &dep.locations;
        let stay = vec![a.sym("r1a"); 4];
        assert_eq!(t.transduce_deterministic(&stay), None);
        // One that visits room 2 then room 3 emits "3" (entering 3).
        let path = vec![a.sym("r1b"), a.sym("r2a"), a.sym("r2b"), a.sym("r3a")];
        let out = t.transduce_deterministic(&path).expect("accepted");
        assert_eq!(t.render_output(&out, ""), "3");
    }

    #[test]
    fn trackerless_variant_is_total() {
        let dep = deployment(&RfidSpec::default());
        let t = dep.room_tracker(None);
        assert!(t.is_deterministic());
        assert!(!t.is_selective());
        let a = &dep.locations;
        let path = vec![a.sym("r1a"), a.sym("r1b"), a.sym("r2a"), a.sym("r1a")];
        let out = t
            .transduce_deterministic(&path)
            .expect("non-selective accepts");
        assert_eq!(t.render_output(&out, ""), "121");
    }

    #[test]
    fn end_to_end_query_on_posterior() {
        let dep = deployment(&RfidSpec {
            rooms: 2,
            locations_per_room: 2,
            stay_prob: 0.6,
            noise: 0.15,
        });
        let mut rng = StdRng::seed_from_u64(7);
        let (posterior, _) = dep.sample_posterior(5, &mut rng);
        let t = dep.room_tracker(None);
        // The engine and brute force agree on this realistic instance.
        let truth = transmark_core::brute::evaluate(&t, &posterior).unwrap();
        for (o, want) in truth {
            let got = confidence_deterministic(&t, &posterior, &o).unwrap();
            assert!(
                approx_eq(got, want, 1e-10, 1e-8),
                "output {o:?}: {got} vs {want}"
            );
        }
    }
}
