//! Hardness-gadget families: instances where heuristic ranking provably
//! diverges from true-confidence ranking.
//!
//! The paper's inapproximability results (Theorems 4.4, 4.5, 5.3) are
//! worst-case reductions whose gadget details live in the unavailable
//! extended version. These families have the same *shape* — confidence
//! mass split across exponentially many evidences, so the best single
//! evidence (`E_max`) or best single occurrence (`I_max`) misjudges the
//! answer — and make the divergence *measurable*, which is what the
//! Table 2 row-3 experiments report:
//!
//! * [`emax_gap`] — a **one-state Mealy machine** (the exact machine class
//!   of Theorem 4.4's statement) where the `E_max`-top answer is
//!   exponentially worse than the confidence-top answer: the observed
//!   ratio is `(conf of true top)/(conf of E_max top) = 1.5ⁿ`.
//! * [`projector_gap`] — a **fixed deterministic projector** (Theorem
//!   4.5's machine class, `|Q| = 1`) with the same exponential behaviour.
//! * [`imax_gap`] — a **fixed simple s-projector** (Theorem 5.3's class)
//!   where `conf/I_max ≈ (1 - 1/e)·n`, exhibiting the linear (not
//!   constant) gap that rules out constant-factor approximation, while
//!   staying within the Theorem 5.2 upper bound of `n`.

use std::sync::Arc;

use transmark_automata::Alphabet;
use transmark_core::transducer::Transducer;
use transmark_markov::{MarkovSequence, MarkovSequenceBuilder};
use transmark_sproj::SProjector;

/// Builds an i.i.d. Markov sequence: every position distributed as `dist`
/// (a valid distribution over the alphabet).
fn iid_chain(alphabet: Arc<Alphabet>, n: usize, dist: &[f64]) -> MarkovSequence {
    let k = alphabet.len();
    let mut b = MarkovSequenceBuilder::new(alphabet, n).initial_dist(dist);
    for i in 0..n - 1 {
        for from in 0..k {
            for to in 0..k {
                b = b.transition(
                    i,
                    transmark_automata::SymbolId(from as u32),
                    transmark_automata::SymbolId(to as u32),
                    dist[to],
                );
            }
        }
    }
    b.build().expect("iid chain is valid")
}

/// **Theorem 4.4 shape** — a one-state Mealy machine and a Markov
/// sequence of length `n` where `E_max` ranking is exponentially wrong.
///
/// `Σ = {a, b₁, b₂}` with i.i.d. marginals `P(a) = 0.4`,
/// `P(b₁) = P(b₂) = 0.3`; the machine emits `x` for `a` and `y` for both
/// `bᵢ`. For an output `o ∈ {x,y}ⁿ`:
/// `conf(o) = 0.4^{#x} · 0.6^{#y}` but `E_max(o) = 0.4^{#x} · 0.3^{#y}` —
/// the `y`-mass is split over `2^{#y}` evidences. The confidence-top
/// answer is `yⁿ` (conf `0.6ⁿ`), the `E_max`-top answer is `xⁿ`
/// (conf `0.4ⁿ`): ratio `1.5ⁿ`.
pub fn emax_gap(n: usize) -> (Transducer, MarkovSequence) {
    let input = Arc::new(Alphabet::from_names(["a", "b1", "b2"]));
    let output = Arc::new(Alphabet::from_names(["x", "y"]));
    let m = iid_chain(Arc::clone(&input), n, &[0.4, 0.3, 0.3]);
    let mut b = Transducer::builder(input.clone(), output.clone());
    let q = b.add_state(true);
    let x = [output.sym("x")];
    let y = [output.sym("y")];
    b.add_transition(q, input.sym("a"), q, &x).expect("valid");
    b.add_transition(q, input.sym("b1"), q, &y).expect("valid");
    b.add_transition(q, input.sym("b2"), q, &y).expect("valid");
    let t = b.build().expect("one-state Mealy machine");
    debug_assert!(t.is_mealy());
    (t, m)
}

/// The analytically known ratio of [`emax_gap`]:
/// `conf(confidence-top) / conf(E_max-top) = 1.5ⁿ`.
pub fn emax_gap_expected_ratio(n: usize) -> f64 {
    1.5f64.powi(n as i32)
}

/// **Theorem 4.5 shape** — a fixed deterministic *projector* (`|Q| = 1`,
/// emissions are the read symbol or `ε`) with the same exponential gap.
///
/// `Σ = {a, b₁, b₂, c}`: `a` is copied; `b₁`, `b₂`, `c` are dropped.
/// With i.i.d. `P(a) = 0.25, P(b₁) = P(b₂) = 0.25, P(c) = 0.25`, the
/// output `aᵏ` for small `k` aggregates exponentially many dropped
/// configurations while long `aᵏ` outputs have a single evidence each.
pub fn projector_gap(n: usize) -> (Transducer, MarkovSequence) {
    let input = Arc::new(Alphabet::from_names(["a", "b1", "b2", "c"]));
    let m = iid_chain(Arc::clone(&input), n, &[0.25, 0.25, 0.25, 0.25]);
    let mut b = Transducer::builder(input.clone(), Arc::clone(&input));
    let q = b.add_state(true);
    b.add_transition(q, input.sym("a"), q, &[input.sym("a")])
        .expect("valid");
    b.add_transition(q, input.sym("b1"), q, &[]).expect("valid");
    b.add_transition(q, input.sym("b2"), q, &[]).expect("valid");
    b.add_transition(q, input.sym("c"), q, &[]).expect("valid");
    let t = b.build().expect("one-state projector");
    debug_assert!(t.is_projector() && t.is_deterministic());
    (t, m)
}

/// **Theorem 5.3 shape** — a fixed *simple* s-projector `[*]a[*]` and an
/// i.i.d. sequence with `P(a) = 1/n`: the answer `"a"` has
/// `conf = 1 - (1 - 1/n)ⁿ → 1 - 1/e` but `I_max = 1/n` (each single
/// occurrence is equally unlikely), so `conf / I_max ≈ 0.63·n` — the
/// linear gap regime of §5.
pub fn imax_gap(n: usize) -> (SProjector, MarkovSequence) {
    assert!(n >= 1);
    let alphabet = Arc::new(Alphabet::of_chars("ab"));
    let p_a = 1.0 / n as f64;
    let m = iid_chain(Arc::clone(&alphabet), n, &[p_a, 1.0 - p_a]);
    let pattern = transmark_automata::Dfa::word(2, &[alphabet.sym("a")]);
    let p = SProjector::simple(alphabet, pattern).expect("simple projector");
    (p, m)
}

/// The analytically known quantities of [`imax_gap`]:
/// `(conf("a"), I_max("a"))`.
pub fn imax_gap_expected(n: usize) -> (f64, f64) {
    let p = 1.0 / n as f64;
    (1.0 - (1.0 - p).powi(n as i32), p)
}

/// **Theorem 4.9 regime** — a *fixed* non-selective, non-uniform
/// transducer probing the exact algorithm's data complexity.
///
/// Two states, both accepting; on `a` emit `x` or `ε`, on `b` emit `xx`
/// or `ε` (nondeterministic drop-or-keep with weights 1 and 2). This is
/// the regime where neither Theorem 4.6 (nondeterministic) nor
/// Theorem 4.8 (non-uniform) applies, so the engine falls back to the
/// exact configuration-set algorithm, and the per-string reachable
/// (state, output-position) sets — here, subset sums of {1,2}-weights —
/// grow with the data, unlike the deterministic case singletons
///
/// On this benign family the reachable sets collapse to near-intervals,
/// so the measured growth is only polynomial (superlinear); the
/// *exponential* worst case that Theorem 4.9's FP^#P-hardness implies
/// requires the adversarial structure of its reduction (counting
/// monotone bipartite 2-DNF assignments), whose gadget details are in
/// the unavailable extended version — see DESIGN.md's substitutions.
///
/// Returns `(transducer, μ[n] uniform over {a,b}, the output x^{⌊3n/4⌋})`.
pub fn confidence_blowup(
    n: usize,
) -> (
    Transducer,
    MarkovSequence,
    Vec<transmark_automata::SymbolId>,
) {
    use transmark_automata::SymbolId;
    let input = Arc::new(Alphabet::of_chars("ab"));
    let output = Arc::new(Alphabet::of_chars("x"));
    let m = iid_chain(Arc::clone(&input), n, &[0.5, 0.5]);
    let x = output.sym("x");
    let mut b = Transducer::builder(input.clone(), output);
    let keep = b.add_state(true);
    let drop_ = b.add_state(true);
    let (a_sym, b_sym) = (input.sym("a"), input.sym("b"));
    for from in [keep, drop_] {
        b.add_transition(from, a_sym, keep, &[x]).expect("valid");
        b.add_transition(from, a_sym, drop_, &[]).expect("valid");
        b.add_transition(from, b_sym, keep, &[x, x]).expect("valid");
        b.add_transition(from, b_sym, drop_, &[]).expect("valid");
    }
    let t = b.build().expect("fixed blow-up transducer");
    debug_assert!(!t.is_selective());
    debug_assert_eq!(t.uniform_emission(), None);
    let target = vec![SymbolId(x.0); (3 * n) / 4];
    (t, m, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_core::brute;
    use transmark_core::emax::top_by_emax;
    use transmark_markov::numeric::approx_eq;
    use transmark_sproj::enumerate::imax_of_output;
    use transmark_sproj::sproj_confidence;

    #[test]
    fn emax_gap_has_the_predicted_exponential_ratio() {
        for n in [2usize, 4, 6] {
            let (t, m) = emax_gap(n);
            // E_max-top answer.
            let top_e = top_by_emax(&t, &m).unwrap().expect("answers exist");
            // Confidence-top answer (brute force).
            let (top_c, conf_c) = brute::top_by_confidence(&t, &m).unwrap().expect("answers");
            let conf_of_top_e =
                transmark_core::confidence::confidence(&t, &m, &top_e.output).unwrap();
            let ratio = conf_c / conf_of_top_e;
            assert!(
                approx_eq(ratio, emax_gap_expected_ratio(n), 1e-9, 1e-7),
                "n={n}: ratio {ratio} != {}",
                emax_gap_expected_ratio(n)
            );
            // The orders really disagree: E_max picks all-x, confidence all-y.
            assert!(top_e.output.iter().all(|&s| s.index() == 0));
            assert!(top_c.iter().all(|&s| s.index() == 1));
        }
    }

    #[test]
    fn projector_gap_is_valid_and_diverges() {
        let (t, m) = projector_gap(5);
        let top_e = top_by_emax(&t, &m).unwrap().expect("answers exist");
        let (_, conf_c) = brute::top_by_confidence(&t, &m).unwrap().expect("answers");
        let conf_of_top_e = transmark_core::confidence::confidence(&t, &m, &top_e.output).unwrap();
        assert!(conf_c > conf_of_top_e, "confidence top must beat E_max top");
    }

    #[test]
    fn imax_gap_matches_the_analysis() {
        for n in [2usize, 5, 8] {
            let (p, m) = imax_gap(n);
            let a = [m.alphabet().sym("a")];
            let (conf_want, imax_want) = imax_gap_expected(n);
            let conf = sproj_confidence(&p, &m, &a).unwrap();
            let imax = imax_of_output(&p, &m, &a).unwrap();
            assert!(
                approx_eq(conf, conf_want, 1e-10, 1e-8),
                "n={n}: conf {conf}"
            );
            assert!(
                approx_eq(imax, imax_want, 1e-10, 1e-8),
                "n={n}: imax {imax}"
            );
            // Proposition 5.9 sandwich, and the gap really grows with n.
            assert!(imax <= conf && conf <= n as f64 * imax + 1e-12);
        }
    }
}

#[cfg(test)]
mod blowup_tests {
    use super::*;
    use transmark_core::confidence::confidence_general;
    use transmark_markov::numeric::approx_eq;

    #[test]
    fn confidence_blowup_is_exact_on_small_instances() {
        for n in [2usize, 4, 6, 8] {
            let (t, m, o) = confidence_blowup(n);
            let got = confidence_general(&t, &m, &o).unwrap();
            let want = transmark_core::brute::evaluate(&t, &m)
                .unwrap()
                .get(&o)
                .copied()
                .unwrap_or(0.0);
            assert!(approx_eq(got, want, 1e-12, 1e-9), "n={n}: {got} vs {want}");
        }
    }

    #[test]
    fn blowup_really_materializes_many_configurations() {
        // Structural witness (timing-free): count the distinct
        // (node, configuration-set) DP keys per layer — the quantity the
        // exact algorithm's cost is proportional to. It must grow
        // superlinearly in n on this family (the deterministic class, by
        // contrast, is capped at |Σ|·|Q|·(|o|+1) singleton configurations).
        fn peak_layer_width(n: usize) -> usize {
            use std::collections::{BTreeSet, HashMap};
            let (t, m, o) = confidence_blowup(n);
            let width = o.len() + 1;
            // (node, set of (state, j)) → mass; mass unused, keys counted.
            let mut layer: HashMap<(u32, BTreeSet<(u32, usize)>), ()> = HashMap::new();
            for node in 0..m.n_symbols() {
                let mut set = BTreeSet::new();
                for e in t.edges(t.initial(), transmark_automata::SymbolId(node as u32)) {
                    let em = t.emission(e.emission);
                    if em.len() <= o.len() {
                        set.insert((e.target.0, em.len()));
                    }
                }
                layer.insert((node as u32, set), ());
            }
            let mut peak = layer.len();
            for _ in 0..n - 1 {
                let mut next: HashMap<(u32, BTreeSet<(u32, usize)>), ()> = HashMap::new();
                for ((_, set), ()) in &layer {
                    for to in 0..m.n_symbols() {
                        let mut set2 = BTreeSet::new();
                        for &(q, j) in set {
                            for e in t.edges(
                                transmark_automata::StateId(q),
                                transmark_automata::SymbolId(to as u32),
                            ) {
                                let em = t.emission(e.emission);
                                if j + em.len() < width {
                                    set2.insert((e.target.0, j + em.len()));
                                }
                            }
                        }
                        if !set2.is_empty() {
                            next.insert((to as u32, set2), ());
                        }
                    }
                }
                layer = next;
                peak = peak.max(layer.len());
            }
            peak
        }
        let w8 = peak_layer_width(8);
        let w16 = peak_layer_width(16);
        let w32 = peak_layer_width(32);
        // On this family the reachable sets collapse to near-intervals, so
        // the width grows roughly linearly in n (each configuration set
        // additionally being Θ(n) large — total work ≈ n³ vs. the
        // deterministic DP's fixed-size configurations). The width must
        // keep growing with the data; a machine-independent constant would
        // indicate the engine silently fell into a bounded regime.
        assert!(w8 >= 4, "n=8 width suspiciously small: {w8}");
        assert!(w16 > w8, "width stalled: {w8} -> {w16}");
        assert!(w32 > w16, "width stalled: {w16} -> {w32}");
        assert!(w32 >= 2 * w8, "width must scale with n: {w8} -> {w32}");
    }
}

/// The paper's amplification device (proofs of Thms 4.4/4.5): boost a
/// constant-factor gap "by essentially concatenating a polynomial number
/// of copies of the given Markov sequence". Copies of the [`emax_gap`]
/// instance are glued with a uniform transition; the one-state Mealy
/// machine is unchanged, and the `E_max`-vs-confidence ratio multiplies
/// across copies: `ratio(copies · n) = ratio(n)^copies`.
pub fn amplified_emax_gap(base_n: usize, copies: usize) -> (Transducer, MarkovSequence) {
    assert!(copies >= 1);
    let (t, base) = emax_gap(base_n);
    let k = base.n_symbols();
    let glue = vec![
        // Same marginals as the gadget's i.i.d. step: P(a)=0.4, P(b_i)=0.3.
        0.4, 0.3, 0.3, //
        0.4, 0.3, 0.3, //
        0.4, 0.3, 0.3,
    ];
    assert_eq!(glue.len(), k * k);
    let mut m = base.clone();
    for _ in 1..copies {
        m = m.concat(&glue, &base).expect("copies share the alphabet");
    }
    (t, m)
}

#[cfg(test)]
mod amplification_tests {
    use super::*;
    use transmark_core::confidence::confidence;
    use transmark_core::emax::top_by_emax;
    use transmark_markov::numeric::approx_eq;

    #[test]
    fn amplification_multiplies_the_ratio() {
        let base_n = 3;
        for copies in [1usize, 2, 3] {
            let (t, m) = amplified_emax_gap(base_n, copies);
            assert_eq!(m.len(), base_n * copies);
            let top_e = top_by_emax(&t, &m).unwrap().expect("answers exist");
            let conf_e = confidence(&t, &m, &top_e.output).unwrap();
            // The glued chain is still i.i.d. with the same marginals, so
            // the analytic ratio formula applies at length n·copies.
            let conf_best = 0.6f64.powi((base_n * copies) as i32);
            let ratio = conf_best / conf_e;
            let want = emax_gap_expected_ratio(base_n).powi(copies as i32);
            assert!(
                approx_eq(ratio, want, 1e-9, 1e-7),
                "copies={copies}: ratio {ratio} vs {want}"
            );
        }
    }
}
