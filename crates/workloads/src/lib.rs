#![warn(missing_docs)]
// Index-based loops are the clearest way to write the matrix scans here;
// iterator rewrites obscure the (position, node, state) indexing.
#![allow(clippy::needless_range_loop)]

//! Workload generators for the `transmark` engine.
//!
//! * [`hospital`] — the paper's running example: the Figure 1 Markov
//!   sequence (hospital crash-cart locations), the Figure 2 transducer
//!   (place-visit extraction) and the Table 1 rows, reconstructed to
//!   reproduce every number printed in the paper.
//! * [`rfid`] — a synthetic RFID deployment: corridor of rooms, noisy
//!   sensors, HMM posterior → Markov sequences of arbitrary size
//!   (substitute for the Lahar production traces; see DESIGN.md).
//! * [`text`] — noisy text/OCR extraction scenarios for s-projectors
//!   (the `"Name:…"` example of §5).
//! * [`gadgets`] — hardness-gadget families in the spirit of the
//!   Theorem 4.4/4.5 and Theorem 5.3 reductions: instances where the
//!   `E_max` (resp. `I_max`) order diverges from the true confidence
//!   order by a measurable factor — exponential for general transducers,
//!   linear for s-projectors. These drive the Table 2 row-3 experiments.

pub mod bio;
pub mod gadgets;
pub mod hospital;
pub mod rfid;
pub mod speech;
pub mod text;

pub use hospital::{hospital_sequence, room_tracker, table1_rows, Table1Row};
