//! The paper's running example (Figures 1–2, Table 1).
//!
//! The extended abstract prints Figure 1 only as a drawing; the machine-
//! readable constraints are: `Σ_μ = {r1a, r1b, r2a, r2b, la, lb}`, length
//! 5, `μ₀→(r1a) = 0.7`, `μ₃→(la, lb) = 0.1`, the six string probabilities
//! of Table 1, and the statement that rows `s`, `t`, `u` are *all* the
//! strings transduced into `12` (so `conf(12) = 0.4038`). This module
//! reconstructs a Markov sequence satisfying every one of those
//! constraints. (The constraint set pins most of the chain; the handful
//! of remaining free entries — rows never visited by Table 1 strings —
//! were chosen so that no additional string maps to `12`. Notably, the
//! reconstruction forces row `w` to stay inside the lab at position 3:
//! any chain in which `w` reaches `la` at position 3 necessarily creates
//! a fourth string transduced into `12`, contradicting Table 1.)
//!
//! The Figure 2 transducer tracks the *place* (Room 1, Room 2, lab) of
//! the cart and — once the cart has visited the lab — emits the place
//! symbol each time a new place is entered (Example 3.3/3.4).

use std::sync::Arc;

use transmark_automata::{Alphabet, SymbolId};
use transmark_core::transducer::Transducer;
use transmark_markov::{MarkovSequence, MarkovSequenceBuilder};

/// The six locations of Figure 1, in a fixed order.
pub const LOCATIONS: [&str; 6] = ["r1a", "r1b", "r2a", "r2b", "la", "lb"];

/// The shared alphabet of the running example.
pub fn hospital_alphabet() -> Arc<Alphabet> {
    Arc::new(Alphabet::from_names(LOCATIONS))
}

/// The Figure 1 Markov sequence `μ\[5\]` (reconstruction; see module docs).
pub fn hospital_sequence() -> MarkovSequence {
    let alphabet = hospital_alphabet();
    let s = |name: &str| alphabet.sym(name);
    let (r1a, r1b, r2a, r2b, la, lb) = (s("r1a"), s("r1b"), s("r2a"), s("r2b"), s("la"), s("lb"));

    MarkovSequenceBuilder::new(alphabet.clone(), 5)
        // μ₀→: the cart starts in Room 1 (mostly near r1a) or the lab.
        .initial(r1a, 0.7)
        .initial(r1b, 0.28)
        .initial(la, 0.02)
        // μ₁→ (positions 1→2)
        .transition(0, r1a, la, 0.9)
        .transition(0, r1a, r1a, 0.1)
        .transition(0, r1b, r1b, 0.9)
        .transition(0, r1b, lb, 0.1)
        .transition(0, la, r1b, 1.0)
        // μ₂→ (positions 2→3)
        .transition(1, r1a, la, 0.1)
        .transition(1, r1a, r2b, 0.2)
        .transition(1, r1a, r1a, 0.7)
        .transition(1, r1b, r1b, 0.9)
        .transition(1, r1b, lb, 0.1)
        .transition(1, la, la, 0.9)
        .transition(1, la, r2a, 0.1)
        .transition(1, lb, lb, 1.0)
        // μ₃→ (positions 3→4); the paper states μ₃→(la, lb) = 0.1.
        .transition(2, la, r1a, 0.7)
        .transition(2, la, lb, 0.1)
        .transition(2, la, la, 0.2)
        .transition(2, r1b, r1a, 1.0 / 9.0)
        .transition(2, r1b, r1b, 8.0 / 9.0)
        .transition(2, r2a, r1b, 1.0)
        .transition(2, r2b, r1b, 1.0)
        .transition(2, r1a, r1a, 1.0)
        .transition(2, lb, lb, 1.0)
        // μ₄→ (positions 4→5)
        .transition(3, r1a, r2a, 1.0)
        .transition(3, r1b, lb, 0.5)
        .transition(3, r1b, r1b, 0.5)
        .transition(3, la, la, 1.0)
        .transition(3, lb, lb, 1.0)
        // Rows for locations unreachable at a given position still must be
        // distributions (paper's definition); park them on self-loops.
        .fill_dead_rows_self_loop()
        .build()
        .expect("the reconstructed Figure 1 chain is valid")
}

/// The output alphabet of Figure 2: `1` (Room 1), `2` (Room 2),
/// `λ` (the lab).
pub fn place_alphabet() -> Arc<Alphabet> {
    Arc::new(Alphabet::from_names(["1", "2", "λ"]))
}

/// The Figure 2 transducer `A^ω`: after the cart's first visit to the
/// lab, emit the place symbol whenever a place (Room 1 / Room 2 / lab) is
/// entered from a different place. Deterministic, selective (strings that
/// never visit the lab are rejected), non-uniform (emissions `ε` and
/// length 1).
pub fn room_tracker() -> Transducer {
    let input = hospital_alphabet();
    let output = place_alphabet();
    let sym = |name: &str| input.sym(name);
    let out = |name: &str| output.sym(name);
    let (one, two, lam) = (out("1"), out("2"), out("λ"));

    let mut b = Transducer::builder(input.clone(), output);
    let q0 = b.add_state(false); // lab not visited yet
    let qlam = b.add_state(true); // in the lab
    let q1 = b.add_state(true); // in Room 1
    let q2 = b.add_state(true); // in Room 2

    let room1 = [sym("r1a"), sym("r1b")];
    let room2 = [sym("r2a"), sym("r2b")];
    let lab = [sym("la"), sym("lb")];

    for s in room1.iter().chain(&room2) {
        b.add_transition(q0, *s, q0, &[]).expect("valid edge");
    }
    for s in &lab {
        b.add_transition(q0, *s, qlam, &[]).expect("valid edge");
    }
    for s in &lab {
        b.add_transition(qlam, *s, qlam, &[]).expect("valid edge");
        b.add_transition(q1, *s, qlam, &[lam]).expect("valid edge");
        b.add_transition(q2, *s, qlam, &[lam]).expect("valid edge");
    }
    for s in &room1 {
        b.add_transition(qlam, *s, q1, &[one]).expect("valid edge");
        b.add_transition(q1, *s, q1, &[]).expect("valid edge");
        b.add_transition(q2, *s, q1, &[one]).expect("valid edge");
    }
    for s in &room2 {
        b.add_transition(qlam, *s, q2, &[two]).expect("valid edge");
        b.add_transition(q1, *s, q2, &[two]).expect("valid edge");
        b.add_transition(q2, *s, q2, &[]).expect("valid edge");
    }
    b.build().expect("the Figure 2 transducer is valid")
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The paper's row label (`s`, `t`, …).
    pub label: &'static str,
    /// The string, as location names.
    pub string: [&'static str; 5],
    /// Its probability as printed in the paper.
    pub probability: f64,
    /// Its output as printed: `Some(names)` or `None` for "N/A"
    /// (rejected).
    pub output: Option<&'static [&'static str]>,
}

/// The rows of Table 1 (with the expected values printed in the paper).
pub fn table1_rows() -> Vec<Table1Row> {
    vec![
        Table1Row {
            label: "s",
            string: ["r1a", "la", "la", "r1a", "r2a"],
            probability: 0.3969,
            output: Some(&["1", "2"]),
        },
        Table1Row {
            label: "t",
            string: ["r1a", "r1a", "la", "r1a", "r2a"],
            probability: 0.0049,
            output: Some(&["1", "2"]),
        },
        Table1Row {
            label: "u",
            string: ["la", "r1b", "r1b", "r1a", "r2a"],
            probability: 0.002,
            output: Some(&["1", "2"]),
        },
        Table1Row {
            label: "v",
            string: ["r1a", "la", "r2a", "r1b", "lb"],
            probability: 0.0315,
            output: Some(&["2", "1", "λ"]),
        },
        Table1Row {
            label: "w",
            string: ["r1b", "r1b", "lb", "lb", "lb"],
            probability: 0.0252,
            output: Some(&[]),
        },
        Table1Row {
            label: "x",
            string: ["r1a", "r1a", "r2b", "r1b", "r1b"],
            probability: 0.007,
            output: None,
        },
    ]
}

/// The confidence of the answer `12` as computed in Example 3.4.
pub const CONF_12: f64 = 0.4038;

/// Resolves a location-name string to symbol ids.
pub fn locations(names: &[&str]) -> Vec<SymbolId> {
    let alphabet = hospital_alphabet();
    names.iter().map(|n| alphabet.sym(n)).collect()
}

/// Resolves place names (`1`, `2`, `λ`) to output symbol ids.
pub fn places(names: &[&str]) -> Vec<SymbolId> {
    let alphabet = place_alphabet();
    names.iter().map(|n| alphabet.sym(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_core::confidence::{confidence, confidence_deterministic};
    use transmark_markov::numeric::approx_eq;

    #[test]
    fn table1_probabilities_match_the_paper() {
        let m = hospital_sequence();
        for row in table1_rows() {
            let s = locations(&row.string);
            let p = m.string_probability(&s).expect("length 5");
            assert!(
                approx_eq(p, row.probability, 1e-12, 1e-10),
                "row {}: probability {p} != {}",
                row.label,
                row.probability
            );
        }
    }

    #[test]
    fn table1_outputs_match_the_paper() {
        let t = room_tracker();
        assert!(t.is_deterministic());
        assert!(t.is_selective());
        assert_eq!(t.uniform_emission(), None);
        for row in table1_rows() {
            let s = locations(&row.string);
            let got = t.transduce_deterministic(&s);
            let want = row.output.map(places);
            assert_eq!(got, want, "row {}", row.label);
        }
    }

    #[test]
    fn conf_12_matches_example_3_4() {
        let m = hospital_sequence();
        let t = room_tracker();
        let o = places(&["1", "2"]);
        let c = confidence_deterministic(&t, &m, &o).expect("deterministic confidence");
        assert!(
            approx_eq(c, CONF_12, 1e-12, 1e-10),
            "conf(12) = {c}, paper says {CONF_12}"
        );
        // And via the auto-dispatcher.
        let c2 = confidence(&t, &m, &o).expect("confidence");
        assert!(approx_eq(c2, CONF_12, 1e-12, 1e-10));
    }

    #[test]
    fn exactly_three_strings_produce_12() {
        // Table 1: "the table contains all the random strings of μ that
        // are transduced into 12" — s, t, u.
        let m = hospital_sequence();
        let t = room_tracker();
        let o = places(&["1", "2"]);
        let twelve: Vec<_> = transmark_markov::support::support(&m)
            .into_iter()
            .filter(|(s, _)| t.transduce_deterministic(s).as_deref() == Some(&o[..]))
            .collect();
        assert_eq!(twelve.len(), 3, "strings mapping to 12: {twelve:?}");
        let sum: f64 = twelve.iter().map(|(_, p)| p).sum();
        assert!(approx_eq(sum, CONF_12, 1e-12, 1e-10));
    }

    #[test]
    fn example_4_2_emax_of_12() {
        // E_max(12) = p(s) = 0.3969 (Example 4.2).
        let m = hospital_sequence();
        let t = room_tracker();
        let o = places(&["1", "2"]);
        let e = transmark_core::emax::emax_of_output(&t, &m, &o)
            .expect("emax")
            .exp();
        assert!(approx_eq(e, 0.3969, 1e-12, 1e-10), "E_max(12) = {e}");
    }
}
