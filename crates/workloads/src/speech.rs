//! Speech-decoding workloads.
//!
//! Speech recognition is the paper's canonical HMM application (§1:
//! "the observations are acoustic signals, and the hidden states are
//! sequences of words or phonemes" \[21, 40, 46, 52\]). This module models
//! the back half of that pipeline: a *phoneme posterior* Markov sequence
//! (what an acoustic model emits) and a **lexicon transducer** that maps
//! phoneme sequences to word sequences — a selective transducer whose
//! states walk a prefix tree (trie) of the vocabulary and emit a word
//! symbol each time a word completes. Evaluating it yields the ranked
//! word-sequence hypotheses with their confidences — exactly the
//! `A^ω(μ)` semantics.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::Rng;
use transmark_automata::{Alphabet, SymbolId};
use transmark_core::error::EngineError;
use transmark_core::transducer::{Transducer, TransducerBuilder};
use transmark_markov::{Hmm, MarkovSequence};

/// A vocabulary over a phoneme alphabet.
#[derive(Debug, Clone)]
pub struct Lexicon {
    phonemes: Arc<Alphabet>,
    words: Arc<Alphabet>,
    /// Word spellings as phoneme-id strings, indexed by word id.
    spellings: Vec<Vec<SymbolId>>,
}

impl Lexicon {
    /// Builds a lexicon from `(word, phoneme-string)` pairs, where each
    /// phoneme is one character of `phoneme_chars`. The vocabulary must
    /// be nonempty and *prefix-free* (no word's spelling is a prefix of
    /// another's), which makes greedy word segmentation deterministic.
    pub fn new(phoneme_chars: &str, entries: &[(&str, &str)]) -> Result<Lexicon, EngineError> {
        assert!(!entries.is_empty(), "vocabulary must be nonempty");
        let phonemes = Arc::new(Alphabet::of_chars(phoneme_chars));
        let words = Arc::new(Alphabet::from_names(entries.iter().map(|(w, _)| *w)));
        let spellings: Vec<Vec<SymbolId>> = entries
            .iter()
            .map(|(_, spelling)| {
                spelling
                    .chars()
                    .map(|c| {
                        phonemes
                            .get(&c.to_string())
                            .ok_or(EngineError::InvalidSymbol {
                                symbol: usize::MAX,
                                n_symbols: phonemes.len(),
                                alphabet: "input",
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<_, _>>()?;
        for (i, a) in spellings.iter().enumerate() {
            assert!(!a.is_empty(), "empty spelling for {:?}", entries[i].0);
            for (j, b) in spellings.iter().enumerate() {
                if i != j && b.len() >= a.len() && &b[..a.len()] == a.as_slice() {
                    panic!(
                        "vocabulary is not prefix-free: {:?} is a prefix of {:?}",
                        entries[i].0, entries[j].0
                    );
                }
            }
        }
        Ok(Lexicon {
            phonemes,
            words,
            spellings,
        })
    }

    /// The phoneme alphabet.
    pub fn phonemes(&self) -> &Alphabet {
        &self.phonemes
    }

    /// The word alphabet.
    pub fn words(&self) -> &Alphabet {
        &self.words
    }

    /// The lexicon transducer: reads phonemes, walks the vocabulary trie,
    /// emits the word symbol on each completed word, and accepts exactly
    /// the phoneme strings that segment into whole words. Deterministic
    /// (the vocabulary is prefix-free) and selective.
    pub fn transducer(&self) -> Result<Transducer, EngineError> {
        /// An edge of the vocabulary trie.
        enum TrieEdge {
            /// Continue into a deeper trie node.
            Interior(usize),
            /// The phoneme completes this word; return to the root.
            Complete(SymbolId),
        }

        let mut b = TransducerBuilder::new(Arc::clone(&self.phonemes), Arc::clone(&self.words));
        // Trie over phoneme prefixes; node 0 = root (word boundary).
        let mut next_id = 1usize;
        let mut trie: BTreeMap<(usize, SymbolId), TrieEdge> = BTreeMap::new();
        for (wid, spelling) in self.spellings.iter().enumerate() {
            let mut node = 0usize;
            for (pos, &ph) in spelling.iter().enumerate() {
                if pos + 1 == spelling.len() {
                    // Prefix-freeness guarantees no other word continues
                    // through this (node, phoneme) edge.
                    trie.insert((node, ph), TrieEdge::Complete(SymbolId(wid as u32)));
                } else {
                    node = match trie.entry((node, ph)).or_insert_with(|| {
                        let id = next_id;
                        next_id += 1;
                        TrieEdge::Interior(id)
                    }) {
                        TrieEdge::Interior(id) => *id,
                        TrieEdge::Complete(_) => {
                            unreachable!("prefix-freeness was checked at construction")
                        }
                    };
                }
            }
        }
        // Transducer states: root (accepting — a word boundary) + interior
        // trie nodes (mid-word, non-accepting) + dead sink.
        let states: Vec<_> = (0..next_id).map(|i| b.add_state(i == 0)).collect();
        let dead = b.add_state(false);
        b.set_initial(states[0]);
        for ph in 0..self.phonemes.len() {
            b.add_transition(dead, SymbolId(ph as u32), dead, &[])?;
        }
        for node in 0..next_id {
            for ph in 0..self.phonemes.len() {
                let sym = SymbolId(ph as u32);
                match trie.get(&(node, sym)) {
                    Some(TrieEdge::Complete(wid)) => {
                        b.add_transition(states[node], sym, states[0], &[*wid])?;
                    }
                    Some(TrieEdge::Interior(target)) => {
                        b.add_transition(states[node], sym, states[*target], &[])?;
                    }
                    None => {
                        b.add_transition(states[node], sym, dead, &[])?;
                    }
                }
            }
        }
        b.build()
    }

    /// A noisy phoneme-recognizer HMM: hidden states are phonemes, the
    /// chain follows `language` transitions (uniform here), and the
    /// observation is the phoneme itself corrupted with probability
    /// `noise`. Sampling observations and conditioning yields a phoneme
    /// posterior for the engine.
    pub fn recognizer(&self, noise: f64) -> Hmm {
        let k = self.phonemes.len();
        let obs = Alphabet::from_names(self.phonemes.iter().map(|(_, n)| format!("~{n}")));
        let initial = vec![1.0 / k as f64; k];
        let transition = vec![1.0 / k as f64; k * k];
        let mut emission = vec![0.0; k * k];
        for i in 0..k {
            for o in 0..k {
                emission[i * k + o] = if i == o { 1.0 - noise } else { 0.0 } + noise / k as f64;
            }
        }
        Hmm::new(
            Arc::clone(&self.phonemes),
            obs,
            initial,
            transition,
            emission,
        )
        .expect("recognizer HMM is valid")
    }

    /// Samples an utterance: a concatenation of `n_words` random word
    /// spellings, its observation sequence, and the posterior.
    pub fn sample_utterance<R: Rng + ?Sized>(
        &self,
        n_words: usize,
        noise: f64,
        rng: &mut R,
    ) -> (Vec<SymbolId>, MarkovSequence) {
        use rand::RngExt;
        let hmm = self.recognizer(noise);
        let mut spoken_words = Vec::with_capacity(n_words);
        let mut phonemes: Vec<SymbolId> = Vec::new();
        for _ in 0..n_words {
            let wid = rng.random_range(0..self.spellings.len());
            spoken_words.push(SymbolId(wid as u32));
            phonemes.extend(&self.spellings[wid]);
        }
        // Observe each phoneme through the noisy channel.
        let k = self.phonemes.len();
        let obs: Vec<SymbolId> = phonemes
            .iter()
            .map(|&p| {
                if rng.random_bool(noise * (1.0 - 1.0 / k as f64)) {
                    // A confusion: uniformly another phoneme.
                    let mut o = rng.random_range(0..k - 1);
                    if o >= p.index() {
                        o += 1;
                    }
                    SymbolId(o as u32)
                } else {
                    p
                }
            })
            .collect();
        let posterior = hmm
            .posterior(&obs)
            .expect("observations have positive likelihood");
        (spoken_words, posterior)
    }
}

/// A small demonstration lexicon (prefix-free over phonemes `abdgnot`).
pub fn demo_lexicon() -> Lexicon {
    Lexicon::new(
        "abdgnot",
        &[
            ("dog", "dog"),
            ("bat", "bat"),
            ("and", "and"),
            ("tab", "tab"),
            ("go", "go"),
        ],
    )
    .expect("demo lexicon is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_core::enumerate::top_k_by_emax;

    #[test]
    fn lexicon_transducer_segments_words() {
        let lex = demo_lexicon();
        let t = lex.transducer().unwrap();
        assert!(t.is_deterministic());
        assert!(t.is_selective());
        let parse = |s: &str| -> Vec<SymbolId> {
            s.chars()
                .map(|c| lex.phonemes().sym(&c.to_string()))
                .collect()
        };
        // "dogbat" → dog bat
        let out = t.transduce_deterministic(&parse("dogbat")).unwrap();
        assert_eq!(t.render_output(&out, " "), "dog bat");
        // "goandgo" → go and go
        let out = t.transduce_deterministic(&parse("goandgo")).unwrap();
        assert_eq!(t.render_output(&out, " "), "go and go");
        // Partial word: rejected.
        assert_eq!(t.transduce_deterministic(&parse("dogba")), None);
        // Garbage: rejected.
        assert_eq!(t.transduce_deterministic(&parse("ddd")), None);
    }

    #[test]
    #[should_panic(expected = "prefix-free")]
    fn prefixy_vocabulary_is_rejected() {
        let _ = Lexicon::new("abdgnot", &[("go", "go"), ("got", "got")]);
    }

    #[test]
    fn decoding_recovers_clean_utterances() {
        let lex = demo_lexicon();
        let t = lex.transducer().unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let (spoken, posterior) = lex.sample_utterance(2, 0.0, &mut rng);
        // Noise-free: the top word sequence is exactly what was spoken.
        let top = top_k_by_emax(&t, &posterior, 1).unwrap();
        assert_eq!(top[0].output, spoken);
    }

    #[test]
    fn noisy_decoding_ranks_hypotheses() {
        let lex = demo_lexicon();
        let t = lex.transducer().unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let (_, posterior) = lex.sample_utterance(2, 0.15, &mut rng);
        let hyps = top_k_by_emax(&t, &posterior, 5).unwrap();
        assert!(!hyps.is_empty());
        // Hypotheses are valid word sequences with positive confidence.
        for h in &hyps {
            let conf = transmark_core::confidence::confidence(&t, &posterior, &h.output).unwrap();
            assert!(conf > 0.0);
            assert!(h.score() <= conf + 1e-12);
        }
        // Scores non-increasing.
        for w in hyps.windows(2) {
            assert!(w[0].log_score >= w[1].log_score - 1e-12);
        }
    }

    #[test]
    fn word_boundary_probability() {
        // The probability that an utterance posterior decodes to SOME word
        // sequence = acceptance probability of the lexicon automaton.
        let lex = demo_lexicon();
        let t = lex.transducer().unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let (_, posterior) = lex.sample_utterance(2, 0.2, &mut rng);
        let p = transmark_core::confidence::acceptance_probability(&t.underlying_nfa(), &posterior)
            .unwrap();
        assert!((0.0..=1.0 + 1e-12).contains(&p));
        // It must equal the total confidence mass over all answers
        // (deterministic machine: worlds map to ≤ 1 answer).
        let total: f64 = transmark_core::brute::evaluate(&t, &posterior)
            .unwrap()
            .values()
            .sum();
        assert!((p - total).abs() < 1e-9, "{p} vs {total}");
    }
}
