//! Biological-sequence workloads.
//!
//! The paper's introduction lists "sequence matching in biological data
//! \[13, 20\]" (HMMER-style profile matching) among the HMM applications
//! feeding Markov sequences. This module models the common pipeline:
//! a sequencer produces *uncertain base calls* — per-position posterior
//! over {A, C, G, T} with Markov-correlated errors — and queries extract
//! motif occurrences (s-projectors) or detect composition signals
//! (Boolean NFAs, e.g. CpG-island-like GC enrichment).

use std::sync::Arc;

use rand::{Rng, RngExt};
use transmark_automata::{Alphabet, Dfa, Nfa, StateId, SymbolId};
use transmark_core::error::EngineError;
use transmark_markov::{MarkovSequence, MarkovSequenceBuilder};
use transmark_sproj::SProjector;

/// The DNA alphabet, in the fixed order A, C, G, T.
pub fn dna_alphabet() -> Arc<Alphabet> {
    Arc::new(Alphabet::of_chars("ACGT"))
}

/// Parameters of the uncertain-read model.
#[derive(Debug, Clone)]
pub struct ReadSpec {
    /// Probability that a base call is wrong.
    pub error_rate: f64,
    /// Multiplier on the error rate right after an error (bursty errors,
    /// as in real sequencers); the product is clamped to 0.9.
    pub burstiness: f64,
}

impl Default for ReadSpec {
    fn default() -> Self {
        Self {
            error_rate: 0.05,
            burstiness: 4.0,
        }
    }
}

/// An uncertain read: the Markov sequence of base-call posteriors for a
/// true underlying sequence.
pub struct UncertainRead {
    /// The base-call posterior.
    pub sequence: MarkovSequence,
    /// The true underlying bases.
    pub truth: Vec<SymbolId>,
}

/// Builds the uncertain read for `reference` (a string over `ACGT`).
/// Miscalls substitute the transversion partner (A↔C, G↔T) so each
/// position has exactly two hypotheses and errors are bursty — the same
/// structure as [`crate::text::noisy_document`], specialized to DNA.
pub fn uncertain_read(reference: &str, spec: &ReadSpec) -> UncertainRead {
    let alphabet = dna_alphabet();
    let truth: Vec<SymbolId> = reference
        .chars()
        .map(|c| alphabet.sym(&c.to_string()))
        .collect();
    assert!(!truth.is_empty(), "reference must be nonempty");
    let miscall = |b: SymbolId| -> SymbolId {
        // A↔C, G↔T (indices 0↔1, 2↔3).
        SymbolId(b.0 ^ 1)
    };
    let p0 = spec.error_rate.clamp(0.0, 0.9);
    let p_burst = (spec.error_rate * spec.burstiness).clamp(0.0, 0.9);
    let n = truth.len();
    let mut b = MarkovSequenceBuilder::new(Arc::clone(&alphabet), n)
        .initial(truth[0], 1.0 - p0)
        .initial(miscall(truth[0]), p0);
    for i in 0..n - 1 {
        let (good_next, bad_next) = (truth[i + 1], miscall(truth[i + 1]));
        for (from, p_err) in [(truth[i], p0), (miscall(truth[i]), p_burst)] {
            b = b
                .transition(i, from, good_next, 1.0 - p_err)
                .transition(i, from, bad_next, p_err);
        }
    }
    let sequence = b
        .fill_dead_rows_self_loop()
        .build()
        .expect("read model is valid");
    UncertainRead { sequence, truth }
}

impl UncertainRead {
    /// Renders a base string.
    pub fn render(&self, s: &[SymbolId]) -> String {
        self.sequence.alphabet().render(s, "")
    }

    /// An s-projector extracting occurrences of an exact motif (e.g.
    /// `"GAT"`), context-free (`[*]motif[*]`).
    pub fn motif_extractor(&self, motif: &str) -> Result<SProjector, EngineError> {
        let alphabet = self.sequence.alphabet_arc();
        let word: Vec<SymbolId> = motif
            .chars()
            .map(|c| alphabet.sym(&c.to_string()))
            .collect();
        let pattern = Dfa::word(alphabet.len(), &word);
        SProjector::simple(alphabet, pattern)
    }
}

/// A Boolean query: "contains a run of at least `k` consecutive G/C
/// bases" — a toy CpG-island-style composition signal.
pub fn gc_run_query(k: usize) -> Nfa {
    assert!(k >= 1);
    let mut nfa = Nfa::new(4);
    // States 0..k: current G/C run length (k = accepting sink).
    let states: Vec<StateId> = (0..=k).map(|i| nfa.add_state(i == k)).collect();
    let alphabet = dna_alphabet();
    let (a, c, g, t) = (
        alphabet.sym("A"),
        alphabet.sym("C"),
        alphabet.sym("G"),
        alphabet.sym("T"),
    );
    for i in 0..k {
        for gc in [c, g] {
            nfa.add_transition(states[i], gc, states[i + 1]);
        }
        for at in [a, t] {
            nfa.add_transition(states[i], at, states[0]);
        }
    }
    for base in [a, c, g, t] {
        nfa.add_transition(states[k], base, states[k]);
    }
    nfa
}

/// A random reference genome fragment.
pub fn random_reference<R: Rng + ?Sized>(len: usize, gc_bias: f64, rng: &mut R) -> String {
    (0..len)
        .map(|_| {
            if rng.random_bool(gc_bias) {
                if rng.random_bool(0.5) {
                    'G'
                } else {
                    'C'
                }
            } else if rng.random_bool(0.5) {
                'A'
            } else {
                'T'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_core::confidence::acceptance_probability;
    use transmark_markov::numeric::approx_eq;
    use transmark_markov::support::support;
    use transmark_sproj::indexed::enumerate_indexed;
    use transmark_sproj::sproj_confidence;

    #[test]
    fn clean_read_is_most_likely() {
        let read = uncertain_read("GATTACA", &ReadSpec::default());
        let (best, p) = read.sequence.most_likely_string();
        assert_eq!(best, read.truth);
        assert!(p > 0.5);
        assert!(read.sequence.string_probability(&read.truth).unwrap() > 0.0);
    }

    #[test]
    fn motif_extraction_finds_true_occurrences_first() {
        let read = uncertain_read(
            "ACGATGAT",
            &ReadSpec {
                error_rate: 0.05,
                burstiness: 2.0,
            },
        );
        let p = read.motif_extractor("GAT").unwrap();
        let hits: Vec<_> = enumerate_indexed(&p, &read.sequence)
            .unwrap()
            .take(2)
            .collect();
        assert_eq!(hits.len(), 2);
        // "GAT" occurs at 1-based positions 3 and 6 in the reference.
        let mut idx: Vec<usize> = hits.iter().map(|h| h.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![3, 6]);
        for h in &hits {
            assert_eq!(read.render(&h.output), "GAT");
        }
    }

    #[test]
    fn motif_confidence_matches_brute_force() {
        let read = uncertain_read(
            "GATAC",
            &ReadSpec {
                error_rate: 0.2,
                burstiness: 2.0,
            },
        );
        let p = read.motif_extractor("AT").unwrap();
        let o: Vec<SymbolId> = "AT"
            .chars()
            .map(|c| read.sequence.alphabet().sym(&c.to_string()))
            .collect();
        let got = sproj_confidence(&p, &read.sequence, &o).unwrap();
        let want: f64 = support(&read.sequence)
            .iter()
            .filter(|(s, _)| s.windows(2).any(|w| w == &o[..]))
            .map(|(_, pp)| pp)
            .sum();
        assert!(approx_eq(got, want, 1e-10, 1e-8), "{got} vs {want}");
    }

    #[test]
    fn gc_run_query_matches_definition() {
        let q = gc_run_query(3);
        let alphabet = dna_alphabet();
        let parse = |s: &str| -> Vec<SymbolId> {
            s.chars().map(|c| alphabet.sym(&c.to_string())).collect()
        };
        assert!(q.accepts(&parse("AGCGT")));
        assert!(q.accepts(&parse("CCC")));
        assert!(!q.accepts(&parse("GCAGC")));
        assert!(!q.accepts(&parse("AT")));
    }

    #[test]
    fn gc_probability_is_sensible() {
        // A GC-rich read should score much higher than an AT-rich one.
        let rich = uncertain_read("GCGCGC", &ReadSpec::default());
        let poor = uncertain_read("ATATAT", &ReadSpec::default());
        let q = gc_run_query(3);
        let p_rich = acceptance_probability(&q, &rich.sequence).unwrap();
        let p_poor = acceptance_probability(&q, &poor.sequence).unwrap();
        assert!(p_rich > 0.9, "p_rich = {p_rich}");
        assert!(p_poor < 0.1, "p_poor = {p_poor}");
    }

    #[test]
    fn random_reference_respects_bias() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let s = random_reference(2000, 0.8, &mut rng);
        let gc = s.chars().filter(|&c| c == 'G' || c == 'C').count();
        let frac = gc as f64 / 2000.0;
        assert!((frac - 0.8).abs() < 0.05, "gc fraction {frac}");
    }
}
