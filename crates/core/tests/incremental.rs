//! Property suite for the incremental streaming state machines
//! (`transmark_core::incremental`): sliding windows against the
//! from-scratch oracle across plan routes and source formats,
//! checkpoint/resume bit-identity at every split point, and
//! truncation/corruption fuzz over the blob codec.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

use transmark_core::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark_core::incremental::{
    CheckpointKind, EventSession, SlidingWindowQuery, StreamCheckpoint,
};
use transmark_core::plan::{prepare, PreparedQuery};
use transmark_core::transducer::Transducer;
use transmark_core::SymbolId;
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::numeric::approx_eq;
use transmark_markov::{MarkovSequence, SequenceSource};

fn arb_class() -> impl Strategy<Value = TransducerClass> {
    prop_oneof![
        Just(TransducerClass::General),
        Just(TransducerClass::Deterministic),
        Just(TransducerClass::Mealy),
        Just(TransducerClass::Uniform(1)),
        Just(TransducerClass::Uniform(2)),
        Just(TransducerClass::Projector),
    ]
}

fn instance(class: TransducerClass, seed: u64, n: usize) -> (Transducer, MarkovSequence) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: n,
            n_symbols: 2,
            zero_prob: 0.3,
        },
        &mut rng,
    );
    let t = random_transducer(
        &RandomTransducerSpec {
            n_states: 3,
            n_input_symbols: 2,
            n_output_symbols: 2,
            class,
            branching: 1.5,
        },
        &mut rng,
    );
    (t, m)
}

/// The sequence's step matrices, materialized (the sessions take one
/// matrix per advance).
fn matrices(m: &MarkovSequence) -> Vec<Vec<f64>> {
    (0..m.len() - 1)
        .map(|i| m.transition_matrix(i).to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The O(k²)-per-slide window equals the from-scratch window
    /// recompute at every tick, for every window size, within the scan
    /// path's documented reassociation tolerance.
    #[test]
    fn window_matches_full_recompute(class in arb_class(), seed in any::<u64>(), n in 2usize..7) {
        let (t, m) = instance(class, seed, n);
        let marginals = m.marginals();
        for w in 1..=n {
            let q = SlidingWindowQuery::new(t.underlying_nfa(), w).unwrap();
            let series = q.series(&m).unwrap();
            prop_assert_eq!(series.len(), n);
            for (p, &got) in series.iter().enumerate() {
                // After p consumed steps the window covers positions
                // max(0, p+1-w)..=p; recompute it from the chain marginal
                // at the window start.
                let start = (p + 1).saturating_sub(w);
                let in_window: Vec<&[f64]> =
                    (start..p).map(|i| m.transition_matrix(i)).collect();
                let oracle = q.recompute(&marginals[start], &in_window);
                prop_assert!(
                    approx_eq(got, oracle, 1e-12, 1e-9),
                    "window {} at tick {}: incremental {} vs recompute {}",
                    w, p, got, oracle
                );
            }
        }
    }

    /// A window of the full stream length never evicts, so it must equal
    /// the plain prefix-acceptance series; and the series is identical
    /// whichever source format feeds it (memory, `.tms` text, `.tmsb`).
    #[test]
    fn window_series_is_source_independent(class in arb_class(), seed in any::<u64>(), n in 2usize..7) {
        let (t, m) = instance(class, seed, n);
        let nfa = t.underlying_nfa();
        for w in [1, 2, n] {
            let q = SlidingWindowQuery::new(nfa.clone(), w).unwrap();
            let from_seq = q.series(&m).unwrap();

            let mut mem = SequenceSource::new(&m);
            let from_mem = q.series_source(&mut mem).unwrap();

            let text = transmark_markov::textio::to_text(&m);
            let mut tms =
                transmark_markov::textio::TmsTextSource::new(text.as_bytes()).unwrap();
            let from_text = q.series_source(&mut tms).unwrap();

            let bytes = transmark_markov::binio::to_tmsb_bytes(&m);
            let mut tmsb =
                transmark_markov::binio::TmsbReader::new(std::io::Cursor::new(&bytes)).unwrap();
            let from_tmsb = q.series_source(&mut tmsb).unwrap();

            for (a, b) in from_seq.iter().zip(&from_mem) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in from_seq.iter().zip(&from_text) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in from_seq.iter().zip(&from_tmsb) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Full-length window ≡ prefix acceptance (nothing ever evicted).
        let q = SlidingWindowQuery::new(nfa.clone(), n).unwrap();
        let windowed = q.series(&m).unwrap();
        let prefix = transmark_core::prefix_acceptance_probabilities(&nfa, &m).unwrap();
        for (a, b) in windowed.iter().zip(&prefix) {
            prop_assert!(approx_eq(*a, *b, 1e-12, 1e-9));
        }
    }

    /// Suspending an [`EventSession`] at every step boundary and resuming
    /// (through the versioned blob) continues bit-identically to the
    /// uninterrupted fold.
    #[test]
    fn event_checkpoint_roundtrips_at_every_boundary(class in arb_class(), seed in any::<u64>(), n in 2usize..7) {
        let (t, m) = instance(class, seed, n);
        let nfa = t.underlying_nfa();
        let steps = matrices(&m);

        let mut full = EventSession::start(nfa.clone(), m.initial_dist()).unwrap();
        let mut expected = vec![full.probability()];
        for s in &steps {
            expected.push(full.advance(s).unwrap());
        }

        for split in 0..=steps.len() {
            let mut sess = EventSession::start(nfa.clone(), m.initial_dist()).unwrap();
            for s in &steps[..split] {
                sess.advance(s).unwrap();
            }
            let blob = sess.checkpoint();
            let header = StreamCheckpoint::inspect(&blob).unwrap();
            prop_assert_eq!(header.kind, CheckpointKind::Event);
            prop_assert_eq!(header.position, split as u64);

            let mut resumed = EventSession::resume(nfa.clone(), &blob).unwrap();
            prop_assert_eq!(resumed.position(), split as u64);
            prop_assert_eq!(resumed.probability().to_bits(), expected[split].to_bits());
            for (i, s) in steps[split..].iter().enumerate() {
                let p = resumed.advance(s).unwrap();
                prop_assert_eq!(p.to_bits(), expected[split + 1 + i].to_bits());
            }
        }
    }

    /// [`ConfidenceSession`] checkpoint/resume is bit-identical on every
    /// plan route (the transducer classes drive every [`PlanKind`]), at
    /// every split point, for every answer of the query.
    #[test]
    fn confidence_checkpoint_roundtrips_on_every_route(class in arb_class(), seed in any::<u64>(), n in 2usize..6) {
        let (t, m) = instance(class, seed, n);
        let plan: Arc<PreparedQuery> = prepare(&t);
        let steps = matrices(&m);

        // The answers (plus one arbitrary probe output) this query can
        // produce on this sequence.
        let mut outputs: Vec<Vec<SymbolId>> = transmark_core::enumerate::enumerate_unranked(&t, &m)
            .unwrap()
            .take(3)
            .collect();
        outputs.push(vec![SymbolId(0); n]);

        for o in &outputs {
            let mut full = plan.begin_confidence(m.initial_dist(), o).unwrap();
            for s in &steps {
                full.step(s).unwrap();
            }
            let expected = full.finish();

            for split in 0..=steps.len() {
                let mut sess = plan.begin_confidence(m.initial_dist(), o).unwrap();
                for s in &steps[..split] {
                    sess.step(s).unwrap();
                }
                let blob = sess.checkpoint();
                prop_assert_eq!(
                    StreamCheckpoint::inspect(&blob).unwrap().kind,
                    CheckpointKind::Confidence
                );
                let mut resumed = plan.resume_confidence(o, &blob).unwrap();
                prop_assert_eq!(resumed.position(), split as u64);
                for s in &steps[split..] {
                    resumed.step(s).unwrap();
                }
                prop_assert_eq!(
                    resumed.finish().to_bits(),
                    expected.to_bits(),
                    "route {:?}, output {:?}, split {}",
                    plan.kind(), o, split
                );
            }
        }
    }

    /// [`WindowSession`] checkpoint/resume is bit-identical at every
    /// split, including splits where the ring is not yet full and splits
    /// where eviction has begun.
    #[test]
    fn window_checkpoint_roundtrips_at_every_boundary(class in arb_class(), seed in any::<u64>(), n in 2usize..7, w in 1usize..5) {
        let (t, m) = instance(class, seed, n);
        let q = SlidingWindowQuery::new(t.underlying_nfa(), w).unwrap();
        let steps = matrices(&m);

        let mut full = q.start(m.initial_dist()).unwrap();
        let mut expected = vec![full.probability()];
        for s in &steps {
            expected.push(full.advance(s).unwrap());
        }

        for split in 0..=steps.len() {
            let mut sess = q.start(m.initial_dist()).unwrap();
            for s in &steps[..split] {
                sess.advance(s).unwrap();
            }
            let blob = sess.checkpoint();
            let header = StreamCheckpoint::inspect(&blob).unwrap();
            prop_assert_eq!(header.kind, CheckpointKind::Window);
            prop_assert_eq!(header.position, split as u64);

            let mut resumed = q.resume(&blob).unwrap();
            prop_assert_eq!(resumed.position(), split as u64);
            prop_assert_eq!(resumed.span(), sess.span());
            prop_assert_eq!(resumed.probability().to_bits(), expected[split].to_bits());
            for (i, s) in steps[split..].iter().enumerate() {
                let p = resumed.advance(s).unwrap();
                prop_assert_eq!(p.to_bits(), expected[split + 1 + i].to_bits());
            }
        }
    }

    /// Every truncation of a valid blob is refused with a typed error —
    /// never a panic, never a silently wrong session.
    #[test]
    fn truncated_checkpoints_are_refused(class in arb_class(), seed in any::<u64>(), n in 2usize..6) {
        let (t, m) = instance(class, seed, n);
        let nfa = t.underlying_nfa();
        let steps = matrices(&m);
        let mut sess = EventSession::start(nfa.clone(), m.initial_dist()).unwrap();
        for s in &steps {
            sess.advance(s).unwrap();
        }
        let blob = sess.checkpoint();
        for cut in 0..blob.len() {
            prop_assert!(EventSession::resume(nfa.clone(), &blob[..cut]).is_err());
        }

        let q = SlidingWindowQuery::new(nfa.clone(), 2).unwrap();
        let mut wsess = q.start(m.initial_dist()).unwrap();
        for s in &steps {
            wsess.advance(s).unwrap();
        }
        let wblob = wsess.checkpoint();
        for cut in 0..wblob.len() {
            prop_assert!(q.resume(&wblob[..cut]).is_err());
        }
    }

    /// Single-bit corruption anywhere in the blob never panics; flips in
    /// the header (magic / version / kind / fingerprint) are always
    /// refused with a typed error.
    #[test]
    fn corrupted_checkpoints_never_panic(class in arb_class(), seed in any::<u64>(), n in 2usize..6, byte in any::<usize>(), bit in 0usize..8) {
        let (t, m) = instance(class, seed, n);
        let nfa = t.underlying_nfa();
        let steps = matrices(&m);
        let mut sess = EventSession::start(nfa.clone(), m.initial_dist()).unwrap();
        for s in &steps {
            sess.advance(s).unwrap();
        }
        let mut blob = sess.checkpoint();
        let idx = byte % blob.len();
        blob[idx] ^= 1 << bit;
        // Must return (Ok for benign payload flips is fine) — the point
        // is it never panics and header damage is always detected.
        let result = EventSession::resume(nfa.clone(), &blob);
        if idx < 4 + 2 + 1 + 8 {
            prop_assert!(result.is_err(), "flip in header byte {} went undetected", idx);
        }
    }

    /// A blob resumed against the wrong session kind or the wrong query
    /// is refused (kind and fingerprint checks).
    #[test]
    fn cross_kind_and_cross_query_resume_is_refused(class in arb_class(), seed in any::<u64>(), n in 2usize..6) {
        let (t, m) = instance(class, seed, n);
        let (t2, _) = instance(class, seed.wrapping_add(0x9e37_79b9), n);
        let nfa = t.underlying_nfa();
        let sess = EventSession::start(nfa.clone(), m.initial_dist()).unwrap();
        let blob = sess.checkpoint();

        // Event blob into a window resume: kind mismatch.
        let q = SlidingWindowQuery::new(nfa.clone(), 2).unwrap();
        prop_assert!(q.resume(&blob).is_err());

        // Event blob into a confidence resume: kind mismatch.
        let plan = prepare(&t);
        prop_assert!(plan.resume_confidence(&[], &blob).is_err());

        // Event blob into a *different* query: fingerprint mismatch
        // (unless the two random machines collide structurally).
        if t2.underlying_nfa().fingerprint() != nfa.fingerprint() {
            prop_assert!(EventSession::resume(t2.underlying_nfa(), &blob).is_err());
        }
    }
}
