//! Observability-layer guarantees: instrumentation must not change any
//! computed number, the planner-cache counters must account for every
//! lookup exactly (including under concurrent binds of one shared plan),
//! snapshots must survive a JSON round trip, and phase spans must nest
//! and close correctly.

use std::sync::Mutex;

use rand::{rngs::StdRng, SeedableRng};
use transmark_automata::{Alphabet, SymbolId};
use transmark_core::evaluate::Evaluation;
use transmark_core::plan::prepare;
use transmark_core::transducer::Transducer;
use transmark_markov::{MarkovSequence, MarkovSequenceBuilder};

/// Metric counters are process-global, so every test in this binary
/// serializes on one lock: a parallel test's traffic would otherwise
/// leak into another's snapshot window.
static GLOBAL_METRICS: Mutex<()> = Mutex::new(());

fn sym(i: u32) -> SymbolId {
    SymbolId(i)
}

/// Nondeterministic suffix-copier over {a,b}: exercises the planner's
/// per-output compiled-graph cache on every confidence call.
fn suffix_guesser() -> Transducer {
    let a = Alphabet::of_chars("ab");
    let mut b = Transducer::builder(a.clone(), a);
    let skip = b.add_state(true);
    let copy = b.add_state(true);
    b.set_initial(skip);
    for s in 0..2u32 {
        b.add_transition(skip, sym(s), skip, &[]).unwrap();
        b.add_transition(skip, sym(s), copy, &[sym(s)]).unwrap();
        b.add_transition(copy, sym(s), copy, &[sym(s)]).unwrap();
    }
    b.build().unwrap()
}

fn uniform_chain(n: usize) -> MarkovSequence {
    MarkovSequenceBuilder::new(Alphabet::of_chars("ab"), n)
        .uniform_all()
        .build()
        .unwrap()
}

#[test]
fn instrumentation_is_bit_neutral() {
    let _g = GLOBAL_METRICS.lock().unwrap_or_else(|e| e.into_inner());
    let t = transmark_workloads::hospital::room_tracker();
    let m = transmark_workloads::hospital::hospital_sequence();

    // Two fully instrumented runs and the Evaluation facade agree
    // bit-for-bit on every score.
    let a = prepare(&t).bind(&m).unwrap().top_k_scored(8).unwrap();
    let b = prepare(&t).bind(&m).unwrap().top_k_scored(8).unwrap();
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.output, y.output);
        assert_eq!(x.emax.to_bits(), y.emax.to_bits());
        assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
    }
    let ev = Evaluation::new(&t, &m).unwrap();
    for x in &a {
        assert_eq!(
            ev.confidence(&x.output).unwrap().to_bits(),
            x.confidence.to_bits()
        );
    }

    // Monte-Carlo sampling: timers and counters must not perturb the RNG
    // draw sequence — same seed, bit-identical estimate.
    let t2 = suffix_guesser();
    let m2 = uniform_chain(4);
    let o = vec![sym(0)];
    let mut r1 = StdRng::seed_from_u64(42);
    let mut r2 = StdRng::seed_from_u64(42);
    let e1 = transmark_core::montecarlo::estimate_confidence(&t2, &m2, &o, 2_000, &mut r1).unwrap();
    let e2 = transmark_core::montecarlo::estimate_confidence(&t2, &m2, &o, 2_000, &mut r2).unwrap();
    assert_eq!(e1.estimate.to_bits(), e2.estimate.to_bits());
    assert_eq!(e1.std_error.to_bits(), e2.std_error.to_bits());
}

#[test]
fn planner_cache_accounting_is_exact_under_concurrent_binds() {
    let _g = GLOBAL_METRICS.lock().unwrap_or_else(|e| e.into_inner());
    if !transmark_obs::enabled() {
        return;
    }
    let t = suffix_guesser();
    let m = uniform_chain(3);
    let o = vec![sym(0)];
    let plan = prepare(&t);

    // Warm round: one bind + one confidence on a fresh plan. Whatever it
    // compiles is a miss; the total lookup count (hits + misses) is the
    // per-round cost we check the concurrent rounds against.
    let base = transmark_obs::registry().snapshot();
    let bound = plan.bind(&m).unwrap();
    let warm = bound.confidence(&o).unwrap();
    let d = transmark_obs::registry().snapshot().diff(&base);
    let (warm_hits, warm_misses) = (
        d.counter("planner.cache.hits"),
        d.counter("planner.cache.misses"),
    );
    assert!(warm_misses > 0, "a fresh plan must compile something");
    let per_round = warm_hits + warm_misses;

    // Two threads re-bind the same shared plan and repeat the identical
    // round. Every lookup must be a hit — the cache mutex makes the
    // compile-on-miss atomic, so concurrency can neither double-compile
    // (extra misses) nor lose a lookup (hits + misses must be exact).
    let base = transmark_obs::registry().snapshot();
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let b = plan.bind(&m).unwrap();
                let c = b.confidence(&o).unwrap();
                assert_eq!(c.to_bits(), warm.to_bits());
            });
        }
    });
    let d = transmark_obs::registry().snapshot().diff(&base);
    assert_eq!(d.counter("planner.cache.misses"), 0);
    assert_eq!(d.counter("planner.cache.hits"), 2 * per_round);
}

#[test]
fn snapshot_survives_json_round_trip() {
    let _g = GLOBAL_METRICS.lock().unwrap_or_else(|e| e.into_inner());
    // Generate counter, histogram, and span traffic first.
    let t = transmark_workloads::hospital::room_tracker();
    let m = transmark_workloads::hospital::hospital_sequence();
    let top = prepare(&t).bind(&m).unwrap().top_k_scored(1).unwrap();
    assert!(!top.is_empty());

    let s = transmark_obs::registry().snapshot();
    let back = transmark_obs::Snapshot::from_json(&s.to_json()).unwrap();
    assert_eq!(s, back);
    // A snapshot diffed against itself reports nothing.
    assert!(s.diff(&s).is_empty());
    if transmark_obs::enabled() {
        assert!(s.counter("kernel.advance.layers") > 0);
        assert_eq!(
            back.counter("kernel.advance.layers"),
            s.counter("kernel.advance.layers")
        );
    }
}

#[test]
fn spans_nest_and_close_across_prepare_bind_execute() {
    let _g = GLOBAL_METRICS.lock().unwrap_or_else(|e| e.into_inner());
    if !transmark_obs::enabled() {
        return;
    }
    let base = transmark_obs::registry().snapshot();

    // Manual nesting: the aggregation key is the "/"-joined stack path.
    {
        let _outer = transmark_obs::span::enter("obs_test_outer");
        let _inner = transmark_obs::span::enter("obs_test_inner");
        assert_eq!(transmark_obs::span::current_depth(), 2);
    }
    assert_eq!(transmark_obs::span::current_depth(), 0);

    // Engine phases open and close one span each, leaving the stack
    // balanced even across an executed query.
    let t = transmark_workloads::hospital::room_tracker();
    let m = transmark_workloads::hospital::hospital_sequence();
    let bound = prepare(&t).bind(&m).unwrap();
    let top = bound.top_k_scored(1).unwrap();
    assert!(!top.is_empty());
    let _ = bound.confidence(&top[0].output).unwrap();
    assert_eq!(transmark_obs::span::current_depth(), 0);

    let d = transmark_obs::registry().snapshot().diff(&base);
    assert_eq!(d.span("obs_test_outer").unwrap().count, 1);
    assert_eq!(d.span("obs_test_outer/obs_test_inner").unwrap().count, 1);
    assert!(d.span("prepare").map_or(0, |s| s.count) >= 1);
    assert!(d.span("bind").map_or(0, |s| s.count) >= 1);
    assert!(d.span("execute").map_or(0, |s| s.count) >= 1);
}

/// Nondeterministic relabeler with uniform (length-1) emission: routes
/// through the uniform-NFA plan class. Two accepting states keep the
/// (from, symbol, to, emission) tuples distinct.
fn ambiguous_relabeler() -> Transducer {
    let a = Alphabet::of_chars("ab");
    let mut b = Transducer::builder(a.clone(), a);
    let keep = b.add_state(true);
    let flip = b.add_state(true);
    for q in [keep, flip] {
        for s in 0..2u32 {
            b.add_transition(q, sym(s), keep, &[sym(s)]).unwrap();
            b.add_transition(q, sym(s), flip, &[sym(1 - s)]).unwrap();
        }
    }
    b.build().unwrap()
}

fn identity_ab() -> Transducer {
    let a = Alphabet::of_chars("ab");
    let mut b = Transducer::builder(a.clone(), a);
    let q = b.add_state(true);
    for s in 0..2u32 {
        b.add_transition(q, sym(s), q, &[sym(s)]).unwrap();
    }
    b.build().unwrap()
}

/// Two concurrent queries under separate recorder scopes must produce
/// disjoint profiles — each thread's spans, plan-kind instants, and
/// layer progress land only in its own recorder — while the process
/// registry still accounts for the union.
#[test]
fn recorder_scopes_isolate_concurrent_queries() {
    let _g = GLOBAL_METRICS.lock().unwrap_or_else(|e| e.into_inner());
    if !transmark_obs::enabled() {
        return;
    }
    // Pick thread A's output before the baseline snapshot: this main
    // thread has no scope installed, so the enumeration records into
    // neither profile, and its registry traffic predates `base`.
    let hospital_t = transmark_workloads::hospital::room_tracker();
    let hospital_m = transmark_workloads::hospital::hospital_sequence();
    let hospital_o = prepare(&hospital_t)
        .bind(&hospital_m)
        .unwrap()
        .top_k_scored(1)
        .unwrap()[0]
        .output
        .clone();
    let base = transmark_obs::registry().snapshot();

    let rec_a = std::sync::Arc::new(transmark_obs::Recorder::new());
    let rec_b = std::sync::Arc::new(transmark_obs::Recorder::new());
    std::thread::scope(|s| {
        s.spawn(|| {
            rec_a.scope(|| {
                // Deterministic plan, executed three times.
                let bound = prepare(&hospital_t).bind(&hospital_m).unwrap();
                for _ in 0..3 {
                    bound.confidence(&hospital_o).unwrap();
                }
            });
        });
        s.spawn(|| {
            rec_b.scope(|| {
                // Deterministic-uniform plan (the other layered-DP
                // route), executed once.
                let t = identity_ab();
                let m = uniform_chain(4);
                let bound = prepare(&t).bind(&m).unwrap();
                bound.confidence(&[sym(0); 4]).unwrap();
            });
        });
    });
    let pa = rec_a.finish();
    let pb = rec_b.finish();

    // Phase counts reflect each scope's own executions, nothing more.
    assert_eq!(pa.phases["execute"].count, 3);
    assert_eq!(pb.phases["execute"].count, 1);

    // Plan-kind instants stay with the scope that prepared the plan.
    assert_eq!(pa.instants["planner.plan/deterministic"], 1);
    assert!(!pa
        .instants
        .contains_key("planner.plan/deterministic-uniform"));
    assert_eq!(pb.instants["planner.plan/deterministic-uniform"], 1);
    assert!(!pb.instants.contains_key("planner.plan/deterministic"));

    // Layer progress splits exactly: no event is double-counted or
    // dropped, and the global registry saw precisely the union.
    assert!(pa.layers > 0);
    assert!(pb.layers > 0);
    let d = transmark_obs::registry().snapshot().diff(&base);
    assert_eq!(d.counter("kernel.advance.layers"), pa.layers + pb.layers);
}

/// An active recorder must not change any computed number: confidences
/// across every transducer plan class, streamed `.tmsb` folds, and
/// seeded Monte-Carlo estimates are all bit-identical to unprofiled
/// runs.
#[test]
fn profiled_execution_is_bit_neutral() {
    let _g = GLOBAL_METRICS.lock().unwrap_or_else(|e| e.into_inner());

    // (label, transducer, sequence, output) covering all four
    // `PlanKind::for_transducer` routes.
    let hospital_t = transmark_workloads::hospital::room_tracker();
    let hospital_m = transmark_workloads::hospital::hospital_sequence();
    let hospital_o = prepare(&hospital_t)
        .bind(&hospital_m)
        .unwrap()
        .top_k_scored(1)
        .unwrap()[0]
        .output
        .clone();
    let cases: Vec<(&str, Transducer, MarkovSequence, Vec<SymbolId>)> = vec![
        (
            "deterministic-uniform",
            identity_ab(),
            uniform_chain(4),
            vec![sym(0); 4],
        ),
        ("deterministic", hospital_t, hospital_m, hospital_o),
        (
            "uniform-nfa",
            ambiguous_relabeler(),
            uniform_chain(4),
            vec![sym(0); 4],
        ),
        ("general", suffix_guesser(), uniform_chain(4), vec![sym(0)]),
    ];

    for (label, t, m, o) in &cases {
        let plain = prepare(t).bind(m).unwrap().confidence(o).unwrap();
        let rec = std::sync::Arc::new(transmark_obs::Recorder::new());
        let profiled = rec.scope(|| prepare(t).bind(m).unwrap().confidence(o).unwrap());
        assert_eq!(
            plain.to_bits(),
            profiled.to_bits(),
            "profiling changed the {label} confidence"
        );

        // The streamed data plane: fold the same query from `.tmsb`
        // bytes, profiled and not.
        let tmsb = transmark_markov::binio::to_tmsb_bytes(m);
        let stream = |bytes: &[u8]| {
            let src = transmark_markov::binio::TmsbSlice::new(bytes).unwrap();
            prepare(t).bind_source(src).unwrap().confidence(o).unwrap()
        };
        let plain_stream = stream(&tmsb);
        let profiled_stream = rec.scope(|| stream(&tmsb));
        assert_eq!(
            plain_stream.to_bits(),
            profiled_stream.to_bits(),
            "profiling changed the streamed {label} confidence"
        );
    }

    // Seeded Monte Carlo: recording must not perturb the draw sequence.
    let t = suffix_guesser();
    let m = uniform_chain(4);
    let o = vec![sym(0)];
    let mut r1 = StdRng::seed_from_u64(7);
    let e1 = transmark_core::montecarlo::estimate_confidence(&t, &m, &o, 1_000, &mut r1).unwrap();
    let rec = std::sync::Arc::new(transmark_obs::Recorder::new());
    let e2 = rec.scope(|| {
        let mut r2 = StdRng::seed_from_u64(7);
        transmark_core::montecarlo::estimate_confidence(&t, &m, &o, 1_000, &mut r2).unwrap()
    });
    assert_eq!(e1.estimate.to_bits(), e2.estimate.to_bits());
    assert_eq!(e1.std_error.to_bits(), e2.std_error.to_bits());
}
