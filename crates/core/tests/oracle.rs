//! Oracle cross-validation: every engine algorithm against brute force.
//!
//! Strategy: generate many small random (Markov sequence, transducer)
//! pairs covering every transducer class in Table 2, compute the full
//! evaluation by definition (`brute::evaluate`), and check that each
//! polynomial/structured algorithm reproduces it exactly (up to float
//! tolerance):
//!
//! * confidence — Thm 4.6 (deterministic), Thm 4.8 (uniform NFA), the
//!   general exact algorithm, and the auto-dispatcher;
//! * answer membership (`is_answer`) and `Pr(S ∈ L(A))`;
//! * `E_max` — both the per-output DP and the global Viterbi optimizer;
//! * enumeration — Thm 4.1 (unranked: exact answer set, lexicographic,
//!   poly space) and Thm 4.3 (by decreasing `E_max`: exact set, correct
//!   scores, non-increasing order).

use rand::{rngs::StdRng, SeedableRng};
use transmark_core::brute;
use transmark_core::confidence::{
    acceptance_probability, answer_exists, confidence, confidence_deterministic,
    confidence_general, confidence_uniform_nfa, is_answer,
};
use transmark_core::emax::{emax_of_output, top_by_emax};
use transmark_core::enumerate::{enumerate_by_emax, enumerate_unranked};
use transmark_core::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark_core::transducer::Transducer;
use transmark_core::SymbolId;
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::numeric::approx_eq;
use transmark_markov::support::support;
use transmark_markov::MarkovSequence;

const TOL_ABS: f64 = 1e-10;
const TOL_REL: f64 = 1e-8;

/// One small random instance for a given class and seed.
fn instance(class: TransducerClass, seed: u64) -> (Transducer, MarkovSequence) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_symbols = 2 + (seed % 2) as usize; // 2 or 3
    let chain = random_markov_sequence(
        &RandomChainSpec {
            len: 2 + (seed % 3) as usize,
            n_symbols,
            zero_prob: 0.35,
        },
        &mut rng,
    );
    let t = random_transducer(
        &RandomTransducerSpec {
            n_states: 2 + (seed % 2) as usize,
            n_input_symbols: n_symbols,
            n_output_symbols: 2,
            class,
            branching: 1.6,
        },
        &mut rng,
    );
    (t, chain)
}

/// All output strings up to a length, for negative membership tests.
fn some_outputs(n_symbols: usize, max_len: usize) -> Vec<Vec<SymbolId>> {
    let mut out = vec![vec![]];
    let mut layer: Vec<Vec<SymbolId>> = vec![vec![]];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for s in &layer {
            for c in 0..n_symbols {
                let mut t = s.clone();
                t.push(SymbolId(c as u32));
                next.push(t);
            }
        }
        out.extend(next.iter().cloned());
        layer = next;
    }
    out
}

fn check_instance(t: &Transducer, m: &MarkovSequence, ctx: &str) {
    let truth = brute::evaluate(t, m).expect("brute evaluation");

    // --- Confidence algorithms on every true answer -----------------------
    for (o, &conf_true) in &truth {
        let general = confidence_general(t, m, o).expect("general confidence");
        assert!(
            approx_eq(general, conf_true, TOL_ABS, TOL_REL),
            "{ctx}: general confidence {general} != {conf_true} for {o:?}"
        );
        let auto = confidence(t, m, o).expect("auto confidence");
        assert!(
            approx_eq(auto, conf_true, TOL_ABS, TOL_REL),
            "{ctx}: auto confidence {auto} != {conf_true} for {o:?}"
        );
        if t.is_deterministic() {
            let det = confidence_deterministic(t, m, o).expect("det confidence");
            assert!(
                approx_eq(det, conf_true, TOL_ABS, TOL_REL),
                "{ctx}: det confidence {det} != {conf_true} for {o:?}"
            );
        }
        if t.uniform_emission().is_some() {
            let uni = confidence_uniform_nfa(t, m, o).expect("uniform confidence");
            assert!(
                approx_eq(uni, conf_true, TOL_ABS, TOL_REL),
                "{ctx}: uniform confidence {uni} != {conf_true} for {o:?}"
            );
        }

        // E_max of each answer matches brute force.
        let e_brute = brute::emax(t, m, o).expect("brute emax");
        let e_dp = emax_of_output(t, m, o).expect("emax dp").exp();
        assert!(
            approx_eq(e_dp, e_brute, TOL_ABS, TOL_REL),
            "{ctx}: emax {e_dp} != {e_brute} for {o:?}"
        );

        // Membership.
        assert!(
            is_answer(t, m, o).expect("is_answer"),
            "{ctx}: {o:?} should be an answer"
        );
    }

    // --- Negative membership & zero confidence ----------------------------
    for o in some_outputs(t.n_output_symbols(), 3) {
        if !truth.contains_key(&o) {
            assert!(
                !is_answer(t, m, &o).expect("is_answer"),
                "{ctx}: {o:?} should not be an answer"
            );
            let c = confidence(t, m, &o).expect("confidence of non-answer");
            assert!(
                approx_eq(c, 0.0, TOL_ABS, 0.0),
                "{ctx}: non-answer {o:?} got confidence {c}"
            );
        }
    }

    // --- Acceptance probability -------------------------------------------
    let nfa = t.underlying_nfa();
    let p_accept = acceptance_probability(&nfa, m).expect("acceptance probability");
    let p_brute: f64 = support(m)
        .iter()
        .filter(|(s, _)| nfa.accepts(s))
        .map(|(_, p)| p)
        .sum();
    assert!(
        approx_eq(p_accept, p_brute, TOL_ABS, TOL_REL),
        "{ctx}: acceptance probability {p_accept} != {p_brute}"
    );
    assert_eq!(
        answer_exists(t, m).expect("answer_exists"),
        !truth.is_empty(),
        "{ctx}: answer_exists disagrees with brute force"
    );

    // --- Theorem 4.1: unranked enumeration ---------------------------------
    let unranked: Vec<_> = enumerate_unranked(t, m).expect("unranked").collect();
    let expected: Vec<_> = truth.keys().cloned().collect();
    assert_eq!(unranked, expected, "{ctx}: unranked enumeration mismatch");

    // --- Theorem 4.3: ranked by E_max --------------------------------------
    let ranked: Vec<_> = enumerate_by_emax(t, m).expect("ranked").collect();
    assert_eq!(ranked.len(), truth.len(), "{ctx}: ranked enumeration count");
    let mut seen = std::collections::BTreeSet::new();
    let mut prev = f64::INFINITY;
    for r in &ranked {
        assert!(
            r.log_score <= prev + 1e-9,
            "{ctx}: E_max order violated ({} after {prev})",
            r.log_score
        );
        prev = r.log_score;
        assert!(
            seen.insert(r.output.clone()),
            "{ctx}: duplicate answer {:?}",
            r.output
        );
        let e_brute = brute::emax(t, m, &r.output).expect("brute emax");
        assert!(
            approx_eq(r.score(), e_brute, TOL_ABS, TOL_REL),
            "{ctx}: ranked score {} != brute emax {e_brute} for {:?}",
            r.score(),
            r.output
        );
        assert!(
            truth.contains_key(&r.output),
            "{ctx}: ranked emitted non-answer"
        );
    }

    // --- Global E_max optimizer --------------------------------------------
    match top_by_emax(t, m).expect("top_by_emax") {
        Some(top) => {
            let best_brute = truth
                .keys()
                .map(|o| brute::emax(t, m, o).expect("brute emax"))
                .fold(0.0f64, f64::max);
            assert!(
                approx_eq(top.prob(), best_brute, TOL_ABS, TOL_REL),
                "{ctx}: top emax {} != {best_brute}",
                top.prob()
            );
            // The reported evidence must really produce the output.
            assert!(
                t.transduce_all(&top.evidence).contains(&top.output),
                "{ctx}: evidence does not produce reported output"
            );
            let p_evidence = m.string_probability(&top.evidence).expect("probability");
            assert!(
                approx_eq(p_evidence, top.prob(), TOL_ABS, TOL_REL),
                "{ctx}: evidence probability mismatch"
            );
        }
        None => assert!(
            truth.is_empty(),
            "{ctx}: optimizer found nothing but answers exist"
        ),
    }
}

#[test]
fn general_transducers_match_oracle() {
    for seed in 0..40 {
        let (t, m) = instance(TransducerClass::General, seed);
        check_instance(&t, &m, &format!("general/{seed}"));
    }
}

#[test]
fn uniform_transducers_match_oracle() {
    for seed in 0..30 {
        let (t, m) = instance(TransducerClass::Uniform(1), seed);
        check_instance(&t, &m, &format!("uniform1/{seed}"));
    }
    for seed in 0..15 {
        let (t, m) = instance(TransducerClass::Uniform(2), seed);
        check_instance(&t, &m, &format!("uniform2/{seed}"));
    }
    // 0-uniform: answers are ε only; confidence(ε) = Pr(S ∈ L(A)).
    for seed in 0..15 {
        let (t, m) = instance(TransducerClass::Uniform(0), seed);
        check_instance(&t, &m, &format!("uniform0/{seed}"));
    }
}

#[test]
fn deterministic_transducers_match_oracle() {
    for seed in 0..40 {
        let (t, m) = instance(TransducerClass::Deterministic, seed);
        check_instance(&t, &m, &format!("det/{seed}"));
    }
}

#[test]
fn mealy_machines_match_oracle() {
    for seed in 0..30 {
        let (t, m) = instance(TransducerClass::Mealy, seed);
        check_instance(&t, &m, &format!("mealy/{seed}"));
    }
}

#[test]
fn projectors_match_oracle() {
    for seed in 0..30 {
        let (t, m) = instance(TransducerClass::Projector, seed);
        check_instance(&t, &m, &format!("projector/{seed}"));
    }
}

#[test]
fn length_one_sequences_work() {
    for seed in 100..115 {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_markov_sequence(
            &RandomChainSpec {
                len: 1,
                n_symbols: 2,
                zero_prob: 0.2,
            },
            &mut rng,
        );
        let t = random_transducer(
            &RandomTransducerSpec {
                n_states: 2,
                n_input_symbols: 2,
                n_output_symbols: 2,
                class: TransducerClass::General,
                branching: 1.5,
            },
            &mut rng,
        );
        check_instance(&t, &m, &format!("len1/{seed}"));
    }
}

#[test]
fn single_symbol_alphabet_works() {
    for seed in 200..210 {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_markov_sequence(
            &RandomChainSpec {
                len: 4,
                n_symbols: 1,
                zero_prob: 0.0,
            },
            &mut rng,
        );
        let t = random_transducer(
            &RandomTransducerSpec {
                n_states: 3,
                n_input_symbols: 1,
                n_output_symbols: 2,
                class: TransducerClass::General,
                branching: 1.5,
            },
            &mut rng,
        );
        check_instance(&t, &m, &format!("sigma1/{seed}"));
    }
}

#[test]
fn mismatched_alphabets_are_rejected_everywhere() {
    let mut rng = StdRng::seed_from_u64(0);
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: 3,
            n_symbols: 3,
            zero_prob: 0.2,
        },
        &mut rng,
    );
    let t = random_transducer(
        &RandomTransducerSpec {
            n_states: 2,
            n_input_symbols: 2, // != 3
            n_output_symbols: 2,
            class: TransducerClass::General,
            branching: 1.5,
        },
        &mut rng,
    );
    assert!(confidence(&t, &m, &[]).is_err());
    assert!(is_answer(&t, &m, &[]).is_err());
    assert!(top_by_emax(&t, &m).is_err());
    assert!(enumerate_unranked(&t, &m).is_err());
    assert!(enumerate_by_emax(&t, &m).is_err());
}
