//! Property-based tests for the §4 query engine: structural invariants
//! that must hold on *arbitrary* instances (complementing the seeded
//! oracle suite in `tests/oracle.rs`).

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use transmark_core::brute;
use transmark_core::confidence::{confidence, confidence_general, is_answer};
use transmark_core::constraints::{constrain, PrefixConstraint};
use transmark_core::emax::{emax_of_output, top_by_emax};
use transmark_core::enumerate::{enumerate_by_emax, enumerate_unranked};
use transmark_core::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark_core::montecarlo::transduces_to;
use transmark_core::transducer::Transducer;
use transmark_core::SymbolId;
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::numeric::approx_eq;
use transmark_markov::MarkovSequence;

fn arb_class() -> impl Strategy<Value = TransducerClass> {
    prop_oneof![
        Just(TransducerClass::General),
        Just(TransducerClass::Deterministic),
        Just(TransducerClass::Mealy),
        Just(TransducerClass::Uniform(1)),
        Just(TransducerClass::Uniform(2)),
        Just(TransducerClass::Projector),
    ]
}

fn instance(class: TransducerClass, seed: u64, n: usize) -> (Transducer, MarkovSequence) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: n,
            n_symbols: 2,
            zero_prob: 0.3,
        },
        &mut rng,
    );
    let t = random_transducer(
        &RandomTransducerSpec {
            n_states: 2,
            n_input_symbols: 2,
            n_output_symbols: 2,
            class,
            branching: 1.5,
        },
        &mut rng,
    );
    (t, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Confidences over all answers sum to at most 1, and to exactly the
    /// acceptance probability when the machine is deterministic (each
    /// world yields at most one answer).
    #[test]
    fn confidence_mass_is_bounded(class in arb_class(), seed in any::<u64>(), n in 1usize..4) {
        let (t, m) = instance(class, seed, n);
        let truth = brute::evaluate(&t, &m).unwrap();
        let total: f64 = truth.values().sum();
        // Nondeterministic machines may produce several answers per world.
        if t.is_deterministic() {
            let p_acc =
                transmark_core::confidence::acceptance_probability(&t.underlying_nfa(), &m)
                    .unwrap();
            prop_assert!(approx_eq(total, p_acc, 1e-9, 1e-7));
            prop_assert!(total <= 1.0 + 1e-9);
        }
        // E_max never exceeds confidence; is_answer agrees with conf > 0.
        for (o, &conf_o) in &truth {
            let e = emax_of_output(&t, &m, o).unwrap().exp();
            prop_assert!(e <= conf_o + 1e-12);
            prop_assert!(e > 0.0);
            prop_assert!(is_answer(&t, &m, o).unwrap());
        }
    }

    /// Both enumerations agree with each other and with brute force.
    #[test]
    fn enumerations_are_consistent(class in arb_class(), seed in any::<u64>(), n in 1usize..4) {
        let (t, m) = instance(class, seed, n);
        let mut unranked: Vec<_> = enumerate_unranked(&t, &m).unwrap().collect();
        let mut ranked: Vec<_> =
            enumerate_by_emax(&t, &m).unwrap().map(|r| r.output).collect();
        unranked.sort();
        ranked.sort();
        prop_assert_eq!(&unranked, &ranked);
        let brute: Vec<_> = brute::evaluate(&t, &m).unwrap().into_keys().collect();
        prop_assert_eq!(unranked, brute);
    }

    /// The top E_max answer's score is achieved by an actual world.
    #[test]
    fn top_emax_is_witnessed(class in arb_class(), seed in any::<u64>(), n in 1usize..5) {
        let (t, m) = instance(class, seed, n);
        if let Some(top) = top_by_emax(&t, &m).unwrap() {
            let p = m.string_probability(&top.evidence).unwrap();
            prop_assert!(approx_eq(p, top.prob(), 1e-12, 1e-9));
            prop_assert!(transduces_to(&t, &top.evidence, &top.output));
        }
    }

    /// Constraining by a prefix keeps exactly the matching answers, with
    /// unchanged confidences.
    #[test]
    fn constraint_product_filters_exactly(
        class in arb_class(),
        seed in any::<u64>(),
        prefix_bits in 0u8..4,
        prefix_len in 0usize..3,
    ) {
        let (t, m) = instance(class, seed, 3);
        let prefix: Vec<SymbolId> =
            (0..prefix_len).map(|i| SymbolId(u32::from(prefix_bits >> i & 1))).collect();
        let c = PrefixConstraint::with_prefix(prefix);
        let ct = constrain(&t, &c.to_dfa(t.n_output_symbols())).unwrap();
        let truth_all = brute::evaluate(&t, &m).unwrap();
        let truth_constrained = brute::evaluate(&ct, &m).unwrap();
        for (o, conf_o) in &truth_all {
            if c.matches(o) {
                let got = truth_constrained.get(o);
                prop_assert!(got.is_some(), "constrained lost answer {:?}", o);
                prop_assert!(approx_eq(*got.unwrap(), *conf_o, 1e-12, 1e-9));
                // And the engine agrees on the constrained machine.
                let eng = confidence_general(&ct, &m, o).unwrap();
                prop_assert!(approx_eq(eng, *conf_o, 1e-10, 1e-8));
            } else {
                prop_assert!(!truth_constrained.contains_key(o));
            }
        }
        prop_assert!(truth_constrained.keys().all(|o| truth_all.contains_key(o)));
    }

    /// Evidence enumeration: ordered, complete, deduplicated, and the sum
    /// of evidence probabilities equals the confidence.
    #[test]
    fn evidences_reconstruct_confidence(class in arb_class(), seed in any::<u64>(), n in 1usize..4) {
        let (t, m) = instance(class, seed, n);
        for (o, conf_o) in brute::evaluate(&t, &m).unwrap() {
            let evs: Vec<_> =
                transmark_core::evidence::enumerate_evidences(&t, &m, &o).unwrap().collect();
            let mut prev = f64::INFINITY;
            let mut seen = std::collections::BTreeSet::new();
            let mut total = 0.0;
            for e in &evs {
                prop_assert!(e.log_prob <= prev + 1e-12);
                prev = e.log_prob;
                prop_assert!(seen.insert(e.world.clone()), "duplicate world");
                total += e.prob();
            }
            prop_assert!(approx_eq(total, conf_o, 1e-10, 1e-8),
                "evidence mass {} vs confidence {} for {:?}", total, conf_o, o);
            // The first evidence realizes E_max.
            if let Some(first) = evs.first() {
                let e = emax_of_output(&t, &m, &o).unwrap().exp();
                prop_assert!(approx_eq(first.prob(), e, 1e-12, 1e-9));
            }
        }
    }

    /// Composition: `T₂ ∘ T₁` behaves as the relational composition of the
    /// two transductions, and its confidences follow.
    #[test]
    fn composition_is_relational(seed in any::<u64>(), class2 in arb_class()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_markov_sequence(
            &RandomChainSpec { len: 3, n_symbols: 2, zero_prob: 0.2 },
            &mut rng,
        );
        // First stage: random Mealy (guaranteed 1-uniform); its output
        // alphabet has 2 symbols, matching the second stage's input.
        let first = random_transducer(
            &RandomTransducerSpec {
                n_states: 2,
                n_input_symbols: 2,
                n_output_symbols: 2,
                class: TransducerClass::Mealy,
                branching: 1.5,
            },
            &mut rng,
        );
        let second = random_transducer(
            &RandomTransducerSpec {
                n_states: 2,
                n_input_symbols: 2,
                n_output_symbols: 2,
                class: class2,
                branching: 1.5,
            },
            &mut rng,
        );
        let composite = transmark_core::compose::compose(&first, &second).unwrap();
        // Relational semantics on every support world.
        for (s, _) in transmark_markov::support::support(&m) {
            let mut expected = std::collections::BTreeSet::new();
            for d in first.transduce_all(&s) {
                for o in second.transduce_all(&d) {
                    expected.insert(o);
                }
            }
            let got: std::collections::BTreeSet<_> =
                composite.transduce_all(&s).into_iter().collect();
            prop_assert_eq!(got, expected, "world {:?}", s);
        }
        // Confidences agree with brute force through the composite.
        for (o, want) in brute::evaluate(&composite, &m).unwrap() {
            let got = confidence(&composite, &m, &o).unwrap();
            prop_assert!(approx_eq(got, want, 1e-10, 1e-8));
        }
    }

    /// The auto-dispatching `confidence` never disagrees with the general
    /// exact algorithm.
    #[test]
    fn dispatcher_matches_general(class in arb_class(), seed in any::<u64>(), n in 1usize..4) {
        let (t, m) = instance(class, seed, n);
        for (o, _) in brute::evaluate(&t, &m).unwrap() {
            let a = confidence(&t, &m, &o).unwrap();
            let b = confidence_general(&t, &m, &o).unwrap();
            prop_assert!(approx_eq(a, b, 1e-10, 1e-8), "{:?}: {} vs {}", o, a, b);
        }
    }
}

mod streaming_props {
    use super::*;
    use transmark_core::confidence::prefix_acceptance_probabilities;
    use transmark_core::streaming::EventMonitor;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Streaming replay equals the batch per-prefix series for random
        /// queries and random chains.
        #[test]
        fn monitor_replay_matches_batch(class in arb_class(), seed in any::<u64>(), n in 1usize..6) {
            let (t, m) = instance(class, seed, n);
            let nfa = t.underlying_nfa();
            let batch = prefix_acceptance_probabilities(&nfa, &m).unwrap();
            let streamed = EventMonitor::replay(nfa, &m).unwrap();
            prop_assert_eq!(batch.len(), streamed.len());
            for (b, s) in batch.iter().zip(streamed.iter()) {
                prop_assert!(approx_eq(*b, *s, 1e-12, 1e-10), "{} vs {}", b, s);
            }
        }
    }
}
