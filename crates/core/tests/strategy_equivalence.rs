//! Equivalence of the execution strategies: a dense bind must return
//! *exactly* the bits a sparse bind returns (same accumulation order,
//! not merely close values) for every [`PlanKind`] route and every way
//! the sequence was materialized (in memory, text round-trip, `.tmsb`
//! round-trip), and the parallel-prefix scan must agree with the
//! sequential subset fold within its documented 1e-12 relative
//! tolerance at every prefix position and any worker count.
//!
//! The CI matrix runs this suite twice: once with whatever SIMD the
//! host offers and once under `TRANSMARK_FORCE_SCALAR=1`, so lane and
//! scalar multiply stages are both pinned to the sparse kernel's bits.

use proptest::prelude::*;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use transmark_core::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark_core::plan::{prepare, PreparedEventQuery, Strategy};
use transmark_core::transducer::Transducer;
use transmark_core::{EngineError, Nfa, SymbolId};
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::{binio, textio, MarkovSequence};

fn arb_class() -> impl proptest::Strategy<Value = TransducerClass> {
    prop_oneof![
        Just(TransducerClass::General),
        Just(TransducerClass::Deterministic),
        Just(TransducerClass::Mealy),
        Just(TransducerClass::Uniform(1)),
        Just(TransducerClass::Uniform(2)),
        Just(TransducerClass::Projector),
    ]
}

fn instance(class: TransducerClass, seed: u64, n: usize) -> (Transducer, MarkovSequence) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: n,
            n_symbols: 2,
            zero_prob: 0.3,
        },
        &mut rng,
    );
    let t = random_transducer(
        &RandomTransducerSpec {
            n_states: 3,
            n_input_symbols: 2,
            n_output_symbols: 2,
            class,
            branching: 1.5,
        },
        &mut rng,
    );
    (t, m)
}

/// The same sequence as the three representations a query can meet it
/// in: the in-memory original, a text (`.tms`) round-trip, and a binary
/// (`.tmsb`) round-trip.
fn representations(m: &MarkovSequence) -> Vec<(&'static str, MarkovSequence)> {
    vec![
        ("memory", m.clone()),
        (
            "text",
            textio::from_text(&textio::to_text(m)).expect("text round-trip"),
        ),
        (
            "tmsb",
            binio::from_tmsb_bytes(&binio::to_tmsb_bytes(m)).expect("tmsb round-trip"),
        ),
    ]
}

/// Every evaluation mode under a forced-dense bind, compared bitwise
/// against a forced-sparse bind of the same `(t, m)`.
fn assert_dense_matches_sparse_bitwise(t: &Transducer, m: &MarkovSequence, ctx: &str) {
    let plan = prepare(t);
    let sparse = plan
        .bind_with_strategy(m, Some(Strategy::Sparse))
        .expect("sparse bind");
    let dense = plan
        .bind_with_strategy(m, Some(Strategy::Dense))
        .expect("dense bind");
    assert_eq!(sparse.strategy(), Strategy::Sparse, "{ctx}");
    assert_eq!(dense.strategy(), Strategy::Dense, "{ctx}");
    assert_eq!(sparse.explain().strategy, Some(Strategy::Sparse), "{ctx}");
    assert_eq!(dense.explain().strategy, Some(Strategy::Dense), "{ctx}");

    assert_eq!(
        sparse.answer_exists().unwrap(),
        dense.answer_exists().unwrap(),
        "{ctx}"
    );
    assert_eq!(sparse.top().unwrap(), dense.top().unwrap(), "{ctx}");

    // Enumeration shares one CSR regardless of strategy (it Arc-shares
    // the steps); use it as the answer source for the per-output modes.
    let answers: Vec<_> = sparse.top_k_scored(4).unwrap();
    for a in &answers {
        let o = &a.output;
        assert_eq!(
            sparse.confidence(o).unwrap().to_bits(),
            dense.confidence(o).unwrap().to_bits(),
            "{ctx}: confidence of {o:?} under {}",
            plan.kind()
        );
        assert_eq!(
            sparse.emax_of_output(o).unwrap().to_bits(),
            dense.emax_of_output(o).unwrap().to_bits(),
            "{ctx}: emax of {o:?}"
        );
        assert_eq!(
            sparse.is_answer(o).unwrap(),
            dense.is_answer(o).unwrap(),
            "{ctx}"
        );
    }
    // And the ranked route end to end.
    let ds: Vec<_> = dense.top_k_scored(4).unwrap();
    assert_eq!(answers.len(), ds.len(), "{ctx}");
    for (a, b) in answers.iter().zip(ds.iter()) {
        assert_eq!(a.output, b.output, "{ctx}");
        assert_eq!(a.emax.to_bits(), b.emax.to_bits(), "{ctx}");
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits(), "{ctx}");
    }
}

/// A small random event NFA over `k` symbols with at least one
/// accepting state and a guaranteed path from the start.
fn random_nfa(rng: &mut StdRng, k: usize) -> Nfa {
    let mut nfa = Nfa::new(k);
    let n_states = 3usize;
    let states: Vec<_> = (0..n_states)
        .map(|i| nfa.add_state(i == n_states - 1 || rng.random_bool(0.3)))
        .collect();
    for &from in &states {
        for s in 0..k as u32 {
            for &to in &states {
                if rng.random_bool(0.4) {
                    nfa.add_transition(from, SymbolId(s), to);
                }
            }
        }
    }
    // Guarantee the automaton is not vacuously empty.
    nfa.add_transition(states[0], SymbolId(0), states[n_states - 1]);
    nfa
}

/// "Contains symbol 1" over a `k`-symbol alphabet — a fixed event query
/// usable against any workload sequence.
fn has_sym1(k: usize) -> Nfa {
    let mut nfa = Nfa::new(k);
    let q0 = nfa.add_state(false);
    let acc = nfa.add_state(true);
    for s in 0..k as u32 {
        nfa.add_transition(q0, SymbolId(s), q0);
        nfa.add_transition(acc, SymbolId(s), acc);
    }
    nfa.add_transition(q0, SymbolId(1), acc);
    nfa
}

/// Scan vs sequential fold: every prefix position within the documented
/// relative tolerance.
fn assert_scan_matches_fold(nfa: &Nfa, m: &MarkovSequence, threads: usize, ctx: &str) {
    let q = PreparedEventQuery::new(nfa.clone());
    let fold = q
        .series_with(m, 1, Some(Strategy::Sparse))
        .expect("fold series");
    let scan = q
        .series_with(m, threads, Some(Strategy::Scan))
        .expect("scan series");
    assert_eq!(fold.len(), scan.len(), "{ctx}");
    for (i, (a, b)) in fold.iter().zip(scan.iter()).enumerate() {
        let tol = 1e-12 * a.abs().max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "{ctx}: position {i} ({threads} threads): fold {a} vs scan {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random machines of every class — so every `PlanKind` route —
    /// against random chains in all three sequence representations:
    /// dense and sparse binds must agree bit for bit.
    #[test]
    fn dense_is_bit_identical_to_sparse(class in arb_class(), seed in any::<u64>(), n in 1usize..5) {
        let (t, m) = instance(class, seed, n);
        for (rep, m) in representations(&m) {
            assert_dense_matches_sparse_bitwise(&t, &m, rep);
        }
    }

    /// Scan vs fold on random event queries over random chains, at
    /// several worker counts (including more workers than steps).
    #[test]
    fn scan_matches_fold_on_random_queries(seed in any::<u64>(), n in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_markov_sequence(
            &RandomChainSpec { len: n, n_symbols: 2, zero_prob: 0.3 },
            &mut rng,
        );
        let nfa = random_nfa(&mut rng, 2);
        for threads in [1usize, 2, 4, 7] {
            assert_scan_matches_fold(&nfa, &m, threads, "random");
        }
    }
}

/// The planner never picks scan for a bound transducer query, and a
/// forced scan bind is a typed error; symmetrically, dense cannot
/// schedule prefix-series evaluation.
#[test]
fn cross_scheduling_is_rejected() {
    let (t, m) = instance(TransducerClass::Mealy, 7, 3);
    let plan = prepare(&t);
    assert!(matches!(
        plan.bind_with_strategy(&m, Some(Strategy::Scan)),
        Err(EngineError::UnsupportedStrategy {
            strategy: "scan",
            ..
        })
    ));
    let q = PreparedEventQuery::new(has_sym1(2));
    assert!(matches!(
        q.series_with(&m, 1, Some(Strategy::Dense)),
        Err(EngineError::UnsupportedStrategy {
            strategy: "dense",
            ..
        })
    ));
}

/// The hospital workload (the paper's running example) through a
/// 4-worker scan.
#[test]
fn hospital_scan_matches_fold_on_4_workers() {
    let m = transmark_workloads::hospital::hospital_sequence();
    let nfa = has_sym1(m.n_symbols());
    assert_scan_matches_fold(&nfa, &m, 4, "hospital");
}

/// A sampled RFID posterior (dense nonuniform layers) through a
/// 4-worker scan.
#[test]
fn rfid_scan_matches_fold_on_4_workers() {
    let dep =
        transmark_workloads::rfid::deployment(&transmark_workloads::rfid::RfidSpec::default());
    let mut rng = StdRng::seed_from_u64(2010);
    let (posterior, _) = dep.sample_posterior(96, &mut rng);
    let nfa = has_sym1(posterior.n_symbols());
    assert_scan_matches_fold(&nfa, &posterior, 4, "rfid");
}

/// A long chain past the auto-scan thresholds: the planner's automatic
/// pick (None) agrees with the explicit fold within tolerance, for both
/// a sub-threshold and an above-threshold worker count.
#[test]
fn auto_pick_agrees_with_fold_on_long_chain() {
    let mut rng = StdRng::seed_from_u64(99);
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: 5000,
            n_symbols: 2,
            zero_prob: 0.0,
        },
        &mut rng,
    );
    let nfa = has_sym1(2);
    let q = PreparedEventQuery::new(nfa);
    let fold = q.series_with(&m, 1, Some(Strategy::Sparse)).unwrap();
    for threads in [1usize, 4] {
        let auto = q.series_with(&m, threads, None).unwrap();
        assert_eq!(fold.len(), auto.len());
        for (i, (a, b)) in fold.iter().zip(auto.iter()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "position {i} ({threads} threads): {a} vs {b}"
            );
        }
    }
}
