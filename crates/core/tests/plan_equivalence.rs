//! Bit-identity of the prepared-query planner: for every [`PlanKind`]
//! the plan path (compile once, bind per sequence, execute over cached
//! artifacts) must return *exactly* the bits the legacy free functions
//! return — same float accumulation order, not merely close values —
//! and one compiled plan must be safe to bind from several threads.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

use transmark_core::confidence::{confidence, is_answer};
use transmark_core::emax::{emax_of_output, top_by_emax};
use transmark_core::enumerate::{enumerate_by_emax, enumerate_unranked};
use transmark_core::evidence::top_k_evidences;
use transmark_core::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
use transmark_core::plan::{prepare, PlanKind, PreparedQuery};
use transmark_core::transducer::Transducer;
use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
use transmark_markov::MarkovSequence;

fn arb_class() -> impl Strategy<Value = TransducerClass> {
    prop_oneof![
        Just(TransducerClass::General),
        Just(TransducerClass::Deterministic),
        Just(TransducerClass::Mealy),
        Just(TransducerClass::Uniform(1)),
        Just(TransducerClass::Uniform(2)),
        Just(TransducerClass::Projector),
    ]
}

fn instance(class: TransducerClass, seed: u64, n: usize) -> (Transducer, MarkovSequence) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = random_markov_sequence(
        &RandomChainSpec {
            len: n,
            n_symbols: 2,
            zero_prob: 0.3,
        },
        &mut rng,
    );
    let t = random_transducer(
        &RandomTransducerSpec {
            n_states: 3,
            n_input_symbols: 2,
            n_output_symbols: 2,
            class,
            branching: 1.5,
        },
        &mut rng,
    );
    (t, m)
}

/// Every evaluation mode through `plan`, compared bitwise against the
/// legacy free functions on the same `(t, m)`.
fn assert_plan_matches_legacy(plan: &Arc<PreparedQuery>, t: &Transducer, m: &MarkovSequence) {
    let bound = plan.bind(m).expect("bind accepts a matching sequence");

    // Unranked enumeration: same answers in the same order.
    let legacy_unranked: Vec<_> = enumerate_unranked(t, m).unwrap().collect();
    let plan_unranked: Vec<_> = bound.unranked().unwrap().collect();
    assert_eq!(legacy_unranked, plan_unranked);

    // Ranked enumeration: same outputs, bit-identical scores.
    let legacy_ranked: Vec<_> = enumerate_by_emax(t, m).unwrap().collect();
    let plan_ranked: Vec<_> = bound.ranked().unwrap().collect();
    assert_eq!(legacy_ranked.len(), plan_ranked.len());
    for (a, b) in legacy_ranked.iter().zip(plan_ranked.iter()) {
        assert_eq!(a.output, b.output);
        assert_eq!(a.log_score.to_bits(), b.log_score.to_bits());
    }

    // The top answer with its witness world.
    assert_eq!(top_by_emax(t, m).unwrap(), bound.top().unwrap());

    // Confidence (the Table 2 dispatch), E_max, membership, and top
    // evidences of every answer.
    for o in &legacy_unranked {
        let c_legacy = confidence(t, m, o).unwrap();
        let c_plan = bound.confidence(o).unwrap();
        assert_eq!(
            c_legacy.to_bits(),
            c_plan.to_bits(),
            "confidence of {o:?} under {}: {c_legacy} vs {c_plan}",
            plan.kind()
        );
        let e_legacy = emax_of_output(t, m, o).unwrap();
        let e_plan = bound.emax_of_output(o).unwrap();
        assert_eq!(e_legacy.to_bits(), e_plan.to_bits());
        assert!(bound.is_answer(o).unwrap());
        let ev_legacy = top_k_evidences(t, m, o, 3).unwrap();
        let ev_plan = bound.top_evidences(o, 3).unwrap();
        assert_eq!(ev_legacy.len(), ev_plan.len());
        for (a, b) in ev_legacy.iter().zip(ev_plan.iter()) {
            assert_eq!(a.world, b.world);
            assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random machines of every class — so every `PlanKind` route —
    /// against random chains.
    #[test]
    fn prepared_path_is_bit_identical(class in arb_class(), seed in any::<u64>(), n in 1usize..5) {
        let (t, m) = instance(class, seed, n);
        let plan = prepare(&t);
        // The classifier is consistent with the machine's own predicates.
        match plan.kind() {
            PlanKind::DeterministicUniform { k } => {
                prop_assert!(t.is_deterministic());
                prop_assert_eq!(t.uniform_emission(), Some(k));
            }
            PlanKind::Deterministic => {
                prop_assert!(t.is_deterministic());
                prop_assert_eq!(t.uniform_emission(), None);
            }
            PlanKind::UniformNfa { k } => {
                prop_assert!(!t.is_deterministic());
                prop_assert_eq!(t.uniform_emission(), Some(k));
            }
            PlanKind::General => {
                prop_assert!(!t.is_deterministic());
                prop_assert_eq!(t.uniform_emission(), None);
            }
            other => prop_assert!(false, "transducer plan classified as {}", other),
        }
        assert_plan_matches_legacy(&plan, &t, &m);
    }

    /// One plan, many sequences: binding must not leak per-sequence
    /// state between executions.
    #[test]
    fn one_plan_many_binds(class in arb_class(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = random_transducer(
            &RandomTransducerSpec {
                n_states: 2,
                n_input_symbols: 2,
                n_output_symbols: 2,
                class,
                branching: 1.5,
            },
            &mut rng,
        );
        let plan = prepare(&t);
        for n in 1..4 {
            let m = random_markov_sequence(
                &RandomChainSpec { len: n, n_symbols: 2, zero_prob: 0.3 },
                &mut rng,
            );
            assert_plan_matches_legacy(&plan, &t, &m);
        }
    }
}

/// The paper's running example (hospital, Figure 1/2): a selective
/// deterministic machine through the planner, bit-for-bit.
#[test]
fn hospital_workload_is_bit_identical() {
    let m = transmark_workloads::hospital::hospital_sequence();
    let t = transmark_workloads::hospital::room_tracker();
    let plan = prepare(&t);
    assert!(matches!(
        plan.kind(),
        PlanKind::Deterministic | PlanKind::DeterministicUniform { .. }
    ));
    assert_plan_matches_legacy(&plan, &t, &m);
}

/// The synthetic RFID deployment: posterior sequences from a sampled
/// sensor read, both tracker variants.
#[test]
fn rfid_workload_is_bit_identical() {
    let dep =
        transmark_workloads::rfid::deployment(&transmark_workloads::rfid::RfidSpec::default());
    let mut rng = StdRng::seed_from_u64(2010);
    let (posterior, _) = dep.sample_posterior(5, &mut rng);
    for lab_room in [None, Some(1)] {
        let t = dep.room_tracker(lab_room);
        let plan = prepare(&t);
        assert_plan_matches_legacy(&plan, &t, &posterior);
    }
}

/// One `Arc<PreparedQuery>` bound from two threads concurrently returns
/// bit-identical results on both (and matches the legacy path).
#[test]
fn concurrent_binds_agree_bitwise() {
    let (t, m, answers) = (424242..)
        .map(|seed| {
            let (t, m) = instance(TransducerClass::General, seed, 4);
            let answers: Vec<_> = enumerate_unranked(&t, &m).unwrap().collect();
            (t, m, answers)
        })
        .find(|(_, _, answers)| !answers.is_empty())
        .expect("some seed yields a machine with answers");
    let plan = prepare(&t);

    type Results = Vec<(Vec<transmark_core::SymbolId>, u64, u64)>;
    let run = |plan: &Arc<PreparedQuery>, m: &MarkovSequence| -> Results {
        let bound = plan.bind(m).unwrap();
        answers
            .iter()
            .map(|o| {
                (
                    o.clone(),
                    bound.confidence(o).unwrap().to_bits(),
                    bound.emax_of_output(o).unwrap().to_bits(),
                )
            })
            .collect()
    };

    let (a, b) = std::thread::scope(|scope| {
        let ha = scope.spawn(|| run(&plan, &m));
        let hb = scope.spawn(|| run(&plan, &m));
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(a, b);
    for (o, conf_bits, emax_bits) in a {
        assert_eq!(confidence(&t, &m, &o).unwrap().to_bits(), conf_bits);
        assert_eq!(emax_of_output(&t, &m, &o).unwrap().to_bits(), emax_bits);
    }
    assert!(is_answer(&t, &m, answers.first().unwrap()).unwrap());
}
