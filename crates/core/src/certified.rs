//! Certified top-answer search by *true confidence* for deterministic
//! transducers.
//!
//! Theorem 4.4 forbids polynomial algorithms that always approximate the
//! top-confidence answer — but it does not forbid *anytime* algorithms
//! that often terminate with a certificate. For a **deterministic**
//! transducer every possible world produces at most one answer, so the
//! answer confidences are disjoint probability masses inside
//! `Pr(S ∈ L(A))`. That yields a sound stopping rule while enumerating in
//! decreasing `E_max` (Theorem 4.3) and attaching exact confidences
//! (Theorem 4.6):
//!
//! * `remaining = Pr(S ∈ L(A)) − Σ conf(answers seen so far)` bounds the
//!   confidence of every *unseen* answer;
//! * as soon as `max seen confidence ≥ remaining`, the best seen answer
//!   is certifiably the global top-confidence answer.
//!
//! On benign instances (mass concentrated on few answers — the common
//! case for posteriors) this stops after a handful of steps; on
//! adversarial instances (the Theorem 4.4 gadgets) it degrades to
//! exhaustive enumeration, exactly as the lower bound demands. The
//! `budget` parameter caps the work; an uncertified result still reports
//! the best answer seen and the residual bound.

use transmark_automata::SymbolId;
use transmark_markov::MarkovSequence;

use crate::confidence::{acceptance_probability, confidence_deterministic};
use crate::enumerate::enumerate_by_emax;
use crate::error::EngineError;
use crate::transducer::Transducer;

/// Result of a certified top-confidence search.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifiedTop {
    /// The best answer found (by exact confidence).
    pub output: Vec<SymbolId>,
    /// Its exact confidence.
    pub confidence: f64,
    /// Whether the result is *certified* globally optimal.
    pub certified: bool,
    /// Upper bound on the confidence of any answer not yet enumerated
    /// (0 when the enumeration was exhausted).
    pub residual_bound: f64,
    /// How many answers were enumerated before stopping.
    pub answers_inspected: usize,
}

/// Finds the top answer by exact confidence with a certificate, for a
/// deterministic transducer (see module docs). Inspects at most `budget`
/// answers; returns `Ok(None)` when the query has no answers.
pub fn certified_top_by_confidence(
    t: &Transducer,
    m: &MarkovSequence,
    budget: usize,
) -> Result<Option<CertifiedTop>, EngineError> {
    if !t.is_deterministic() {
        return Err(EngineError::NotDeterministic);
    }
    let total_mass = acceptance_probability(&t.underlying_nfa(), m)?;
    let mut seen_mass = 0.0f64;
    let mut best: Option<(Vec<SymbolId>, f64)> = None;
    let mut inspected = 0usize;

    let mut answers = enumerate_by_emax(t, m)?;
    let mut exhausted = true;
    for ranked in answers.by_ref() {
        inspected += 1;
        let conf = confidence_deterministic(t, m, &ranked.output)?;
        seen_mass += conf;
        if best.as_ref().is_none_or(|(_, c)| conf > *c) {
            best = Some((ranked.output, conf));
        }
        let residual = (total_mass - seen_mass).max(0.0);
        let best_conf = best.as_ref().map(|(_, c)| *c).expect("just set");
        if best_conf >= residual {
            // Certified: no unseen answer can beat the best seen one.
            return Ok(Some(CertifiedTop {
                output: best.expect("nonempty").0,
                confidence: best_conf,
                certified: true,
                residual_bound: residual,
                answers_inspected: inspected,
            }));
        }
        if inspected >= budget {
            exhausted = false;
            break;
        }
    }
    match best {
        None => Ok(None),
        Some((output, confidence)) => {
            let residual = if exhausted {
                0.0
            } else {
                (total_mass - seen_mass).max(0.0)
            };
            Ok(Some(CertifiedTop {
                output,
                confidence,
                // Running out of answers is itself a certificate.
                certified: exhausted,
                residual_bound: residual,
                answers_inspected: inspected,
            }))
        }
    }
}

/// Result of a certified top-k search.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifiedTopK {
    /// The best answers found, sorted by decreasing exact confidence.
    pub answers: Vec<(Vec<SymbolId>, f64)>,
    /// Whether `answers` is certifiably the global top-k set (every
    /// unseen answer has confidence ≤ the k-th reported one).
    pub certified: bool,
    /// Upper bound on the confidence of any unseen answer.
    pub residual_bound: f64,
    /// How many answers were enumerated before stopping.
    pub answers_inspected: usize,
}

/// Certified top-k by exact confidence for deterministic transducers: the
/// k-set is certified as soon as its k-th confidence dominates the
/// residual unseen mass. Inspects at most `budget` answers.
pub fn certified_top_k_by_confidence(
    t: &Transducer,
    m: &MarkovSequence,
    k: usize,
    budget: usize,
) -> Result<CertifiedTopK, EngineError> {
    if !t.is_deterministic() {
        return Err(EngineError::NotDeterministic);
    }
    assert!(k >= 1, "k must be positive");
    let total_mass = acceptance_probability(&t.underlying_nfa(), m)?;
    let mut seen_mass = 0.0f64;
    let mut top: Vec<(Vec<SymbolId>, f64)> = Vec::new();
    let mut inspected = 0usize;
    let mut answers = enumerate_by_emax(t, m)?;
    let mut exhausted = true;
    for ranked in answers.by_ref() {
        inspected += 1;
        let conf = confidence_deterministic(t, m, &ranked.output)?;
        seen_mass += conf;
        top.push((ranked.output, conf));
        top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
        top.truncate(k);
        let residual = (total_mass - seen_mass).max(0.0);
        if top.len() == k && top[k - 1].1 >= residual {
            return Ok(CertifiedTopK {
                answers: top,
                certified: true,
                residual_bound: residual,
                answers_inspected: inspected,
            });
        }
        if inspected >= budget {
            exhausted = false;
            break;
        }
    }
    let residual = if exhausted {
        0.0
    } else {
        (total_mass - seen_mass).max(0.0)
    };
    Ok(CertifiedTopK {
        answers: top,
        certified: exhausted,
        residual_bound: residual,
        answers_inspected: inspected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};

    #[test]
    fn certified_results_match_brute_force() {
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 3,
                    n_symbols: 2,
                    zero_prob: 0.3,
                },
                &mut rng,
            );
            let t = random_transducer(
                &RandomTransducerSpec {
                    n_states: 2,
                    n_input_symbols: 2,
                    n_output_symbols: 2,
                    class: TransducerClass::Deterministic,
                    branching: 1.0,
                },
                &mut rng,
            );
            let got = certified_top_by_confidence(&t, &m, usize::MAX).unwrap();
            let want = brute::top_by_confidence(&t, &m).unwrap();
            match (got, want) {
                (None, None) => {}
                (Some(g), Some((_, conf_want))) => {
                    assert!(g.certified, "unlimited budget must certify (seed {seed})");
                    assert!(
                        (g.confidence - conf_want).abs() < 1e-10,
                        "seed {seed}: {} vs {conf_want}",
                        g.confidence
                    );
                }
                other => panic!("seed {seed}: mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn concentrated_mass_certifies_after_one_answer() {
        // A near-deterministic chain: one world holds ~all the mass.
        use transmark_automata::Alphabet;
        use transmark_markov::MarkovSequenceBuilder;
        let alphabet = Alphabet::of_chars("ab");
        let (a, b_) = (alphabet.sym("a"), alphabet.sym("b"));
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 4)
            .initial(a, 0.97)
            .initial(b_, 0.03)
            .transition(0, a, a, 0.97)
            .transition(0, a, b_, 0.03)
            .transition(0, b_, a, 0.97)
            .transition(0, b_, b_, 0.03)
            .transition(1, a, a, 0.97)
            .transition(1, a, b_, 0.03)
            .transition(1, b_, a, 0.97)
            .transition(1, b_, b_, 0.03)
            .transition(2, a, a, 0.97)
            .transition(2, a, b_, 0.03)
            .transition(2, b_, a, 0.97)
            .transition(2, b_, b_, 0.03)
            .build()
            .unwrap();
        // Identity transducer.
        let mut tb = Transducer::builder(alphabet.clone(), alphabet);
        let q = tb.add_state(true);
        tb.add_transition(q, a, q, &[a]).unwrap();
        tb.add_transition(q, b_, q, &[b_]).unwrap();
        let t = tb.build().unwrap();

        let got = certified_top_by_confidence(&t, &m, usize::MAX)
            .unwrap()
            .unwrap();
        assert!(got.certified);
        assert_eq!(
            got.answers_inspected, 1,
            "aaaa's mass certifies immediately"
        );
        assert_eq!(got.output, vec![a; 4]);
    }

    #[test]
    fn adversarial_mass_needs_many_answers() {
        // Uniform chain + identity: every answer has equal confidence, so
        // certification requires seeing (almost) all of them.
        use transmark_automata::Alphabet;
        use transmark_markov::MarkovSequenceBuilder;
        let alphabet = Alphabet::of_chars("ab");
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 3)
            .uniform_all()
            .build()
            .unwrap();
        let mut tb = Transducer::builder(alphabet.clone(), alphabet.clone());
        let q = tb.add_state(true);
        for s in [alphabet.sym("a"), alphabet.sym("b")] {
            tb.add_transition(q, s, q, &[s]).unwrap();
        }
        let t = tb.build().unwrap();

        // A small budget cannot certify…
        let small = certified_top_by_confidence(&t, &m, 3).unwrap().unwrap();
        assert!(!small.certified);
        assert!(small.residual_bound > small.confidence);
        assert_eq!(small.answers_inspected, 3);
        // …an unlimited budget certifies only near the end (8 answers of
        // mass 1/8 each: residual after 7 is 1/8 = best).
        let full = certified_top_by_confidence(&t, &m, usize::MAX)
            .unwrap()
            .unwrap();
        assert!(full.certified);
        assert!(full.answers_inspected >= 7);
    }

    #[test]
    fn nondeterministic_machines_are_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = random_markov_sequence(
            &RandomChainSpec {
                len: 2,
                n_symbols: 2,
                zero_prob: 0.2,
            },
            &mut rng,
        );
        let t = random_transducer(
            &RandomTransducerSpec {
                n_states: 2,
                n_input_symbols: 2,
                n_output_symbols: 2,
                class: TransducerClass::General,
                branching: 2.0,
            },
            &mut rng,
        );
        if !t.is_deterministic() {
            assert!(matches!(
                certified_top_by_confidence(&t, &m, 10),
                Err(EngineError::NotDeterministic)
            ));
        }
    }

    #[test]
    fn certified_top_k_matches_brute_force() {
        for seed in 50..70u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 3,
                    n_symbols: 2,
                    zero_prob: 0.25,
                },
                &mut rng,
            );
            let t = random_transducer(
                &RandomTransducerSpec {
                    n_states: 2,
                    n_input_symbols: 2,
                    n_output_symbols: 2,
                    class: TransducerClass::Deterministic,
                    branching: 1.0,
                },
                &mut rng,
            );
            let got = certified_top_k_by_confidence(&t, &m, 3, usize::MAX).unwrap();
            assert!(got.certified, "unlimited budget certifies (seed {seed})");
            let want = brute::ranked_by_confidence(&t, &m).unwrap();
            assert_eq!(got.answers.len(), want.len().min(3), "seed {seed}");
            for (g, w) in got.answers.iter().zip(want.iter()) {
                // Confidences match rank-for-rank (outputs may swap on ties).
                assert!((g.1 - w.1).abs() < 1e-10, "seed {seed}: {} vs {}", g.1, w.1);
            }
        }
    }

    #[test]
    fn empty_queries_return_none() {
        use transmark_automata::Alphabet;
        use transmark_markov::MarkovSequenceBuilder;
        let alphabet = Alphabet::of_chars("a");
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 2)
            .uniform_all()
            .build()
            .unwrap();
        let mut tb = Transducer::builder(alphabet.clone(), alphabet.clone());
        let q = tb.add_state(false);
        tb.add_transition(q, alphabet.sym("a"), q, &[]).unwrap();
        let t = tb.build().unwrap();
        assert_eq!(certified_top_by_confidence(&t, &m, 10).unwrap(), None);
    }
}
