//! The prepared-query layer: compile once, bind per sequence, execute
//! many times.
//!
//! The paper's Table 2 is a query planner in prose: for each machine
//! class it names the algorithm that evaluates it. The free functions in
//! [`crate::confidence`], [`crate::emax`], … re-derive that choice — and
//! rebuild every machine-side artifact — on each call. A
//! [`PreparedQuery`] does the analysis once:
//!
//! 1. **compile** ([`PreparedQuery::new`]): classify the machine
//!    (deterministic? k-uniform? Mealy?), select the Table 2 route as a
//!    [`PlanKind`], precompile the state step graph, the accepting-state
//!    bitset, and an emission index (a hash lookup replacing the linear
//!    scans of `emission_id_for` — interning is injective, so lookups are
//!    equivalent); output-dependent artifacts (output/prefix step graphs,
//!    Lawler–Murty constraint products) are compiled on first use and
//!    memoized in bounded caches.
//! 2. **bind** ([`PreparedQuery::bind`]): flatten one sequence's CSR
//!    ([`SparseSteps`]) and allocate reusable workspaces.
//! 3. **execute**: every pass of the engine, as a method on
//!    [`BoundQuery`], running the *same* `*_impl` loops as the legacy free
//!    functions over the cached artifacts — outputs are bit-for-bit
//!    identical (pinned by the golden Table 1, oracle, and parity suites).
//!
//! The machine side is immutable after compilation and `Send + Sync`, so
//! one `Arc<PreparedQuery>` serves a whole fleet of threads (the store's
//! parallel evaluation binds the same plan per stream per thread).
//!
//! What is deliberately **not** cached: the on-the-fly determinizations
//! behind [`crate::confidence::acceptance_probability`] and the streaming
//! monitor. Their subset ids are interned in discovery order and the
//! reduction order follows those ids, so sharing a determinizer across
//! sequences (or even across repeated evaluations) would perturb float
//! accumulation order and break bit-reproducibility. Each evaluation gets
//! a fresh determinizer, exactly as the legacy path did.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use rand::Rng;
use transmark_automata::{BitSet, Nfa, SymbolId};
pub use transmark_kernel::Strategy;
use transmark_kernel::{
    DenseSteps, ExecSteps, SharedSparseSteps, SharedStepGraph, StepGraph, Workspace,
};
use transmark_markov::{MarkovSequence, StepSource};

use crate::confidence::{self, check_inputs};
use crate::constraints::{constrain, PrefixConstraint};
use crate::emax::{self, EmaxResult};
use crate::enumerate::{
    enumerate_by_emax_planned, enumerate_unranked_with, EmaxEnumeration, RankedAnswer,
    UnrankedAnswers,
};
use crate::error::EngineError;
use crate::evaluate::{ConfidenceCost, ScoredAnswer};
use crate::evidence::{self, Evidence, Evidences};
use crate::kernelize::{output_step_graph, prefix_step_graph, state_step_graph};
use crate::montecarlo::{self, McEstimate};
use crate::streaming::EventMonitor;
use crate::transducer::Transducer;

/// The Table 2 route a prepared query executes — one variant per machine
/// class the paper distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Deterministic and k-uniform: the positional dimension collapses
    /// (Theorem 4.6, fast path).
    DeterministicUniform {
        /// The uniform emission length `k`.
        k: usize,
    },
    /// Deterministic, non-uniform emission: forward DP over
    /// `(node, state, output position)` (Theorem 4.6).
    Deterministic,
    /// Nondeterministic but k-uniform: subset DP over
    /// `(node, reachable state set)` (Theorem 4.8).
    UniformNfa {
        /// The uniform emission length `k`.
        k: usize,
    },
    /// General: exact configuration-set DP, worst-case exponential —
    /// necessarily, the problem is FP^#P-complete (Prop. 4.7, Thm 4.9).
    General,
    /// An s-projector evaluated through the concatenation language
    /// `L(B)·o·L(E)` (Theorem 5.5).
    Sproj,
    /// An indexed s-projector with precomputed prefix/suffix weight
    /// tables (Theorems 5.7/5.8).
    SprojIndexed,
}

impl PlanKind {
    /// Classifies a transducer into its Table 2 row.
    pub fn for_transducer(t: &Transducer) -> PlanKind {
        if t.is_deterministic() {
            match t.uniform_emission() {
                Some(k) => PlanKind::DeterministicUniform { k },
                None => PlanKind::Deterministic,
            }
        } else if let Some(k) = t.uniform_emission() {
            PlanKind::UniformNfa { k }
        } else {
            PlanKind::General
        }
    }

    /// The Table 2 row this plan executes, for EXPLAIN output.
    pub fn table2_row(&self) -> &'static str {
        match self {
            PlanKind::DeterministicUniform { .. } => "deterministic, k-uniform (Thm 4.6 fast path)",
            PlanKind::Deterministic => "deterministic (Thm 4.6)",
            PlanKind::UniformNfa { .. } => "k-uniform NFA subset DP (Thm 4.8)",
            PlanKind::General => "general NFA configuration DP (Prop 4.7 / Thm 4.9)",
            PlanKind::Sproj => "s-projector via L(B)·o·L(E) (Thm 5.5)",
            PlanKind::SprojIndexed => "indexed s-projector tables (Thm 5.7 / 5.8)",
        }
    }

    /// A short static identifier for this route, used to compose
    /// per-kind metric names (`planner.bind_ns.<label>`, …).
    pub fn label(&self) -> &'static str {
        match self {
            PlanKind::DeterministicUniform { .. } => "deterministic-uniform",
            PlanKind::Deterministic => "deterministic",
            PlanKind::UniformNfa { .. } => "uniform-nfa",
            PlanKind::General => "general",
            PlanKind::Sproj => "sproj",
            PlanKind::SprojIndexed => "sproj-indexed",
        }
    }

    /// The exact-confidence cost class this route implies.
    pub fn confidence_cost(&self) -> ConfidenceCost {
        match self {
            PlanKind::DeterministicUniform { .. }
            | PlanKind::Deterministic
            | PlanKind::SprojIndexed => ConfidenceCost::Polynomial,
            PlanKind::UniformNfa { .. } | PlanKind::Sproj => ConfidenceCost::ExponentialInStates,
            PlanKind::General => ConfidenceCost::ExponentialWorstCase,
        }
    }
}

impl fmt::Display for PlanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanKind::DeterministicUniform { k } => write!(f, "deterministic-uniform(k={k})"),
            PlanKind::Deterministic => write!(f, "deterministic"),
            PlanKind::UniformNfa { k } => write!(f, "uniform-nfa(k={k})"),
            PlanKind::General => write!(f, "general"),
            PlanKind::Sproj => write!(f, "sproj"),
            PlanKind::SprojIndexed => write!(f, "sproj-indexed"),
        }
    }
}

// ---------------------------------------------------------------------------
// Execution-strategy selection
// ---------------------------------------------------------------------------

/// Layer density at or above which the dense advance is selected: at half
/// full, the dense loop touches at most 2× the CSR's entries but reads
/// them straight out of the sequence's contiguous buffer (no indirection,
/// no decode, SIMD multiply stage) — measured break-even sits below 0.5
/// on every workload in `bench/`, so 0.5 is the conservative edge.
const DENSE_DENSITY_THRESHOLD: f64 = 0.5;

/// Total transition cells (`(n−1)·|Σ|²`) under which the bind is "tiny":
/// CSR construction costs more than the whole evaluation, so the dense
/// no-build path wins regardless of density.
const TINY_QUERY_CELLS: usize = 4096;

/// The planner's bind-time choice between the sparse CSR walk and the
/// dense in-place advance for a materialized sequence, from the density
/// tallied at sequence construction and the bind size. Never returns
/// [`Strategy::Scan`] — the scan schedule applies only to prefix-series
/// evaluation and is selected in [`PreparedEventQuery`].
pub fn choose_strategy(m: &MarkovSequence) -> Strategy {
    let k = m.n_symbols();
    let cells = m.len().saturating_sub(1).saturating_mul(k * k);
    if m.density() >= DENSE_DENSITY_THRESHOLD || cells <= TINY_QUERY_CELLS {
        Strategy::Dense
    } else {
        Strategy::Sparse
    }
}

/// Bumps the per-strategy planner counter and drops a profiler instant,
/// so `--metrics` and traces show which inner loop ran.
pub(crate) fn record_strategy(s: Strategy) {
    match s {
        Strategy::Sparse => transmark_obs::counter!("planner.strategy.sparse").inc(),
        Strategy::Dense => transmark_obs::counter!("planner.strategy.dense").inc(),
        Strategy::Scan => transmark_obs::counter!("planner.strategy.scan").inc(),
    }
    transmark_obs::profile::instant_detail("planner.strategy", s.label());
}

/// Runs `f` over the strategy-selected execution view of `m` — the shared
/// entry point for the legacy free functions, which bind and evaluate in
/// one call (the prepared path stores its choice in the [`BoundQuery`]).
/// Under a dense choice no CSR is ever built.
pub(crate) fn with_exec_steps<R>(m: &MarkovSequence, f: impl FnOnce(ExecSteps<'_>) -> R) -> R {
    let chosen = choose_strategy(m);
    record_strategy(chosen);
    match chosen {
        Strategy::Dense => {
            let dense = m.dense_steps();
            f(ExecSteps::Dense(&dense))
        }
        _ => {
            let steps = m.sparse_steps();
            f(ExecSteps::Sparse(&steps))
        }
    }
}

/// A bounded memo cache with LRU eviction and hit/miss accounting.
/// Small (tens of entries), so the `VecDeque` order bookkeeping is cheap.
/// Shared by the plan layers of this crate and `transmark-sproj`; callers
/// wrap it in a `Mutex`.
pub struct BoundedCache<K: Eq + std::hash::Hash + Clone, V> {
    cap: usize,
    map: HashMap<K, Arc<V>>,
    order: VecDeque<K>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + std::hash::Hash + Clone, V> BoundedCache<K, V> {
    /// An empty cache holding at most `cap` entries (minimum 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to build (= compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The cached value for `key`, building (and possibly evicting the
    /// least-recently-used entry) on miss.
    pub fn get_or_insert_with(&mut self, key: &K, build: impl FnOnce() -> V) -> Arc<V> {
        if let Some(v) = self.map.get(key) {
            self.hits += 1;
            transmark_obs::counter!("planner.cache.hits").inc();
            transmark_obs::profile::instant("planner.cache.hit");
            let v = Arc::clone(v);
            if let Some(pos) = self.order.iter().position(|k| k == key) {
                self.order.remove(pos);
                self.order.push_back(key.clone());
            }
            return v;
        }
        self.misses += 1;
        transmark_obs::counter!("planner.cache.misses").inc();
        transmark_obs::profile::instant("planner.cache.miss");
        if self.map.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                transmark_obs::counter!("planner.cache.evictions").inc();
            }
        }
        let v = Arc::new(build());
        self.map.insert(key.clone(), Arc::clone(&v));
        self.order.push_back(key.clone());
        v
    }
}

/// A constraint product compiled once per [`PrefixConstraint`]: the
/// constrained machine and its state step graph, shared across every
/// Lawler–Murty subspace probe (and across binds — the product is purely
/// machine-side).
pub(crate) struct ConstrainedMachine {
    pub(crate) t: Transducer,
    pub(crate) graph: StepGraph,
}

/// A compiled query: machine classified, Table 2 route selected, every
/// sequence-independent artifact precompiled or memoized. Immutable and
/// `Send + Sync`; share it as `Arc<PreparedQuery>` and
/// [`PreparedQuery::bind`] it once per sequence.
pub struct PreparedQuery {
    t: Transducer,
    kind: PlanKind,
    state_graph: SharedStepGraph,
    accepting: BitSet,
    /// Interned emission string → id; replaces the O(#emissions) scans of
    /// `emission_id_for` with an equivalent (interning is injective) hash
    /// lookup.
    emission_index: HashMap<Box<[SymbolId]>, u32>,
    output_graphs: Mutex<BoundedCache<Vec<SymbolId>, StepGraph>>,
    prefix_graphs: Mutex<BoundedCache<Vec<SymbolId>, StepGraph>>,
    constraint_products: Mutex<BoundedCache<PrefixConstraint, ConstrainedMachine>>,
    /// Per-kind phase histograms, resolved once at compile time so the
    /// bind/execute paths record through a plain `Arc` (no registry
    /// lookup on the hot path).
    bind_ns: Arc<transmark_obs::Histogram>,
    execute_ns: Arc<transmark_obs::Histogram>,
}

thread_local! {
    /// Execute-phase reentrancy depth: composite passes (`top_k_scored`
    /// calls `confidence` per answer) must count as ONE execute.
    static EXEC_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Times one top-level execute: records the plan's `execute_ns`
/// histogram and the `"execute"` span only at depth 0, so nested
/// execute-phase methods neither double-count nor produce
/// `execute/execute` span paths.
struct ExecGuard {
    hist: Option<Arc<transmark_obs::Histogram>>,
    timer: transmark_obs::Timer,
    _span: Option<transmark_obs::SpanGuard>,
}

impl ExecGuard {
    fn enter(plan: &PreparedQuery) -> ExecGuard {
        let depth = EXEC_DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        if depth == 0 {
            ExecGuard {
                hist: Some(Arc::clone(&plan.execute_ns)),
                timer: transmark_obs::Timer::start(),
                _span: Some(transmark_obs::span::enter("execute")),
            }
        } else {
            ExecGuard {
                hist: None,
                timer: transmark_obs::Timer::start(),
                _span: None,
            }
        }
    }
}

impl Drop for ExecGuard {
    fn drop(&mut self) {
        EXEC_DEPTH.with(|d| d.set(d.get() - 1));
        if let Some(h) = &self.hist {
            h.record(self.timer.elapsed_ns());
        }
    }
}

/// How many output-keyed graphs each prepared query memoizes. Answers a
/// fleet evaluation touches repeatedly (top-k outputs, enumeration
/// prefixes) fit comfortably; unbounded growth over adversarial output
/// streams does not happen.
const GRAPH_CACHE_CAP: usize = 64;
const CONSTRAINT_CACHE_CAP: usize = 256;

/// Compiles `t` into a shareable plan (convenience for
/// `Arc::new(PreparedQuery::new(t))`).
pub fn prepare(t: &Transducer) -> Arc<PreparedQuery> {
    Arc::new(PreparedQuery::new(t))
}

impl PreparedQuery {
    /// Analyzes and compiles the machine. The transducer is cloned into
    /// the plan, so the plan is self-contained and `'static`.
    pub fn new(t: &Transducer) -> Self {
        Self::from_owned(t.clone())
    }

    /// Like [`PreparedQuery::new`] but takes ownership.
    pub fn from_owned(t: Transducer) -> Self {
        let _span = transmark_obs::span::enter("prepare");
        let timer = transmark_obs::Timer::start();
        let kind = PlanKind::for_transducer(&t);
        // The route decision, visible as a point event on the timeline.
        transmark_obs::profile::instant_detail("planner.plan", kind.label());
        let state_graph = state_step_graph(&t).into_shared();
        let accepting = confidence::accepting_bitset(&t);
        let mut emission_index = HashMap::with_capacity(t.n_emissions());
        for id in 0..t.n_emissions() {
            let em: Box<[SymbolId]> = t.emission(crate::transducer::EmissionId(id as u32)).into();
            emission_index.entry(em).or_insert(id as u32);
        }
        let obs = transmark_obs::registry();
        let plan = Self {
            t,
            kind,
            state_graph,
            accepting,
            emission_index,
            output_graphs: Mutex::new(BoundedCache::new(GRAPH_CACHE_CAP)),
            prefix_graphs: Mutex::new(BoundedCache::new(GRAPH_CACHE_CAP)),
            constraint_products: Mutex::new(BoundedCache::new(CONSTRAINT_CACHE_CAP)),
            bind_ns: obs.histogram_dyn(&format!("planner.bind_ns.{}", kind.label())),
            execute_ns: obs.histogram_dyn(&format!("planner.execute_ns.{}", kind.label())),
        };
        timer.observe(&obs.histogram_dyn(&format!("planner.prepare_ns.{}", kind.label())));
        plan
    }

    /// The selected Table 2 route.
    pub fn kind(&self) -> PlanKind {
        self.kind
    }

    /// The compiled machine.
    pub fn transducer(&self) -> &Transducer {
        &self.t
    }

    /// The machine's structural fingerprint (the store's plan-cache key).
    pub fn fingerprint(&self) -> u64 {
        self.t.fingerprint()
    }

    /// The interned id of an emission string, `u32::MAX` if the machine
    /// never emits it. Equivalent to `kernelize::emission_id_for`.
    pub(crate) fn emission_id(&self, slice: &[SymbolId]) -> u32 {
        self.emission_index.get(slice).copied().unwrap_or(u32::MAX)
    }

    /// The shared `(node, state)` step graph.
    pub(crate) fn state_graph(&self) -> &SharedStepGraph {
        &self.state_graph
    }

    /// The accepting-state bitset.
    pub(crate) fn accepting(&self) -> &BitSet {
        &self.accepting
    }

    /// The memoized `output_step_graph(t, o)`.
    pub(crate) fn output_graph(&self, o: &[SymbolId]) -> Arc<StepGraph> {
        let mut cache = self.output_graphs.lock().expect("plan cache poisoned");
        cache.get_or_insert_with(&o.to_vec(), || output_step_graph(&self.t, o))
    }

    /// The memoized `prefix_step_graph(t, prefix)`.
    pub(crate) fn prefix_graph(&self, prefix: &[SymbolId]) -> Arc<StepGraph> {
        let mut cache = self.prefix_graphs.lock().expect("plan cache poisoned");
        cache.get_or_insert_with(&prefix.to_vec(), || prefix_step_graph(&self.t, prefix))
    }

    /// The memoized constraint product for a Lawler–Murty subspace.
    pub(crate) fn constrained(&self, c: &PrefixConstraint) -> Arc<ConstrainedMachine> {
        let mut cache = self
            .constraint_products
            .lock()
            .expect("plan cache poisoned");
        cache.get_or_insert_with(c, || {
            let ct = constrain(&self.t, &c.to_dfa(self.t.n_output_symbols()))
                .expect("constraint DFA is over the output alphabet by construction");
            let graph = state_step_graph(&ct);
            ConstrainedMachine { t: ct, graph }
        })
    }

    /// EXPLAIN-style introspection: the selected route, machine shape, and
    /// precompile / cache statistics.
    pub fn explain(&self) -> PlanExplain {
        let (og_len, og_hits, og_misses) = {
            let c = self.output_graphs.lock().expect("plan cache poisoned");
            (c.len(), c.hits(), c.misses())
        };
        let (pg_len, pg_hits, pg_misses) = {
            let c = self.prefix_graphs.lock().expect("plan cache poisoned");
            (c.len(), c.hits(), c.misses())
        };
        let (cp_len, cp_hits, cp_misses) = {
            let c = self
                .constraint_products
                .lock()
                .expect("plan cache poisoned");
            (c.len(), c.hits(), c.misses())
        };
        PlanExplain {
            kind: self.kind,
            n_states: self.t.n_states(),
            n_input_symbols: self.t.n_input_symbols(),
            n_output_symbols: self.t.n_output_symbols(),
            n_emissions: self.t.n_emissions(),
            deterministic: self.t.is_deterministic(),
            uniform_k: self.t.uniform_emission(),
            mealy: self.t.is_mealy(),
            selective: self.t.is_selective(),
            state_graph_edges: self.state_graph.n_edges(),
            precompiled_bytes: self.state_graph.approx_bytes(),
            cached_output_graphs: og_len,
            cached_prefix_graphs: pg_len,
            cached_constraint_products: cp_len,
            cache_hits: og_hits + pg_hits + cp_hits,
            cache_misses: og_misses + pg_misses + cp_misses,
            strategy: None,
        }
    }

    /// Binds one sequence: validates alphabets, flattens the sequence's
    /// CSR, allocates the reusable workspaces. The returned [`BoundQuery`]
    /// is cheap to use repeatedly and thread-local (the plan itself is the
    /// shareable part).
    pub fn bind<'m>(
        self: &Arc<Self>,
        m: &'m MarkovSequence,
    ) -> Result<BoundQuery<'m>, EngineError> {
        self.bind_with_strategy(m, None)
    }

    /// [`PreparedQuery::bind`] with the execution strategy forced (`None`
    /// = planner choice via [`choose_strategy`]). Sparse and dense binds
    /// produce bit-identical results; [`Strategy::Scan`] applies only to
    /// prefix-series evaluation and is rejected here.
    pub fn bind_with_strategy<'m>(
        self: &Arc<Self>,
        m: &'m MarkovSequence,
        strategy: Option<Strategy>,
    ) -> Result<BoundQuery<'m>, EngineError> {
        let _span = transmark_obs::span::enter("bind");
        let timer = transmark_obs::Timer::start();
        check_inputs(&self.t, m, None)?;
        let chosen = match strategy {
            None => choose_strategy(m),
            Some(Strategy::Scan) => {
                return Err(EngineError::UnsupportedStrategy {
                    strategy: "scan",
                    query: "bound transducer queries (scan schedules prefix-series evaluation)",
                })
            }
            Some(s) => s,
        };
        record_strategy(chosen);
        let steps = match chosen {
            Strategy::Dense => BoundSteps::Dense {
                dense: m.dense_steps(),
                csr: OnceLock::new(),
            },
            _ => BoundSteps::Sparse(m.sparse_steps().into_shared()),
        };
        let bound = BoundQuery {
            plan: Arc::clone(self),
            m,
            steps,
            ws_f: std::cell::RefCell::new(Workspace::new()),
            ws_b: std::cell::RefCell::new(Workspace::new()),
        };
        timer.observe(&self.bind_ns);
        Ok(bound)
    }

    /// Binds a streamed [`StepSource`]: the data side is never
    /// materialized, so only the forward-only passes are available — each
    /// one a single left-to-right scan holding O(|Σ|²) of sequence data
    /// (plus the pass's own layer). Results are bit-identical to the same
    /// pass on [`PreparedQuery::bind`] of the materialized sequence.
    ///
    /// Each evaluation consumes the source; rewind it (a
    /// [`SourceBoundQuery::rewind`] exists when `S` is rewindable) before
    /// the next pass, or the pass reports
    /// [`EngineError::SourceConsumed`].
    pub fn bind_source<S: StepSource>(
        self: &Arc<Self>,
        src: S,
    ) -> Result<SourceBoundQuery<S>, EngineError> {
        let _span = transmark_obs::span::enter("bind");
        let timer = transmark_obs::Timer::start();
        if self.t.n_input_symbols() != src.alphabet().len() {
            return Err(EngineError::AlphabetMismatch {
                transducer: self.t.n_input_symbols(),
                sequence: src.alphabet().len(),
            });
        }
        timer.observe(&self.bind_ns);
        Ok(SourceBoundQuery {
            plan: Arc::clone(self),
            src,
            ws_f: Workspace::new(),
            ws_b: Workspace::new(),
        })
    }
}

// One Arc<PreparedQuery> serves the parallel fleet; this fails to compile
// if the plan ever grows a non-thread-safe field.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedQuery>();
};

/// The bind's data-side step storage under its chosen execution strategy.
/// A dense bind holds only a borrow of the sequence's contiguous buffer —
/// no CSR is built unless an enumeration path, which shares `Arc`s of the
/// CSR across iterator states, asks for one (then it is built once).
enum BoundSteps<'m> {
    /// The flattened CSR ([`Strategy::Sparse`]).
    Sparse(SharedSparseSteps),
    /// The in-place dense view ([`Strategy::Dense`]) with a lazily built
    /// CSR for the `Arc`-consuming enumeration paths.
    Dense {
        dense: DenseSteps<'m>,
        csr: OnceLock<SharedSparseSteps>,
    },
}

impl BoundSteps<'_> {
    fn strategy(&self) -> Strategy {
        match self {
            BoundSteps::Sparse(_) => Strategy::Sparse,
            BoundSteps::Dense { .. } => Strategy::Dense,
        }
    }

    fn exec(&self) -> ExecSteps<'_> {
        match self {
            BoundSteps::Sparse(s) => ExecSteps::Sparse(s),
            BoundSteps::Dense { dense, .. } => ExecSteps::Dense(dense),
        }
    }

    fn shared_csr(&self, m: &MarkovSequence) -> &SharedSparseSteps {
        match self {
            BoundSteps::Sparse(s) => s,
            BoundSteps::Dense { csr, .. } => csr.get_or_init(|| m.sparse_steps().into_shared()),
        }
    }
}

/// One plan bound to one sequence: the data-side artifacts (strategy-
/// chosen step storage, layer workspaces) plus a handle on the shared
/// machine side. Methods mirror the legacy free functions — same
/// validation, same errors, bit-identical results — but reuse every
/// precompiled artifact across calls.
pub struct BoundQuery<'m> {
    plan: Arc<PreparedQuery>,
    m: &'m MarkovSequence,
    steps: BoundSteps<'m>,
    ws_f: std::cell::RefCell<Workspace<f64>>,
    ws_b: std::cell::RefCell<Workspace<bool>>,
}

impl<'m> BoundQuery<'m> {
    /// The plan this bind executes.
    pub fn plan(&self) -> &Arc<PreparedQuery> {
        &self.plan
    }

    /// The bound sequence.
    pub fn sequence(&self) -> &'m MarkovSequence {
        self.m
    }

    /// The execution strategy this bind runs its layer advances under.
    pub fn strategy(&self) -> Strategy {
        self.steps.strategy()
    }

    /// [`PreparedQuery::explain`] plus this bind's execution-strategy row.
    pub fn explain(&self) -> PlanExplain {
        let mut e = self.plan.explain();
        e.strategy = Some(self.strategy());
        e
    }

    /// The bind's shared CSR (for facade iterators that outlive `&self`),
    /// built on first use under a dense bind.
    pub(crate) fn steps_shared(&self) -> &SharedSparseSteps {
        self.steps.shared_csr(self.m)
    }

    /// `Pr(S →[A^ω]→ o)` along the plan's Table 2 route (bit-identical to
    /// [`crate::confidence::confidence`]).
    pub fn confidence(&self, o: &[SymbolId]) -> Result<f64, EngineError> {
        let _exec = ExecGuard::enter(&self.plan);
        let t = &self.plan.t;
        check_inputs(t, self.m, Some(o))?;
        Ok(match self.plan.kind {
            PlanKind::DeterministicUniform { k } => {
                confidence::confidence_deterministic_uniform_impl(
                    t,
                    self.steps.exec(),
                    self.plan.state_graph(),
                    &mut self.ws_f.borrow_mut(),
                    o,
                    k,
                    &mut |slice| self.plan.emission_id(slice),
                )
            }
            PlanKind::Deterministic => confidence::confidence_deterministic_impl(
                t,
                self.steps.exec(),
                &self.plan.output_graph(o),
                &mut self.ws_f.borrow_mut(),
                o.len(),
            ),
            PlanKind::UniformNfa { k } => confidence::confidence_uniform_nfa_impl(
                t,
                self.m,
                self.plan.state_graph(),
                self.plan.accepting(),
                o,
                k,
                &mut |slice| self.plan.emission_id(slice),
            ),
            PlanKind::General | PlanKind::Sproj | PlanKind::SprojIndexed => {
                confidence::confidence_general_impl(t, self.m, &self.plan.output_graph(o), o.len())
            }
        })
    }

    /// Whether `o` is an answer (bit-identical to
    /// [`crate::confidence::is_answer`]).
    pub fn is_answer(&self, o: &[SymbolId]) -> Result<bool, EngineError> {
        let _exec = ExecGuard::enter(&self.plan);
        let t = &self.plan.t;
        check_inputs(t, self.m, Some(o))?;
        Ok(confidence::is_answer_impl(
            t,
            self.steps.exec(),
            &self.plan.output_graph(o),
            &mut self.ws_b.borrow_mut(),
            o.len(),
        ))
    }

    /// Whether the query has any answer (bit-identical to
    /// [`crate::confidence::answer_exists`]).
    pub fn answer_exists(&self) -> Result<bool, EngineError> {
        let _exec = ExecGuard::enter(&self.plan);
        Ok(confidence::answer_exists_impl(
            &self.plan.t,
            self.steps.exec(),
            self.plan.state_graph(),
            &mut self.ws_b.borrow_mut(),
        ))
    }

    /// The top answer by `E_max` (bit-identical to
    /// [`crate::emax::top_by_emax`]).
    pub fn top(&self) -> Result<Option<EmaxResult>, EngineError> {
        let _exec = ExecGuard::enter(&self.plan);
        Ok(emax::top_by_emax_impl(
            &self.plan.t,
            self.steps.exec(),
            self.plan.state_graph(),
        ))
    }

    /// `ln E_max(o)` (bit-identical to [`crate::emax::emax_of_output`]).
    pub fn emax_of_output(&self, o: &[SymbolId]) -> Result<f64, EngineError> {
        let _exec = ExecGuard::enter(&self.plan);
        let t = &self.plan.t;
        check_inputs(t, self.m, Some(o))?;
        Ok(emax::emax_of_output_impl(
            t,
            self.steps.exec(),
            &self.plan.output_graph(o),
            &mut self.ws_f.borrow_mut(),
            o.len(),
        ))
    }

    /// Monte-Carlo confidence estimate (same sampling sequence as
    /// [`crate::montecarlo::estimate_confidence`] for the same `rng`
    /// state).
    pub fn estimate_confidence<R: Rng + ?Sized>(
        &self,
        o: &[SymbolId],
        samples: usize,
        rng: &mut R,
    ) -> Result<McEstimate, EngineError> {
        let _exec = ExecGuard::enter(&self.plan);
        let t = &self.plan.t;
        check_inputs(t, self.m, Some(o))?;
        let graph = if t.is_deterministic() {
            None
        } else {
            Some(self.plan.output_graph(o))
        };
        Ok(montecarlo::estimate_confidence_impl(
            t,
            self.m,
            graph.as_deref(),
            o,
            samples,
            rng,
        ))
    }

    /// All evidences of `o`, most probable first (bit-identical to
    /// [`crate::evidence::enumerate_evidences`]).
    pub fn evidences(&self, o: &[SymbolId]) -> Result<Evidences, EngineError> {
        let _exec = ExecGuard::enter(&self.plan);
        let t = &self.plan.t;
        check_inputs(t, self.m, Some(o))?;
        Ok(evidence::enumerate_evidences_impl(
            t,
            self.m,
            &self.plan.output_graph(o),
            o.len(),
        ))
    }

    /// The `k` most probable evidences of `o`.
    pub fn top_evidences(&self, o: &[SymbolId], k: usize) -> Result<Vec<Evidence>, EngineError> {
        Ok(self.evidences(o)?.take(k).collect())
    }

    /// Theorem 4.1 lexicographic enumeration (bit-identical to
    /// [`crate::enumerate::enumerate_unranked`]); per-prefix graphs come
    /// from the plan's memo cache.
    pub fn unranked(&self) -> Result<UnrankedAnswers<'_>, EngineError> {
        Ok(enumerate_unranked_with(
            &self.plan.t,
            self.m,
            Arc::clone(self.steps_shared()),
            Arc::clone(&self.plan),
        ))
    }

    /// Theorem 4.3 ranked enumeration (bit-identical to
    /// [`crate::enumerate::enumerate_by_emax`]); constraint products come
    /// from the plan's memo cache and the Viterbi probes share this bind's
    /// CSR.
    pub fn ranked(&self) -> Result<EmaxEnumeration<'static>, EngineError> {
        Ok(enumerate_by_emax_planned(
            Arc::clone(&self.plan),
            Arc::clone(self.steps_shared()),
        ))
    }

    /// The top-k answers by `E_max`, each with its exact confidence
    /// (bit-identical to [`crate::evaluate::Evaluation::top_k_scored`]).
    pub fn top_k_scored(&self, k: usize) -> Result<Vec<ScoredAnswer>, EngineError> {
        let _exec = ExecGuard::enter(&self.plan);
        let mut out = Vec::with_capacity(k);
        for r in self.ranked()?.take(k) {
            let conf = self.confidence(&r.output)?;
            out.push(ScoredAnswer {
                emax: r.score(),
                confidence: conf,
                output: r.output,
            });
        }
        Ok(out)
    }

    /// The top-k answers by `E_max` without confidences.
    pub fn top_k(&self, k: usize) -> Result<Vec<RankedAnswer>, EngineError> {
        let _exec = ExecGuard::enter(&self.plan);
        Ok(self.ranked()?.take(k).collect())
    }
}

/// One plan bound to a streamed [`StepSource`]: the forward-only subset
/// of [`BoundQuery`], executing layer-at-a-time off the source. Memory is
/// O(|Σ|² + pass state) regardless of the stream length; results are
/// bit-identical to the materialized path (pinned by the streaming parity
/// suite).
///
/// Every method is a full left-to-right scan, so each consumes the
/// source. For rewindable sources, [`SourceBoundQuery::rewind`] restarts
/// the cursor between passes.
pub struct SourceBoundQuery<S: StepSource> {
    plan: Arc<PreparedQuery>,
    src: S,
    ws_f: Workspace<f64>,
    ws_b: Workspace<bool>,
}

impl<S: StepSource> SourceBoundQuery<S> {
    /// The plan this bind executes.
    pub fn plan(&self) -> &Arc<PreparedQuery> {
        &self.plan
    }

    /// The bound source.
    pub fn source(&self) -> &S {
        &self.src
    }

    /// Releases the source (e.g. to rewind it externally).
    pub fn into_source(self) -> S {
        self.src
    }

    /// Streamed binds always run sparse: each pulled layer is compacted
    /// to CSR in place, never materialized whole.
    pub fn strategy(&self) -> Strategy {
        Strategy::Sparse
    }

    /// [`PreparedQuery::explain`] plus this bind's execution-strategy row.
    pub fn explain(&self) -> PlanExplain {
        let mut e = self.plan.explain();
        e.strategy = Some(self.strategy());
        e
    }

    /// `Pr(S →[A^ω]→ o)` along the plan's Table 2 route, streamed
    /// (bit-identical to [`BoundQuery::confidence`]).
    ///
    /// Implemented by driving a [`crate::incremental::ConfidenceSession`]
    /// — the same seed/step/finish machine checkpoint/resume runs on —
    /// so one code path serves both the one-shot pass and suspendable
    /// sessions. The session's per-layer arithmetic is the historical
    /// streamed pass's, so results stay bit-identical.
    pub fn confidence(&mut self, o: &[SymbolId]) -> Result<f64, EngineError> {
        let plan = Arc::clone(&self.plan);
        let _exec = ExecGuard::enter(&plan);
        confidence::check_source_inputs(&plan.t, &self.src, Some(o))?;
        let mut sess = plan.begin_confidence(self.src.initial(), o)?;
        while let Some(matrix) = self.src.next_step()? {
            sess.step(matrix)?;
        }
        Ok(sess.finish())
    }

    /// Whether `o` is an answer, streamed (bit-identical to
    /// [`BoundQuery::is_answer`]).
    pub fn is_answer(&mut self, o: &[SymbolId]) -> Result<bool, EngineError> {
        let plan = Arc::clone(&self.plan);
        let _exec = ExecGuard::enter(&plan);
        confidence::check_source_inputs(&plan.t, &self.src, Some(o))?;
        confidence::is_answer_source_impl(
            &plan.t,
            &mut self.src,
            &plan.output_graph(o),
            &mut self.ws_b,
            o.len(),
        )
    }

    /// Whether the query has any answer, streamed (bit-identical to
    /// [`BoundQuery::answer_exists`]).
    pub fn answer_exists(&mut self) -> Result<bool, EngineError> {
        let plan = Arc::clone(&self.plan);
        let _exec = ExecGuard::enter(&plan);
        confidence::check_source_fresh(&self.src)?;
        confidence::answer_exists_source_impl(
            &plan.t,
            &mut self.src,
            plan.state_graph(),
            &mut self.ws_b,
        )
    }

    /// `ln E_max(o)`, streamed (bit-identical to
    /// [`BoundQuery::emax_of_output`]).
    pub fn emax_of_output(&mut self, o: &[SymbolId]) -> Result<f64, EngineError> {
        let plan = Arc::clone(&self.plan);
        let _exec = ExecGuard::enter(&plan);
        confidence::check_source_inputs(&plan.t, &self.src, Some(o))?;
        emax::emax_of_output_source_impl(
            &plan.t,
            &mut self.src,
            &plan.output_graph(o),
            &mut self.ws_f,
            o.len(),
        )
    }

    /// Streamed Monte-Carlo confidence estimate: all samples advance one
    /// layer per pulled step (see
    /// [`crate::montecarlo::estimate_confidence_source`] for how its draw
    /// order relates to the in-memory estimator's).
    pub fn estimate_confidence<R: Rng + ?Sized>(
        &mut self,
        o: &[SymbolId],
        samples: usize,
        rng: &mut R,
    ) -> Result<McEstimate, EngineError> {
        let plan = Arc::clone(&self.plan);
        let _exec = ExecGuard::enter(&plan);
        montecarlo::estimate_confidence_source(&plan.t, &mut self.src, o, samples, rng)
    }
}

impl<S: transmark_markov::RewindableStepSource> SourceBoundQuery<S> {
    /// Restarts the source's step cursor so another pass can run.
    pub fn rewind(&mut self) -> Result<(), EngineError> {
        self.src.rewind()?;
        Ok(())
    }
}

/// EXPLAIN output: the selected route and what compiling it cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanExplain {
    /// The selected Table 2 route.
    pub kind: PlanKind,
    /// `|Q_A|`.
    pub n_states: usize,
    /// `|Σ_A|`.
    pub n_input_symbols: usize,
    /// `|Δ_ω|`.
    pub n_output_symbols: usize,
    /// Distinct interned emissions (including ε).
    pub n_emissions: usize,
    /// Whether the underlying automaton is deterministic.
    pub deterministic: bool,
    /// `Some(k)` when every emission has length exactly `k`.
    pub uniform_k: Option<usize>,
    /// Whether the machine is Mealy (1-uniform).
    pub mealy: bool,
    /// Whether the machine is selective (`F_A ≠ Q_A`).
    pub selective: bool,
    /// Edges in the precompiled `(node, state)` step graph.
    pub state_graph_edges: usize,
    /// Approximate bytes of eagerly precompiled machine-side artifacts.
    pub precompiled_bytes: usize,
    /// Output-keyed step graphs currently memoized.
    pub cached_output_graphs: usize,
    /// Prefix-keyed step graphs currently memoized.
    pub cached_prefix_graphs: usize,
    /// Lawler–Murty constraint products currently memoized.
    pub cached_constraint_products: usize,
    /// Total plan-cache hits so far.
    pub cache_hits: u64,
    /// Total plan-cache misses (= compilations) so far.
    pub cache_misses: u64,
    /// The execution strategy of the bind this explain came from —
    /// `None` for an unbound plan (strategy is chosen per bind).
    pub strategy: Option<Strategy>,
}

impl fmt::Display for PlanExplain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan: {}  [{}]", self.kind, self.kind.table2_row())?;
        if let Some(s) = self.strategy {
            writeln!(f, "strategy: {s}")?;
        }
        writeln!(
            f,
            "machine: {} states, {} input symbols, {} output symbols, {} emissions",
            self.n_states, self.n_input_symbols, self.n_output_symbols, self.n_emissions
        )?;
        writeln!(
            f,
            "class: deterministic={} uniform_k={} mealy={} selective={}",
            self.deterministic,
            match self.uniform_k {
                Some(k) => k.to_string(),
                None => "-".to_string(),
            },
            self.mealy,
            self.selective
        )?;
        writeln!(
            f,
            "precompiled: state graph {} edges (~{} bytes)",
            self.state_graph_edges, self.precompiled_bytes
        )?;
        write!(
            f,
            "caches: {} output graphs, {} prefix graphs, {} constraint products ({} hits / {} misses)",
            self.cached_output_graphs,
            self.cached_prefix_graphs,
            self.cached_constraint_products,
            self.cache_hits,
            self.cache_misses
        )
    }
}

/// The prepared form of a Boolean event query (an NFA over the sequence
/// alphabet): the compile/bind surface for [`crate::streaming`] and the
/// acceptance passes.
///
/// The only machine-side artifact worth caching here is the validated NFA
/// itself — the subset determinization is rebuilt per evaluation *on
/// purpose* (see the module docs: sharing it would reorder reductions and
/// break bit-reproducibility).
pub struct PreparedEventQuery {
    nfa: Nfa,
}

impl PreparedEventQuery {
    /// Wraps a query NFA.
    pub fn new(nfa: Nfa) -> Self {
        Self { nfa }
    }

    /// The query automaton.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The query's structural fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.nfa.fingerprint()
    }

    /// `Pr(S ∈ L(A))` (bit-identical to
    /// [`crate::confidence::acceptance_probability`]).
    pub fn acceptance(&self, m: &MarkovSequence) -> Result<f64, EngineError> {
        confidence::acceptance_probability(&self.nfa, m)
    }

    /// The per-prefix probability series (bit-identical to
    /// [`crate::confidence::prefix_acceptance_probabilities`]).
    pub fn series(&self, m: &MarkovSequence) -> Result<Vec<f64>, EngineError> {
        self.series_with(m, 1, None)
    }

    /// [`PreparedEventQuery::series`] with an execution strategy and a
    /// worker budget.
    ///
    /// * `None` — planner choice: the parallel-prefix scan when the
    ///   sequence is long, `n_threads ≥ 2`, and the query's lifted state
    ///   space is small enough for composition to pay off; otherwise the
    ///   sequential fold (bit-identical to [`PreparedEventQuery::series`]).
    /// * `Some(Strategy::Sparse)` — force the sequential fold.
    /// * `Some(Strategy::Scan)` — force the scan
    ///   ([`crate::scan::prefix_acceptance_probabilities_scan`]); results
    ///   agree with the fold within a relative `1e-12`, not bitwise.
    /// * `Some(Strategy::Dense)` — rejected: dense kernels apply to bound
    ///   transducer queries, not series evaluation.
    pub fn series_with(
        &self,
        m: &MarkovSequence,
        n_threads: usize,
        strategy: Option<Strategy>,
    ) -> Result<Vec<f64>, EngineError> {
        match strategy {
            Some(Strategy::Dense) => Err(EngineError::UnsupportedStrategy {
                strategy: "dense",
                query: "prefix-series evaluation (dense applies to bound transducer queries)",
            }),
            Some(Strategy::Sparse) => {
                record_strategy(Strategy::Sparse);
                confidence::prefix_acceptance_probabilities(&self.nfa, m)
            }
            Some(Strategy::Scan) => {
                record_strategy(Strategy::Scan);
                crate::scan::prefix_acceptance_probabilities_scan(&self.nfa, m, n_threads)
            }
            None => {
                confidence::check_nfa_alphabet(&self.nfa, m.n_symbols())?;
                if let Some(series) = crate::scan::try_auto_scan(&self.nfa, m, n_threads) {
                    record_strategy(Strategy::Scan);
                    return Ok(series);
                }
                record_strategy(Strategy::Sparse);
                confidence::prefix_acceptance_probabilities(&self.nfa, m)
            }
        }
    }

    /// Starts a fresh streaming monitor over this query.
    pub fn monitor(&self, initial: &[f64]) -> Result<EventMonitor, EngineError> {
        EventMonitor::start(self.nfa.clone(), initial)
    }

    /// Replays a stored sequence through a fresh monitor (bit-identical to
    /// [`crate::streaming::EventMonitor::replay`]).
    pub fn replay(&self, m: &MarkovSequence) -> Result<Vec<f64>, EngineError> {
        EventMonitor::replay(self.nfa.clone(), m)
    }

    /// `Pr(S ∈ L(A))` over a streamed source (bit-identical to
    /// [`PreparedEventQuery::acceptance`] of the materialized sequence).
    pub fn acceptance_source<S: StepSource>(&self, src: &mut S) -> Result<f64, EngineError> {
        confidence::acceptance_probability_source(&self.nfa, src)
    }

    /// The per-prefix probability series over a streamed source
    /// (bit-identical to [`PreparedEventQuery::series`]).
    pub fn series_source<S: StepSource>(&self, src: &mut S) -> Result<Vec<f64>, EngineError> {
        confidence::prefix_acceptance_probabilities_source(&self.nfa, src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_automata::Alphabet;
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
    use transmark_markov::MarkovSequenceBuilder;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    fn identity() -> Transducer {
        let alphabet = Alphabet::of_chars("ab");
        let mut b = Transducer::builder(alphabet.clone(), alphabet);
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, sym(s), q, &[sym(s)]).unwrap();
        }
        b.build().unwrap()
    }

    fn chain() -> MarkovSequence {
        let alphabet = Alphabet::of_chars("ab");
        MarkovSequenceBuilder::new(alphabet, 3)
            .uniform_all()
            .build()
            .unwrap()
    }

    #[test]
    fn kind_classification_matches_table2() {
        assert_eq!(
            PlanKind::for_transducer(&identity()),
            PlanKind::DeterministicUniform { k: 1 }
        );
        let mut rng = StdRng::seed_from_u64(5);
        let general = random_transducer(
            &RandomTransducerSpec {
                n_states: 3,
                n_input_symbols: 2,
                n_output_symbols: 2,
                class: TransducerClass::General,
                branching: 1.7,
            },
            &mut rng,
        );
        if !general.is_deterministic() && general.uniform_emission().is_none() {
            assert_eq!(PlanKind::for_transducer(&general), PlanKind::General);
        }
    }

    #[test]
    fn bound_results_match_free_functions_bitwise() {
        let t = identity();
        let m = chain();
        let plan = prepare(&t);
        let bound = plan.bind(&m).unwrap();
        let o = [sym(0), sym(1), sym(0)];
        let free = crate::confidence::confidence(&t, &m, &o).unwrap();
        let planned = bound.confidence(&o).unwrap();
        assert_eq!(free.to_bits(), planned.to_bits());
        // Repeated calls reuse the cached artifacts and stay identical.
        assert_eq!(bound.confidence(&o).unwrap().to_bits(), planned.to_bits());
        assert_eq!(
            bound.is_answer(&o).unwrap(),
            crate::confidence::is_answer(&t, &m, &o).unwrap()
        );
        assert_eq!(
            bound.top().unwrap(),
            crate::emax::top_by_emax(&t, &m).unwrap()
        );
    }

    #[test]
    fn explain_reports_route_and_cache_traffic() {
        let t = identity();
        let m = chain();
        let plan = prepare(&t);
        let e0 = plan.explain();
        assert_eq!(e0.kind, PlanKind::DeterministicUniform { k: 1 });
        assert!(e0.deterministic);
        assert_eq!(e0.uniform_k, Some(1));
        assert!(e0.state_graph_edges > 0);
        assert_eq!(e0.cache_hits + e0.cache_misses, 0);

        let bound = plan.bind(&m).unwrap();
        let o = [sym(0), sym(0), sym(0)];
        // is_answer uses the output-graph cache: first call misses…
        bound.is_answer(&o).unwrap();
        let e1 = plan.explain();
        assert_eq!(e1.cache_misses, 1);
        assert_eq!(e1.cached_output_graphs, 1);
        // …second call hits.
        bound.is_answer(&o).unwrap();
        let e2 = plan.explain();
        assert_eq!(e2.cache_hits, 1);
        // Display renders without panicking and names the route.
        let text = format!("{e2}");
        assert!(text.contains("deterministic-uniform"));
        assert!(text.contains("Thm 4.6"));
    }

    #[test]
    fn bind_rejects_alphabet_mismatch() {
        let t = identity();
        let m3 = MarkovSequenceBuilder::new(Alphabet::of_chars("abc"), 2)
            .uniform_all()
            .build()
            .unwrap();
        assert!(prepare(&t).bind(&m3).is_err());
    }

    #[test]
    fn output_graph_cache_evicts_at_capacity() {
        let t = identity();
        let plan = prepare(&t);
        for len in 0..(GRAPH_CACHE_CAP + 5) {
            let o = vec![sym(0); len];
            let _ = plan.output_graph(&o);
        }
        let e = plan.explain();
        assert_eq!(e.cached_output_graphs, GRAPH_CACHE_CAP);
        assert_eq!(e.cache_misses as usize, GRAPH_CACHE_CAP + 5);
    }

    #[test]
    fn prepared_event_query_matches_direct_calls() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = random_markov_sequence(
            &RandomChainSpec {
                len: 6,
                n_symbols: 2,
                zero_prob: 0.2,
            },
            &mut rng,
        );
        let nfa = identity().underlying_nfa();
        let q = PreparedEventQuery::new(nfa.clone());
        let a = q.acceptance(&m).unwrap();
        let b = crate::confidence::acceptance_probability(&nfa, &m).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        let s1 = q.series(&m).unwrap();
        let s2 = q.replay(&m).unwrap();
        assert_eq!(s1.len(), s2.len());
    }
}
