//! Enumerating the evidences behind an answer.
//!
//! `E_max(o)` (§4.2) is the probability of the single best evidence; this
//! module generalizes it: enumerate *all* possible worlds transduced into
//! a given answer `o`, in non-increasing probability. This is the
//! provenance view a probabilistic database owes its users — "*why* does
//! the engine believe the cart went Room 1 → Room 2?" — and it reuses the
//! same reduction style as Theorem 5.7: evidences are source→sink paths
//! of the layered product graph (position × node × state × output
//! position), enumerated by the k-best-paths machinery.
//!
//! For a deterministic transducer each world has a single run, so paths
//! and evidences are in bijection and the delay is polynomial. For a
//! nondeterministic machine a world may have several accepting runs
//! emitting `o`; duplicates are filtered (the first, maximal-probability
//! occurrence is kept), which degrades the guarantee to incremental
//! polynomial time — the same trade-off as Lemma 5.10's dedup variant.

use std::collections::HashSet;

use transmark_automata::{StateId, SymbolId};
use transmark_kbest::{Dag, KBestPaths};
use transmark_markov::MarkovSequence;

use crate::confidence::check_inputs;
use crate::error::EngineError;
use crate::kernelize::output_step_graph;
use crate::transducer::Transducer;

/// One evidence: a possible world and its probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// The world `s` with `s →[A^ω]→ o`.
    pub world: Vec<SymbolId>,
    /// `ln p(s)`.
    pub log_prob: f64,
}

impl Evidence {
    /// `p(world)` in linear space.
    pub fn prob(&self) -> f64 {
        self.log_prob.exp()
    }
}

/// Iterator over the evidences of an answer in non-increasing
/// probability.
pub struct Evidences {
    paths: KBestPaths,
    /// For edge `e`: the node (Markov symbol) it enters, or `None` for
    /// the final sink edge.
    labels: Vec<Option<SymbolId>>,
    seen: HashSet<Vec<SymbolId>>,
}

impl Iterator for Evidences {
    type Item = Evidence;

    fn next(&mut self) -> Option<Evidence> {
        loop {
            let (edges, w) = self.paths.next()?;
            let world: Vec<SymbolId> = edges.iter().filter_map(|&e| self.labels[e]).collect();
            if self.seen.insert(world.clone()) {
                return Some(Evidence { world, log_prob: w });
            }
        }
    }
}

/// Enumerates all worlds transduced into `o`, most probable first.
///
/// Graph: node `(i, x, q, j)` means "after reading position `i` ending at
/// Markov node `x`, the run is in state `q` having emitted `o[..j]`";
/// sink edges require `q ∈ F` and `j = |o|`. Graph size
/// `O(n·|Σ|·|Q|·|o|)` nodes.
pub fn enumerate_evidences(
    t: &Transducer,
    m: &MarkovSequence,
    o: &[SymbolId],
) -> Result<Evidences, EngineError> {
    check_inputs(t, m, Some(o))?;
    // The machine side — states × output positions with the emission
    // checks resolved — is precompiled once; its rows are the `(q, j)`
    // part of the DAG's node ids.
    let graph = output_step_graph(t, o);
    Ok(enumerate_evidences_impl(t, m, &graph, o.len()))
}

/// The evidence-DAG construction over a precompiled output graph. `graph`
/// must be `output_step_graph(t, o)` for an `o` of length `o_len`.
pub(crate) fn enumerate_evidences_impl(
    t: &Transducer,
    m: &MarkovSequence,
    graph: &transmark_kernel::StepGraph,
    o_len: usize,
) -> Evidences {
    let n = m.len();
    let k = m.n_symbols();
    let nq = t.n_states();
    let width = o_len + 1;
    let nr = graph.n_rows();
    // Node ids: 0 = source, 1 = sink, then dense (i, x, row).
    let node_id = |i: usize, x: usize, row: usize| 2 + ((i - 1) * k + x) * nr + row;
    let mut dag = Dag::new(2 + n * k * nr);
    let mut labels: Vec<Option<SymbolId>> = Vec::new();
    let add = |dag: &mut Dag, labels: &mut Vec<Option<SymbolId>>, from, to, w: f64, label| {
        if w > f64::NEG_INFINITY {
            let id = dag.add_edge(from, to, w);
            debug_assert_eq!(id, labels.len());
            labels.push(label);
        }
    };

    // Source edges: position 1.
    let init_row = (t.initial().index() * width) as u32;
    for x in 0..k {
        let p = m.initial_prob(SymbolId(x as u32));
        if p == 0.0 {
            continue;
        }
        for e in graph.edges(x as u32, init_row) {
            add(
                &mut dag,
                &mut labels,
                0,
                node_id(1, x, e.to as usize),
                p.ln(),
                Some(SymbolId(x as u32)),
            );
        }
    }
    // Interior edges.
    for i in 1..n {
        for x in 0..k {
            for (y, pt) in m.transitions_from(i - 1, SymbolId(x as u32)) {
                let lw = pt.ln();
                for row in 0..nr {
                    for e in graph.edges(y.0, row as u32) {
                        add(
                            &mut dag,
                            &mut labels,
                            node_id(i, x, row),
                            node_id(i + 1, y.index(), e.to as usize),
                            lw,
                            Some(y),
                        );
                    }
                }
            }
        }
    }
    // Sink edges: accepting states with the full output.
    for x in 0..k {
        for q in 0..nq {
            if t.is_accepting(StateId(q as u32)) {
                add(
                    &mut dag,
                    &mut labels,
                    node_id(n, x, q * width + o_len),
                    1,
                    0.0,
                    None,
                );
            }
        }
    }
    Evidences {
        paths: KBestPaths::new(dag, 0, 1),
        labels,
        seen: HashSet::new(),
    }
}

/// The `k` most probable evidences of `o`.
pub fn top_k_evidences(
    t: &Transducer,
    m: &MarkovSequence,
    o: &[SymbolId],
    k: usize,
) -> Result<Vec<Evidence>, EngineError> {
    Ok(enumerate_evidences(t, m, o)?.take(k).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::Alphabet;
    use transmark_markov::support::support;
    use transmark_markov::MarkovSequenceBuilder;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    /// Brute-force evidences: all worlds transduced to `o`, sorted by
    /// decreasing probability.
    fn brute_evidences(
        t: &Transducer,
        m: &MarkovSequence,
        o: &[SymbolId],
    ) -> Vec<(Vec<SymbolId>, f64)> {
        let mut v: Vec<(Vec<SymbolId>, f64)> = support(m)
            .into_iter()
            .filter(|(s, _)| t.transduce_all(s).iter().any(|out| out == o))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        v
    }

    fn check(t: &Transducer, m: &MarkovSequence, o: &[SymbolId]) {
        let got: Vec<_> = enumerate_evidences(t, m, o).unwrap().collect();
        let want = brute_evidences(t, m, o);
        assert_eq!(got.len(), want.len(), "evidence count for {o:?}");
        // Same multiset of worlds; non-increasing probabilities that match.
        let mut prev = f64::INFINITY;
        for ev in &got {
            assert!(ev.log_prob <= prev + 1e-12);
            prev = ev.log_prob;
            let p = m.string_probability(&ev.world).unwrap();
            assert!((p - ev.prob()).abs() < 1e-12);
            assert!(t.transduce_all(&ev.world).iter().any(|out| out == o));
        }
        let mut gs: Vec<_> = got.iter().map(|e| e.world.clone()).collect();
        let mut ws: Vec<_> = want.iter().map(|(w, _)| w.clone()).collect();
        gs.sort();
        ws.sort();
        assert_eq!(gs, ws);
    }

    #[test]
    fn hospital_evidences_of_12_are_s_t_u() {
        // Use the paper's own example through the core crate's test-only
        // reconstruction: build it inline to avoid a dev-dependency cycle.
        // Simpler: a toy machine with known evidence sets.
        let alphabet = Alphabet::of_chars("ab");
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 3)
            .initial(sym(0), 0.5)
            .initial(sym(1), 0.5)
            .transition(0, sym(0), sym(0), 0.9)
            .transition(0, sym(0), sym(1), 0.1)
            .transition(0, sym(1), sym(0), 0.5)
            .transition(0, sym(1), sym(1), 0.5)
            .transition(1, sym(0), sym(1), 1.0)
            .transition(1, sym(1), sym(1), 1.0)
            .build()
            .unwrap();
        // Collapse both symbols to "z": all worlds are evidences of "zzz".
        let out = Alphabet::of_chars("z");
        let mut b = Transducer::builder(alphabet, out.clone());
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, sym(s), q, &[out.sym("z")]).unwrap();
        }
        let t = b.build().unwrap();
        let o = vec![out.sym("z"); 3];
        check(&t, &m, &o);
        // Top evidence is the Viterbi string.
        let top = enumerate_evidences(&t, &m, &o).unwrap().next().unwrap();
        let (viterbi, p) = m.most_likely_string();
        assert_eq!(top.world, viterbi);
        assert!((top.prob() - p).abs() < 1e-12);
    }

    #[test]
    fn nondeterministic_machines_dedupe_worlds() {
        // Suffix guesser: a world can emit the same output via different
        // runs only for different outputs here, but the all-skip vs copy
        // paths can coincide on output ε… build a machine with genuinely
        // duplicate (world, run) pairs for one output.
        let alphabet = Alphabet::of_chars("ab");
        let mut b = Transducer::builder(alphabet.clone(), alphabet.clone());
        let q0 = b.add_state(true);
        let q1 = b.add_state(true);
        // Two parallel edges with the same emission: every world has two
        // accepting runs emitting the same output.
        for s in 0..2u32 {
            b.add_transition(q0, sym(s), q0, &[sym(s)]).unwrap();
            b.add_transition(q0, sym(s), q1, &[sym(s)]).unwrap();
            b.add_transition(q1, sym(s), q0, &[sym(s)]).unwrap();
            b.add_transition(q1, sym(s), q1, &[sym(s)]).unwrap();
        }
        let t = b.build().unwrap();
        let m = MarkovSequenceBuilder::new(alphabet, 2)
            .uniform_all()
            .build()
            .unwrap();
        // Output "ab" has exactly one world, despite 4 runs.
        let o = vec![sym(0), sym(1)];
        let evs: Vec<_> = enumerate_evidences(&t, &m, &o).unwrap().collect();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].world, o);
        check(&t, &m, &o);
    }

    #[test]
    fn non_answers_have_no_evidence() {
        let alphabet = Alphabet::of_chars("a");
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 2)
            .uniform_all()
            .build()
            .unwrap();
        let mut b = Transducer::builder(alphabet.clone(), alphabet);
        let q = b.add_state(true);
        b.add_transition(q, sym(0), q, &[sym(0)]).unwrap();
        let t = b.build().unwrap();
        assert_eq!(enumerate_evidences(&t, &m, &[sym(0)]).unwrap().count(), 0);
        assert_eq!(
            top_k_evidences(&t, &m, &[sym(0), sym(0)], 5).unwrap().len(),
            1
        );
    }
}
