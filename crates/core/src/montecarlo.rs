//! Monte-Carlo confidence estimation.
//!
//! For nondeterministic, non-uniform transducers, exact confidence is
//! FP^#P-complete (Prop. 4.7, Thm 4.9), and the paper leaves the existence
//! of an FPRAS open (it would settle a long-standing question about
//! counting strings in regular languages \[28\]). What *is* easy is an
//! additive-error estimator: `conf(o) = E[ 1{S →[A^ω]→ o} ]`, so sampling
//! worlds from `μ` and testing membership (a polynomial reachability DP
//! per sample) gives an unbiased estimate with `O(1/√N)` standard error.

use rand::{Rng, RngExt as _};
use transmark_automata::{StateId, SymbolId};
use transmark_kernel::{advance_string, count_layers, Bool, StepGraph, Workspace};
use transmark_markov::{MarkovSequence, StepSource};

use crate::confidence::check_source_inputs;
use crate::error::EngineError;
use crate::kernelize::output_step_graph;
use crate::transducer::Transducer;

/// An estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// The sample mean of the membership indicator.
    pub estimate: f64,
    /// The standard error `√(p̂(1-p̂)/N)`.
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: usize,
}

/// Tests whether some accepting run of `A^ω` on the concrete string `s`
/// emits exactly `o` — a boolean DP over (state, output position),
/// `O(|s|·|Q|·|o|·b)`.
pub fn transduces_to(t: &Transducer, s: &[SymbolId], o: &[SymbolId]) -> bool {
    let graph = output_step_graph(t, o);
    let mut ws = Workspace::new();
    transduces_to_with(t, &graph, &mut ws, s, o.len())
}

/// [`transduces_to`] against a prebuilt output step graph and workspace —
/// the sampling loop reuses one graph across tens of thousands of worlds
/// instead of re-deriving every emission/output-prefix check per sample.
pub(crate) fn transduces_to_with(
    t: &Transducer,
    graph: &StepGraph,
    ws: &mut Workspace<bool>,
    s: &[SymbolId],
    o_len: usize,
) -> bool {
    let nq = t.n_states();
    let width = o_len + 1;
    ws.reset(nq * width, false);
    ws.cur_mut()[t.initial().index() * width] = true;
    for &sym in s {
        ws.clear_next(false);
        let (cur, next) = ws.buffers();
        advance_string::<Bool>(graph, sym.0, cur, next);
        ws.swap();
    }
    count_layers(s.len() as u64);
    let cur = ws.cur();
    (0..nq).any(|q| t.is_accepting(StateId(q as u32)) && cur[q * width + o_len])
}

/// Estimates `Pr(S →[A^ω]→ o)` from `samples` independent worlds.
///
/// Legacy convenience routing through the prepared API
/// ([`BoundQuery::estimate_confidence`](crate::plan::BoundQuery::estimate_confidence));
/// the draw sequence for a given `rng` state is identical.
pub fn estimate_confidence<R: Rng + ?Sized>(
    t: &Transducer,
    m: &MarkovSequence,
    o: &[SymbolId],
    samples: usize,
    rng: &mut R,
) -> Result<McEstimate, EngineError> {
    crate::plan::prepare(t)
        .bind(m)?
        .estimate_confidence(o, samples, rng)
}

/// The sampling loop over an optionally precompiled membership graph.
/// `graph` must be `Some(output_step_graph(t, o))` exactly when `t` is
/// nondeterministic (the deterministic fast path needs no graph).
pub(crate) fn estimate_confidence_impl<R: Rng + ?Sized>(
    t: &Transducer,
    m: &MarkovSequence,
    graph: Option<&StepGraph>,
    o: &[SymbolId],
    samples: usize,
    rng: &mut R,
) -> McEstimate {
    assert!(samples > 0, "at least one sample is required");
    let mut hits = 0usize;
    let mut ws: Workspace<bool> = Workspace::new();
    for _ in 0..samples {
        let s = m.sample(rng);
        let hit = match graph {
            None => t.transduce_deterministic(&s).as_deref() == Some(o),
            Some(g) => transduces_to_with(t, g, &mut ws, &s, o.len()),
        };
        hits += usize::from(hit);
    }
    let p = hits as f64 / samples as f64;
    McEstimate {
        estimate: p,
        std_error: (p * (1.0 - p) / samples as f64).sqrt(),
        samples,
    }
}

/// One categorical draw from a dense probability row: the same
/// walk-and-subtract selection `MarkovSequence::sample` performs (zero
/// entries absorb none of the uniform draw; rounding past the end falls
/// back to the last positive entry). Consumes exactly one `rng.random()`.
fn draw_row<R: Rng + ?Sized>(row: &[f64], rng: &mut R) -> usize {
    let mut u: f64 = rng.random();
    let mut last = None;
    for (to, &p) in row.iter().enumerate() {
        if p > 0.0 {
            last = Some(to);
            if u < p {
                return to;
            }
            u -= p;
        }
    }
    last.expect("distribution has positive mass")
}

/// [`estimate_confidence`] over a streamed source: all `samples` worlds
/// advance together, one pulled layer at a time, with an online Boolean
/// membership DP per world — memory is `O(samples · |Q| · |o|)`,
/// independent of `n`.
///
/// The estimator is the same unbiased mean-of-indicators, but the RNG
/// draw order is necessarily *sample-major per layer* (world `j`'s `i`-th
/// symbol is drawn after every world's `i−1`-th), whereas
/// [`estimate_confidence`] draws each world to completion before the
/// next. For a given seed the two therefore produce different (equally
/// valid) estimates; this function itself is deterministic given the
/// seed, and bit-identical across in-memory, text, and binary sources.
pub fn estimate_confidence_source<S: StepSource, R: Rng + ?Sized>(
    t: &Transducer,
    src: &mut S,
    o: &[SymbolId],
    samples: usize,
    rng: &mut R,
) -> Result<McEstimate, EngineError> {
    check_source_inputs(t, src, Some(o))?;
    assert!(samples > 0, "at least one sample is required");
    let graph = output_step_graph(t, o);
    let k = src.alphabet().len();
    let nq = t.n_states();
    let width = o.len() + 1;
    let sz = nq * width;

    // World j's current node, and its membership-DP layer (the same
    // Boolean (state, output position) reachability `transduces_to` runs,
    // folded online instead of over a stored string).
    let mut cur_sym: Vec<usize> = Vec::with_capacity(samples);
    let mut states = vec![false; samples * sz];
    let mut next_buf = vec![false; sz];
    let mut seed_buf = vec![false; sz];
    for j in 0..samples {
        let first = draw_row(src.initial(), rng);
        cur_sym.push(first);
        seed_buf.fill(false);
        seed_buf[t.initial().index() * width] = true;
        next_buf.fill(false);
        advance_string::<Bool>(&graph, first as u32, &seed_buf, &mut next_buf);
        states[j * sz..(j + 1) * sz].copy_from_slice(&next_buf);
    }
    count_layers(samples as u64);
    while let Some(matrix) = src.next_step()? {
        for j in 0..samples {
            let from = cur_sym[j];
            let to = draw_row(&matrix[from * k..(from + 1) * k], rng);
            cur_sym[j] = to;
            next_buf.fill(false);
            advance_string::<Bool>(
                &graph,
                to as u32,
                &states[j * sz..(j + 1) * sz],
                &mut next_buf,
            );
            states[j * sz..(j + 1) * sz].copy_from_slice(&next_buf);
        }
        count_layers(samples as u64);
    }
    let mut hits = 0usize;
    for j in 0..samples {
        let st = &states[j * sz..(j + 1) * sz];
        let hit = (0..nq).any(|q| t.is_accepting(StateId(q as u32)) && st[q * width + o.len()]);
        hits += usize::from(hit);
    }
    let p = hits as f64 / samples as f64;
    Ok(McEstimate {
        estimate: p,
        std_error: (p * (1.0 - p) / samples as f64).sqrt(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_automata::Alphabet;
    use transmark_markov::MarkovSequenceBuilder;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    /// Nondeterministic suffix-copier over {a,b} (see transducer tests).
    fn suffix_guesser() -> Transducer {
        let a = Alphabet::of_chars("ab");
        let mut b = Transducer::builder(a.clone(), a);
        let skip = b.add_state(true);
        let copy = b.add_state(true);
        b.set_initial(skip);
        for s in 0..2u32 {
            b.add_transition(skip, sym(s), skip, &[]).unwrap();
            b.add_transition(skip, sym(s), copy, &[sym(s)]).unwrap();
            b.add_transition(copy, sym(s), copy, &[sym(s)]).unwrap();
        }
        b.build().unwrap()
    }

    fn uniform_chain(n: usize) -> MarkovSequence {
        let a = Alphabet::of_chars("ab");
        MarkovSequenceBuilder::new(a, n)
            .uniform_all()
            .build()
            .unwrap()
    }

    #[test]
    fn transduces_to_agrees_with_definition() {
        let t = suffix_guesser();
        let s = [sym(0), sym(1), sym(0)];
        let all = t.transduce_all(&s);
        // Check several candidate outputs.
        for o in [
            vec![],
            vec![sym(0)],
            vec![sym(1), sym(0)],
            vec![sym(0), sym(1), sym(0)],
            vec![sym(1)],
        ] {
            assert_eq!(transduces_to(&t, &s, &o), all.contains(&o), "output {o:?}");
        }
    }

    #[test]
    fn estimate_converges_to_brute_force() {
        let t = suffix_guesser();
        let m = uniform_chain(3);
        let o = vec![sym(0)]; // suffix "a"
        let exact = crate::brute::evaluate(&t, &m).unwrap()[&o];
        let mut rng = StdRng::seed_from_u64(99);
        let est = estimate_confidence(&t, &m, &o, 20_000, &mut rng).unwrap();
        assert!(
            (est.estimate - exact).abs() < 4.0 * est.std_error + 1e-9,
            "estimate {} vs exact {exact} (se {})",
            est.estimate,
            est.std_error
        );
    }

    #[test]
    fn deterministic_fast_path_matches() {
        // Identity transducer (deterministic).
        let a = Alphabet::of_chars("ab");
        let mut b = Transducer::builder(a.clone(), a);
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, sym(s), q, &[sym(s)]).unwrap();
        }
        let t = b.build().unwrap();
        let m = uniform_chain(2);
        let mut rng = StdRng::seed_from_u64(7);
        let o = vec![sym(0), sym(1)];
        let est = estimate_confidence(&t, &m, &o, 20_000, &mut rng).unwrap();
        assert!((est.estimate - 0.25).abs() < 0.02);
    }
}
