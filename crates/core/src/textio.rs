//! A plain-text interchange format for transducers.
//!
//! Companion to [`transmark_markov::textio`]; fixes a file format so
//! queries can be stored and fed to the CLI:
//!
//! ```text
//! transducer v1
//! input-alphabet r1a r1b la lb
//! output-alphabet 1 2 λ
//! states 4
//! initial 0
//! accepting 1 2 3
//! # from input-symbol to emission…
//! edge 0 r1a 0
//! edge 0 la 1
//! edge 1 r1a 2 1
//! ```
//!
//! * `edge q σ q' [d…]` adds `q' ∈ δ(q, σ)` emitting the listed output
//!   symbols (none = ε);
//! * `#` comments and blank lines are ignored;
//! * deterministic emission and id ranges are validated by the
//!   [`TransducerBuilder`], so a file that parses is a valid machine.

use std::fmt::Write as _;
use std::sync::Arc;

use transmark_automata::{Alphabet, StateId};

use crate::error::EngineError;
use crate::transducer::{Transducer, TransducerBuilder};

pub use transmark_markov::textio::ParseError;

/// Everything that can go wrong reading a transducer file.
#[derive(Debug)]
pub enum TextIoError {
    /// Syntactic problem.
    Parse(ParseError),
    /// The parsed data is not a valid transducer.
    Model(EngineError),
}

impl std::fmt::Display for TextIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextIoError::Parse(e) => write!(f, "{e}"),
            TextIoError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TextIoError {}

impl From<EngineError> for TextIoError {
    fn from(e: EngineError) -> Self {
        TextIoError::Model(e)
    }
}

fn err(line: usize, message: impl Into<String>) -> TextIoError {
    TextIoError::Parse(ParseError {
        line,
        message: message.into(),
    })
}

/// Serializes a transducer to the v1 text format.
pub fn to_text(t: &Transducer) -> String {
    let mut out = String::new();
    out.push_str("transducer v1\n");
    out.push_str("input-alphabet");
    for (_, name) in t.input_alphabet().iter() {
        let _ = write!(out, " {name}");
    }
    out.push_str("\noutput-alphabet");
    for (_, name) in t.output_alphabet().iter() {
        let _ = write!(out, " {name}");
    }
    let _ = write!(
        out,
        "\nstates {}\ninitial {}\naccepting",
        t.n_states(),
        t.initial().0
    );
    for q in 0..t.n_states() {
        if t.is_accepting(StateId(q as u32)) {
            let _ = write!(out, " {q}");
        }
    }
    out.push('\n');
    for (from, sym, e) in t.transitions() {
        let _ = write!(
            out,
            "edge {} {} {}",
            from.0,
            t.input_alphabet().name(sym),
            e.target.0
        );
        for &d in t.emission(e.emission) {
            let _ = write!(out, " {}", t.output_alphabet().name(d));
        }
        out.push('\n');
    }
    out
}

/// Parses the v1 text format.
pub fn from_text(text: &str) -> Result<Transducer, TextIoError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .peekable();

    let (ln, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if header != "transducer v1" {
        return Err(err(
            ln,
            format!("expected \"transducer v1\", found {header:?}"),
        ));
    }

    let mut take_alphabet = |prefix: &str| -> Result<Arc<Alphabet>, TextIoError> {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| err(0, format!("missing \"{prefix}\" line")))?;
        let body = line
            .strip_prefix(prefix)
            .ok_or_else(|| err(ln, format!("expected \"{prefix} <names…>\"")))?;
        let names: Vec<&str> = body.split_whitespace().collect();
        if names.is_empty() {
            return Err(err(ln, format!("{prefix} must have at least one symbol")));
        }
        let a = Alphabet::from_names(names.iter().copied());
        if a.len() != names.len() {
            return Err(err(ln, format!("duplicate names in {prefix}")));
        }
        Ok(Arc::new(a))
    };
    let input = take_alphabet("input-alphabet")?;
    let output = take_alphabet("output-alphabet")?;

    let (ln, states_line) = lines.next().ok_or_else(|| err(0, "missing states line"))?;
    let n_states: usize = states_line
        .strip_prefix("states")
        .map(str::trim)
        .ok_or_else(|| err(ln, "expected \"states <n>\""))?
        .parse()
        .map_err(|e| err(ln, format!("bad state count: {e}")))?;

    let (ln, init_line) = lines.next().ok_or_else(|| err(0, "missing initial line"))?;
    let initial: usize = init_line
        .strip_prefix("initial")
        .map(str::trim)
        .ok_or_else(|| err(ln, "expected \"initial <q>\""))?
        .parse()
        .map_err(|e| err(ln, format!("bad initial state: {e}")))?;

    let (ln, acc_line) = lines
        .next()
        .ok_or_else(|| err(0, "missing accepting line"))?;
    let acc_body = acc_line
        .strip_prefix("accepting")
        .ok_or_else(|| err(ln, "expected \"accepting <q…>\""))?;
    let accepting: Vec<usize> = acc_body
        .split_whitespace()
        .map(str::parse)
        .collect::<Result<_, _>>()
        .map_err(|e| err(ln, format!("bad accepting state: {e}")))?;

    let mut b = TransducerBuilder::new(Arc::clone(&input), Arc::clone(&output));
    for _ in 0..n_states {
        b.add_state(false);
    }
    if initial >= n_states {
        return Err(err(ln, format!("initial state {initial} out of range")));
    }
    b.set_initial(StateId(initial as u32));
    for q in accepting {
        if q >= n_states {
            return Err(err(ln, format!("accepting state {q} out of range")));
        }
        b.set_accepting(StateId(q as u32), true);
    }

    for (ln, line) in lines {
        let body = line
            .strip_prefix("edge")
            .ok_or_else(|| err(ln, format!("expected \"edge …\", found {line:?}")))?;
        let mut parts = body.split_whitespace();
        let from: usize = parts
            .next()
            .ok_or_else(|| err(ln, "edge missing source state"))?
            .parse()
            .map_err(|e| err(ln, format!("bad source state: {e}")))?;
        let sym_name = parts
            .next()
            .ok_or_else(|| err(ln, "edge missing input symbol"))?;
        let sym = input
            .get(sym_name)
            .ok_or_else(|| err(ln, format!("unknown input symbol {sym_name:?}")))?;
        let to: usize = parts
            .next()
            .ok_or_else(|| err(ln, "edge missing target state"))?
            .parse()
            .map_err(|e| err(ln, format!("bad target state: {e}")))?;
        let emission: Vec<_> = parts
            .map(|d| {
                output
                    .get(d)
                    .ok_or_else(|| err(ln, format!("unknown output symbol {d:?}")))
            })
            .collect::<Result<_, _>>()?;
        if from >= n_states || to >= n_states {
            return Err(err(ln, "edge state out of range"));
        }
        b.add_transition(StateId(from as u32), sym, StateId(to as u32), &emission)?;
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn round_trip_preserves_machine() {
        let mut rng = StdRng::seed_from_u64(13);
        for class in [
            TransducerClass::General,
            TransducerClass::Deterministic,
            TransducerClass::Mealy,
            TransducerClass::Projector,
        ] {
            let t = random_transducer(
                &RandomTransducerSpec {
                    class,
                    ..RandomTransducerSpec::default()
                },
                &mut rng,
            );
            let back = from_text(&to_text(&t)).expect("round trip parses");
            assert_eq!(back.n_states(), t.n_states());
            assert_eq!(back.initial(), t.initial());
            let ta: Vec<_> = t.transitions().collect();
            let tb: Vec<_> = back.transitions().collect();
            assert_eq!(ta.len(), tb.len());
            for ((f1, s1, e1), (f2, s2, e2)) in ta.iter().zip(tb.iter()) {
                assert_eq!((f1, s1, e1.target), (f2, s2, e2.target));
                assert_eq!(t.emission(e1.emission), back.emission(e2.emission));
            }
            for q in 0..t.n_states() {
                assert_eq!(
                    t.is_accepting(StateId(q as u32)),
                    back.is_accepting(StateId(q as u32))
                );
            }
        }
    }

    #[test]
    fn hand_written_file_parses() {
        let text = "\n# room change detector\ntransducer v1\ninput-alphabet a b\noutput-alphabet x\nstates 2\ninitial 0\naccepting 0 1\nedge 0 a 0\nedge 0 b 1 x\nedge 1 b 1\nedge 1 a 0 x\n";
        let t = from_text(text).unwrap();
        assert_eq!(t.n_states(), 2);
        assert!(t.is_deterministic());
        let out = t
            .transduce_deterministic(&[
                t.input_alphabet().sym("a"),
                t.input_alphabet().sym("b"),
                t.input_alphabet().sym("b"),
            ])
            .unwrap();
        assert_eq!(t.render_output(&out, ""), "x");
    }

    #[test]
    fn errors_are_located() {
        assert!(matches!(from_text(""), Err(TextIoError::Parse(_))));
        let bad_edge = "transducer v1\ninput-alphabet a\noutput-alphabet x\nstates 1\ninitial 0\naccepting 0\nedge 0 z 0\n";
        match from_text(bad_edge) {
            Err(TextIoError::Parse(e)) => {
                assert_eq!(e.line, 7);
                assert!(e.message.contains("unknown input symbol"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Conflicting emissions are a model error.
        let conflict = "transducer v1\ninput-alphabet a\noutput-alphabet x\nstates 1\ninitial 0\naccepting 0\nedge 0 a 0 x\nedge 0 a 0\n";
        assert!(matches!(from_text(conflict), Err(TextIoError::Model(_))));
    }
}
