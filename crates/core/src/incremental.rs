//! Incremental streaming state: checkpointable query sessions and
//! O(window²)-per-tick sliding windows.
//!
//! The streaming passes in this crate historically came in one shape:
//! fold left-to-right, and if you need a different view of the stream
//! (restart after a disconnect, slide a window), rewind the source and
//! recompute. This module makes the *state* of a streamed evaluation
//! first-class instead:
//!
//! * [`EventSession`] — the acceptance fold behind
//!   [`crate::streaming::EventMonitor`] with suspend/resume: serialize to
//!   a versioned [`StreamCheckpoint`] blob mid-stream, resume later (in
//!   another process) and continue **bit-identically** — the blob records
//!   the determinized subsets in discovery order, so resumed reductions
//!   accumulate in exactly the original order.
//! * [`ConfidenceSession`] — the streamed `Pr(S →[A^ω]→ o)` evaluation as
//!   an explicit seed/step/finish machine over every [`PlanKind`] route.
//!   [`crate::plan::SourceBoundQuery::confidence`] is now a thin driver
//!   around it, and checkpoint/resume round-trips bit-identically on all
//!   four routes.
//! * [`SlidingWindowQuery`] — `Pr(window of the last w positions ∈ L(A))`
//!   at every tick. Each step's `|Σ|²` matrix lifts to an `m × m` operator
//!   on the scan state space (see [`crate::scan`]); a two-stack
//!   [`SlidingProduct`] keeps the product of the operators inside the
//!   window with amortized **one composition per tick**, so sliding the
//!   window never rewinds the source — the `dataplane.rewinds_avoided`
//!   counter tallies every slide that would have been a rewind+recompute
//!   under the old scheme. Window-start mass is a ring of node marginals
//!   (O(w·|Σ|) memory, O(|Σ|²) advance per tick).
//!
//! # Numerics contract
//!
//! Checkpoint/resume of [`EventSession`] and [`ConfidenceSession`] is
//! bit-identical to the uninterrupted run: the serialized state *is* the
//! fold state, and subset re-interning reproduces id order. The sliding
//! window inherits the scan path's documented tolerance instead: operator
//! composition reassociates the per-step sums, so a window probability
//! agrees with a from-scratch recompute of the same window to a relative
//! `1e-12`, not bitwise (same contract as `Strategy::Scan` vs. the fold).
//!
//! # Checkpoint wire format
//!
//! `"TMKC" | version u16 | kind u8 | fingerprint u64 | position u64 |
//! payload…`, all little-endian. `fingerprint` ties the blob to the query
//! structure it was suspended from; `position` is the number of
//! transition matrices consumed (= the stream layer offset to resume
//! from). Truncated or corrupted blobs decode to
//! [`EngineError::BadCheckpoint`], never a panic.

use std::collections::VecDeque;
use std::sync::Arc;

use transmark_automata::{BitSet, StateId};
use transmark_automata::{Nfa, SymbolId};
use transmark_kernel::{
    advance, advance_filtered, count_layers, LayerCsr, Neumaier, Prob, SlidingProduct,
    StepOperator, SubsetLayer,
};
use transmark_markov::{MarkovSequence, StepSource};

use crate::confidence::{self, AcceptanceFold};
use crate::error::EngineError;
use crate::plan::{PlanKind, PreparedQuery};
use crate::scan::ScanDfa;

/// Magic prefix of every checkpoint blob.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"TMKC";
/// Current checkpoint wire version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Lifted-state budget for the sliding window's upfront determinization
/// (same cap family as the scan strategy's `MATRIX_STATE_CAP`; the window
/// keeps `O(w)` suffix-product operators of `m²` cells each).
const WINDOW_STATE_CAP: usize = 4096;

/// Which session a checkpoint blob suspends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// An [`EventSession`] / [`crate::streaming::EventMonitor`].
    Event,
    /// A [`ConfidenceSession`].
    Confidence,
    /// A [`WindowSession`].
    Window,
}

impl CheckpointKind {
    fn code(self) -> u8 {
        match self {
            CheckpointKind::Event => 1,
            CheckpointKind::Confidence => 2,
            CheckpointKind::Window => 3,
        }
    }

    fn from_code(c: u8) -> Result<Self, EngineError> {
        match c {
            1 => Ok(CheckpointKind::Event),
            2 => Ok(CheckpointKind::Confidence),
            3 => Ok(CheckpointKind::Window),
            _ => Err(EngineError::BadCheckpoint(format!(
                "unknown checkpoint kind {c}"
            ))),
        }
    }
}

/// The decoded header of a checkpoint blob — enough to route it without
/// rebuilding the query (the serve layer and `tmk` use this to validate
/// and to compute the stream byte offset to resume from).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCheckpoint {
    /// Which session kind the blob suspends.
    pub kind: CheckpointKind,
    /// Structural fingerprint of the suspended query.
    pub fingerprint: u64,
    /// Transition matrices consumed before suspension (= the stream layer
    /// offset to resume from).
    pub position: u64,
}

impl StreamCheckpoint {
    /// Decodes a blob's header without restoring any session state.
    pub fn inspect(blob: &[u8]) -> Result<StreamCheckpoint, EngineError> {
        let mut r = ByteReader::new(blob);
        r.expect_magic()?;
        let kind = CheckpointKind::from_code(r.get_u8()?)?;
        let fingerprint = r.get_u64()?;
        let position = r.get_u64()?;
        Ok(StreamCheckpoint {
            kind,
            fingerprint,
            position,
        })
    }
}

// ---------------------------------------------------------------------------
// Little-endian blob codec
// ---------------------------------------------------------------------------

/// Appends little-endian primitives to a growing blob.
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn envelope(kind: CheckpointKind, fingerprint: u64, position: u64) -> ByteWriter {
        let mut w = ByteWriter {
            buf: Vec::with_capacity(64),
        };
        w.buf.extend_from_slice(&CHECKPOINT_MAGIC);
        w.buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        w.put_u8(kind.code());
        w.put_u64(fingerprint);
        w.put_u64(position);
        w
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads little-endian primitives back out of a blob; every read past the
/// end is a loud [`EngineError::BadCheckpoint`], never a panic.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        if self.buf.len() - self.at < n {
            return Err(EngineError::BadCheckpoint(format!(
                "truncated blob: needed {n} bytes at offset {}, have {}",
                self.at,
                self.buf.len() - self.at
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub(crate) fn get_u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn get_u32(&mut self) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn get_u64(&mut self) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn get_f64(&mut self) -> Result<f64, EngineError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an element count and rejects it unless `count ·
    /// min_elem_bytes` still fits in the unread remainder — a corrupted
    /// length then errors instead of attempting a giant allocation.
    pub(crate) fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, EngineError> {
        let n = self.get_u64()? as usize;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|total| total > self.buf.len() - self.at)
        {
            return Err(EngineError::BadCheckpoint(format!(
                "implausible element count {n} at offset {}",
                self.at
            )));
        }
        Ok(n)
    }

    fn expect_magic(&mut self) -> Result<(), EngineError> {
        if self.take(4)? != CHECKPOINT_MAGIC {
            return Err(EngineError::BadCheckpoint("bad magic".into()));
        }
        let version = u16::from_le_bytes(self.take(2)?.try_into().unwrap());
        if version != CHECKPOINT_VERSION {
            return Err(EngineError::BadCheckpoint(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            )));
        }
        Ok(())
    }
}

/// Opens a blob, validating magic/version/kind/fingerprint, and returns
/// the payload reader plus the recorded position.
fn open_envelope<'a>(
    blob: &'a [u8],
    kind: CheckpointKind,
    fingerprint: u64,
) -> Result<(ByteReader<'a>, u64), EngineError> {
    let mut r = ByteReader::new(blob);
    r.expect_magic()?;
    let got_kind = CheckpointKind::from_code(r.get_u8()?)?;
    if got_kind != kind {
        return Err(EngineError::BadCheckpoint(format!(
            "checkpoint kind {got_kind:?} cannot resume a {kind:?} session"
        )));
    }
    let got_fp = r.get_u64()?;
    if got_fp != fingerprint {
        return Err(EngineError::BadCheckpoint(format!(
            "fingerprint {got_fp:#x} does not match this query ({fingerprint:#x})"
        )));
    }
    let position = r.get_u64()?;
    Ok((r, position))
}

fn write_f64s(w: &mut ByteWriter, v: &[f64]) {
    w.put_u64(v.len() as u64);
    for &x in v {
        w.put_f64(x);
    }
}

fn read_f64s(r: &mut ByteReader<'_>, expected_len: usize) -> Result<Vec<f64>, EngineError> {
    let n = r.get_count(8)?;
    if n != expected_len {
        return Err(EngineError::BadCheckpoint(format!(
            "vector length {n} does not match expected {expected_len}"
        )));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r.get_f64()?);
    }
    Ok(v)
}

fn write_subset_layer(w: &mut ByteWriter, layer: &SubsetLayer<(u32, BitSet)>) {
    let entries = layer.sorted();
    w.put_u64(entries.len() as u64);
    for ((node, set), p) in entries {
        w.put_u32(node);
        w.put_u32(set.capacity() as u32);
        let bits: Vec<usize> = set.iter().collect();
        w.put_u32(bits.len() as u32);
        for b in bits {
            w.put_u32(b as u32);
        }
        w.put_f64(p);
    }
}

fn read_subset_layer(
    r: &mut ByteReader<'_>,
    n_nodes: usize,
    cap: usize,
) -> Result<SubsetLayer<(u32, BitSet)>, EngineError> {
    let n = r.get_count(17)?;
    let mut layer: SubsetLayer<(u32, BitSet)> = SubsetLayer::with_capacity(n);
    for _ in 0..n {
        let node = r.get_u32()?;
        if node as usize >= n_nodes {
            return Err(EngineError::BadCheckpoint(format!(
                "layer node {node} out of range"
            )));
        }
        let got_cap = r.get_u32()? as usize;
        if got_cap != cap.max(1) {
            return Err(EngineError::BadCheckpoint(format!(
                "subset capacity {got_cap} does not match query capacity {cap}"
            )));
        }
        let len = r.get_u32()? as usize;
        let mut bits = Vec::with_capacity(len.min(got_cap));
        for _ in 0..len {
            let b = r.get_u32()? as usize;
            if b >= got_cap {
                return Err(EngineError::BadCheckpoint(format!(
                    "subset bit {b} out of capacity {got_cap}"
                )));
            }
            bits.push(b);
        }
        let p = r.get_f64()?;
        layer.add((node, BitSet::from_iter_with_capacity(got_cap, bits)), p);
    }
    Ok(layer)
}

// ---------------------------------------------------------------------------
// EventSession — the checkpointable acceptance fold
// ---------------------------------------------------------------------------

/// The streamed `Pr(S[1..t] ∈ L(A))` evaluation as a suspendable state
/// machine. [`crate::streaming::EventMonitor`] is a thin wrapper around
/// this type; use the session directly when you need
/// [`EventSession::checkpoint`] / [`EventSession::resume`].
pub struct EventSession {
    nfa: Nfa,
    fold: AcceptanceFold,
    n_symbols: usize,
    consumed: u64,
}

impl EventSession {
    /// Starts a session from the stream's `μ₀→` distribution.
    pub fn start(nfa: Nfa, initial: &[f64]) -> Result<EventSession, EngineError> {
        if nfa.n_symbols() != initial.len() {
            return Err(EngineError::AlphabetMismatch {
                transducer: nfa.n_symbols(),
                sequence: initial.len(),
            });
        }
        let fold = AcceptanceFold::start(&nfa, initial);
        Ok(EventSession {
            n_symbols: initial.len(),
            nfa,
            fold,
            consumed: 0,
        })
    }

    /// The query automaton.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Transition matrices consumed so far.
    pub fn position(&self) -> u64 {
        self.consumed
    }

    /// Stream positions covered so far (`position() + 1`).
    pub fn positions(&self) -> usize {
        self.consumed as usize + 1
    }

    /// The current `Pr(S[1..t] ∈ L(A))`.
    pub fn probability(&self) -> f64 {
        self.fold.probability()
    }

    /// Folds in the next row-major `|Σ|²` transition matrix and returns
    /// the updated probability.
    pub fn advance(&mut self, matrix: &[f64]) -> Result<f64, EngineError> {
        let k = self.n_symbols;
        if matrix.len() != k * k {
            return Err(EngineError::AlphabetMismatch {
                transducer: k * k,
                sequence: matrix.len(),
            });
        }
        self.fold.step(&self.nfa, matrix);
        self.consumed += 1;
        Ok(self.probability())
    }

    /// Suspends the session to a versioned blob. Resuming with
    /// [`EventSession::resume`] and feeding the remaining matrices yields
    /// bit-identical probabilities to the uninterrupted run.
    pub fn checkpoint(&self) -> Vec<u8> {
        transmark_obs::counter!("checkpoint.saves").inc();
        transmark_obs::profile::instant("checkpoint.save");
        let mut w =
            ByteWriter::envelope(CheckpointKind::Event, self.nfa.fingerprint(), self.consumed);
        self.fold.save(&mut w);
        w.finish()
    }

    /// Restores a session suspended by [`EventSession::checkpoint`].
    /// `nfa` must be the same automaton (fingerprint-checked).
    pub fn resume(nfa: Nfa, blob: &[u8]) -> Result<EventSession, EngineError> {
        let (mut r, position) = open_envelope(blob, CheckpointKind::Event, nfa.fingerprint())?;
        let fold = AcceptanceFold::restore(&nfa, &mut r)?;
        transmark_obs::counter!("checkpoint.resumes").inc();
        transmark_obs::profile::instant("checkpoint.resume");
        Ok(EventSession {
            n_symbols: nfa.n_symbols(),
            nfa,
            fold,
            consumed: position,
        })
    }
}

// ---------------------------------------------------------------------------
// ConfidenceSession — streamed confidence as seed/step/finish
// ---------------------------------------------------------------------------

/// Per-[`PlanKind`] incremental state of a streamed confidence query.
enum ConfState {
    /// Thm 4.6 k-uniform: flat `(node, state)` probabilities.
    DetUniform { k: usize, cur: Vec<f64> },
    /// Thm 4.6 positional: flat `(node, state·width + j)` probabilities.
    Det {
        graph: Arc<transmark_kernel::StepGraph>,
        cur: Vec<f64>,
    },
    /// Thm 4.8: `(node, reachable-state set)` layer.
    UniformNfa {
        k: usize,
        layer: SubsetLayer<(u32, BitSet)>,
    },
    /// General exact: `(node, configuration set)` layer.
    General {
        graph: Arc<transmark_kernel::StepGraph>,
        cap: usize,
        layer: SubsetLayer<(u32, BitSet)>,
    },
}

impl ConfState {
    fn tag(&self) -> u8 {
        match self {
            ConfState::DetUniform { .. } => 1,
            ConfState::Det { .. } => 2,
            ConfState::UniformNfa { .. } => 3,
            ConfState::General { .. } => 4,
        }
    }
}

/// The streamed `Pr(S →[A^ω]→ o)` evaluation as an explicit state
/// machine: seed from the initial distribution
/// ([`PreparedQuery::begin_confidence`]), [`ConfidenceSession::step`] one
/// transition matrix at a time, [`ConfidenceSession::finish`] for the
/// probability. Every [`PlanKind`] route runs the same arithmetic in the
/// same order as the historical one-shot streamed pass, so driving a
/// session over a source is bit-identical to the old
/// `SourceBoundQuery::confidence` (which is now implemented this way).
///
/// Sessions suspend to a blob ([`ConfidenceSession::checkpoint`]) and
/// resume ([`PreparedQuery::resume_confidence`]) bit-identically: the
/// uniform routes' per-step output gating depends only on the step index,
/// which the blob records.
pub struct ConfidenceSession {
    plan: Arc<PreparedQuery>,
    o: Vec<SymbolId>,
    n_nodes: usize,
    consumed: u64,
    /// Set when a uniform route has outlived its output string (the
    /// stream is longer than `|o|/k` positions): the confidence is
    /// necessarily 0 and stepping is a no-op, mirroring the one-shot
    /// pass's upfront `o.len() != k·n` rejection.
    overrun: bool,
    state: ConfState,
    csr: LayerCsr,
    scratch: Vec<f64>,
}

fn confidence_fingerprint(plan: &PreparedQuery, o: &[SymbolId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ plan.fingerprint();
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    for &s in o {
        h ^= s.index() as u64 + 1;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (o.len() as u64)
}

impl PreparedQuery {
    /// Seeds a [`ConfidenceSession`] from a stream's `μ₀→` distribution
    /// (dense, one entry per node). Validation mirrors
    /// [`crate::confidence::check_source_inputs`].
    pub fn begin_confidence(
        self: &Arc<Self>,
        initial: &[f64],
        o: &[SymbolId],
    ) -> Result<ConfidenceSession, EngineError> {
        let t = self.transducer();
        if t.n_input_symbols() != initial.len() {
            return Err(EngineError::AlphabetMismatch {
                transducer: t.n_input_symbols(),
                sequence: initial.len(),
            });
        }
        for &d in o {
            if d.index() >= t.n_output_symbols() {
                return Err(EngineError::InvalidSymbol {
                    symbol: d.index(),
                    n_symbols: t.n_output_symbols(),
                    alphabet: "output",
                });
            }
        }
        let n_nodes = initial.len();
        let nq = t.n_states();
        let (state, overrun) = match self.kind() {
            PlanKind::DeterministicUniform { k } => {
                let mut cur = vec![0.0; n_nodes * nq];
                let overrun = o.len() < k;
                if !overrun {
                    let seed_id = self.emission_id(&o[..k]);
                    let graph = self.state_graph();
                    for (node, &p) in initial.iter().enumerate() {
                        if p > 0.0 {
                            for e in graph.edges(node as u32, t.initial().0) {
                                if e.payload == seed_id {
                                    cur[node * nq + e.to as usize] += p;
                                }
                            }
                        }
                    }
                }
                (ConfState::DetUniform { k, cur }, overrun)
            }
            PlanKind::Deterministic => {
                let graph = self.output_graph(o);
                let width = o.len() + 1;
                let nr = graph.n_rows();
                let mut cur = vec![0.0; n_nodes * nr];
                let init_row = (t.initial().index() * width) as u32;
                for (node, &p) in initial.iter().enumerate() {
                    if p > 0.0 {
                        for e in graph.edges(node as u32, init_row) {
                            cur[node * nr + e.to as usize] += p;
                        }
                    }
                }
                (ConfState::Det { graph, cur }, false)
            }
            PlanKind::UniformNfa { k } => {
                let overrun = o.len() < k;
                let layer = if overrun {
                    SubsetLayer::new()
                } else {
                    confidence::uniform_nfa_seed(
                        t,
                        self.state_graph(),
                        initial,
                        self.emission_id(&o[..k]),
                    )
                };
                (ConfState::UniformNfa { k, layer }, overrun)
            }
            PlanKind::General | PlanKind::Sproj | PlanKind::SprojIndexed => {
                let graph = self.output_graph(o);
                let width = o.len() + 1;
                let cap = (nq * width).max(1);
                let init_row = (t.initial().index() * width) as u32;
                let layer = confidence::general_seed(&graph, initial, init_row, cap);
                (ConfState::General { graph, cap, layer }, false)
            }
        };
        Ok(ConfidenceSession {
            plan: Arc::clone(self),
            o: o.to_vec(),
            n_nodes,
            consumed: 0,
            overrun,
            state,
            csr: LayerCsr::new(),
            scratch: Vec::new(),
        })
    }

    /// Restores a [`ConfidenceSession`] suspended by
    /// [`ConfidenceSession::checkpoint`]. The plan and `o` must match the
    /// suspended query (fingerprint-checked).
    pub fn resume_confidence(
        self: &Arc<Self>,
        o: &[SymbolId],
        blob: &[u8],
    ) -> Result<ConfidenceSession, EngineError> {
        let fp = confidence_fingerprint(self, o);
        let (mut r, position) = open_envelope(blob, CheckpointKind::Confidence, fp)?;
        let t = self.transducer();
        let n_nodes = r.get_u32()? as usize;
        if n_nodes != t.n_input_symbols() {
            return Err(EngineError::BadCheckpoint(format!(
                "checkpoint alphabet {n_nodes} does not match query alphabet {}",
                t.n_input_symbols()
            )));
        }
        let overrun = r.get_u8()? != 0;
        let tag = r.get_u8()?;
        let nq = t.n_states();
        let state = match (self.kind(), tag) {
            (PlanKind::DeterministicUniform { k }, 1) => ConfState::DetUniform {
                k,
                cur: read_f64s(&mut r, n_nodes * nq)?,
            },
            (PlanKind::Deterministic, 2) => {
                let graph = self.output_graph(o);
                let nr = graph.n_rows();
                ConfState::Det {
                    cur: read_f64s(&mut r, n_nodes * nr)?,
                    graph,
                }
            }
            (PlanKind::UniformNfa { k }, 3) => ConfState::UniformNfa {
                k,
                layer: read_subset_layer(&mut r, n_nodes, nq)?,
            },
            (PlanKind::General | PlanKind::Sproj | PlanKind::SprojIndexed, 4) => {
                let graph = self.output_graph(o);
                let cap = (nq * (o.len() + 1)).max(1);
                ConfState::General {
                    graph,
                    cap,
                    layer: read_subset_layer(&mut r, n_nodes, cap)?,
                }
            }
            (kind, tag) => {
                return Err(EngineError::BadCheckpoint(format!(
                    "checkpoint route tag {tag} does not match plan kind {kind:?}"
                )))
            }
        };
        transmark_obs::counter!("checkpoint.resumes").inc();
        transmark_obs::profile::instant("checkpoint.resume");
        Ok(ConfidenceSession {
            plan: Arc::clone(self),
            o: o.to_vec(),
            n_nodes,
            consumed: position,
            overrun,
            state,
            csr: LayerCsr::new(),
            scratch: Vec::new(),
        })
    }
}

impl ConfidenceSession {
    /// Transition matrices consumed so far.
    pub fn position(&self) -> u64 {
        self.consumed
    }

    /// Folds in the next row-major `|Σ|²` transition matrix.
    pub fn step(&mut self, matrix: &[f64]) -> Result<(), EngineError> {
        let n = self.n_nodes;
        if matrix.len() != n * n {
            return Err(EngineError::AlphabetMismatch {
                transducer: n * n,
                sequence: matrix.len(),
            });
        }
        let t = self.plan.transducer();
        let i = self.consumed as usize;
        match &mut self.state {
            ConfState::DetUniform { k, cur } => {
                if !self.overrun && self.o.len() < *k * (i + 2) {
                    self.overrun = true;
                }
                if !self.overrun {
                    let expected = self.plan.emission_id(&self.o[*k * (i + 1)..*k * (i + 2)]);
                    self.csr.load_dense(n, matrix);
                    self.scratch.clear();
                    self.scratch.resize(cur.len(), 0.0);
                    advance_filtered::<Prob, _>(
                        &self.csr,
                        self.plan.state_graph(),
                        expected,
                        cur,
                        &mut self.scratch,
                    );
                    std::mem::swap(cur, &mut self.scratch);
                }
            }
            ConfState::Det { graph, cur } => {
                self.csr.load_dense(n, matrix);
                self.scratch.clear();
                self.scratch.resize(cur.len(), 0.0);
                advance::<Prob, _>(&self.csr, graph, cur, &mut self.scratch);
                std::mem::swap(cur, &mut self.scratch);
            }
            ConfState::UniformNfa { k, layer } => {
                if !self.overrun && self.o.len() < *k * (i + 2) {
                    self.overrun = true;
                }
                if !self.overrun {
                    let expected = self.plan.emission_id(&self.o[*k * (i + 1)..*k * (i + 2)]);
                    let taken = std::mem::replace(layer, SubsetLayer::new());
                    *layer = confidence::uniform_nfa_step(
                        t,
                        self.plan.state_graph(),
                        taken,
                        matrix,
                        n,
                        expected,
                    );
                }
            }
            ConfState::General { graph, cap, layer } => {
                let taken = std::mem::replace(layer, SubsetLayer::new());
                *layer = confidence::general_step(graph, taken, matrix, n, *cap);
            }
        }
        self.consumed += 1;
        Ok(())
    }

    /// The confidence after the last consumed position. Reductions run in
    /// the same ascending order as the one-shot pass.
    pub fn finish(&self) -> f64 {
        count_layers(self.consumed);
        let t = self.plan.transducer();
        let nq = t.n_states();
        let n_positions = self.consumed as usize + 1;
        match &self.state {
            ConfState::DetUniform { k, cur } => {
                if self.overrun || self.o.len() != k * n_positions {
                    return 0.0;
                }
                let mut total = Neumaier::new();
                for node in 0..self.n_nodes {
                    for q in 0..nq {
                        if t.is_accepting(StateId(q as u32)) {
                            total.add(cur[node * nq + q]);
                        }
                    }
                }
                total.total()
            }
            ConfState::Det { graph, cur } => {
                let width = self.o.len() + 1;
                let nr = graph.n_rows();
                let mut total = Neumaier::new();
                for node in 0..self.n_nodes {
                    for q in 0..nq {
                        if t.is_accepting(StateId(q as u32)) {
                            total.add(cur[node * nr + q * width + self.o.len()]);
                        }
                    }
                }
                total.total()
            }
            ConfState::UniformNfa { k, layer } => {
                if self.overrun || self.o.len() != k * n_positions {
                    return 0.0;
                }
                let accepting = self.plan.accepting();
                layer.reduce(|(_, set)| set.intersects(accepting))
            }
            ConfState::General { layer, .. } => {
                let width = self.o.len() + 1;
                layer.reduce(|(_, set)| {
                    (0..nq).any(|q| {
                        t.is_accepting(StateId(q as u32)) && set.contains(q * width + self.o.len())
                    })
                })
            }
        }
    }

    /// Suspends the session to a versioned blob; resume with
    /// [`PreparedQuery::resume_confidence`].
    pub fn checkpoint(&self) -> Vec<u8> {
        transmark_obs::counter!("checkpoint.saves").inc();
        transmark_obs::profile::instant("checkpoint.save");
        let fp = confidence_fingerprint(&self.plan, &self.o);
        let mut w = ByteWriter::envelope(CheckpointKind::Confidence, fp, self.consumed);
        w.put_u32(self.n_nodes as u32);
        w.put_u8(self.overrun as u8);
        w.put_u8(self.state.tag());
        match &self.state {
            ConfState::DetUniform { cur, .. } | ConfState::Det { cur, .. } => {
                write_f64s(&mut w, cur);
            }
            ConfState::UniformNfa { layer, .. } | ConfState::General { layer, .. } => {
                write_subset_layer(&mut w, layer);
            }
        }
        w.finish()
    }
}

// ---------------------------------------------------------------------------
// SlidingWindowQuery — O(1)-composition-per-tick windows, no rewind
// ---------------------------------------------------------------------------

/// `Pr(S[t−w+1 .. t] ∈ L(A))` at every tick: the acceptance probability
/// of the window seen as a fresh sequence whose initial distribution is
/// the chain's marginal at the window start.
///
/// Built on the scan state space: the query NFA is BFS-determinized
/// upfront, each step's matrix lifts to an `m × m` [`StepOperator`], and
/// a [`SlidingProduct`] two-stack holds the product of the operators
/// inside the window — evicting the oldest step is amortized one operator
/// composition, **not** a rewind of the source (compare the old scheme:
/// rewind + replay all `w` steps). `dataplane.rewinds_avoided` counts
/// every such slide.
pub struct SlidingWindowQuery {
    nfa: Nfa,
    window: usize,
    dfa: ScanDfa,
}

impl SlidingWindowQuery {
    /// Compiles a window query. `window ≥ 1` is the number of stream
    /// positions a window covers. Fails when the lifted state space
    /// exceeds the composition budget (very large NFAs); such queries can
    /// still run windows by replay, they just don't fit the operator
    /// machinery.
    pub fn new(nfa: Nfa, window: usize) -> Result<SlidingWindowQuery, EngineError> {
        if window == 0 {
            return Err(EngineError::UnsupportedStrategy {
                strategy: "window",
                query: "zero-length window",
            });
        }
        let dfa =
            ScanDfa::build(&nfa, WINDOW_STATE_CAP).ok_or(EngineError::UnsupportedStrategy {
                strategy: "window",
                query: "sliding window (lifted state space exceeds the composition budget)",
            })?;
        Ok(SlidingWindowQuery { nfa, window, dfa })
    }

    /// The query automaton.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The window length in stream positions.
    pub fn window(&self) -> usize {
        self.window
    }

    fn fingerprint(&self) -> u64 {
        self.nfa
            .fingerprint()
            .rotate_left(7)
            .wrapping_mul(0x0000_0100_0000_01b3)
            ^ self.window as u64
    }

    /// Starts a session from the stream's `μ₀→` distribution.
    pub fn start(&self, initial: &[f64]) -> Result<WindowSession<'_>, EngineError> {
        if self.nfa.n_symbols() != initial.len() {
            return Err(EngineError::AlphabetMismatch {
                transducer: self.nfa.n_symbols(),
                sequence: initial.len(),
            });
        }
        let mut marginals = VecDeque::with_capacity(self.window);
        marginals.push_back(initial.to_vec());
        Ok(WindowSession {
            query: self,
            marginals,
            swag: SlidingProduct::new(self.dfa.m_dim()),
            consumed: 0,
        })
    }

    /// Restores a session suspended by [`WindowSession::checkpoint`].
    pub fn resume(&self, blob: &[u8]) -> Result<WindowSession<'_>, EngineError> {
        let (mut r, position) = open_envelope(blob, CheckpointKind::Window, self.fingerprint())?;
        let k = self.nfa.n_symbols();
        let md = self.dfa.m_dim();
        let n_marg = r.get_count(8 * k)?;
        if n_marg == 0 || n_marg > self.window {
            return Err(EngineError::BadCheckpoint(format!(
                "marginal ring length {n_marg} outside 1..={}",
                self.window
            )));
        }
        let mut marginals = VecDeque::with_capacity(self.window);
        for _ in 0..n_marg {
            marginals.push_back(read_f64s(&mut r, k)?);
        }
        let read_ops = |r: &mut ByteReader<'_>| -> Result<Vec<StepOperator<Prob>>, EngineError> {
            let n = r.get_count(1)?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(StepOperator::from_cells(md, read_f64s(r, md * md)?));
            }
            Ok(ops)
        };
        let front = read_ops(&mut r)?;
        let back = read_ops(&mut r)?;
        let back_agg = StepOperator::from_cells(md, read_f64s(&mut r, md * md)?);
        let swag = SlidingProduct::from_parts(md, front, back, back_agg);
        if swag.len() != n_marg - 1 {
            return Err(EngineError::BadCheckpoint(format!(
                "window product holds {} operators for {} marginals",
                swag.len(),
                n_marg
            )));
        }
        transmark_obs::counter!("checkpoint.resumes").inc();
        transmark_obs::profile::instant("checkpoint.resume");
        Ok(WindowSession {
            query: self,
            marginals,
            swag,
            consumed: position,
        })
    }

    /// The windowed probability series of a stored sequence: entry `t−1`
    /// is `Pr(S[max(1, t−w+1) .. t] ∈ L(A))` (prefix semantics until the
    /// window fills).
    pub fn series(&self, m: &MarkovSequence) -> Result<Vec<f64>, EngineError> {
        confidence::check_nfa_alphabet(&self.nfa, m.n_symbols())?;
        let mut sess = self.start(m.initial_dist())?;
        let mut out = Vec::with_capacity(m.len());
        out.push(sess.probability());
        for i in 0..m.len() - 1 {
            out.push(sess.advance(m.transition_matrix(i))?);
        }
        Ok(out)
    }

    /// [`SlidingWindowQuery::series`] over a streamed source — one
    /// forward pass, never rewinding.
    pub fn series_source<S: StepSource>(&self, src: &mut S) -> Result<Vec<f64>, EngineError> {
        confidence::check_nfa_alphabet(&self.nfa, src.alphabet().len())?;
        confidence::check_source_fresh(src)?;
        let mut sess = self.start(src.initial())?;
        let mut out = Vec::with_capacity(src.len());
        out.push(sess.probability());
        while let Some(matrix) = src.next_step()? {
            out.push(sess.advance(matrix)?);
        }
        Ok(out)
    }

    /// The from-scratch oracle a slid window is compared against (tests,
    /// benches): seed from the window-start marginal and replay the
    /// window's matrices. O(w·m·|Σ|) per call where the incremental path
    /// pays amortized one `m³` composition.
    pub fn recompute(&self, start_marginal: &[f64], matrices: &[&[f64]]) -> f64 {
        let mut cur = self.dfa.lift_initial(start_marginal);
        let mut next = vec![0.0; cur.len()];
        for m in matrices {
            self.dfa.step_vector(m, &cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        self.dfa.probability_of(&cur)
    }
}

/// A live sliding-window evaluation; see [`SlidingWindowQuery`].
pub struct WindowSession<'q> {
    query: &'q SlidingWindowQuery,
    /// Node marginals for every position currently inside the window,
    /// oldest first — `front()` is the window-start distribution.
    marginals: VecDeque<Vec<f64>>,
    /// Product of the lifted operators for the steps inside the window
    /// (`marginals.len() − 1` of them).
    swag: SlidingProduct<Prob>,
    consumed: u64,
}

impl WindowSession<'_> {
    /// Transition matrices consumed so far.
    pub fn position(&self) -> u64 {
        self.consumed
    }

    /// Stream positions currently covered by the window (`≤ w`).
    pub fn span(&self) -> usize {
        self.marginals.len()
    }

    /// The chain's marginal distribution at the window start.
    pub fn start_marginal(&self) -> &[f64] {
        self.marginals.front().expect("window ring never empty")
    }

    /// The current windowed probability.
    pub fn probability(&self) -> f64 {
        let v0 = self.query.dfa.lift_initial(self.start_marginal());
        let v = self.swag.apply_to(&v0);
        self.query.dfa.probability_of(&v)
    }

    /// Slides the window by one tick: evict the oldest step (amortized
    /// one operator composition — never a source rewind), fold in the new
    /// matrix, and return the updated probability.
    pub fn advance(&mut self, matrix: &[f64]) -> Result<f64, EngineError> {
        let k = self.query.nfa.n_symbols();
        if matrix.len() != k * k {
            return Err(EngineError::AlphabetMismatch {
                transducer: k * k,
                sequence: matrix.len(),
            });
        }
        let w = self.query.window;
        if w > 1 {
            if self.swag.len() == w - 1 {
                self.swag.evict();
            }
            self.swag.push(self.query.dfa.lift_operator(matrix));
        }
        let cur = self.marginals.back().expect("window ring never empty");
        let mut next = vec![0.0; k];
        for (node, &p) in cur.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let row = &matrix[node * k..node * k + k];
            for (slot, &pt) in next.iter_mut().zip(row) {
                if pt > 0.0 {
                    *slot += p * pt;
                }
            }
        }
        self.marginals.push_back(next);
        if self.marginals.len() > w {
            self.marginals.pop_front();
            transmark_obs::counter!("dataplane.rewinds_avoided").inc();
            transmark_obs::profile::instant("window.slide");
        }
        self.consumed += 1;
        Ok(self.probability())
    }

    /// Suspends the session to a versioned blob; resume with
    /// [`SlidingWindowQuery::resume`]. The blob records the exact
    /// two-stack state, so a resumed window's probabilities are
    /// bit-identical to the uninterrupted session's.
    pub fn checkpoint(&self) -> Vec<u8> {
        transmark_obs::counter!("checkpoint.saves").inc();
        transmark_obs::profile::instant("checkpoint.save");
        let mut w = ByteWriter::envelope(
            CheckpointKind::Window,
            self.query.fingerprint(),
            self.consumed,
        );
        w.put_u64(self.marginals.len() as u64);
        for m in &self.marginals {
            write_f64s(&mut w, m);
        }
        let (front, back, back_agg) = self.swag.parts();
        let write_ops = |w: &mut ByteWriter, ops: &[StepOperator<Prob>]| {
            w.put_u64(ops.len() as u64);
            for op in ops {
                write_f64s(w, op.cells());
            }
        };
        write_ops(&mut w, front);
        write_ops(&mut w, back);
        write_f64s(&mut w, back_agg.cells());
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};

    /// NFA over 3 symbols: has seen symbol 2.
    fn has_two() -> Nfa {
        let mut nfa = Nfa::new(3);
        let q0 = nfa.add_state(false);
        let acc = nfa.add_state(true);
        for s in 0..3u32 {
            nfa.add_transition(q0, SymbolId(s), if s == 2 { acc } else { q0 });
            nfa.add_transition(acc, SymbolId(s), acc);
        }
        nfa
    }

    fn chain(len: usize, seed: u64) -> MarkovSequence {
        let mut rng = StdRng::seed_from_u64(seed);
        random_markov_sequence(
            &RandomChainSpec {
                len,
                n_symbols: 3,
                zero_prob: 0.3,
            },
            &mut rng,
        )
    }

    #[test]
    fn event_checkpoint_roundtrip_is_bit_identical() {
        let m = chain(9, 5);
        for split in 0..m.len() - 1 {
            let mut full = EventSession::start(has_two(), m.initial_dist()).unwrap();
            let mut ck = EventSession::start(has_two(), m.initial_dist()).unwrap();
            for i in 0..split {
                full.advance(m.transition_matrix(i)).unwrap();
                ck.advance(m.transition_matrix(i)).unwrap();
            }
            let blob = ck.checkpoint();
            assert_eq!(
                StreamCheckpoint::inspect(&blob).unwrap().position,
                split as u64
            );
            let mut resumed = EventSession::resume(has_two(), &blob).unwrap();
            for i in split..m.len() - 1 {
                let a = full.advance(m.transition_matrix(i)).unwrap();
                let b = resumed.advance(m.transition_matrix(i)).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "drift after resume at {split}");
            }
        }
    }

    #[test]
    fn event_resume_rejects_wrong_query_and_garbage() {
        let m = chain(6, 6);
        let mut s = EventSession::start(has_two(), m.initial_dist()).unwrap();
        s.advance(m.transition_matrix(0)).unwrap();
        let blob = s.checkpoint();
        // Different NFA (fingerprint mismatch).
        let mut other = Nfa::new(3);
        let q = other.add_state(true);
        for sy in 0..3u32 {
            other.add_transition(q, SymbolId(sy), q);
        }
        assert!(matches!(
            EventSession::resume(other, &blob),
            Err(EngineError::BadCheckpoint(_))
        ));
        // Truncations never panic.
        for cut in 0..blob.len() {
            assert!(matches!(
                EventSession::resume(has_two(), &blob[..cut]),
                Err(EngineError::BadCheckpoint(_))
            ));
        }
    }

    #[test]
    fn window_series_matches_recompute_oracle() {
        let m = chain(20, 7);
        for w in [1usize, 2, 3, 5, 19, 40] {
            let q = SlidingWindowQuery::new(has_two(), w).unwrap();
            let series = q.series(&m).unwrap();
            assert_eq!(series.len(), m.len());
            for (t, &got) in series.iter().enumerate() {
                // Oracle: marginal at window start + replay of the window.
                let start = t + 1 - w.min(t + 1);
                let mut marg = m.initial_dist().to_vec();
                let k = m.n_symbols();
                for i in 0..start {
                    let mat = m.transition_matrix(i);
                    let mut nx = vec![0.0; k];
                    for (node, &p) in marg.iter().enumerate() {
                        if p == 0.0 {
                            continue;
                        }
                        for to in 0..k {
                            let pt = mat[node * k + to];
                            if pt > 0.0 {
                                nx[to] += p * pt;
                            }
                        }
                    }
                    marg = nx;
                }
                let mats: Vec<&[f64]> = (start..t).map(|i| m.transition_matrix(i)).collect();
                let want = q.recompute(&marg, &mats);
                let tol = 1e-12 * want.abs().max(1.0);
                assert!((got - want).abs() <= tol, "w={w} t={t}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn window_checkpoint_roundtrip_is_bit_identical() {
        let m = chain(16, 8);
        let q = SlidingWindowQuery::new(has_two(), 4).unwrap();
        for split in 0..m.len() - 1 {
            let mut full = q.start(m.initial_dist()).unwrap();
            let mut ck = q.start(m.initial_dist()).unwrap();
            for i in 0..split {
                full.advance(m.transition_matrix(i)).unwrap();
                ck.advance(m.transition_matrix(i)).unwrap();
            }
            let blob = ck.checkpoint();
            let mut resumed = q.resume(&blob).unwrap();
            assert_eq!(resumed.position(), split as u64);
            for i in split..m.len() - 1 {
                let a = full.advance(m.transition_matrix(i)).unwrap();
                let b = resumed.advance(m.transition_matrix(i)).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "window drift at split {split}");
            }
        }
    }

    #[test]
    fn window_one_is_per_position_marginal_acceptance() {
        let m = chain(10, 9);
        let q = SlidingWindowQuery::new(has_two(), 1).unwrap();
        let series = q.series(&m).unwrap();
        // w = 1: probability that the single current position's symbol is
        // accepted as a 1-length string.
        for (t, &got) in series.iter().enumerate() {
            let mut marg = m.initial_dist().to_vec();
            let k = m.n_symbols();
            for i in 0..t {
                let mat = m.transition_matrix(i);
                let mut nx = vec![0.0; k];
                for (node, &p) in marg.iter().enumerate() {
                    for to in 0..k {
                        nx[to] += p * mat[node * k + to];
                    }
                }
                marg = nx;
            }
            let want = q.recompute(&marg, &[]);
            assert!((got - want).abs() <= 1e-12, "t={t}: {got} vs {want}");
        }
    }
}
