//! Bridges from [`Transducer`] to the `transmark-kernel` step graphs.
//!
//! Every layered DP in this crate steps a layer of `(Markov node, machine
//! row)` cells, where the machine row is either a transducer state `q` or
//! a `(q, output position)` pair. These builders precompile the machine
//! side of that product — including the per-edge emission/output-prefix
//! checks the hand-rolled loops re-derived on every layer — into the
//! kernel's CSR [`StepGraph`], once per query.
//!
//! Edge insertion order matters: buckets preserve it, and the builders add
//! edges in exactly the order the hand-rolled loops visited them
//! (state-ascending, then output-position-ascending, then the transducer's
//! edge order), so migrated passes accumulate floats in the same sequence
//! and reproduce their predecessors bit for bit.

use transmark_automata::{StateId, SymbolId};
use transmark_kernel::StepGraph;

use crate::transducer::Transducer;

/// Precompiles the `(state, output position)` machine of the
/// fixed-output DPs (`confidence_deterministic`, `is_answer`,
/// `emax_of_output`, `transduces_to`, …).
///
/// Rows are `q * (|o| + 1) + j`; reading input symbol `σ` from row
/// `(q, j)` enables one edge per transducer transition `q →σ/em→ q'`
/// whose emission `em` matches `o[j..]`, targeting `(q', j + |em|)`.
/// Edge payloads carry the interned emission id (used by Viterbi
/// traceback).
pub fn output_step_graph(t: &Transducer, o: &[SymbolId]) -> StepGraph {
    let nq = t.n_states();
    let width = o.len() + 1;
    let mut b = StepGraph::builder(t.n_input_symbols(), nq * width);
    for sym in 0..t.n_input_symbols() {
        for q in 0..nq {
            for j in 0..width {
                for e in t.edges(StateId(q as u32), SymbolId(sym as u32)) {
                    let em = t.emission(e.emission);
                    if j + em.len() <= o.len() && o[j..j + em.len()] == *em {
                        b.add_edge(
                            sym as u32,
                            (q * width + j) as u32,
                            (e.target.index() * width + j + em.len()) as u32,
                            e.emission.0,
                        );
                    }
                }
            }
        }
    }
    b.build()
}

/// Precompiles the state-only machine of the output-oblivious DPs
/// (`answer_exists`, `top_by_emax`) and of the k-uniform fast paths,
/// which filter edges per step by the expected emission id instead of by
/// output position. Rows are transducer states; payloads are interned
/// emission ids.
pub fn state_step_graph(t: &Transducer) -> StepGraph {
    let nq = t.n_states();
    let mut b = StepGraph::builder(t.n_input_symbols(), nq);
    for sym in 0..t.n_input_symbols() {
        for q in 0..nq {
            for e in t.edges(StateId(q as u32), SymbolId(sym as u32)) {
                b.add_edge(sym as u32, q as u32, e.target.0, e.emission.0);
            }
        }
    }
    b.build()
}

/// Precompiles the machine of the Theorem 4.1 prefix-nonemptiness oracle:
/// rows are `(state, matched)` pairs where `matched ∈ 0..=|prefix|+1`
/// tracks how much of `prefix` the run has emitted, saturating at
/// `|prefix| + 1` once the emission strictly extends it (after which any
/// continuation is fine). A run ending in row `matched == |prefix|`
/// emitted exactly `prefix`; `matched == |prefix| + 1` emitted a proper
/// extension — so one reachability DP answers both "is the prefix an
/// answer?" and "does any answer extend it?".
pub fn prefix_step_graph(t: &Transducer, prefix: &[SymbolId]) -> StepGraph {
    let nq = t.n_states();
    let l = prefix.len();
    let width = l + 2;
    let mut b = StepGraph::builder(t.n_input_symbols(), nq * width);
    for sym in 0..t.n_input_symbols() {
        for q in 0..nq {
            for j in 0..width {
                for e in t.edges(StateId(q as u32), SymbolId(sym as u32)) {
                    if let Some(j2) = prefix_advance(t.emission(e.emission), j, prefix) {
                        b.add_edge(
                            sym as u32,
                            (q * width + j) as u32,
                            (e.target.index() * width + j2) as u32,
                            e.emission.0,
                        );
                    }
                }
            }
        }
    }
    b.build()
}

/// How far `prefix` is matched after emitting `em` from match position
/// `j`, or `None` if the emission contradicts the prefix.
#[inline]
fn prefix_advance(em: &[SymbolId], j: usize, prefix: &[SymbolId]) -> Option<usize> {
    let l = prefix.len();
    if j > l {
        return Some(l + 1);
    }
    let need = (l - j).min(em.len());
    if em[..need] != prefix[j..j + need] {
        return None;
    }
    Some((j + em.len()).min(l + 1))
}

/// The interned id of the emission string equal to `slice`, or `u32::MAX`
/// (never a valid id) if the transducer has no such emission. Interning is
/// injective, so comparing edge payloads against this id is equivalent to
/// the slice comparison the hand-rolled k-uniform loops performed.
pub fn emission_id_for(t: &Transducer, slice: &[SymbolId]) -> u32 {
    for id in 0..t.n_emissions() {
        if *t.emission(crate::transducer::EmissionId(id as u32)) == *slice {
            return id as u32;
        }
    }
    u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::Alphabet;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    /// One-state identity transducer over {a, b}.
    fn identity() -> Transducer {
        let a = Alphabet::of_chars("ab");
        let mut b = Transducer::builder(a.clone(), a);
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, sym(s), q, &[sym(s)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn output_graph_encodes_prefix_checks() {
        let t = identity();
        let o = [sym(0), sym(1)]; // "ab"
        let g = output_step_graph(&t, &o);
        assert_eq!(g.n_rows(), 3); // one state × width 3
                                   // Reading 'a' at j=0 advances to j=1; at j=1 the output wants 'b'.
        assert_eq!(g.edges(0, 0).len(), 1);
        assert_eq!(g.edges(0, 0)[0].to, 1);
        assert!(g.edges(0, 1).is_empty());
        assert_eq!(g.edges(1, 1)[0].to, 2);
        // Nothing fits past the end of the output.
        assert!(g.edges(0, 2).is_empty() && g.edges(1, 2).is_empty());
    }

    #[test]
    fn prefix_graph_saturates_past_the_prefix() {
        let t = identity();
        let p = [sym(1)]; // prefix "b", width 3
        let g = prefix_step_graph(&t, &p);
        assert_eq!(g.n_rows(), 3);
        // Emitting 'a' at matched=0 contradicts "b"; emitting 'b' matches.
        assert!(g.edges(0, 0).is_empty());
        assert_eq!(g.edges(1, 0)[0].to, 1);
        // Past the prefix anything goes and the match count saturates.
        assert_eq!(g.edges(0, 1)[0].to, 2);
        assert_eq!(g.edges(0, 2)[0].to, 2);
    }

    #[test]
    fn state_graph_and_emission_ids() {
        let t = identity();
        let g = state_step_graph(&t);
        assert_eq!(g.n_rows(), 1);
        assert_eq!(g.n_edges(), 2);
        let id_a = emission_id_for(&t, &[sym(0)]);
        assert_eq!(g.edges(0, 0)[0].payload, id_a);
        assert_eq!(emission_id_for(&t, &[sym(0), sym(0)]), u32::MAX);
    }
}
